//! # genuine-multicast
//!
//! A Rust reproduction of *“The Weakest Failure Detector for Genuine Atomic
//! Multicast”* (Pierre Sutra, PODC 2022 brief announcement / extended
//! version): the candidate detector
//! `μ = (∧_{g,h∈𝒢} Σ_{g∩h}) ∧ (∧_{g∈𝒢} Ω_g) ∧ γ`, the genuine atomic
//! multicast algorithm it supports (Algorithm 1), the §6 problem
//! variations, and the necessity-side extractions (Algorithms 2–5) — all on
//! top of a deterministic simulator of the asynchronous model with failure
//! detectors.
//!
//! This crate is an umbrella over the workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`kernel`] | processes, failure patterns, message buffer, simulator |
//! | [`groups`] | destination groups, intersection graphs, cyclic families |
//! | [`detectors`] | Σ, Ω, γ, 1^P, 𝒫 oracles; μ; class validators |
//! | [`objects`] | logs, consensus, adopt–commit; ABD registers; Paxos |
//! | [`core`] | Algorithm 1, variations, baselines, property checkers |
//! | [`engine`] | one [`Executor`](engine::Executor) stepping layer over both substrates: drivers, trace bus, run digests |
//! | [`emulation`] | Algorithms 2–5: extracting μ's constituents |
//! | [`explore`] | schedule-space explorer, shrinking counterexamples, repros |
//! | [`scenarios`] | seeded scenario corpus: `gam-scn v1` descriptors, families, workloads |
//!
//! ## Quickstart
//!
//! ```
//! use genuine_multicast::prelude::*;
//!
//! // The paper's Figure 1 system: five processes, four groups.
//! let gs = topology::fig1();
//! let pattern = FailurePattern::all_correct(gs.universe());
//! let mut rt = Runtime::new(&gs, pattern, RuntimeConfig::default());
//!
//! // Multicast one message to each group and run to quiescence.
//! for (g, members) in gs.iter() {
//!     rt.multicast(members.min().unwrap(), g, 0);
//! }
//! let report = rt.run_to_quiescence(1_000_000);
//!
//! // Integrity, minimality, termination, ordering — all hold.
//! spec::check_all(&report, Variant::Standard).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use gam_core as core;
pub use gam_detectors as detectors;
pub use gam_emulation as emulation;
pub use gam_engine as engine;
pub use gam_explore as explore;
pub use gam_groups as groups;
pub use gam_kernel as kernel;
pub use gam_objects as objects;
pub use gam_scenarios as scenarios;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use gam_core::distributed;
    pub use gam_core::spec;
    pub use gam_core::variants;
    pub use gam_core::{
        ActionScheduler, Delivery, MessageId, Phase, RunReport, Runtime, RuntimeConfig, Variant,
    };
    pub use gam_detectors::{
        GammaOracle, IndicatorOracle, MuConfig, MuOracle, OmegaOracle, PerfectOracle, SigmaOracle,
    };
    // note: `gam_engine::TraceEvent` stays out of the prelude — `gam_kernel`
    // exports a generic `TraceEvent<E>` of its own; qualify to disambiguate.
    pub use gam_engine::{
        run_fair, run_with_source, Executor, KernelExecutor, RuntimeExecutor, SnapshotExec,
    };
    pub use gam_explore::{
        explore_exhaustive, explore_exhaustive_dfs, explore_exhaustive_dfs_par,
        explore_exhaustive_par, explore_swarm, explore_swarm_par, ExploreConfig, Repro, Scenario,
    };
    pub use gam_groups::{topology, GroupId, GroupSet, GroupSystem};
    pub use gam_kernel::{
        Environment, FailurePattern, ProcessId, ProcessSet, Scheduler, Simulator, Time,
    };
    pub use gam_objects::{AdoptCommit, Consensus, Log, Pos};
    pub use gam_scenarios::{fixture, ScnDescriptor};
}
