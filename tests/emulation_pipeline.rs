//! Integration of the necessity side: the extractions of Algorithms 2–5
//! produce failure detector histories that pass the class validators, over
//! a sweep of topologies and failure patterns.

use genuine_multicast::detectors::validate::{validate_gamma, validate_indicator, validate_sigma};
use genuine_multicast::emulation::{
    GammaExtraction, IndicatorExtraction, OmegaExtraction, SigmaExtraction,
};
use genuine_multicast::prelude::*;

#[test]
fn sigma_extraction_certified_across_patterns() {
    let gs = topology::two_overlapping(3, 2); // g∩h = {p1,p2}
    let env = Environment::wait_free(gs.universe());
    for pattern in env.enumerate_patterns(2, Time(7)) {
        // keep at least one correct process overall
        if pattern.correct().is_empty() {
            continue;
        }
        let mut ext = SigmaExtraction::new(&gs, pattern.clone(), &[GroupId(0), GroupId(1)]);
        for t in 0..=80u64 {
            ext.advance(Time(t));
        }
        validate_sigma(
            |p, t| ext.quorum(p, t),
            &pattern,
            ext.scope(),
            Time(40),
            Time(80),
        )
        .unwrap_or_else(|v| panic!("{pattern}: {v}"));
    }
}

#[test]
fn gamma_extraction_certified_across_patterns() {
    for gs in [topology::ring(3, 2), topology::fig1()] {
        let env = Environment::wait_free(gs.universe());
        for pattern in env.enumerate_patterns(1, Time(5)) {
            let mut ext = GammaExtraction::new(&gs, pattern.clone(), &env);
            let n = gs.universe().len();
            let mut samples: Vec<Vec<Vec<GroupSet>>> = Vec::new();
            for t in 0..=80u64 {
                ext.advance(Time(t));
                samples.push((0..n).map(|i| ext.families(ProcessId(i as u32))).collect());
            }
            validate_gamma(
                |p, t| samples[t.0 as usize][p.index()].clone(),
                &gs,
                &pattern,
                Time(40),
                Time(80),
            )
            .unwrap_or_else(|v| panic!("{pattern}: {v}"));
        }
    }
}

#[test]
fn indicator_extraction_certified_across_patterns() {
    let gs = topology::two_overlapping(3, 2);
    let env = Environment::wait_free(gs.universe());
    for pattern in env.enumerate_patterns(2, Time(6)) {
        let mut ext = IndicatorExtraction::new(&gs, pattern.clone(), GroupId(0), GroupId(1));
        for t in 0..=60u64 {
            ext.advance(Time(t));
        }
        validate_indicator(
            |p, t| ext.indicates(p, t),
            &pattern,
            ext.monitored(),
            gs.members(GroupId(0)) | gs.members(GroupId(1)),
            Time(30),
            Time(60),
        )
        .unwrap_or_else(|v| panic!("{pattern}: {v}"));
    }
}

#[test]
fn omega_extraction_elects_a_correct_leader_in_every_pattern() {
    let scope = ProcessSet::first_n(2);
    let env = Environment::wait_free(scope).with_max_failures(1);
    for pattern in env.enumerate_patterns(1, Time(0)) {
        let ext = OmegaExtraction::new(scope, pattern.clone(), 8, 4);
        let mut leaders = std::collections::BTreeSet::new();
        for p in scope & pattern.correct() {
            let l = ext.leader(p).expect("in scope");
            assert!(pattern.is_correct(l), "{pattern}: leader {l} is faulty");
            leaders.insert(l);
        }
        assert!(
            leaders.len() <= 1,
            "{pattern}: leaders disagree {leaders:?}"
        );
    }
}

#[test]
fn the_full_mu_pipeline_composes() {
    // Extract Σ_{g∩h}, γ and use them alongside native Ω oracles to re-check
    // the candidate μ's shape on Figure 1: every constituent is available at
    // the processes Algorithm 1 queries it from.
    let gs = topology::fig1();
    let pattern = FailurePattern::from_crashes(gs.universe(), [(ProcessId(1), Time(5))]);
    let env = Environment::wait_free(gs.universe());

    // Σ for every intersecting pair.
    for (g, h) in gs.intersecting_pairs() {
        let mut ext = SigmaExtraction::new(&gs, pattern.clone(), &[g, h]);
        for t in 0..=60u64 {
            ext.advance(Time(t));
        }
        for p in gs.intersection(g, h) - pattern.faulty() {
            assert!(ext.quorum(p, Time(60)).is_some(), "Σ_({g}∩{h}) at {p}");
        }
    }
    // γ with its probes.
    let mut gamma = GammaExtraction::new(&gs, pattern.clone(), &env);
    for t in 0..=60u64 {
        gamma.advance(Time(t));
    }
    // p0 keeps exactly the family that survives p1's crash.
    assert_eq!(gamma.families(ProcessId(0)).len(), 1);
}
