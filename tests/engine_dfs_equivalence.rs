//! The snapshotting DFS engine is *the same exploration* as the odometer
//! engine — only cheaper.
//!
//! `gam_explore::explore_exhaustive_dfs` (and its parallel pool) must be
//! indistinguishable from the restart-from-scratch odometer engines in
//! everything a user can cite: run counts, coverage outcome, dedup
//! decisions, and — on violating workloads — the byte-identical shrunk
//! `Repro`. On top of that the step accounting must close exactly:
//! `steps_executed + steps_avoided` of the DFS equals `steps_executed` of
//! the odometer engine on the same tree with the same dedup decisions,
//! with a strict saving whenever the tree actually branches.

use genuine_multicast::explore::{
    explore_exhaustive, explore_exhaustive_dfs, explore_exhaustive_dfs_par, Outcome,
    DEFAULT_SHRINK_BUDGET,
};
use genuine_multicast::prelude::*;

fn config(threads: usize, dedup_capacity: usize) -> ExploreConfig {
    ExploreConfig {
        threads,
        shrink_budget: DEFAULT_SHRINK_BUDGET,
        dedup_capacity,
        por: false,
    }
}

/// The fixture topologies of `tests/fixtures/` plus the smallest branching
/// system, with per-topology exploration depths kept test-sized.
fn fixture_scenarios() -> Vec<(&'static str, Scenario, usize)> {
    vec![
        (
            "single-group(2)",
            Scenario::one_per_group(&topology::single_group(2), 20_000),
            3,
        ),
        (
            "two-overlapping(3,1)",
            Scenario::one_per_group(&topology::two_overlapping(3, 1), 50_000),
            3,
        ),
        (
            "ring(3,2)",
            Scenario::one_per_group(&topology::ring(3, 2), 100_000),
            3,
        ),
        (
            "fig1",
            Scenario::one_per_group(&topology::fig1(), 200_000),
            2,
        ),
    ]
}

#[test]
fn dfs_matches_odometer_on_every_fixture_topology() {
    for (name, scenario, depth) in fixture_scenarios() {
        let seq = explore_exhaustive(&scenario, depth, 100_000, DEFAULT_SHRINK_BUDGET);
        assert!(seq.clean(), "{name}: odometer found {:?}", seq.violations);
        let dfs = explore_exhaustive_dfs(&scenario, depth, 100_000, DEFAULT_SHRINK_BUDGET);
        assert!(dfs.clean(), "{name}: DFS found {:?}", dfs.violations);
        assert_eq!(dfs.runs, seq.runs, "{name}: coverage diverged");
        assert_eq!(dfs.outcome, seq.outcome, "{name}");
        assert_eq!(dfs.dedup_hits, 0, "{name}: sequential engines don't dedup");
        // The accounting closes exactly, and sharing strictly saves.
        assert_eq!(
            dfs.steps_executed + dfs.steps_avoided,
            seq.steps_executed,
            "{name}: step accounting must close"
        );
        assert!(
            dfs.steps_executed < seq.steps_executed,
            "{name}: prefix sharing saved nothing ({} vs {})",
            dfs.steps_executed,
            seq.steps_executed
        );
        assert!(dfs.snapshots_taken > 0, "{name}");
    }
}

#[test]
fn parallel_dfs_matches_parallel_odometer_coverage() {
    let scenario = Scenario::one_per_group(&topology::two_overlapping(3, 1), 50_000);
    for threads in [1, 2, 4] {
        for dedup_capacity in [0, 1 << 12] {
            let odo =
                explore_exhaustive_par(&scenario, 3, 100_000, &config(threads, dedup_capacity));
            let dfs =
                explore_exhaustive_dfs_par(&scenario, 3, 100_000, &config(threads, dedup_capacity));
            assert!(odo.clean() && dfs.clean(), "{threads}t/{dedup_capacity}");
            assert_eq!(dfs.runs, odo.runs, "{threads}t/{dedup_capacity}");
            assert_eq!(dfs.outcome, odo.outcome);
            if threads == 1 {
                // At one worker the item walk order — hence every dedup
                // decision — is deterministic, so the engines must agree
                // hit for hit and the step accounting closes exactly.
                assert_eq!(dfs.dedup_hits, odo.dedup_hits, "dedup {dedup_capacity}");
                assert_eq!(
                    dfs.steps_executed + dfs.steps_avoided,
                    odo.steps_executed,
                    "dedup {dedup_capacity}: step accounting must close"
                );
                assert!(dfs.steps_executed < odo.steps_executed);
            }
        }
    }
}

/// Every schedule of this scenario violates termination (the step budget is
/// far below quiescence) — the adversarial case for violation reporting.
fn starved_scenario() -> Scenario {
    Scenario::one_per_group(&topology::two_overlapping(3, 1), 12)
}

#[test]
fn violating_workload_yields_byte_identical_shrunk_counterexample() {
    let scenario = starved_scenario();
    let seq = explore_exhaustive(&scenario, 3, 10_000, DEFAULT_SHRINK_BUDGET);
    assert_eq!(seq.outcome, Outcome::ViolationFound);
    let reference = &seq.violations[0];
    assert_eq!(reference.violation.property, "termination");

    let dfs = explore_exhaustive_dfs(&scenario, 3, 10_000, DEFAULT_SHRINK_BUDGET);
    assert_eq!(dfs.outcome, Outcome::ViolationFound);
    assert_eq!(
        dfs.violations[0].repro.to_text(),
        reference.repro.to_text(),
        "sequential DFS repro diverged"
    );
    assert_eq!(
        dfs.violations[0].repro.trace_hash(),
        reference.repro.trace_hash()
    );

    for threads in [1, 2, 4] {
        for dedup_capacity in [0, 1 << 12] {
            let par =
                explore_exhaustive_dfs_par(&scenario, 3, 10_000, &config(threads, dedup_capacity));
            assert_eq!(par.outcome, Outcome::ViolationFound, "{threads} threads");
            let cx = &par.violations[0];
            assert_eq!(
                cx.repro.to_text(),
                reference.repro.to_text(),
                "{threads} threads, dedup {dedup_capacity}: repro text diverged"
            );
            assert_eq!(
                cx.repro.trace_hash(),
                reference.repro.trace_hash(),
                "{threads} threads, dedup {dedup_capacity}: trace digest diverged"
            );
            assert_eq!(cx.violation.property, reference.violation.property);
        }
    }
}

#[test]
fn batched_trees_explore_identically_across_engines_and_threads() {
    // Level-A consensus batching widens the choice space (a batch width is
    // itself a scheduling choice): the engines must still walk the *same*
    // wider tree, close the step accounting, and agree across thread
    // counts.
    for (name, scenario, depth) in fixture_scenarios() {
        let scenario = scenario.with_batch_max(16);
        let seq = explore_exhaustive(&scenario, depth, 100_000, DEFAULT_SHRINK_BUDGET);
        assert!(seq.clean(), "{name}: odometer found {:?}", seq.violations);
        let dfs = explore_exhaustive_dfs(&scenario, depth, 100_000, DEFAULT_SHRINK_BUDGET);
        assert!(dfs.clean(), "{name}: DFS found {:?}", dfs.violations);
        assert_eq!(dfs.runs, seq.runs, "{name}: batched coverage diverged");
        assert_eq!(dfs.outcome, seq.outcome, "{name}");
        assert_eq!(
            dfs.steps_executed + dfs.steps_avoided,
            seq.steps_executed,
            "{name}: batched step accounting must close"
        );
        for threads in [1, 2, 4] {
            let par = explore_exhaustive_dfs_par(&scenario, depth, 100_000, &config(threads, 0));
            assert!(par.clean(), "{name}/{threads}t");
            assert_eq!(par.runs, seq.runs, "{name}/{threads}t");
            assert_eq!(par.outcome, seq.outcome, "{name}/{threads}t");
        }
    }
}

#[test]
fn batched_violating_workload_shrinks_byte_identically() {
    let scenario = starved_scenario().with_batch_max(16);
    let seq = explore_exhaustive(&scenario, 3, 10_000, DEFAULT_SHRINK_BUDGET);
    assert_eq!(seq.outcome, Outcome::ViolationFound);
    let reference = &seq.violations[0];
    assert_eq!(reference.violation.property, "termination");

    let dfs = explore_exhaustive_dfs(&scenario, 3, 10_000, DEFAULT_SHRINK_BUDGET);
    assert_eq!(dfs.outcome, Outcome::ViolationFound);
    assert_eq!(
        dfs.violations[0].repro.to_text(),
        reference.repro.to_text(),
        "batched sequential DFS repro diverged"
    );

    for threads in [1, 2, 4] {
        for dedup_capacity in [0, 1 << 12] {
            let par =
                explore_exhaustive_dfs_par(&scenario, 3, 10_000, &config(threads, dedup_capacity));
            assert_eq!(par.outcome, Outcome::ViolationFound, "{threads} threads");
            let cx = &par.violations[0];
            assert_eq!(
                cx.repro.to_text(),
                reference.repro.to_text(),
                "{threads} threads, dedup {dedup_capacity}: batched repro text diverged"
            );
            assert_eq!(
                cx.repro.trace_hash(),
                reference.repro.trace_hash(),
                "{threads} threads, dedup {dedup_capacity}: batched trace digest diverged"
            );
        }
    }
}

#[test]
fn run_cap_stops_both_engines_at_the_same_leaf() {
    let scenario = Scenario::one_per_group(&topology::two_overlapping(3, 1), 50_000);
    let seq = explore_exhaustive(&scenario, 4, 7, DEFAULT_SHRINK_BUDGET);
    let dfs = explore_exhaustive_dfs(&scenario, 4, 7, DEFAULT_SHRINK_BUDGET);
    for (stats, label) in [(&seq, "odometer"), (&dfs, "dfs")] {
        assert_eq!(stats.runs, 7, "{label}");
        assert_eq!(stats.outcome, Outcome::RunCapped, "{label}");
        assert!(stats.violations.is_empty(), "{label}");
    }
    // The capped enumerations are the same leaves, so the DFS's
    // odometer-equivalent cost is the odometer's actual cost.
    assert_eq!(dfs.steps_executed + dfs.steps_avoided, seq.steps_executed);

    let par = explore_exhaustive_dfs_par(&scenario, 4, 7, &config(1, 0));
    assert_eq!(par.runs, 7);
    assert_eq!(par.outcome, Outcome::RunCapped);
    assert!(par.violations.is_empty());
}
