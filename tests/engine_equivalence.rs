//! Cross-substrate equivalence through the `gam-engine` stepping layer.
//!
//! The same scenario runs through both [`Executor`] implementations —
//! Algorithm 1 over shared objects ([`RuntimeExecutor`]) and the
//! message-passing deployment ([`KernelExecutor`]) — and must agree on
//! what the paper's properties can see: which messages are delivered where,
//! in which order, and whether the spec holds. Recorded schedules replay
//! byte-identically on the substrate that produced them.

use std::sync::{Arc, Mutex};

use gam_kernel::RunOutcome;
use genuine_multicast::core::distributed::run_report;
use genuine_multicast::core::spec;
use genuine_multicast::engine::{self, EventLog, Executor};
use genuine_multicast::prelude::*;

/// Runs `scenario` through both substrates under the fair driver, with an
/// [`EventLog`] observer on the shared trace bus, and returns the two
/// (report, per-process delivery orders) pairs: Level A first.
#[allow(clippy::type_complexity)]
fn both_substrates(
    scenario: &Scenario,
) -> (
    (RunReport, Vec<Vec<MessageId>>),
    (RunReport, Vec<Vec<MessageId>>),
) {
    let universe = scenario.system.universe();

    let mut rt_exec = scenario.runtime_executor();
    let rt_log = Arc::new(Mutex::new(EventLog::new()));
    rt_exec.attach(Box::new(Arc::clone(&rt_log)));
    let out = engine::run_fair(&mut rt_exec, scenario.max_steps);
    assert_eq!(out, RunOutcome::Quiescent, "Level A must quiesce");
    let rt_report = rt_exec.report(true);
    let rt_orders: Vec<_> = universe
        .iter()
        .map(|p| rt_log.lock().unwrap().delivered_by(p))
        .collect();

    let mut k_exec = scenario.kernel_executor();
    let k_log = Arc::new(Mutex::new(EventLog::new()));
    k_exec.attach(Box::new(Arc::clone(&k_log)));
    let out = engine::run_fair(&mut k_exec, scenario.max_steps);
    assert_eq!(out, RunOutcome::Quiescent, "Level B must quiesce");
    let k_report = run_report(k_exec.sim(), &scenario.system, &scenario.submissions, true);
    let k_orders: Vec<_> = universe
        .iter()
        .map(|p| k_log.lock().unwrap().delivered_by(p))
        .collect();

    ((rt_report, rt_orders), (k_report, k_orders))
}

#[test]
fn observed_deliveries_match_the_reports_on_both_substrates() {
    // The trace bus and the substrate-native reports are two views of the
    // same run: the observer's per-process delivery orders must equal the
    // reports' on both substrates.
    let gs = topology::two_overlapping(3, 1);
    let scenario = Scenario::one_per_group(&gs, 2_000_000);
    let ((rt_report, rt_orders), (k_report, k_orders)) = both_substrates(&scenario);
    for (i, p) in gs.universe().iter().enumerate() {
        assert_eq!(rt_orders[i], rt_report.delivered_by(p), "Level A {p}");
        assert_eq!(k_orders[i], k_report.delivered_by(p), "Level B {p}");
    }
}

#[test]
fn contended_single_group_orders_identically_across_substrates() {
    // Three contending messages to one group: both substrates must deliver
    // the same messages in the same order at every process, and both runs
    // must pass the full spec.
    let gs = topology::single_group(3);
    let mut scenario = Scenario::one_per_group(&gs, 2_000_000);
    scenario.submissions = (0..3)
        .map(|i| (ProcessId(i), GroupId(0), u64::from(i)))
        .collect();
    let ((rt_report, rt_orders), (k_report, k_orders)) = both_substrates(&scenario);
    assert_eq!(
        rt_orders, k_orders,
        "delivery orders diverge across substrates"
    );
    assert_eq!(
        spec::check_all(&rt_report, Variant::Standard).is_ok(),
        spec::check_all(&k_report, Variant::Standard).is_ok(),
        "spec verdicts diverge across substrates"
    );
    spec::check_all(&rt_report, Variant::Standard).expect("Level A passes the spec");
}

#[test]
fn delivery_sets_and_spec_verdicts_agree_on_overlapping_groups() {
    // With overlapping groups the *order* across substrates is
    // schedule-dependent, but who delivers what — and whether the variant's
    // properties hold — is not.
    for gs in [topology::two_overlapping(3, 1), topology::ring(3, 2)] {
        let scenario = Scenario::one_per_group(&gs, 2_000_000);
        let ((rt_report, rt_orders), (k_report, k_orders)) = both_substrates(&scenario);
        for (i, p) in gs.universe().iter().enumerate() {
            let sort = |v: &[MessageId]| {
                let mut v = v.to_vec();
                v.sort_unstable();
                v
            };
            assert_eq!(
                sort(&rt_orders[i]),
                sort(&k_orders[i]),
                "delivery sets at {p}"
            );
        }
        assert!(spec::check_all(&rt_report, Variant::Standard).is_ok());
        assert!(spec::check_all(&k_report, Variant::Standard).is_ok());
    }
}

#[test]
fn recorded_schedules_replay_identically_on_each_substrate() {
    // A schedule recorded through the engine replays to the identical run —
    // same incremental digest, same delivery orders — on the substrate that
    // produced it, for both substrates.
    let gs = topology::ring(3, 2);
    let scenario = Scenario::one_per_group(&gs, 2_000_000);

    let mut exec = scenario.runtime_executor();
    let (out, schedule) = engine::run_recorded(
        &mut exec,
        gam_kernel::schedule::RandomSource::new(21),
        scenario.max_steps,
    );
    assert_eq!(out, RunOutcome::Quiescent);
    let mut again = scenario.runtime_executor();
    assert_eq!(
        engine::replay(&mut again, &schedule, scenario.max_steps),
        RunOutcome::Quiescent
    );
    assert_eq!(again.state_digest(), exec.state_digest(), "Level A replay");
    assert_eq!(
        again.report(true).delivered_by(ProcessId(0)),
        exec.report(true).delivered_by(ProcessId(0))
    );

    let mut exec = scenario.kernel_executor();
    let (out, schedule) = engine::run_recorded(
        &mut exec,
        gam_kernel::schedule::RandomSource::new(21),
        scenario.max_steps,
    );
    assert_eq!(out, RunOutcome::Quiescent);
    let mut again = scenario.kernel_executor();
    assert_eq!(
        engine::replay(&mut again, &schedule, scenario.max_steps),
        RunOutcome::Quiescent
    );
    assert_eq!(again.state_digest(), exec.state_digest(), "Level B replay");
}

/// The generated conformance grid: every corpus family at a fixed spread of
/// seeds, plus order-strict extras, through both substrates. Spanning both
/// sides of the solvability boundary, the two executors must agree on the
/// delivery sets at every process and on the variant's spec verdict; on
/// contention-free topologies (single-group, pairwise-disjoint) the full
/// per-process delivery *order* must match too; and each substrate's final
/// state digest must be reproducible run-over-run.
#[test]
fn generated_scenario_grid_conforms_across_substrates() {
    use genuine_multicast::scenarios::{corpus, Family, ScnDescriptor};

    // 7 corpus families x 3 seeds, plus the order-strict extras: >= 20
    // descriptors, cyclic and acyclic.
    let mut grid: Vec<ScnDescriptor> = corpus()
        .iter()
        .flat_map(|(_, t)| (0..3).map(|seed| t.with_seed(seed)))
        .collect();
    let order_strict = [
        ScnDescriptor::new(Family::Single { n: 3 }),
        ScnDescriptor::new(Family::Disjoint { k: 3, size: 2 }).with_seed(1),
    ];
    grid.extend(order_strict);
    assert!(grid.len() >= 20, "the grid has {} descriptors", grid.len());

    let (mut cyclic, mut acyclic) = (0, 0);
    for descriptor in &grid {
        let scenario = Scenario::from_descriptor(descriptor);
        let gs = &scenario.system;
        match descriptor.family.known_acyclic() {
            Some(true) => acyclic += 1,
            Some(false) => cyclic += 1,
            None => {}
        }
        let ((rt_report, rt_orders), (k_report, k_orders)) = both_substrates(&scenario);

        let order_free = matches!(
            descriptor.family,
            Family::Single { .. } | Family::Disjoint { .. }
        );
        for (i, p) in gs.universe().iter().enumerate() {
            // A faulty process delivers some timing-dependent prefix before
            // its crash instant, and the two substrates' clocks reach that
            // instant at different schedule points — cross-substrate
            // agreement is only promised where the spec looks: at correct
            // processes.
            if scenario.crashes.iter().any(|(victim, _)| *victim == p) {
                continue;
            }
            if order_free {
                assert_eq!(rt_orders[i], k_orders[i], "{descriptor} order at {p}");
            }
            let sort = |v: &[MessageId]| {
                let mut v = v.to_vec();
                v.sort_unstable();
                v
            };
            assert_eq!(
                sort(&rt_orders[i]),
                sort(&k_orders[i]),
                "{descriptor} delivery set at {p}"
            );
        }
        let rt_verdict = spec::check_all(&rt_report, scenario.variant);
        let k_verdict = spec::check_all(&k_report, scenario.variant);
        assert_eq!(
            rt_verdict.is_ok(),
            k_verdict.is_ok(),
            "{descriptor}: spec verdicts diverge"
        );
        rt_verdict.unwrap_or_else(|v| panic!("{descriptor}: {v}"));

        // Per-substrate digest determinism: the fair driver re-runs each
        // substrate to the identical final state.
        let rt_digest = || {
            let mut exec = scenario.runtime_executor();
            engine::run_fair(&mut exec, scenario.max_steps);
            exec.state_digest()
        };
        let k_digest = || {
            let mut exec = scenario.kernel_executor();
            engine::run_fair(&mut exec, scenario.max_steps);
            exec.state_digest()
        };
        assert_eq!(
            rt_digest(),
            rt_digest(),
            "{descriptor}: Level A digest drifts"
        );
        assert_eq!(
            k_digest(),
            k_digest(),
            "{descriptor}: Level B digest drifts"
        );
    }
    assert!(acyclic >= 6 && cyclic >= 6, "the grid spans the boundary");
}
