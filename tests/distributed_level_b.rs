//! Integration of the Level-B deployment: Algorithm 1 over messages,
//! composed from the group SMRs and the Proposition-47 fast logs, driven by
//! a `μ` oracle — checked for delivery, agreement and genuineness at the
//! message level.

use gam_kernel::{RunOutcome, Scheduler as KScheduler, Simulator};
use genuine_multicast::core::distributed::{DistProcess, MuHistory};
use genuine_multicast::core::MessageId;
use genuine_multicast::prelude::*;

fn system(gs: &GroupSystem, pattern: FailurePattern) -> Simulator<DistProcess, MuHistory> {
    let autos = gs
        .universe()
        .iter()
        .map(|p| DistProcess::new(p, gs))
        .collect();
    let mu = MuOracle::new(gs, pattern.clone(), MuConfig::default());
    Simulator::new(autos, pattern, MuHistory::new(mu))
}

fn agree_on_shared(sim: &Simulator<DistProcess, MuHistory>, gs: &GroupSystem) {
    for p in gs.universe() {
        for q in gs.universe() {
            let (dp, dq) = (sim.automaton(p).delivered(), sim.automaton(q).delivered());
            for (i, m1) in dp.iter().enumerate() {
                for m2 in &dp[i + 1..] {
                    if let (Some(j1), Some(j2)) = (
                        dq.iter().position(|x| x == m1),
                        dq.iter().position(|x| x == m2),
                    ) {
                        assert!(j1 < j2, "{p} and {q} disagree on {m1:?}/{m2:?}");
                    }
                }
            }
        }
    }
}

#[test]
fn fig1_over_the_wire() {
    let gs = topology::fig1();
    let pattern = FailurePattern::all_correct(gs.universe());
    let mut sim = system(&gs, pattern);
    // one message per group, concurrent
    for (i, (g, members)) in gs.iter().enumerate() {
        let src = members.min().unwrap();
        sim.automaton_mut(src).multicast(MessageId(i as u64), g);
    }
    let out = sim.run(KScheduler::RoundRobin, 20_000_000);
    assert_eq!(out, RunOutcome::Quiescent);
    for (i, (g, members)) in gs.iter().enumerate() {
        let _ = g;
        for p in members {
            assert!(
                sim.automaton(p).delivered().contains(&MessageId(i as u64)),
                "{p} missing m{i}"
            );
        }
    }
    agree_on_shared(&sim, &gs);
}

#[test]
fn wide_intersection_over_the_wire() {
    // g∩h = {p1, p2}: the fast logs and the Σ_{g∩h} quorums have real width
    let gs = topology::two_overlapping(3, 2);
    let pattern = FailurePattern::all_correct(gs.universe());
    let mut sim = system(&gs, pattern);
    sim.automaton_mut(ProcessId(0))
        .multicast(MessageId(0), GroupId(0));
    sim.automaton_mut(ProcessId(3))
        .multicast(MessageId(1), GroupId(1));
    let out = sim.run(KScheduler::RoundRobin, 20_000_000);
    assert_eq!(out, RunOutcome::Quiescent);
    for p in gs.members(GroupId(0)) {
        assert!(sim.automaton(p).delivered().contains(&MessageId(0)), "{p}");
    }
    for p in gs.members(GroupId(1)) {
        assert!(sim.automaton(p).delivered().contains(&MessageId(1)), "{p}");
    }
    // both overlap replicas deliver both messages in the same order
    let d1 = sim.automaton(ProcessId(1)).delivered().to_vec();
    let d2 = sim.automaton(ProcessId(2)).delivered().to_vec();
    assert_eq!(d1.len(), 2);
    assert_eq!(d1, d2, "overlap replicas agree");
    agree_on_shared(&sim, &gs);
}

#[test]
fn random_schedules_on_the_ring_over_the_wire() {
    let gs = topology::ring(3, 2);
    for seed in 0..2u64 {
        let pattern = FailurePattern::all_correct(gs.universe());
        let mut sim = system(&gs, pattern).with_seed(seed);
        for g in 0..3u32 {
            let src = gs.members(GroupId(g)).min().unwrap();
            sim.automaton_mut(src)
                .multicast(MessageId(g as u64), GroupId(g));
        }
        let out = sim.run(KScheduler::Random { null_prob: 0.2 }, 30_000_000);
        assert_eq!(out, RunOutcome::Quiescent, "seed {seed}");
        for g in 0..3u32 {
            for p in gs.members(GroupId(g)) {
                assert!(
                    sim.automaton(p).delivered().contains(&MessageId(g as u64)),
                    "seed {seed}: {p} missing m{g}"
                );
            }
        }
        agree_on_shared(&sim, &gs);
    }
}
