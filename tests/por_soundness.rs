//! Sleep-set partial-order reduction never changes what exploration
//! *finds* — only what it *costs*.
//!
//! POR prunes sibling subtrees that merely permute commuting actions
//! (`gam_explore::independence`). Soundness here is observable: on every
//! corpus fixture and on a violating workload, exploration with sleep
//! sets finds a violation **iff** exploration without them does, the
//! shrunk `.repro` is byte-identical (text and trace digest), and this
//! holds at 1 and N threads. On crash-bearing fixtures POR must be
//! exactly inert (`por_applicable` gates it off).

use genuine_multicast::explore::{
    explore_exhaustive_dfs_par, por_applicable, Outcome, Scenario, DEFAULT_SHRINK_BUDGET,
};
use genuine_multicast::prelude::*;
use genuine_multicast::scenarios::corpus;

fn config(threads: usize, por: bool) -> ExploreConfig {
    ExploreConfig {
        threads,
        shrink_budget: DEFAULT_SHRINK_BUDGET,
        dedup_capacity: 0,
        por,
    }
}

/// Uncapped exploration: complete coverage of the bounded tree on both
/// sides, so "finds a violation iff" is meaningful (a cap could starve
/// one side of the leaf the other reaches).
const UNCAPPED: u64 = u64::MAX;

#[test]
fn por_finds_a_violation_iff_plain_dfs_does_on_the_corpus() {
    let mut pruned_somewhere = 0u64;
    for (name, template) in corpus() {
        let scenario = Scenario::from_descriptor(&template.with_seed(7));
        let depth = 3;
        let plain = explore_exhaustive_dfs_par(&scenario, depth, UNCAPPED, &config(1, false));
        let por = explore_exhaustive_dfs_par(&scenario, depth, UNCAPPED, &config(1, true));
        assert_eq!(
            plain.violations.is_empty(),
            por.violations.is_empty(),
            "{name}: POR changed the verdict"
        );
        assert_eq!(plain.outcome, por.outcome, "{name}");
        if let (Some(reference), Some(reduced)) = (plain.violations.first(), por.violations.first())
        {
            assert_eq!(
                reduced.repro.to_text(),
                reference.repro.to_text(),
                "{name}: POR shrunk repro diverged"
            );
            assert_eq!(reduced.repro.trace_hash(), reference.repro.trace_hash());
        }
        if por_applicable(&scenario) {
            assert!(por.runs <= plain.runs, "{name}: POR cannot add leaves");
            pruned_somewhere += por.por_pruned;
        } else {
            // Crash-bearing fixture: POR must be exactly inert.
            assert_eq!(por.runs, plain.runs, "{name}: POR ran on a crashy fixture");
            assert_eq!(por.por_pruned, 0, "{name}");
            assert_eq!(por.steps_executed, plain.steps_executed, "{name}");
        }
    }
    assert!(
        pruned_somewhere > 0,
        "sleep sets pruned nothing anywhere on the corpus — POR is wired off"
    );
}

/// Every schedule of this scenario violates termination (the step budget
/// is far below quiescence): the adversarial case for "pruning can never
/// hide a counterexample".
fn starved_scenario() -> Scenario {
    Scenario::one_per_group(&topology::two_overlapping(3, 1), 12)
}

#[test]
fn por_reports_the_same_counterexample_bytes_on_a_violating_workload() {
    let scenario = starved_scenario();
    assert!(por_applicable(&scenario));
    let reference = explore_exhaustive_dfs_par(&scenario, 3, 10_000, &config(1, false));
    assert_eq!(reference.outcome, Outcome::ViolationFound);
    let reference = &reference.violations[0];
    assert_eq!(reference.violation.property, "termination");

    for threads in [1, 2, 4] {
        let por = explore_exhaustive_dfs_par(&scenario, 3, 10_000, &config(threads, true));
        assert_eq!(por.outcome, Outcome::ViolationFound, "{threads} threads");
        let cx = &por.violations[0];
        assert_eq!(
            cx.repro.to_text(),
            reference.repro.to_text(),
            "{threads} threads: POR repro text diverged"
        );
        assert_eq!(
            cx.repro.trace_hash(),
            reference.repro.trace_hash(),
            "{threads} threads: POR trace digest diverged"
        );
        assert_eq!(cx.violation.property, reference.violation.property);
    }
}

#[test]
fn por_strictly_prunes_a_branchy_crash_free_tree() {
    // fig1 at depth 3 has many sibling pairs on disjoint groups: POR must
    // actually pay for itself here, not just stay sound.
    let scenario = Scenario::one_per_group(&topology::fig1(), 200_000);
    let plain = explore_exhaustive_dfs_par(&scenario, 3, UNCAPPED, &config(1, false));
    let por = explore_exhaustive_dfs_par(&scenario, 3, UNCAPPED, &config(1, true));
    assert!(plain.clean() && por.clean());
    assert!(por.por_pruned > 0, "no sibling subtree was slept");
    assert!(
        por.runs < plain.runs,
        "POR explored as many leaves as plain DFS ({} vs {})",
        por.runs,
        plain.runs
    );
    assert!(
        por.steps_executed < plain.steps_executed,
        "POR saved no steps ({} vs {})",
        por.steps_executed,
        plain.steps_executed
    );
}
