//! Batched consensus is a scheduling optimisation, not a semantic change.
//!
//! The injection-level batching layer (`RuntimeConfig::batch_max > 1`)
//! groups pending multicasts for the same group set into one consensus
//! decision. Nothing a correct process can observe may change: who
//! delivers what, the `L_g` order of each group's messages, and the spec
//! verdict must all match the unbatched run — across the whole scenario
//! corpus, across the exploration engines (odometer and snapshotting DFS
//! enumerate the *batched* action tree identically), and across substrates
//! (the batched Level-A runtime still agrees with the always-unbatched
//! Level-B kernel deployment).

use gam_kernel::RunOutcome;
use genuine_multicast::core::distributed::run_report;
use genuine_multicast::explore::{
    explore_exhaustive, explore_exhaustive_dfs, Outcome, DEFAULT_SHRINK_BUDGET,
};
use genuine_multicast::prelude::*;
use genuine_multicast::scenarios::corpus;

/// The batching width under test: far above any corpus backlog, so every
/// mergeable injection actually merges.
const BATCH: u32 = 16;

/// Drives `scenario` to quiescence under the fair driver and reports.
fn fair_report(scenario: &Scenario) -> RunReport {
    let mut exec = scenario.runtime_executor();
    let out = genuine_multicast::engine::run_fair(&mut exec, scenario.max_steps);
    assert_eq!(out, RunOutcome::Quiescent, "fair run must quiesce");
    exec.report(true)
}

fn sorted(mut v: Vec<MessageId>) -> Vec<MessageId> {
    v.sort_unstable();
    v
}

/// Batched and unbatched runs take different schedules, so a message from a
/// *faulty* source may be retired in one run and lost in the other — the
/// spec allows both. Comparable messages are the ones both runs are
/// obligated to (correct source) or both actually retired somewhere.
fn comparable(
    scenario: &Scenario,
    unbatched: &RunReport,
    batched: &RunReport,
    m: MessageId,
) -> bool {
    let src = unbatched.messages[m.0 as usize].src;
    if !scenario.crashes.iter().any(|(victim, _)| *victim == src) {
        return true;
    }
    let somewhere = |r: &RunReport| r.system.universe().iter().any(|p| r.has_delivered(p, m));
    somewhere(unbatched) && somewhere(batched)
}

/// The full corpus (every template, three seeds — ≥ 20 descriptors,
/// spanning acyclic/cyclic topologies, crash and churn plans): at every
/// correct process, the batched run delivers the same comparable messages,
/// with the same per-group `L_g` projections, and both runs pass the
/// variant's spec.
#[test]
fn batched_delivery_matches_unbatched_on_the_corpus() {
    let grid: Vec<ScnDescriptor> = corpus()
        .iter()
        .flat_map(|(_, t)| (0..3).map(|seed| t.with_seed(seed)))
        .collect();
    assert!(grid.len() >= 20, "the grid has {} descriptors", grid.len());

    for d in &grid {
        let scenario = Scenario::from_descriptor(d);
        let unbatched = fair_report(&scenario);
        let batched = fair_report(&scenario.clone().with_batch_max(BATCH));

        spec::check_all(&unbatched, scenario.variant)
            .unwrap_or_else(|v| panic!("{d} unbatched: {v}"));
        spec::check_all(&batched, scenario.variant).unwrap_or_else(|v| panic!("{d} batched: {v}"));

        for p in scenario.system.universe().iter() {
            if scenario.crashes.iter().any(|(victim, _)| *victim == p) {
                continue;
            }
            let view = |r: &RunReport| -> Vec<MessageId> {
                r.delivered_by(p)
                    .into_iter()
                    .filter(|m| comparable(&scenario, &unbatched, &batched, *m))
                    .collect()
            };
            let (u, b) = (view(&unbatched), view(&batched));
            assert_eq!(
                sorted(u.clone()),
                sorted(b.clone()),
                "{d}: delivered sets diverge at {p}"
            );
            // Per-group projection: batching must preserve each group's
            // total L_g order as seen by every member.
            for (g, members) in scenario.system.iter() {
                if !members.contains(p) {
                    continue;
                }
                let proj = |v: &[MessageId], r: &RunReport| -> Vec<MessageId> {
                    v.iter()
                        .copied()
                        .filter(|m| r.messages[m.0 as usize].group == g)
                        .collect()
                };
                assert_eq!(
                    proj(&u, &unbatched),
                    proj(&b, &batched),
                    "{d}: group {g} projection diverges at {p}"
                );
            }
        }
    }
}

/// Contended small topologies where batching genuinely merges: the
/// odometer and snapshotting DFS engines enumerate the batched action tree
/// identically (same coverage, same outcome, exact step accounting), and
/// every explored schedule stays clean — the exhaustive form of
/// "batched delivery order equals unbatched".
#[test]
fn exploration_engines_agree_and_stay_clean_under_batching() {
    let mut contended = Scenario::one_per_group(&topology::single_group(3), 20_000);
    contended.submissions = (0..3)
        .map(|i| (ProcessId(i), GroupId(0), u64::from(i)))
        .collect();
    let cases = [
        ("contended-single(3)", contended, 3),
        (
            "two-overlapping(3,1)",
            Scenario::one_per_group(&topology::two_overlapping(3, 1), 50_000),
            3,
        ),
        (
            "ring(3,2)",
            Scenario::one_per_group(&topology::ring(3, 2), 100_000),
            2,
        ),
    ];
    for (name, scenario, depth) in cases {
        for batch_max in [1, BATCH] {
            let s = scenario.clone().with_batch_max(batch_max);
            let seq = explore_exhaustive(&s, depth, 100_000, DEFAULT_SHRINK_BUDGET);
            assert!(
                seq.clean(),
                "{name} batch={batch_max}: odometer found {:?}",
                seq.violations
            );
            let dfs = explore_exhaustive_dfs(&s, depth, 100_000, DEFAULT_SHRINK_BUDGET);
            assert!(
                dfs.clean(),
                "{name} batch={batch_max}: DFS found {:?}",
                dfs.violations
            );
            assert_eq!(dfs.runs, seq.runs, "{name} batch={batch_max}: coverage");
            assert_eq!(dfs.outcome, seq.outcome, "{name} batch={batch_max}");
            assert_eq!(
                dfs.steps_executed + dfs.steps_avoided,
                seq.steps_executed,
                "{name} batch={batch_max}: step accounting must close"
            );
        }
    }
}

/// When no two pending multicasts share a group list, a `batch_max > 1`
/// runtime takes byte-for-byte the same run as the unbatched one: the
/// final state digests coincide.
#[test]
fn batching_without_contention_is_a_byte_identical_no_op() {
    for gs in [
        topology::fig1(),
        topology::ring(3, 2),
        topology::two_overlapping(3, 1),
    ] {
        let scenario = Scenario::one_per_group(&gs, 2_000_000);
        let digest = |s: &Scenario| {
            let mut exec = s.runtime_executor();
            genuine_multicast::engine::run_fair(&mut exec, s.max_steps);
            exec.state_digest()
        };
        assert_eq!(
            digest(&scenario),
            digest(&scenario.clone().with_batch_max(BATCH)),
            "one message per group: batching merged something it shouldn't"
        );
    }
}

/// Cross-substrate under batching: the batched Level-A runtime still
/// agrees with the (always unbatched) Level-B kernel deployment on
/// delivery sets and spec verdicts.
#[test]
fn batched_runtime_agrees_with_the_kernel_substrate() {
    for gs in [topology::two_overlapping(3, 1), topology::ring(3, 2)] {
        let scenario = Scenario::one_per_group(&gs, 2_000_000).with_batch_max(BATCH);

        let rt_report = fair_report(&scenario);

        let mut k_exec = scenario.kernel_executor();
        let out = genuine_multicast::engine::run_fair(&mut k_exec, scenario.max_steps);
        assert_eq!(out, RunOutcome::Quiescent, "Level B must quiesce");
        let k_report = run_report(k_exec.sim(), &scenario.system, &scenario.submissions, true);

        for p in gs.universe().iter() {
            assert_eq!(
                sorted(rt_report.delivered_by(p)),
                sorted(k_report.delivered_by(p)),
                "delivery sets diverge at {p}"
            );
        }
        spec::check_all(&rt_report, scenario.variant).expect("batched Level A passes the spec");
        spec::check_all(&k_report, scenario.variant).expect("Level B passes the spec");
    }
}

/// A violation found while exploring *batched* schedules round-trips
/// through the `gam-repro v1` text format: the `batch` line survives
/// parse/render and the replay reproduces the identical trace.
#[test]
fn batched_repros_round_trip_and_replay() {
    // Starved budget: every schedule violates termination.
    let scenario =
        Scenario::one_per_group(&topology::two_overlapping(3, 1), 12).with_batch_max(BATCH);
    let stats = explore_exhaustive(&scenario, 3, 10_000, DEFAULT_SHRINK_BUDGET);
    assert_eq!(stats.outcome, Outcome::ViolationFound);
    let repro = &stats.violations[0].repro;
    let text = repro.to_text();
    assert!(
        text.lines().any(|l| l == format!("batch {BATCH}")),
        "batched repros record their width:\n{text}"
    );
    let parsed = Repro::parse(&text).expect("round-trip parse");
    assert_eq!(parsed.scenario.batch_max, BATCH);
    assert_eq!(parsed.to_text(), text, "canonical render");
    assert_eq!(parsed.trace_hash(), repro.trace_hash(), "replay diverged");
    parsed.verify().expect("replay still violates the property");
}
