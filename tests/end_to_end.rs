//! End-to-end integration: Algorithm 1 across topologies, schedulers,
//! workloads and failure patterns, checked against the full specification.

use genuine_multicast::prelude::*;

/// Multicasts one message per group (from each group's minimum live member)
/// and runs to quiescence.
fn one_per_group(gs: &GroupSystem, pattern: FailurePattern, config: RuntimeConfig) -> RunReport {
    let mut rt = Runtime::new(gs, pattern.clone(), config);
    for (g, members) in gs.iter() {
        // choose a correct source when one exists (a faulty one may crash
        // between submissions; termination then doesn't require delivery)
        let live = members & pattern.correct();
        if let Some(src) = live.min() {
            rt.multicast(src, g, g.index() as u64);
        }
    }
    let q = rt.run(2_000_000);
    rt.report(q)
}

#[test]
fn all_topologies_failure_free_all_schedulers() {
    for (name, gs) in topology::suite() {
        for (sched, seed) in [
            (ActionScheduler::RoundRobin, 0u64),
            (ActionScheduler::Random, 1),
            (ActionScheduler::Random, 2),
            (ActionScheduler::Random, 3),
        ] {
            let report = one_per_group(
                &gs,
                FailurePattern::all_correct(gs.universe()),
                RuntimeConfig {
                    scheduler: sched,
                    seed,
                    ..Default::default()
                },
            );
            assert!(report.quiescent, "{name} {sched:?}/{seed}");
            spec::check_all(&report, Variant::Standard)
                .unwrap_or_else(|v| panic!("{name} {sched:?}/{seed}: {v}"));
        }
    }
}

#[test]
fn fig1_every_single_crash_pattern() {
    let gs = topology::fig1();
    for victim in 0..5u32 {
        for crash_at in [0u64, 3, 20] {
            let pattern =
                FailurePattern::from_crashes(gs.universe(), [(ProcessId(victim), Time(crash_at))]);
            let report = one_per_group(&gs, pattern.clone(), RuntimeConfig::default());
            assert!(
                report.quiescent,
                "p{victim}@t{crash_at}: runtime must quiesce"
            );
            spec::check_all(&report, Variant::Standard)
                .unwrap_or_else(|v| panic!("p{victim}@t{crash_at}: {v}"));
        }
    }
}

#[test]
fn ring_crash_patterns_under_random_schedules() {
    let gs = topology::ring(4, 2);
    for victim in 0..4u32 {
        for seed in 0..3u64 {
            let pattern =
                FailurePattern::from_crashes(gs.universe(), [(ProcessId(victim), Time(2))]);
            let report = one_per_group(
                &gs,
                pattern,
                RuntimeConfig {
                    scheduler: ActionScheduler::Random,
                    seed,
                    ..Default::default()
                },
            );
            assert!(report.quiescent, "p{victim}/seed{seed}");
            spec::check_all(&report, Variant::Standard)
                .unwrap_or_else(|v| panic!("p{victim}/seed{seed}: {v}"));
        }
    }
}

#[test]
fn bursty_workload_on_fig1() {
    // Several messages per group, submitted up-front (the Proposition 1
    // layer sequences each group's list).
    let gs = topology::fig1();
    let mut rt = Runtime::new(
        &gs,
        FailurePattern::all_correct(gs.universe()),
        RuntimeConfig {
            scheduler: ActionScheduler::Random,
            seed: 7,
            ..Default::default()
        },
    );
    for round in 0..3u64 {
        for (g, members) in gs.iter() {
            // rotate sources within each group
            let srcs: Vec<ProcessId> = members.iter().collect();
            let src = srcs[(round as usize) % srcs.len()];
            rt.multicast(src, g, round);
        }
    }
    let report = rt.run_to_quiescence(5_000_000);
    spec::check_all(&report, Variant::Standard).unwrap();
    // 12 messages total; every group member delivered its 3
    for (g, members) in gs.iter() {
        for p in members {
            let mine = report.delivered[p.index()]
                .iter()
                .filter(|d| report.messages[d.msg.0 as usize].group == g)
                .count();
            assert_eq!(mine, 3, "{p} in {g}");
        }
    }
}

#[test]
fn two_crashes_on_fig1() {
    let gs = topology::fig1();
    // p2 and p3 crash (the §3 walkthrough pattern): Correct = {p0, p3, p4}.
    let pattern = FailurePattern::from_crashes(
        gs.universe(),
        [(ProcessId(1), Time(4)), (ProcessId(2), Time(11))],
    );
    let report = one_per_group(&gs, pattern, RuntimeConfig::default());
    assert!(report.quiescent);
    spec::check_all(&report, Variant::Standard).unwrap();
}

#[test]
fn deliveries_agree_pairwise_on_shared_destinations() {
    // Stronger sanity than acyclicity: any two processes sharing two
    // messages deliver them in the same relative order (a consequence of
    // the ordering property for pairs).
    let gs = topology::hub(3, 3);
    let mut rt = Runtime::new(
        &gs,
        FailurePattern::all_correct(gs.universe()),
        RuntimeConfig {
            scheduler: ActionScheduler::Random,
            seed: 11,
            ..Default::default()
        },
    );
    for (g, members) in gs.iter() {
        rt.multicast(members.min().unwrap(), g, 0);
        rt.multicast(members.max().unwrap(), g, 1);
    }
    let report = rt.run_to_quiescence(5_000_000);
    spec::check_all(&report, Variant::Standard).unwrap();
    spec::check_pairwise_ordering(&report).unwrap();
}

#[test]
fn strict_variant_full_suite() {
    for (name, gs) in topology::suite() {
        let report = {
            let mut rt = Runtime::new(
                &gs,
                FailurePattern::all_correct(gs.universe()),
                RuntimeConfig {
                    variant: Variant::Strict,
                    ..Default::default()
                },
            );
            for (g, members) in gs.iter() {
                rt.multicast(members.min().unwrap(), g, 0);
            }
            let q = rt.run(2_000_000);
            rt.report(q)
        };
        assert!(report.quiescent, "{name}");
        spec::check_all(&report, Variant::Strict).unwrap_or_else(|v| panic!("{name}: {v}"));
    }
}

#[test]
fn report_round_trips_through_baselines() {
    use genuine_multicast::core::baseline::BroadcastBased;
    let gs = topology::fig1();
    let mut bb = BroadcastBased::new(&gs, FailurePattern::all_correct(gs.universe()));
    for (g, members) in gs.iter() {
        bb.multicast(members.min().unwrap(), g, 0);
    }
    assert!(bb.run(100_000));
    let r = bb.report(true);
    spec::check_integrity(&r).unwrap();
    spec::check_ordering(&r).unwrap();
    spec::check_termination(&r).unwrap();
}
