//! Thread-count invariance of the parallel explorer.
//!
//! The contract of `gam_explore::par` is that parallelism changes wall-clock
//! time and nothing else a user can cite: the reported counterexample — its
//! `Repro` text and its replay trace digest — is byte-identical whether the
//! exploration ran on 1, 2, or 4 workers, and identical to what the
//! sequential reference loops produce. Clean explorations must also agree
//! on coverage (`runs`, outcome), with and without dedup pruning.
//!
//! Violating workloads are built without any seeded bug: `check_all`'s
//! termination property requires quiescence, so a step budget too small for
//! the protocol to finish makes every schedule a counterexample. That is
//! the adversarial case for the merge — every worker finds a violation at
//! once, and the canonically-least one must still win the race.

use genuine_multicast::explore::{
    explore_exhaustive, explore_swarm, Outcome, DEFAULT_SHRINK_BUDGET,
};
use genuine_multicast::prelude::*;

fn config(threads: usize, dedup_capacity: usize) -> ExploreConfig {
    ExploreConfig {
        threads,
        shrink_budget: DEFAULT_SHRINK_BUDGET,
        dedup_capacity,
        por: false,
    }
}

/// A scenario whose step budget is far below quiescence: every completed
/// schedule violates termination, so every work item / seed races to
/// report a counterexample and the merge must pick the canonical one.
fn starved_scenario() -> Scenario {
    Scenario::one_per_group(&topology::two_overlapping(3, 1), 12)
}

#[test]
fn exhaustive_counterexample_is_invariant_across_thread_counts() {
    let scenario = starved_scenario();
    let seq = explore_exhaustive(&scenario, 3, 10_000, DEFAULT_SHRINK_BUDGET);
    assert_eq!(seq.outcome, Outcome::ViolationFound);
    let reference = &seq.violations[0];
    assert_eq!(reference.violation.property, "termination");

    for threads in [1, 2, 4] {
        for dedup_capacity in [0, 1 << 12] {
            let par =
                explore_exhaustive_par(&scenario, 3, 10_000, &config(threads, dedup_capacity));
            assert_eq!(par.outcome, Outcome::ViolationFound, "{threads} threads");
            let cx = &par.violations[0];
            assert_eq!(
                cx.repro.to_text(),
                reference.repro.to_text(),
                "{threads} threads, dedup {dedup_capacity}: repro text diverged"
            );
            assert_eq!(
                cx.repro.trace_hash(),
                reference.repro.trace_hash(),
                "{threads} threads, dedup {dedup_capacity}: trace digest diverged"
            );
            assert_eq!(cx.violation.property, reference.violation.property);
        }
    }
}

#[test]
fn swarm_counterexample_is_invariant_across_thread_counts() {
    let scenario = starved_scenario();
    let seq = explore_swarm(&scenario, 0..8, DEFAULT_SHRINK_BUDGET);
    assert_eq!(seq.outcome, Outcome::ViolationFound);
    let reference = &seq.violations[0];
    assert_eq!(reference.repro.seed, 0, "lowest violating seed wins");

    for threads in [1, 2, 4] {
        let par = explore_swarm_par(&scenario, 0..8, &config(threads, 0));
        assert_eq!(par.outcome, Outcome::ViolationFound, "{threads} threads");
        let cx = &par.violations[0];
        assert_eq!(cx.repro.seed, 0, "{threads} threads");
        assert_eq!(
            cx.repro.to_text(),
            reference.repro.to_text(),
            "{threads} threads: repro text diverged"
        );
        assert_eq!(
            cx.repro.trace_hash(),
            reference.repro.trace_hash(),
            "{threads} threads: trace digest diverged"
        );
    }
}

#[test]
fn clean_exploration_stats_are_invariant_across_thread_counts() {
    // With enough budget the same topology quiesces everywhere: full
    // coverage, and the covered-prefix count must not depend on threads or
    // on dedup pruning (pruning skips tails, never enumerated prefixes).
    let scenario = Scenario::one_per_group(&topology::two_overlapping(3, 1), 50_000);
    let seq = explore_exhaustive(&scenario, 3, 10_000, DEFAULT_SHRINK_BUDGET);
    assert!(seq.clean());

    for threads in [1, 2, 4] {
        for dedup_capacity in [0, 1 << 12] {
            let par =
                explore_exhaustive_par(&scenario, 3, 10_000, &config(threads, dedup_capacity));
            assert!(par.clean(), "{threads} threads: {:?}", par.violations);
            assert_eq!(par.runs, seq.runs, "{threads} threads");
            assert_eq!(par.worker_runs.iter().sum::<u64>(), par.runs);
        }
    }

    let seq = explore_swarm(&scenario, 0..6, DEFAULT_SHRINK_BUDGET);
    assert!(seq.clean());
    for threads in [1, 2, 4] {
        let par = explore_swarm_par(&scenario, 0..6, &config(threads, 0));
        assert!(par.clean(), "{threads} threads: {:?}", par.violations);
        assert_eq!(par.runs, seq.runs, "{threads} threads");
    }
}

#[test]
fn relaxed_hint_races_cannot_change_the_answer_across_repeated_runs() {
    // Regression guard for the A001 proof obligations in `par.rs`/`dfs.rs`:
    // the `best_item`/`best_seed` skip hints and the shared run budget are
    // deliberately `Ordering::Relaxed`, and the written arguments claim the
    // merge output is independent of how those races resolve. Hammer the
    // adversarial case — every worker finds a violation at once — across
    // thread counts *and* repetitions, so a genuinely racy hint (one that
    // could skip a candidate at or below the canonical winner) would show
    // up as a diverging repro on some iteration.
    let scenario = starved_scenario();
    let seq = explore_exhaustive(&scenario, 3, 10_000, DEFAULT_SHRINK_BUDGET);
    let reference_repro = seq.violations[0].repro.to_text();
    let reference_hash = seq.violations[0].repro.trace_hash();
    let swarm_seq = explore_swarm(&scenario, 0..8, DEFAULT_SHRINK_BUDGET);
    let swarm_repro = swarm_seq.violations[0].repro.to_text();

    for rep in 0..5 {
        for threads in [1, 2, 4] {
            let par = explore_exhaustive_par(&scenario, 3, 10_000, &config(threads, 0));
            assert_eq!(par.outcome, Outcome::ViolationFound);
            assert_eq!(
                par.violations[0].repro.to_text(),
                reference_repro,
                "rep {rep}, {threads} threads: exhaustive repro diverged"
            );
            assert_eq!(
                par.violations[0].repro.trace_hash(),
                reference_hash,
                "rep {rep}, {threads} threads: exhaustive digest diverged"
            );

            let swarm = explore_swarm_par(&scenario, 0..8, &config(threads, 0));
            assert_eq!(swarm.outcome, Outcome::ViolationFound);
            assert_eq!(
                swarm.violations[0].repro.seed, 0,
                "rep {rep}, {threads} threads: a stale best_seed hint let a higher seed win"
            );
            assert_eq!(
                swarm.violations[0].repro.to_text(),
                swarm_repro,
                "rep {rep}, {threads} threads: swarm repro diverged"
            );
        }
    }
}
