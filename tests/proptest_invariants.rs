//! Property-based integration tests: random topologies and workloads.
//!
//! - Lemma 30: `H(p, g) = H(p', g)` for processes in intersections of a
//!   common cyclic family containing `g` (Figure 2's construction).
//! - Family faultiness is monotone in the crashed set.
//! - Algorithm 1 satisfies integrity + ordering on random workloads and
//!   schedules over the topology suite.
//! - `γ` oracles are valid for random patterns and delays.
//! - Scheduling is deterministic: equal seeds give equal trace hashes, and
//!   recorded schedules replay (also through text serialization) to the
//!   identical run.

use genuine_multicast::explore::{trace_hash, Repro, Scenario};
use genuine_multicast::kernel::{RandomSource, RecordingSource};
use genuine_multicast::prelude::*;
use proptest::prelude::*;

/// A random group system: `n ∈ 4..8` processes, `k ∈ 2..5` random groups of
/// size ≥ 2 (deduplicated), via [`topology::random`].
fn arb_system() -> impl Strategy<Value = GroupSystem> {
    (4usize..8, 2usize..5, any::<u64>()).prop_map(|(n, k, seed)| topology::random(n, k, 0.45, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Lemma 30 (Figure 2): H-sets agree across the intersections of a
    /// cyclic family.
    #[test]
    fn lemma30_h_sets_agree(gs in arb_system()) {
        for f in gs.cyclic_families() {
            for g in f {
                // processes in intersections of f (with any other group of f)
                let witnesses: Vec<ProcessId> = gs
                    .universe()
                    .iter()
                    .filter(|p| gs.in_some_intersection(f, *p)
                        && gs.members(g).contains(*p))
                    .collect();
                let hsets: Vec<GroupSet> =
                    witnesses.iter().map(|p| gs.h_set(*p, g)).collect();
                for w in hsets.windows(2) {
                    prop_assert_eq!(w[0], w[1], "H(p,{}) differs", g);
                }
            }
        }
    }

    /// Faultiness of a family is monotone in the crashed set.
    #[test]
    fn family_faultiness_is_monotone(gs in arb_system(), crash_seed in any::<u64>()) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(crash_seed);
        let mut crashed = ProcessSet::new();
        let families = gs.cyclic_families();
        let mut was_faulty: Vec<bool> = families.iter().map(|_| false).collect();
        for p in gs.universe() {
            if rng.gen_bool(0.5) {
                crashed.insert(p);
            }
            for (i, f) in families.iter().enumerate() {
                let now = gs.family_faulty(*f, crashed);
                prop_assert!(!was_faulty[i] || now, "faultiness regressed");
                was_faulty[i] = now;
            }
        }
        // with everyone crashed, every cyclic family is faulty
        for f in &families {
            prop_assert!(gs.family_faulty(*f, gs.universe()));
        }
    }

    /// Algorithm 1 on random workloads: integrity + ordering + minimality
    /// always hold; termination whenever the run quiesces in budget.
    #[test]
    fn algorithm1_safe_on_random_workloads(
        topo_idx in 0usize..9,
        seed in any::<u64>(),
        burst in 1usize..4,
    ) {
        let (_, gs) = topology::suite().swap_remove(topo_idx);
        let mut rt = Runtime::new(
            &gs,
            FailurePattern::all_correct(gs.universe()),
            RuntimeConfig {
                scheduler: ActionScheduler::Random,
                seed,
                ..Default::default()
            },
        );
        for round in 0..burst {
            for (g, members) in gs.iter() {
                let srcs: Vec<ProcessId> = members.iter().collect();
                rt.multicast(srcs[round % srcs.len()], g, round as u64);
            }
        }
        let q = rt.run(3_000_000);
        let report = rt.report(q);
        prop_assert!(q, "must quiesce");
        spec::check_integrity(&report).map_err(|v| TestCaseError::fail(v.to_string()))?;
        spec::check_ordering(&report).map_err(|v| TestCaseError::fail(v.to_string()))?;
        spec::check_minimality(&report).map_err(|v| TestCaseError::fail(v.to_string()))?;
        spec::check_termination(&report).map_err(|v| TestCaseError::fail(v.to_string()))?;
    }

    /// Algorithm 1 under a random single crash on a random suite topology:
    /// safety always; liveness (quiescence + termination) as the paper
    /// guarantees with μ.
    #[test]
    fn algorithm1_correct_under_random_crashes(
        topo_idx in 0usize..9,
        seed in any::<u64>(),
        victim_pick in any::<u32>(),
        crash_at in 0u64..30,
    ) {
        let (_, gs) = topology::suite().swap_remove(topo_idx);
        let victim = ProcessId(victim_pick % gs.universe().len() as u32);
        let pattern = FailurePattern::from_crashes(gs.universe(), [(victim, Time(crash_at))]);
        let mut rt = Runtime::new(
            &gs,
            pattern.clone(),
            RuntimeConfig {
                scheduler: ActionScheduler::Random,
                seed,
                ..Default::default()
            },
        );
        for (g, members) in gs.iter() {
            if let Some(src) = (members & pattern.correct()).min() {
                rt.multicast(src, g, 0);
            }
        }
        let q = rt.run(3_000_000);
        let report = rt.report(q);
        prop_assert!(q, "must quiesce under μ");
        spec::check_all(&report, Variant::Standard)
            .map_err(|v| TestCaseError::fail(v.to_string()))?;
    }

    /// γ oracle validity on random systems, patterns and delays.
    #[test]
    fn gamma_oracle_valid_on_random_systems(
        gs in arb_system(),
        victim in 0u32..8,
        crash_at in 0u64..20,
        delay in 0u64..5,
    ) {
        let universe = gs.universe();
        let victim = ProcessId(victim % universe.len() as u32);
        let pattern = FailurePattern::from_crashes(universe, [(victim, Time(crash_at))]);
        let gamma = GammaOracle::new(&gs, pattern.clone(), delay);
        genuine_multicast::detectors::validate::validate_gamma(
            |p, t| gamma.families(p, t),
            &gs,
            &pattern,
            Time(crash_at + delay + 1),
            Time(crash_at + delay + 20),
        )
        .map_err(|v| TestCaseError::fail(v.to_string()))?;
    }

    /// The log object under random operation sequences keeps `<_L` a strict
    /// total order consistent with lock stability (cross-crate composition
    /// of gam-objects invariants at the workspace level).
    #[test]
    fn log_order_composes_with_runtime_data(ops in proptest::collection::vec((0u8..2, 0u64..8, 1u64..12), 1..40)) {
        use genuine_multicast::core::Datum;
        use genuine_multicast::core::MessageId;
        let mut log: Log<Datum> = Log::new();
        for (op, m, k) in ops {
            let d = Datum::Msg(MessageId(m));
            match op {
                0 => { log.append(d); }
                _ => if log.contains(&d) { log.bump_and_lock(&d, Pos(k)); },
            }
        }
        let in_order: Vec<Datum> = log.iter_in_order().cloned().collect();
        for i in 0..in_order.len() {
            for j in (i + 1)..in_order.len() {
                prop_assert!(log.before(&in_order[i], &in_order[j]));
                prop_assert!(!log.before(&in_order[j], &in_order[i]));
            }
        }
    }

    /// Same seed ⇒ identical trace hash, across the whole topology suite;
    /// different seeds diverge somewhere in the suite.
    #[test]
    fn runs_are_seed_deterministic_across_the_suite(
        topo_idx in 0usize..9,
        seed in any::<u64>(),
    ) {
        let (name, gs) = topology::suite().swap_remove(topo_idx);
        let scenario = Scenario::one_per_group(&gs, 1_000_000);
        let run = |seed: u64| {
            let mut source = RandomSource::new(seed);
            let report = scenario.run(&mut source);
            prop_assert!(report.quiescent, "{}: must quiesce", name);
            Ok(trace_hash(&report))
        };
        prop_assert_eq!(run(seed)?, run(seed)?, "{}: same seed, same trace", name);
        // a perturbed seed must change *some* schedule; on the 1-process
        // corner there is nothing to reorder, so only check n > 1
        if gs.universe().len() > 1 {
            prop_assert_ne!(run(seed)?, run(!seed)?, "{}: seeds must matter", name);
        }
    }

    /// Record → serialize → parse → replay reproduces the original trace
    /// exactly (the fixture pipeline of `tests/regressions.rs`).
    #[test]
    fn recorded_schedules_replay_identically(
        topo_idx in 0usize..9,
        seed in any::<u64>(),
    ) {
        let (name, gs) = topology::suite().swap_remove(topo_idx);
        let scenario = Scenario::one_per_group(&gs, 1_000_000);
        let mut source = RecordingSource::new(RandomSource::new(seed));
        let original = scenario.run(&mut source);
        let repro = Repro {
            scenario,
            schedule: source.into_log(),
            seed,
            property: None,
        };
        prop_assert_eq!(
            repro.trace_hash(),
            trace_hash(&original),
            "{}: replay diverged from the recording", name
        );
        let reparsed = Repro::parse(&repro.to_text())
            .map_err(TestCaseError::fail)?;
        prop_assert_eq!(
            reparsed.trace_hash(),
            trace_hash(&original),
            "{}: replay diverged after text round-trip", name
        );
    }
}
