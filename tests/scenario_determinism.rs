//! Determinism of the scenario generator, in the three dimensions the
//! corpus relies on:
//!
//! - **Threads**: the same `(family, seed)` regenerates byte-identical
//!   topology, crash plan, workload and descriptor text on every thread.
//! - **Engines**: exploring a generated scenario gives identical coverage
//!   and a byte-identical shrunk `Repro` whether the explorer is the
//!   restart-from-scratch odometer or the snapshotting DFS, at 1 or 2
//!   workers.
//! - **Parsing**: the descriptor parser is total — seeded random mutations
//!   of valid descriptors never panic, they produce either a descriptor or
//!   a typed [`ScnError`].

use genuine_multicast::explore::{
    explore_exhaustive, explore_exhaustive_dfs, explore_exhaustive_dfs_par, explore_exhaustive_par,
    Outcome, Scenario, DEFAULT_SHRINK_BUDGET,
};
use genuine_multicast::prelude::*;
use genuine_multicast::scenarios::{corpus, ScnDescriptor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn generation_is_identical_across_spawned_threads() {
    // Every corpus template at three seeds, regenerated on four threads at
    // once: descriptor text and the full generated scenario (topology,
    // crashes, submissions) must be byte-identical to the main thread's.
    let grid: Vec<ScnDescriptor> = corpus()
        .iter()
        .flat_map(|(_, t)| (0..3).map(|seed| t.with_seed(seed)))
        .collect();
    let reference: Vec<(String, String)> = grid
        .iter()
        .map(|d| (d.render(), format!("{:?}", d.generate())))
        .collect();

    let workers: Vec<_> = (0..4)
        .map(|_| {
            let grid = grid.clone();
            std::thread::spawn(move || {
                grid.iter()
                    .map(|d| (d.render(), format!("{:?}", d.generate())))
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    for (i, worker) in workers.into_iter().enumerate() {
        let got = worker.join().expect("worker thread");
        assert_eq!(got, reference, "thread {i} generated differently");
    }
}

#[test]
fn engines_and_thread_counts_agree_on_generated_scenarios() {
    // A generated scenario starved of budget violates termination on every
    // schedule: the counterexample the explorer reports — its `Repro` text
    // and replay digest — must be byte-identical across the odometer and
    // DFS engines at 1 and 2 workers. A well-budgeted sibling must give
    // identical clean coverage everywhere.
    let starved = ScnDescriptor::parse("gam-scn v1 family=two(3,1) seed=5 budget=12").unwrap();
    let scenario = Scenario::from_descriptor(&starved);
    let config = |threads| ExploreConfig {
        threads,
        shrink_budget: DEFAULT_SHRINK_BUDGET,
        dedup_capacity: 0,
        por: false,
    };

    let reference = explore_exhaustive(&scenario, 3, 10_000, DEFAULT_SHRINK_BUDGET);
    assert_eq!(reference.outcome, Outcome::ViolationFound);
    let reference = &reference.violations[0];
    assert_eq!(reference.violation.property, "termination");
    let runs: Vec<(&str, genuine_multicast::explore::ExploreStats)> = vec![
        (
            "dfs-seq",
            explore_exhaustive_dfs(&scenario, 3, 10_000, DEFAULT_SHRINK_BUDGET),
        ),
        (
            "odometer-1",
            explore_exhaustive_par(&scenario, 3, 10_000, &config(1)),
        ),
        (
            "odometer-2",
            explore_exhaustive_par(&scenario, 3, 10_000, &config(2)),
        ),
        (
            "dfs-1",
            explore_exhaustive_dfs_par(&scenario, 3, 10_000, &config(1)),
        ),
        (
            "dfs-2",
            explore_exhaustive_dfs_par(&scenario, 3, 10_000, &config(2)),
        ),
    ];
    for (name, stats) in &runs {
        assert_eq!(stats.outcome, Outcome::ViolationFound, "{name}");
        let cx = &stats.violations[0];
        assert_eq!(
            cx.repro.to_text(),
            reference.repro.to_text(),
            "{name}: repro text diverged"
        );
        assert_eq!(
            cx.repro.trace_hash(),
            reference.repro.trace_hash(),
            "{name}: replay digest diverged"
        );
    }

    let clean = Scenario::from_descriptor(&starved.with_budget(50_000));
    let reference = explore_exhaustive(&clean, 3, 10_000, DEFAULT_SHRINK_BUDGET);
    assert!(reference.clean());
    for (name, stats) in [
        (
            "dfs-seq",
            explore_exhaustive_dfs(&clean, 3, 10_000, DEFAULT_SHRINK_BUDGET),
        ),
        (
            "odometer-2",
            explore_exhaustive_par(&clean, 3, 10_000, &config(2)),
        ),
        (
            "dfs-2",
            explore_exhaustive_dfs_par(&clean, 3, 10_000, &config(2)),
        ),
    ] {
        assert!(stats.clean(), "{name}: {:?}", stats.violations);
        assert_eq!(stats.runs, reference.runs, "{name}: coverage diverged");
    }
}

/// Mutates `text` with `n` seeded random byte edits (replace, insert,
/// delete) drawn from a descriptor-plausible alphabet.
fn mutate(text: &str, rng: &mut StdRng, n: usize) -> String {
    const ALPHABET: &[u8] = b"gam-scn v1 family=seedcrashtrafficvariantbudget()0123456789,=# \n\t~";
    let mut bytes = text.as_bytes().to_vec();
    for _ in 0..n {
        let c = ALPHABET[rng.gen_range(0..ALPHABET.len())];
        match rng.gen_range(0..3u32) {
            0 if !bytes.is_empty() => {
                let i = rng.gen_range(0..bytes.len());
                bytes[i] = c;
            }
            1 => {
                let i = rng.gen_range(0..bytes.len() + 1);
                bytes.insert(i, c);
            }
            _ if !bytes.is_empty() => {
                bytes.remove(rng.gen_range(0..bytes.len()));
            }
            _ => {}
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// The parser is total under mutation: valid descriptors stay
    /// round-trippable, and any seeded mutilation of one either parses to
    /// a validated descriptor or returns a typed error — never panics.
    #[test]
    fn mutated_descriptors_never_panic_the_parser(
        template in 0usize..7,
        seed in any::<u64>(),
        edits in 1usize..12,
    ) {
        let corpus = corpus();
        let (_, d) = &corpus[template % corpus.len()];
        let text = d.with_seed(seed % 1000).render();
        prop_assert_eq!(ScnDescriptor::parse(&text).unwrap().render(), text.clone());

        let mut rng = StdRng::seed_from_u64(seed);
        let mutated = mutate(&text, &mut rng, edits);
        match ScnDescriptor::parse(&mutated) {
            // survived the mutation: still canonicalizes
            Ok(d) => prop_assert_eq!(ScnDescriptor::parse(&d.render()).unwrap(), d),
            // rejected: the error is typed and prints
            Err(e) => prop_assert!(!e.to_string().is_empty()),
        }
    }
}
