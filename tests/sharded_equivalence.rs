//! Thread-count invariance of the group-sharded sustained driver.
//!
//! The contract of [`gam_engine::run_sustained_par`] is the same one the
//! parallel explorer already honours (`tests/parallel_determinism.rs`):
//! parallelism changes wall-clock time and *nothing else*. Sharding the
//! consensus families by connected component of the group intersection
//! graph and re-merging the per-shard recordings must reproduce the
//! sequential `run_sustained` state **byte-for-byte** — the full
//! `fold_state` word stream, every per-process delivery sequence
//! (messages *and* timestamps), the spec verdict, and the quiescence
//! boolean — for every corpus topology, seed, batch width and worker
//! count. Crashy and strict templates ride along too: there the driver
//! must *fall back* to the sequential loop (sharding is only sound for
//! crash-free non-strict runs, where detector guards are time-invariant),
//! so equality is the fallback test.
//!
//! This is the determinism argument cited by the `crates/engine`
//! capability grant in `gam-lint.toml`.

use genuine_multicast::engine::{run_sustained_par, shard_specs};
use genuine_multicast::prelude::*;

/// Builds the descriptor's runtime with the whole traffic trace preloaded,
/// exactly as the sustained-load bench does.
fn runtime_for(d: &ScnDescriptor, batch_max: u32) -> Runtime {
    let generated = d.generate();
    let pattern = FailurePattern::from_crashes(generated.system.universe(), generated.crashes);
    let config = RuntimeConfig {
        variant: d.variant,
        batch_max,
        ..RuntimeConfig::default()
    };
    let mut rt = Runtime::new(&generated.system, pattern, config);
    for (src, g, payload) in generated.submissions {
        rt.multicast(src, g, payload);
    }
    rt
}

fn fold_vec(rt: &Runtime) -> Vec<u64> {
    let mut out = Vec::new();
    rt.fold_state(&mut |w| out.push(w));
    out
}

/// ≥20 descriptors (every corpus template × two seeds) × batch {1, 16} ×
/// threads {1, 2, 4}: the sharded run is byte-identical to the sequential
/// one in every cell.
#[test]
fn sharded_runs_are_byte_identical_across_the_corpus_grid() {
    let corpus = genuine_multicast::scenarios::corpus();
    let mut cells = 0u32;
    let mut descriptors = 0u32;
    for (name, template) in &corpus {
        for seed in [1u64, 2] {
            let d = template.with_seed(seed);
            descriptors += 1;
            for batch_max in [1u32, 16] {
                // One sequential reference per (descriptor, batch): the
                // parallel runs at every worker count must match it.
                let mut seq = runtime_for(&d, batch_max);
                let seq_quiesced = seq.run_sustained(seq.system().universe(), d.budget);
                assert!(seq_quiesced, "{name} seed {seed}: corpus runs quiesce");
                let seq_fold = fold_vec(&seq);
                let seq_report = seq.report(true);
                let seq_verdict = spec::check_all(&seq_report, d.variant).is_ok();

                for threads in [1usize, 2, 4] {
                    let mut par = runtime_for(&d, batch_max);
                    let set = par.system().universe();
                    let par_quiesced = run_sustained_par(&mut par, set, d.budget, threads);
                    let tag = format!("{name} seed {seed} batch {batch_max} threads {threads}");
                    assert_eq!(par_quiesced, seq_quiesced, "{tag}: outcome");
                    assert_eq!(fold_vec(&par), seq_fold, "{tag}: fold_state stream");
                    let par_report = par.report(true);
                    assert_eq!(
                        par_report.delivered, seq_report.delivered,
                        "{tag}: per-process delivery sequences"
                    );
                    assert_eq!(
                        spec::check_all(&par_report, d.variant).is_ok(),
                        seq_verdict,
                        "{tag}: spec verdict"
                    );
                    cells += 1;
                }
            }
        }
    }
    assert!(descriptors >= 20, "grid spans at least 20 descriptors");
    assert!(cells >= 120, "grid spans at least 120 cells");
}

/// Re-running the sharded driver on the same input is schedule-
/// deterministic: five repetitions at four workers produce one fold
/// stream, even though OS scheduling interleaves the workers differently
/// every time. (The merge orders commits by visit slot, not by arrival.)
#[test]
fn repeated_sharded_runs_are_deterministic() {
    let d = ScnDescriptor::parse(
        "gam-scn v1 family=multichain(8,4,4) seed=11 crash=none \
         traffic=zipf(1200,512) variant=standard budget=2000000",
    )
    .expect("valid descriptor");
    let mut reference: Option<Vec<u64>> = None;
    for rep in 0..5 {
        let mut rt = runtime_for(&d, 16);
        let set = rt.system().universe();
        assert!(run_sustained_par(&mut rt, set, d.budget, 4), "rep {rep}");
        let fold = fold_vec(&rt);
        match &reference {
            None => reference = Some(fold),
            Some(first) => assert_eq!(&fold, first, "rep {rep}: fold diverged"),
        }
    }
}

/// The many-shard workload really is sharded — and on hosts with enough
/// cores, really is faster. The timing half only runs where the speedup
/// can physically exist ([`std::thread::available_parallelism`] ≥ 4): a
/// single-core container honestly skips it, as the bench's speedup gate
/// does.
#[test]
fn sharding_shape_and_core_gated_speedup() {
    let d = ScnDescriptor::parse(
        "gam-scn v1 family=multichain(8,4,4) seed=11 crash=none \
         traffic=zipf(1200,512) variant=standard budget=2000000",
    )
    .expect("valid descriptor");
    let rt = runtime_for(&d, 16);
    let specs = shard_specs(&rt, rt.system().universe());
    assert_eq!(specs.len(), 8, "eight chain copies, eight shards");
    for s in &specs {
        assert_eq!(s.groups.len(), 4, "each shard is one 4-group chain");
        assert!(!s.pids.is_empty(), "every shard has live processes");
    }

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores < 4 {
        return;
    }
    let time = |threads: usize| {
        (0..3)
            .map(|_| {
                let mut rt = runtime_for(&d, 16);
                let set = rt.system().universe();
                let start = std::time::Instant::now();
                assert!(run_sustained_par(&mut rt, set, d.budget, threads));
                start.elapsed()
            })
            .min()
            .expect("three samples")
    };
    let seq = time(1);
    let par = time(4);
    assert!(
        par < seq,
        "4 workers on 8 shards beat 1 worker ({par:?} vs {seq:?})"
    );
}
