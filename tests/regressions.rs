//! Replays every checked-in repro fixture and asserts its verdict.
//!
//! Fixtures live in `tests/fixtures/*.repro` (the `gam-repro v1` text
//! format). Clean fixtures (property `-`) must pass `spec::check_all`;
//! counterexample fixtures must still violate their recorded property.
//! Either way the replay must be deterministic: two replays of the same
//! fixture hash identically.
//!
//! To add a regression: paste the `to_text()` output of a shrunk
//! [`Repro`] (the explorer prints it on every violation) into a new
//! `.repro` file here. Clean fixtures are regenerated with
//! `cargo run -p gam-explore --example gen_fixtures`.

use genuine_multicast::explore::Repro;

fn fixtures() -> Vec<(String, String)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures");
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir).expect("tests/fixtures exists") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().is_some_and(|e| e == "repro") {
            let name = path.file_stem().unwrap().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&path).expect("readable fixture");
            out.push((name, text));
        }
    }
    out.sort();
    out
}

#[test]
fn all_fixtures_replay_to_their_recorded_verdict() {
    let fixtures = fixtures();
    assert!(!fixtures.is_empty(), "no fixtures checked in");
    for (name, text) in &fixtures {
        let repro = Repro::parse(text).unwrap_or_else(|e| panic!("{name}: {e}"));
        repro.verify().unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn all_fixtures_replay_deterministically() {
    for (name, text) in &fixtures() {
        let repro = Repro::parse(text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let (h1, h2) = (repro.trace_hash(), repro.trace_hash());
        assert_eq!(h1, h2, "{name}: replay is not deterministic");
    }
}

#[test]
fn fixture_serialization_is_canonical() {
    for (name, text) in &fixtures() {
        let repro = Repro::parse(text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let reparsed = Repro::parse(&repro.to_text()).expect("round-trips");
        assert_eq!(
            reparsed.to_text(),
            repro.to_text(),
            "{name}: serialization is not canonical"
        );
        assert_eq!(reparsed.schedule, repro.schedule, "{name}");
    }
}
