//! Replays every checked-in repro fixture and asserts its verdict.
//!
//! Fixtures live in `tests/fixtures/*.repro` (the `gam-repro v1` text
//! format). Clean fixtures (property `-`) must pass `spec::check_all`;
//! counterexample fixtures must still violate their recorded property.
//! Either way the replay must be deterministic: two replays of the same
//! fixture hash identically.
//!
//! Each `.repro` is paired with a `.scn` descriptor (`gam-scn v1`) naming
//! the scenario family and seed it came from — the corpus hunt
//! (`cargo run -p gam-bench --bin scenario_hunt`) writes both halves on
//! every violation. The pairing tests below keep the two in sync: the
//! descriptor must regenerate the very topology the repro replays.
//!
//! To add a regression: paste the `to_text()` output of a shrunk
//! [`Repro`] (the explorer prints it on every violation) into a new
//! `.repro` file here, alongside its `.scn` line. Clean fixtures are
//! regenerated with `cargo run -p gam-explore --example gen_fixtures`.

use genuine_multicast::explore::{Repro, Scenario};
use genuine_multicast::scenarios::{ScnDescriptor, TrafficPlan};

fn fixture_texts(extension: &str) -> Vec<(String, String)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures");
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir).expect("tests/fixtures exists") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().is_some_and(|e| e == extension) {
            let name = path.file_stem().unwrap().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&path).expect("readable fixture");
            out.push((name, text));
        }
    }
    out.sort();
    out
}

fn fixtures() -> Vec<(String, String)> {
    fixture_texts("repro")
}

#[test]
fn all_fixtures_replay_to_their_recorded_verdict() {
    let fixtures = fixtures();
    assert!(!fixtures.is_empty(), "no fixtures checked in");
    for (name, text) in &fixtures {
        let repro = Repro::parse(text).unwrap_or_else(|e| panic!("{name}: {e}"));
        repro.verify().unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn all_fixtures_replay_deterministically() {
    for (name, text) in &fixtures() {
        let repro = Repro::parse(text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let (h1, h2) = (repro.trace_hash(), repro.trace_hash());
        assert_eq!(h1, h2, "{name}: replay is not deterministic");
    }
}

#[test]
fn fixture_serialization_is_canonical() {
    for (name, text) in &fixtures() {
        let repro = Repro::parse(text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let reparsed = Repro::parse(&repro.to_text()).expect("round-trips");
        assert_eq!(
            reparsed.to_text(),
            repro.to_text(),
            "{name}: serialization is not canonical"
        );
        assert_eq!(reparsed.schedule, repro.schedule, "{name}");
    }
}

#[test]
fn every_scn_fixture_parses_and_renders_canonically() {
    let scns = fixture_texts("scn");
    assert!(!scns.is_empty(), "no .scn fixtures checked in");
    for (name, text) in &scns {
        let descriptor = ScnDescriptor::parse(text).unwrap_or_else(|e| panic!("{name}: {e}"));
        // the descriptor line in the file is the canonical rendering
        let line = text
            .lines()
            .map(str::trim)
            .find(|l| !l.is_empty() && !l.starts_with('#'))
            .unwrap_or_else(|| panic!("{name}: no descriptor line"));
        assert_eq!(
            descriptor.render(),
            line,
            "{name}: pinned in canonical form"
        );
        // regeneration is deterministic
        assert_eq!(descriptor.generate(), descriptor.generate(), "{name}");
    }
}

#[test]
fn scn_descriptors_regenerate_their_paired_repro_scenarios() {
    // Every .repro with a sibling .scn must be reachable from it: same
    // topology, same variant, and (for the shrinker-untouched `one`
    // trace) a submission list the repro's is a subset of. This is what
    // makes a checked-in pair self-describing — the descriptor alone
    // regenerates the scenario the repro's schedule runs against.
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures");
    let mut paired = 0usize;
    for (name, text) in &fixtures() {
        let scn_path = format!("{dir}/{name}.scn");
        let Ok(scn_text) = std::fs::read_to_string(&scn_path) else {
            continue;
        };
        paired += 1;
        let repro = Repro::parse(text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let descriptor =
            ScnDescriptor::parse(&scn_text).unwrap_or_else(|e| panic!("{name}.scn: {e}"));
        let scenario = Scenario::from_descriptor(&descriptor);
        assert_eq!(
            scenario.system, repro.scenario.system,
            "{name}: descriptor regenerates the repro's topology"
        );
        assert_eq!(
            scenario.variant, repro.scenario.variant,
            "{name}: descriptor and repro agree on the variant"
        );
        assert_eq!(
            scenario.max_steps, repro.scenario.max_steps,
            "{name}: descriptor and repro agree on the budget"
        );
        // The shrinker may drop submissions from a counterexample, so the
        // repro's list is a (possibly strict) subset; with the unshrunk
        // `one` trace they are identical.
        for sub in &repro.scenario.submissions {
            assert!(
                scenario.submissions.contains(sub),
                "{name}: repro submission {sub:?} comes from the descriptor workload"
            );
        }
        if descriptor.traffic == TrafficPlan::One && repro.property.is_none() {
            assert_eq!(
                scenario.submissions, repro.scenario.submissions,
                "{name}: clean one-per-group pair has identical workloads"
            );
        }
    }
    assert!(paired >= 3, "the three seed fixtures are paired");
}
