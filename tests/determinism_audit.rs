//! The determinism audit: the property gam-lint exists to protect,
//! asserted end-to-end.
//!
//! Every result in this repository — visited-set pruning, parallel-merge
//! identity, replayable counterexamples — quantifies over executors that
//! are *deterministic functions of the schedule*. This test pins that
//! property directly: one fixed schedule, recorded once per substrate over
//! the fig. 1 topology, replayed twice on fresh executors, must land on
//! identical `state_digest`s, identical `state_fingerprint`s, and (through
//! the `gam-repro v1` text format) byte-identical `Repro` serializations.
//!
//! If a `HashMap` iteration order or a wall-clock read ever leaks back into
//! a deterministic crate (the regressions gam-lint D001/D002 catch
//! statically), this test is the dynamic tripwire that fails.

use gam_kernel::schedule::{ChoiceStep, RandomSource};
use gam_kernel::RunOutcome;
use genuine_multicast::engine::{self, Executor};
use genuine_multicast::prelude::*;

const MAX_STEPS: u64 = 2_000_000;
const SEED: u64 = 0xDA17; // arbitrary fixed provenance seed

/// Records one schedule on `exec` (driven by a seeded source), then replays
/// it twice on executors produced by `fresh`, returning the recorded
/// schedule and the `(digest, fingerprint)` of the recording and of each
/// replay.
fn record_and_replay_twice<E: Executor>(
    mut exec: E,
    fresh: impl Fn() -> E,
) -> (Vec<ChoiceStep>, [(u64, u64); 3]) {
    let (outcome, schedule) = engine::run_recorded(&mut exec, RandomSource::new(SEED), MAX_STEPS);
    assert_eq!(
        outcome,
        RunOutcome::Quiescent,
        "scenario must quiesce in budget"
    );
    let recorded = (exec.state_digest(), exec.state_fingerprint());

    let mut replays = [recorded, recorded, recorded];
    for slot in replays.iter_mut().skip(1) {
        let mut again = fresh();
        let outcome = engine::replay(&mut again, &schedule, MAX_STEPS);
        assert_eq!(outcome, RunOutcome::Quiescent, "replay must quiesce too");
        *slot = (again.state_digest(), again.state_fingerprint());
    }
    (schedule, replays)
}

fn audit_scenario() -> Scenario {
    Scenario::one_per_group(&topology::fig1(), MAX_STEPS)
}

#[test]
fn level_a_runtime_is_a_function_of_the_schedule() {
    let scenario = audit_scenario();
    let (_, replays) =
        record_and_replay_twice(scenario.runtime_executor(), || scenario.runtime_executor());
    assert_eq!(
        replays[0], replays[1],
        "replay 1 diverged from the recording"
    );
    assert_eq!(replays[1], replays[2], "replay 2 diverged from replay 1");
}

#[test]
fn level_b_kernel_is_a_function_of_the_schedule() {
    let scenario = audit_scenario();
    let (_, replays) =
        record_and_replay_twice(scenario.kernel_executor(), || scenario.kernel_executor());
    assert_eq!(
        replays[0], replays[1],
        "replay 1 diverged from the recording"
    );
    assert_eq!(replays[1], replays[2], "replay 2 diverged from replay 1");
}

#[test]
fn repro_serialization_is_byte_identical_across_replays() {
    let scenario = audit_scenario();
    let mut exec = scenario.runtime_executor();
    let (outcome, schedule) = engine::run_recorded(&mut exec, RandomSource::new(SEED), MAX_STEPS);
    assert_eq!(outcome, RunOutcome::Quiescent);

    let repro = Repro {
        scenario: scenario.clone(),
        schedule,
        seed: SEED,
        property: None,
    };
    // The recorded schedule must replay clean, deterministically.
    let h1 = repro.trace_hash();
    let h2 = repro.trace_hash();
    assert_eq!(h1, h2, "trace hash must not depend on the replay instance");
    repro.verify().expect("fair fig. 1 run satisfies the spec");

    // And its gam-repro v1 text must round-trip byte-for-byte.
    let text = repro.to_text();
    let parsed = Repro::parse(&text).expect("self-produced text parses");
    assert_eq!(
        parsed.to_text(),
        text,
        "gam-repro v1 round-trip changed bytes"
    );
    assert_eq!(parsed.trace_hash(), h1, "parsed repro replays differently");
}
