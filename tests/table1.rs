//! Table 1 of the paper, as executable assertions.
//!
//! | Genuineness | Order    | Weakest failure detector                         |
//! |-------------|----------|--------------------------------------------------|
//! | ×           | Global   | `Ω ∧ Σ`             (atomic broadcast suffices)  |
//! | ✓           | —        | `∉ 𝒰₂`              (Guerraoui–Schiper)          |
//! | ✓           | —        | `≤ 𝒫`               (Schiper–Pedone)             |
//! | ✓           | Global   | `μ`                 (§4, §5)                     |
//! | ✓           | Strict   | `μ ∧ (∧ 1^{g∩h})`   (§6.1)                       |
//! | ✓           | Pairwise | `(∧ Σ_{g∩h}) ∧ (∧ Ω_g)`  (§7)                    |
//! | ✓✓          | Global   | `ℱ=∅`: `μ ∧ (∧ Ω_{g∩h})`  (§6.2)                 |
//!
//! Each test below exercises one row: the stated detector suffices
//! (solvable + all properties hold), and where the paper proves a
//! separation we exhibit the distinguishing behaviour.

use genuine_multicast::core::baseline::BroadcastBased;
use genuine_multicast::core::variants::{check_group_parallelism, check_group_parallelism_staged};
use genuine_multicast::prelude::*;

fn one_per_group(gs: &GroupSystem, pattern: FailurePattern, config: RuntimeConfig) -> RunReport {
    let mut rt = Runtime::new(gs, pattern.clone(), config);
    for (g, members) in gs.iter() {
        // choose a correct source when one exists (a faulty one may crash
        // between submissions; termination then doesn't require delivery)
        let live = members & pattern.correct();
        if let Some(src) = live.min() {
            rt.multicast(src, g, 0);
        }
    }
    let q = rt.run(2_000_000);
    rt.report(q)
}

/// Row 1 — non-genuine multicast over atomic broadcast: global order with
/// only `Ω ∧ Σ`, but minimality fails.
#[test]
fn row1_non_genuine_broadcast_orders_globally_but_is_not_minimal() {
    let gs = topology::disjoint(3, 2);
    let mut bb = BroadcastBased::new(&gs, FailurePattern::all_correct(gs.universe()));
    bb.multicast(ProcessId(0), GroupId(0), 0);
    assert!(bb.run(100_000));
    let r = bb.report(true);
    spec::check_ordering(&r).unwrap();
    spec::check_termination(&r).unwrap();
    assert_eq!(
        spec::check_minimality(&r).unwrap_err().property,
        "minimality"
    );
}

/// Row 2 — the Guerraoui–Schiper impossibility corner: `Σ_{g∩h}` with
/// `g∩h = {p,q}` is not 2-unreliable. We exhibit the distinguishing
/// histories: with `q` faulty, `Σ_{p,q}` eventually outputs `{p}` — a value
/// a 2-unreliable detector would also have to allow with *both* correct,
/// violating intersection against the symmetric `{q}` history.
#[test]
fn row2_sigma_of_two_processes_is_not_2_unreliable() {
    use gam_detectors::{SigmaMode, SigmaOracle};
    let universe = ProcessSet::first_n(2);
    let scope = universe;
    // run A: q (=p1) faulty → Σ stabilises to {p0}
    let fa = FailurePattern::from_crashes(universe, [(ProcessId(1), Time(1))]);
    let sa = SigmaOracle::new(scope, fa, SigmaMode::Alive);
    assert_eq!(
        sa.quorum(ProcessId(0), Time(10)),
        Some(ProcessSet::singleton(ProcessId(0)))
    );
    // run B: p (=p0) faulty → Σ stabilises to {p1}
    let fb = FailurePattern::from_crashes(universe, [(ProcessId(0), Time(1))]);
    let sb = SigmaOracle::new(scope, fb, SigmaMode::Alive);
    assert_eq!(
        sb.quorum(ProcessId(1), Time(10)),
        Some(ProcessSet::singleton(ProcessId(1)))
    );
    // the two stabilised outputs are disjoint — a detector unable to
    // distinguish the runs (as any 𝒰₂ member over W={p,q}) would have to
    // emit both in a run where p and q are both correct, violating the
    // intersection property of Σ.
    assert!(!ProcessSet::singleton(ProcessId(0)).intersects(ProcessSet::singleton(ProcessId(1))));
}

/// Row 3 — the perfect detector is (more than) sufficient: `𝒫` implements
/// every component of `μ` (here: its suspected-set drives `Σ`, `Ω`, `γ`
/// outputs that pass the class validators).
#[test]
fn row3_perfect_detector_implements_mu_components() {
    use gam_detectors::validate::{validate_gamma, validate_omega, validate_sigma};
    use gam_detectors::PerfectOracle;
    let gs = topology::fig1();
    let pattern = FailurePattern::from_crashes(gs.universe(), [(ProcessId(1), Time(5))]);
    let perfect = PerfectOracle::new(pattern.clone(), 0);
    let universe = gs.universe();
    // Σ from 𝒫: quorum = not-suspected processes.
    validate_sigma(
        |p, t| Some(universe - perfect.suspected(p, t)),
        &pattern,
        universe,
        Time(10),
        Time(40),
    )
    .unwrap();
    // Ω from 𝒫: leader = min not-suspected.
    validate_omega(
        |p, t| (universe - perfect.suspected(p, t)).min(),
        &pattern,
        universe,
        Time(10),
        Time(40),
    )
    .unwrap();
    // γ from 𝒫: output families not faulty under the suspected set.
    validate_gamma(
        |p, t| {
            gs.families_of_process(p)
                .into_iter()
                .filter(|f| !gs.family_faulty(*f, perfect.suspected(p, t)))
                .collect()
        },
        &gs,
        &pattern,
        Time(10),
        Time(40),
    )
    .unwrap();
}

/// Row 4 — the headline: `μ` solves genuine atomic multicast on every
/// topology of the suite, under crashes of intersections.
#[test]
fn row4_mu_solves_genuine_atomic_multicast() {
    for (name, gs) in topology::suite() {
        // crash one intersection process where one exists
        let victim = gs.intersections().first().and_then(|x| (*x).min());
        let pattern = match victim {
            Some(v) => FailurePattern::from_crashes(gs.universe(), [(v, Time(3))]),
            None => FailurePattern::all_correct(gs.universe()),
        };
        let report = one_per_group(&gs, pattern, RuntimeConfig::default());
        assert!(report.quiescent, "{name}");
        spec::check_all(&report, Variant::Standard).unwrap_or_else(|v| panic!("{name}: {v}"));
    }
}

/// Row 5 — strict order needs the indicators: with them the strict variant
/// terminates under an intersection crash and satisfies strict ordering.
#[test]
fn row5_strict_variant_with_indicators() {
    let gs = topology::two_overlapping(3, 1);
    let pattern = FailurePattern::from_crashes(gs.universe(), [(ProcessId(2), Time(2))]);
    let report = one_per_group(
        &gs,
        pattern,
        RuntimeConfig {
            variant: Variant::Strict,
            ..Default::default()
        },
    );
    assert!(report.quiescent);
    spec::check_all(&report, Variant::Strict).unwrap();
}

/// Row 6 — pairwise ordering without `γ`: delivers on cyclic topologies and
/// guarantees the pairwise property.
#[test]
fn row6_pairwise_without_gamma() {
    let gs = topology::ring(3, 2);
    for seed in 0..5u64 {
        let report = one_per_group(
            &gs,
            FailurePattern::all_correct(gs.universe()),
            RuntimeConfig {
                variant: Variant::Pairwise,
                scheduler: ActionScheduler::Random,
                seed,
                ..Default::default()
            },
        );
        assert!(report.quiescent, "seed {seed}");
        spec::check_integrity(&report).unwrap();
        spec::check_termination(&report).unwrap();
        spec::check_pairwise_ordering(&report).unwrap();
    }
}

/// Row 6b — the §7 separation is real: some random schedules of the
/// pairwise variant produce a *global* delivery cycle across the three ring
/// groups (while pairwise ordering still holds), and the standard variant
/// with `γ` never does.
#[test]
fn row6b_pairwise_exhibits_global_cycles_standard_does_not() {
    let gs = topology::ring(3, 2);
    let run = |variant: Variant, seed: u64| {
        let mut rt = Runtime::new(
            &gs,
            FailurePattern::all_correct(gs.universe()),
            RuntimeConfig {
                variant,
                scheduler: ActionScheduler::Random,
                seed,
                ..Default::default()
            },
        );
        for g in 0..3u32 {
            let src = gs.members(GroupId(g)).min().unwrap();
            rt.multicast(src, GroupId(g), g as u64);
        }
        let q = rt.run(1_000_000);
        assert!(q);
        rt.report(true)
    };
    let mut pairwise_cycles = 0;
    for seed in 0..60u64 {
        let report = run(Variant::Pairwise, seed);
        spec::check_pairwise_ordering(&report).unwrap();
        if spec::check_ordering(&report).is_err() {
            pairwise_cycles += 1;
        }
        // the standard variant never violates global ordering
        let report = run(Variant::Standard, seed);
        spec::check_ordering(&report).unwrap_or_else(|v| panic!("seed {seed}: {v}"));
    }
    assert!(
        pairwise_cycles > 0,
        "expected some global cycles under the pairwise weakening"
    );
}

/// Row 7 — strong genuineness: attained by Algorithm 1 when `ℱ = ∅`, and
/// separated from plain `μ` when a correct cyclic family exists (the
/// contended isolation blocks).
#[test]
fn row7_strong_genuineness_split_on_cyclic_families() {
    // ℱ = ∅: every group of an acyclic topology delivers in isolation.
    let acyclic = topology::chain(3, 3);
    for (g, _) in acyclic.iter() {
        check_group_parallelism(
            &acyclic,
            FailurePattern::all_correct(acyclic.universe()),
            g,
            RuntimeConfig::default(),
            1_000_000,
        )
        .unwrap();
    }
    // ℱ ≠ ∅: a contended isolated group blocks.
    let ring = topology::ring(3, 2);
    let mut rt = Runtime::new(
        &ring,
        FailurePattern::all_correct(ring.universe()),
        RuntimeConfig::default(),
    );
    rt.multicast(ProcessId(1), GroupId(1), 0);
    rt.run_only(ProcessSet::singleton(ProcessId(1)), 100_000);
    let err = check_group_parallelism_staged(&mut rt, GroupId(0), 200_000).unwrap_err();
    assert_eq!(err.property, "group-parallelism");
}

/// The solvability side of the boundary, over *generated* topologies: every
/// acyclic corpus family (`ℱ = ∅`) explores clean under the fair driver at
/// bounded depth, for a grid of generation seeds.
#[test]
fn generated_acyclic_descriptors_explore_clean() {
    use genuine_multicast::explore::{explore_exhaustive, DEFAULT_SHRINK_BUDGET};
    use genuine_multicast::scenarios::corpus;

    let mut checked = 0;
    for (name, template) in corpus() {
        if template.family.known_acyclic() != Some(true) {
            continue;
        }
        for seed in 0..3u64 {
            let descriptor = template.with_seed(seed);
            let scenario = Scenario::from_descriptor(&descriptor);
            let stats = explore_exhaustive(&scenario, 2, 300, DEFAULT_SHRINK_BUDGET);
            assert!(
                stats.clean(),
                "{name} seed {seed}: {:?}",
                stats.violations.first().map(|c| &c.violation)
            );
            checked += 1;
        }
    }
    assert!(checked >= 6, "at least two acyclic families in the grid");
}

/// Row 6b over *generated* topologies: the cyclic counterexample families
/// (`ring`, `randcyclic`) reproduce the §7 separation from their
/// descriptors — under the pairwise variation some recorded schedules
/// deliver a global cycle, the hunt shrinks it to a verifying repro, and
/// the same descriptors under the standard variant (with `γ`) never
/// violate global ordering.
#[test]
fn generated_cyclic_descriptors_reproduce_the_boundary_violation() {
    use genuine_multicast::explore::{hunt, HuntConfig};
    use genuine_multicast::scenarios::{corpus, Family};

    let mut cyclic: Vec<_> = corpus()
        .into_iter()
        .filter(|(_, t)| matches!(t.family, Family::Ring { .. } | Family::RandCyclic { .. }))
        .map(|(_, t)| t)
        .collect();
    assert!(cyclic.len() >= 2);
    for d in &mut cyclic {
        d.variant = Variant::Pairwise;
    }
    let cfg = HuntConfig {
        swarm_seeds: 0..60,
        run_cap: 0, // swarm-only: the boundary re-check is the point
        ordering_boundary: true,
        ..Default::default()
    };
    let report = hunt(&cyclic, &cfg);
    for (outcome, d) in report.outcomes.iter().zip(&cyclic) {
        let finding = outcome
            .findings
            .first()
            .unwrap_or_else(|| panic!("{}: no global cycle in 60 seeds", d.family));
        // pairwise's own checks held — global ordering is what failed…
        assert_eq!(finding.property, "ordering", "{}", d.family);
        // …and the shrunk pair replays.
        assert!(finding.verified, "{}: shrunk repro re-verifies", d.family);
        assert_eq!(finding.descriptor, d.render());
    }

    // The contrast: the same descriptors under the standard variant hunt
    // clean — `γ` restores global order on cyclic families.
    for d in &mut cyclic {
        d.variant = Variant::Standard;
    }
    let report = hunt(&cyclic, &cfg);
    assert_eq!(
        report.findings().count(),
        0,
        "standard variant must not violate global ordering"
    );
}
