//! Integration of the message-passing substrate (§4.3 "Implementing the
//! shared objects"): ABD registers from `Σ` and `Ω∧Σ` consensus, driven
//! through the kernel simulator, including a consensus-backed shared log.

use gam_kernel::{RunOutcome, Scheduler as KScheduler};
use genuine_multicast::detectors::{OmegaMode, OmegaOracle, SigmaMode, SigmaOracle};
use genuine_multicast::objects::{
    AbdEvent, AbdProcess, OmegaSigmaHistory, PaxosProcess, RegisterId,
};
use genuine_multicast::prelude::*;

#[test]
fn abd_register_linearizes_under_random_schedules_and_crashes() {
    let n = 5;
    let scope = ProcessSet::first_n(n);
    for seed in 0..5u64 {
        let pattern = FailurePattern::from_crashes(scope, [(ProcessId(4), Time(20))]);
        let sigma = SigmaOracle::new(scope, pattern.clone(), SigmaMode::Alive);
        let autos: Vec<AbdProcess<u64>> = (0..n)
            .map(|i| AbdProcess::new(ProcessId(i as u32), scope))
            .collect();
        let mut sim = Simulator::new(autos, pattern, sigma).with_seed(seed);
        const R: RegisterId = RegisterId(7);
        // sequential writes then concurrent reads
        sim.automaton_mut(ProcessId(0)).write(R, 1);
        assert_eq!(
            sim.run(KScheduler::Random { null_prob: 0.2 }, 500_000),
            RunOutcome::Quiescent
        );
        sim.automaton_mut(ProcessId(1)).write(R, 2);
        assert_eq!(
            sim.run(KScheduler::Random { null_prob: 0.2 }, 500_000),
            RunOutcome::Quiescent
        );
        for i in 0..3 {
            sim.automaton_mut(ProcessId(i)).read(R);
        }
        sim.run(KScheduler::Random { null_prob: 0.2 }, 500_000);
        for i in 0..3 {
            let p = ProcessId(i);
            assert!(
                sim.trace().events_of(p).any(|e| e.event
                    == AbdEvent::ReadDone {
                        reg: R,
                        value: Some(2)
                    }),
                "seed {seed}: {p} must read the last completed write"
            );
        }
    }
}

#[test]
fn consensus_sequence_builds_a_replicated_log() {
    // The universal-construction pattern: a shared log as a sequence of
    // consensus instances; each process proposes its command for successive
    // slots and applies decisions in order. All logs converge.
    let n = 3;
    let scope = ProcessSet::first_n(n);
    let pattern = FailurePattern::all_correct(scope);
    let hist = OmegaSigmaHistory::new(
        OmegaOracle::new(scope, pattern.clone(), OmegaMode::MinAlive),
        SigmaOracle::new(scope, pattern.clone(), SigmaMode::Alive),
    );
    let autos: Vec<PaxosProcess<u64>> = (0..n)
        .map(|i| PaxosProcess::new(ProcessId(i as u32), scope))
        .collect();
    let mut sim = Simulator::new(autos, pattern, hist);
    // every process wants to append its own command; slots 0..3
    for slot in 0..3u64 {
        for i in 0..n {
            // command encodes (slot, proposer)
            sim.automaton_mut(ProcessId(i as u32))
                .propose(slot, slot * 10 + i as u64);
        }
    }
    assert_eq!(
        sim.run(KScheduler::RoundRobin, 2_000_000),
        RunOutcome::Quiescent
    );
    // reconstruct each replica's log from its local decisions
    let log_of = |p: ProcessId| -> Vec<u64> {
        (0..3u64)
            .map(|slot| *sim.automaton(p).decision(slot).expect("decided"))
            .collect()
    };
    let l0 = log_of(ProcessId(0));
    for i in 1..n {
        assert_eq!(log_of(ProcessId(i as u32)), l0, "replica logs agree");
    }
    // validity: each slot's decision is one of the proposals for that slot
    for (slot, v) in l0.iter().enumerate() {
        assert_eq!(*v / 10, slot as u64);
        assert!(*v % 10 < n as u64);
    }
}

#[test]
fn paxos_liveness_with_adversarial_omega_and_minority_crash() {
    let n = 5;
    let scope = ProcessSet::first_n(n);
    let pattern =
        FailurePattern::from_crashes(scope, [(ProcessId(0), Time(50)), (ProcessId(1), Time(80))]);
    let hist = OmegaSigmaHistory::new(
        OmegaOracle::new(
            scope,
            pattern.clone(),
            OmegaMode::RotateUntil {
                stabilize_at: Time(200),
                period: 9,
            },
        ),
        SigmaOracle::new(scope, pattern.clone(), SigmaMode::Alive),
    );
    let autos: Vec<PaxosProcess<u64>> = (0..n)
        .map(|i| PaxosProcess::new(ProcessId(i as u32), scope))
        .collect();
    let mut sim = Simulator::new(autos, pattern.clone(), hist).with_seed(3);
    for i in 0..n {
        sim.automaton_mut(ProcessId(i as u32)).propose(0, i as u64);
    }
    assert_eq!(
        sim.run(KScheduler::Random { null_prob: 0.3 }, 3_000_000),
        RunOutcome::Quiescent
    );
    let decided: Vec<u64> = (scope & pattern.correct())
        .iter()
        .map(|p| {
            *sim.automaton(p)
                .decision(0)
                .expect("correct processes decide")
        })
        .collect();
    assert!(decided.windows(2).all(|w| w[0] == w[1]), "agreement");
}
