//! Fault injection: crashing a group intersection mid-run.
//!
//! Reproduces the §3 walkthrough on Figure 1: `p2 = g1 ∩ g2` crashes while
//! traffic is in flight. The cyclicity detector `γ` eventually stops
//! reporting the families that route through `g1 ∩ g2`; commitment and
//! stabilisation unblock, and the surviving members of every group still
//! deliver — something Skeen's classical algorithm (also run here) cannot
//! do: it blocks forever.
//!
//! Run with: `cargo run --example fault_injection`

use gam_kernel::NoDetector;
use genuine_multicast::core::baseline::SkeenProcess;
use genuine_multicast::core::MessageId as CoreMessageId;
use genuine_multicast::prelude::*;

fn main() {
    let gs = topology::fig1();
    let crash_at = Time(8);
    let pattern = FailurePattern::from_crashes(gs.universe(), [(ProcessId(1), crash_at)]);

    // --- γ's view, before and after -------------------------------------
    let gamma = GammaOracle::new(&gs, pattern.clone(), 0);
    println!(
        "γ at p0 before the crash: {:?}",
        gamma.families(ProcessId(0), Time(0))
    );
    println!(
        "γ at p0 after the crash:  {:?}",
        gamma.families(ProcessId(0), crash_at)
    );

    // --- Algorithm 1 under the crash ------------------------------------
    let mut rt = Runtime::new(&gs, pattern.clone(), RuntimeConfig::default());
    let mut ids = Vec::new();
    for (g, members) in gs.iter() {
        // choose a source that stays alive (p2 = index 1 is the victim)
        let src = (members - ProcessSet::singleton(ProcessId(1)))
            .min()
            .expect("some other member");
        ids.push(rt.multicast(src, g, 0));
    }
    let report = rt.run_to_quiescence(1_000_000);
    spec::check_integrity(&report).unwrap();
    spec::check_ordering(&report).unwrap();
    spec::check_termination(&report).unwrap();
    for (g, members) in gs.iter() {
        let survivors = members & pattern.correct();
        for p in survivors {
            assert!(report.has_delivered(p, ids[g.index()]));
        }
        println!("{g}: survivors {survivors} delivered {}", ids[g.index()]);
    }
    println!("✔ Algorithm 1 delivers despite the crash of a group intersection");

    // --- Skeen's algorithm under the same kind of crash ------------------
    // (Each run has its own clock: crash p1 before it can send its
    // timestamp reply, the dangerous window for Skeen.)
    let skeen_pattern = FailurePattern::from_crashes(gs.universe(), [(ProcessId(1), Time(1))]);
    let n = gs.universe().len();
    let autos: Vec<SkeenProcess> = (0..n)
        .map(|i| SkeenProcess::new(ProcessId(i as u32), &gs))
        .collect();
    let mut sim = Simulator::new(autos, skeen_pattern, NoDetector);
    // a message to g1 = {p0, p1}: p1 will die before replying
    sim.automaton_mut(ProcessId(0))
        .multicast(CoreMessageId(0), GroupId(0));
    sim.run(Scheduler::RoundRobin, 100_000);
    let delivered = sim.trace().events().len();
    assert_eq!(delivered, 0, "Skeen blocks");
    println!("✘ Skeen's failure-free algorithm blocked forever (0 deliveries) — as expected");
}
