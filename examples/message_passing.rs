//! Algorithm 1 deployed over the wire — the Level-B execution.
//!
//! Each process runs `gam_core::distributed::DistProcess`: one `Ω_g ∧ Σ_g`
//! replicated state machine per group (for `LOG_g` and the `CONS_{m,𝔣}`
//! objects) plus one Proposition-47 fast log per group intersection. The
//! guarded actions of Algorithm 1 execute as sagas of sequential object
//! operations, exactly as in §4.3's "Implementing the shared objects".
//!
//! Run with: `cargo run --example message_passing`

use gam_kernel::{RunOutcome, Scheduler as KScheduler};
use genuine_multicast::core::distributed::{DistProcess, MuHistory};
use genuine_multicast::core::MessageId;
use genuine_multicast::prelude::*;

fn main() {
    // The minimal cyclic topology: three groups in a ring.
    let gs = topology::ring(3, 2);
    println!(
        "topology: ring(3,2) — {} processes, ℱ = {:?}",
        gs.universe().len(),
        gs.cyclic_families()
    );

    let pattern = FailurePattern::all_correct(gs.universe());
    let mu = MuOracle::new(&gs, pattern.clone(), MuConfig::default());
    let autos: Vec<DistProcess> = gs
        .universe()
        .iter()
        .map(|p| DistProcess::new(p, &gs))
        .collect();
    let mut sim = Simulator::new(autos, pattern, MuHistory::new(mu));

    // Concurrent multicasts to all three groups.
    for g in 0..3u32 {
        let src = gs.members(GroupId(g)).min().unwrap();
        sim.automaton_mut(src)
            .multicast(MessageId(g as u64), GroupId(g));
        println!("multicast m{g} from {src} to {}", GroupId(g));
    }

    let out = sim.run(KScheduler::RoundRobin, 10_000_000);
    assert_eq!(out, RunOutcome::Quiescent);

    for p in gs.universe() {
        println!(
            "{p}: delivered {:?}  ({} msgs sent, {} received)",
            sim.automaton(p).delivered(),
            sim.trace().sends_of(p),
            sim.trace().receives_of(p)
        );
    }

    // Agreement on shared destinations.
    for p in gs.universe() {
        for q in gs.universe() {
            let (dp, dq) = (sim.automaton(p).delivered(), sim.automaton(q).delivered());
            for (i, m1) in dp.iter().enumerate() {
                for m2 in &dp[i + 1..] {
                    if let (Some(j1), Some(j2)) = (
                        dq.iter().position(|x| x == m1),
                        dq.iter().position(|x| x == m2),
                    ) {
                        assert!(j1 < j2, "{p} and {q} disagree");
                    }
                }
            }
        }
    }
    println!(
        "✔ all {} messages delivered over the wire in an agreed order ({} protocol messages total)",
        3,
        sim.total_messages()
    );
}
