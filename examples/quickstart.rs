//! Quickstart: genuine atomic multicast on the paper's Figure 1 system.
//!
//! Builds the four-group topology, multicasts one message per group, runs
//! Algorithm 1 to quiescence with the candidate failure detector `μ`, and
//! verifies every property of the problem.
//!
//! Run with: `cargo run --example quickstart`

use genuine_multicast::prelude::*;

fn main() {
    // 𝒫 = {p0..p4}; g1={p0,p1}, g2={p1,p2}, g3={p0,p2,p3}, g4={p0,p3,p4}.
    let gs = topology::fig1();
    println!(
        "topology: {} processes, {} groups",
        gs.universe().len(),
        gs.len()
    );
    for (g, members) in gs.iter() {
        println!("  {g} = {members}");
    }
    let families = gs.cyclic_families();
    println!("cyclic families ℱ: {families:?}");

    // A failure-free run.
    let pattern = FailurePattern::all_correct(gs.universe());
    let mut rt = Runtime::new(&gs, pattern, RuntimeConfig::default());

    // One message per group, from its minimum member.
    let mut ids = Vec::new();
    for (g, members) in gs.iter() {
        let src = members.min().expect("non-empty group");
        let m = rt.multicast(src, g, g.index() as u64);
        println!("multicast {m} from {src} to {g}");
        ids.push(m);
    }

    let report = rt.run_to_quiescence(1_000_000);

    // Every destination delivered, in an order that is globally acyclic.
    for p in gs.universe() {
        let seq = report.delivered_by(p);
        println!("{p} delivered: {seq:?}");
    }

    spec::check_all(&report, Variant::Standard).expect("all properties hold");
    println!("✔ integrity, minimality, termination, ordering all hold");
    println!(
        "total steps: {} (only addressed processes took any)",
        report.actions_of.iter().sum::<u64>()
    );
}
