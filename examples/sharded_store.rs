//! A strongly consistent sharded key–value store built on genuine atomic
//! multicast — the motivating application of the paper's introduction
//! (partially replicated / sharded data stores, à la P-Store and Granola).
//!
//! Keys are partitioned over two shards; each shard is replicated by one
//! destination group, and the two groups share a process (the "overlap"
//! replica). Single-shard commands are multicast to one group; cross-shard
//! transactions are multicast to the *union* group. Because atomic
//! multicast delivers everything in a global partial order that is acyclic,
//! all replicas of a shard apply the same command sequence — even with the
//! cross-shard traffic interleaved.
//!
//! Run with: `cargo run --example sharded_store`

use genuine_multicast::prelude::*;
use std::collections::BTreeMap;

/// Commands of the store, encoded into the multicast payload.
#[derive(Debug, Clone, Copy)]
enum Cmd {
    /// `Put(key, value)` on one shard.
    Put(u8, u16),
    /// Cross-shard transfer: move `amount` from key 0 (shard A) to key 128
    /// (shard B).
    Transfer(u16),
}

fn encode(cmd: Cmd) -> u64 {
    match cmd {
        Cmd::Put(k, v) => (1u64 << 32) | ((k as u64) << 16) | v as u64,
        Cmd::Transfer(a) => (2u64 << 32) | a as u64,
    }
}

fn decode(payload: u64) -> Cmd {
    match payload >> 32 {
        1 => Cmd::Put((payload >> 16) as u8, payload as u16),
        2 => Cmd::Transfer(payload as u16),
        tag => unreachable!("unknown command tag {tag}"),
    }
}

/// A replica's state machine: its shard of the key space.
#[derive(Debug, Default, Clone, PartialEq)]
struct Replica {
    data: BTreeMap<u8, i64>,
}

impl Replica {
    fn apply(&mut self, cmd: Cmd, my_shard: u8) {
        match cmd {
            Cmd::Put(k, v) => {
                if shard_of(k) == my_shard {
                    self.data.insert(k, v as i64);
                }
            }
            Cmd::Transfer(a) => {
                // both shards apply their half of the transaction
                if my_shard == 0 {
                    *self.data.entry(0).or_insert(0) -= a as i64;
                } else {
                    *self.data.entry(128).or_insert(0) += a as i64;
                }
            }
        }
    }
}

fn shard_of(key: u8) -> u8 {
    if key < 128 {
        0
    } else {
        1
    }
}

fn main() {
    // Shard A group = {p0, p1, p2}; shard B group = {p2, p3, p4};
    // cross-shard group = the union (p2 is the overlap replica).
    let universe = ProcessSet::first_n(5);
    let shard_a: ProcessSet = [0u32, 1, 2].into_iter().collect();
    let shard_b: ProcessSet = [2u32, 3, 4].into_iter().collect();
    let gs = GroupSystem::new(universe, vec![shard_a, shard_b, shard_a | shard_b]);
    let (ga, gb, gab) = (GroupId(0), GroupId(1), GroupId(2));

    let pattern = FailurePattern::all_correct(universe);
    let mut rt = Runtime::new(&gs, pattern, RuntimeConfig::default());

    // Workload: shard-local puts interleaved with cross-shard transfers.
    let workload = [
        (ga, Cmd::Put(0, 100)),
        (gb, Cmd::Put(128, 50)),
        (gab, Cmd::Transfer(30)),
        (ga, Cmd::Put(5, 7)),
        (gab, Cmd::Transfer(10)),
        (gb, Cmd::Put(200, 9)),
    ];
    for (g, cmd) in workload {
        let src = gs.members(g).min().expect("non-empty");
        rt.multicast(src, g, encode(cmd));
        // sequential client: wait for delivery before the next command
        rt.run(1_000_000);
    }
    let report = rt.report(true);
    spec::check_all(&report, Variant::Standard).expect("store run is correct");

    // Apply each replica's delivery sequence to its state machine.
    let mut replicas: Vec<Replica> = vec![Replica::default(); 5];
    for p in universe {
        let my_shard = if shard_a.contains(p) { 0u8 } else { 1u8 };
        // p2 replicates both shards; model it as two logical replicas
        for d in &report.delivered[p.index()] {
            let cmd = decode(report.messages[d.msg.0 as usize].payload);
            replicas[p.index()].apply(cmd, my_shard);
            if p == ProcessId(2) {
                // p2's shard-B half
                let mut b_half = replicas[2].clone();
                b_half.apply(cmd, 1);
            }
        }
    }

    // All replicas of a shard converged to the same state.
    assert_eq!(replicas[0], replicas[1], "shard A replicas agree");
    assert_eq!(replicas[3], replicas[4], "shard B replicas agree");
    println!("shard A state: {:?}", replicas[0].data);
    println!("shard B state: {:?}", replicas[3].data);
    assert_eq!(replicas[0].data.get(&0), Some(&60)); // 100 - 30 - 10
    assert_eq!(replicas[3].data.get(&128), Some(&90)); // 50 + 30 + 10
    println!("✔ sharded store is strongly consistent across replicas");
}
