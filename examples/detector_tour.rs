//! A guided tour of the failure detectors of the paper, on the Figure 1
//! system: `Σ_P`, `Ω_P`, `γ`, `1^P`, and the candidate `μ`.
//!
//! Reproduces the §3 worked example: `Correct = {p1, p4, p5}` (in the
//! paper's 1-based naming) — our `p0, p3, p4` — and shows each detector's
//! output stream around the crashes.
//!
//! Run with: `cargo run --example detector_tour`

use gam_detectors::{IndicatorMode, OmegaMode, SigmaMode};
use genuine_multicast::prelude::*;

fn main() {
    let gs = topology::fig1();
    // p2 and p3 (indices 1, 2) crash: Correct = {p0, p3, p4}.
    let pattern = FailurePattern::from_crashes(
        gs.universe(),
        [(ProcessId(1), Time(5)), (ProcessId(2), Time(9))],
    );
    println!("pattern: {pattern}");

    // Σ over the whole system: quorums shrink as crashes occur, always
    // pairwise intersecting.
    let sigma = SigmaOracle::new(gs.universe(), pattern.clone(), SigmaMode::Alive);
    println!("\nΣ at p0 over time:");
    for t in [0u64, 5, 9, 12] {
        println!("  t{t}: {:?}", sigma.quorum(ProcessId(0), Time(t)).unwrap());
    }

    // Ω restricted to g3 = {p0, p2, p3}: once p2 dies, the leader settles.
    let omega = OmegaOracle::new(
        gs.members(GroupId(2)),
        pattern.clone(),
        OmegaMode::RotateUntil {
            stabilize_at: Time(10),
            period: 2,
        },
    );
    println!("\nΩ_g3 at p3 over time (rotating until t10):");
    for t in [0u64, 2, 4, 10, 20] {
        println!("  t{t}: {}", omega.leader(ProcessId(3), Time(t)).unwrap());
    }

    // γ: the cyclicity detector — the paper's new class.
    let gamma = GammaOracle::new(&gs, pattern.clone(), 1);
    println!("\nγ at p0 over time (detection delay 1):");
    for t in [0u64, 5, 6, 9, 12] {
        let fams = gamma.families(ProcessId(0), Time(t));
        println!("  t{t}: {} families {fams:?}", fams.len());
    }
    println!(
        "γ(g1) once stabilised: {:?} (the groups g1 still orders against)",
        gamma.groups(ProcessId(0), GroupId(0), Time(20))
    );

    // 1^{g1∩g2}: indicates when {p1} has crashed, to everyone in g1 ∪ g2.
    let inter = gs.intersection(GroupId(0), GroupId(1));
    let scope = gs.members(GroupId(0)) | gs.members(GroupId(1));
    let ind = IndicatorOracle::new(inter, scope, pattern.clone(), 0, IndicatorMode::Truthful);
    println!(
        "\n1^(g1∩g2) at p0: t4 → {:?}, t5 → {:?}",
        ind.indicates(ProcessId(0), Time(4)).unwrap(),
        ind.indicates(ProcessId(0), Time(5)).unwrap()
    );

    // μ bundles them all; Algorithm 1 consumes it through typed accessors.
    let mu = MuOracle::new(&gs, pattern, MuConfig::default());
    println!("\nμ components at p0, t20:");
    println!(
        "  Σ_(g1∩g3) = {:?}",
        mu.sigma(GroupId(0), GroupId(2), ProcessId(0), Time(20))
    );
    println!(
        "  Ω_g4      = {:?}",
        mu.omega(GroupId(3), ProcessId(0), Time(20))
    );
    println!(
        "  γ         = {:?}",
        mu.gamma_families(ProcessId(0), Time(20))
    );
}
