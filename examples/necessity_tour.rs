//! A tour of the necessity side (§5–§6): extracting every constituent of
//! the weakest failure detector `μ` from a multicast black box.
//!
//! Runs the four extraction algorithms on the Figure 1 system under a crash
//! of `p2 = g1 ∩ g2`, and certifies each emulated detector against its
//! class axioms with the validators of `gam-detectors`.
//!
//! Run with: `cargo run --example necessity_tour`

use genuine_multicast::detectors::validate::{validate_gamma, validate_indicator, validate_sigma};
use genuine_multicast::emulation::{
    GammaExtraction, IndicatorExtraction, OmegaExtraction, SigmaExtraction,
};
use genuine_multicast::prelude::*;

fn main() {
    let gs = topology::fig1();
    let pattern = FailurePattern::from_crashes(gs.universe(), [(ProcessId(1), Time(5))]);
    let env = Environment::wait_free(gs.universe());
    println!("system: Figure 1; crash: p2 (= g1∩g2) at t5\n");

    // --- Algorithm 2: Σ_{g∩h} -------------------------------------------
    // Extract Σ for g3 ∩ g4 = {p1, p4} (both alive) and certify it.
    let (g3, g4) = (GroupId(2), GroupId(3));
    let mut sigma = SigmaExtraction::new(&gs, pattern.clone(), &[g3, g4]);
    for t in 0..=80u64 {
        sigma.advance(Time(t));
    }
    validate_sigma(
        |p, t| sigma.quorum(p, t),
        &pattern,
        sigma.scope(),
        Time(40),
        Time(80),
    )
    .expect("emulated Σ_(g3∩g4) is a valid quorum detector");
    let witness = sigma.scope().min().unwrap();
    println!(
        "Algorithm 2: Σ_(g3∩g4) certified; stabilised quorum at {witness}: {:?}",
        sigma.quorum(witness, Time(80)).unwrap()
    );

    // --- Algorithm 3: γ ---------------------------------------------------
    let mut gamma = GammaExtraction::new(&gs, pattern.clone(), &env);
    let n = gs.universe().len();
    let mut samples: Vec<Vec<Vec<GroupSet>>> = Vec::new();
    for t in 0..=80u64 {
        gamma.advance(Time(t));
        samples.push(
            (0..n)
                .map(|i| gamma.families(ProcessId(i as u32)))
                .collect(),
        );
    }
    validate_gamma(
        |p, t| samples[t.0 as usize][p.index()].clone(),
        &gs,
        &pattern,
        Time(40),
        Time(80),
    )
    .expect("emulated γ is a valid cyclicity detector");
    println!(
        "Algorithm 3: γ certified over {} closed-path probes; ℱ(p1) after the crash: {:?}",
        gamma.probe_count(),
        gamma.families(ProcessId(0))
    );

    // --- Algorithm 4: 1^{g1∩g2} -------------------------------------------
    let (g1, g2) = (GroupId(0), GroupId(1));
    let mut ind = IndicatorExtraction::new(&gs, pattern.clone(), g1, g2);
    for t in 0..=60u64 {
        ind.advance(Time(t));
    }
    validate_indicator(
        |p, t| ind.indicates(p, t),
        &pattern,
        ind.monitored(),
        gs.members(g1) | gs.members(g2),
        Time(30),
        Time(60),
    )
    .expect("emulated 1^(g1∩g2) is a valid indicator");
    println!(
        "Algorithm 4: 1^(g1∩g2) certified; fires after p2's crash: {:?} → {:?}",
        ind.indicates(ProcessId(0), Time(4)).unwrap(),
        ind.indicates(ProcessId(0), Time(60)).unwrap()
    );

    // --- Algorithm 5: Ω_{g∩h} ----------------------------------------------
    // The CHT simulation forest over a two-process intersection.
    let scope = ProcessSet::first_n(2);
    let omega_pattern = FailurePattern::from_crashes(scope, [(ProcessId(0), Time(0))]);
    let ext = OmegaExtraction::new(scope, omega_pattern.clone(), 8, 4);
    let leader = ext.leader(ProcessId(1)).expect("in scope");
    assert!(omega_pattern.is_correct(leader));
    println!("Algorithm 5: simulation forest elects {leader} (correct) with p0 crashed at start");

    println!("\n✔ every constituent of μ was extracted from the black box and certified");
}
