//! Algorithm 1 over message passing — the Level-B deployment.
//!
//! The shared-memory runtime (`crate::Runtime`) executes Algorithm 1 on
//! linearizable objects; this module deploys the same guarded actions over
//! the wire, using exactly the §4.3 implementation route:
//!
//! - `LOG_g` and the consensus objects `CONS_{m,𝔣}` of messages addressed to
//!   `g` live in one **replicated state machine per group**, ordered by the
//!   `Ω_g ∧ Σ_g` consensus ([`gam_objects::PaxosProcess`]);
//! - each `LOG_{g∩h}` is the **contention-free fast log**
//!   ([`gam_objects::FastLogProcess`]): adopt–commit among `g∩h` on the
//!   fast path, group-`g` consensus as backup (Proposition 47);
//! - each process evaluates the `pre:` guards of Algorithm 1 against its
//!   *local view* (the decided prefix of every object) — sound because all
//!   guards are monotone — and executes the `eff:` blocks as sagas of
//!   sequential object operations, exactly the model's "effects are applied
//!   sequentially until the action returns".
//!
//! The result is a genuine atomic multicast over messages: safety from the
//! ordered objects, liveness from `μ` (γ unblocks faulty cyclic families),
//! and minimality because every object's traffic stays within its scope.

use crate::message::{Datum, MessageId};
use crate::phase::Phase;
use gam_detectors::MuOracle;
use gam_groups::{GroupId, GroupSet, GroupSystem};
use gam_kernel::{Automaton, Envelope, History, ProcessId, ProcessSet, StepCtx, Time};
use gam_objects::{
    Decided, FastLogFd, FastLogMsg, FastLogProcess, Log, OmegaSigma, PaxosMsg, PaxosProcess, Pos,
    SlotDecided,
};
use std::collections::{BTreeMap, VecDeque};

/// A command of a group's replicated state machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroupCmd {
    /// `LOG_g.append(d)`.
    Append(Datum),
    /// `LOG_g.bumpAndLock(m, k)`.
    BumpLock(MessageId, u64),
    /// `CONS_{m,𝔣}.propose(k)` — first proposal in SMR order decides.
    ConsPropose(MessageId, GroupSet, u64),
}

/// Encodes a `LOG_{g∩h}` operation into the fast log's `u64` command space:
/// bit 63 = bump flag, bits 32..63 = position, bits 0..32 = message id.
fn encode_pair_cmd(bump: Option<u64>, m: MessageId) -> u64 {
    match bump {
        None => m.0 & 0xffff_ffff,
        Some(k) => (1 << 63) | ((k & 0x7fff_ffff) << 32) | (m.0 & 0xffff_ffff),
    }
}

fn decode_pair_cmd(cmd: u64) -> (Option<u64>, MessageId) {
    let m = MessageId(cmd & 0xffff_ffff);
    if cmd >> 63 == 1 {
        (Some((cmd >> 32) & 0x7fff_ffff), m)
    } else {
        (None, m)
    }
}

/// Protocol messages: sub-protocol traffic tagged by its object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistMsg {
    /// Group-`g` SMR traffic.
    Group(GroupId, PaxosMsg<GroupCmd>),
    /// `LOG_{g∩h}` fast-log traffic (normalised `g ≤ h`).
    Pair(GroupId, GroupId, FastLogMsg),
}

/// The `μ` sample a step consumes, flattened per object scope.
#[derive(Debug, Clone)]
pub struct DistFd {
    /// `(Ω_g, Σ_g)` per group index.
    pub groups: Vec<OmegaSigma>,
    /// `Σ_{g∩h}` per intersecting pair (normalised).
    pub pairs: BTreeMap<(GroupId, GroupId), Option<ProcessSet>>,
    /// `γ(g)` per group index, at this process.
    pub gamma: Vec<GroupSet>,
}

/// A [`History`] producing [`DistFd`] samples from a [`MuOracle`].
#[derive(Debug, Clone)]
pub struct MuHistory {
    mu: MuOracle,
}

impl MuHistory {
    /// Wraps the candidate oracle.
    pub fn new(mu: MuOracle) -> Self {
        MuHistory { mu }
    }
}

impl History for MuHistory {
    type Value = DistFd;

    fn sample(&self, p: ProcessId, t: Time) -> DistFd {
        let system = self.mu.system();
        let groups = system
            .iter()
            .map(|(g, _)| OmegaSigma {
                leader: self.mu.omega(g, p, t),
                quorum: self.mu.sigma(g, g, p, t),
            })
            .collect();
        let pairs = system
            .intersecting_pairs()
            .into_iter()
            .map(|(g, h)| ((g, h), self.mu.sigma(g, h, p, t)))
            .collect();
        let gamma = system
            .iter()
            .map(|(g, _)| self.mu.gamma_groups(p, g, t))
            .collect();
        DistFd {
            groups,
            pairs,
            gamma,
        }
    }
}

/// The folded view of one group's SMR at this process.
#[derive(Debug, Clone)]
struct GroupView {
    paxos: PaxosProcess<GroupCmd>,
    /// How many instances have been folded so far.
    applied: u64,
    log: Log<Datum>,
    cons: BTreeMap<(MessageId, GroupSet), u64>,
    /// Commands waiting to be ordered.
    outbox: VecDeque<GroupCmd>,
    /// The instance at which the head command was last proposed.
    inflight_at: Option<u64>,
}

impl GroupView {
    fn new(me: ProcessId, members: ProcessSet) -> Self {
        GroupView {
            paxos: PaxosProcess::new(me, members),
            applied: 0,
            log: Log::new(),
            cons: BTreeMap::new(),
            outbox: VecDeque::new(),
            inflight_at: None,
        }
    }

    /// Returns `true` once `cmd`'s effect is visible in the folded view.
    fn done(&self, cmd: &GroupCmd) -> bool {
        match cmd {
            GroupCmd::Append(d) => self.log.contains(d),
            GroupCmd::BumpLock(m, _) => self.log.locked(&Datum::Msg(*m)),
            GroupCmd::ConsPropose(m, f, _) => self.cons.contains_key(&(*m, *f)),
        }
    }

    /// Folds newly decided instances; returns `true` if anything changed.
    fn fold(&mut self) -> bool {
        let mut changed = false;
        while let Some(cmd) = self.paxos.decision(self.applied).cloned() {
            self.applied += 1;
            changed = true;
            match cmd {
                GroupCmd::Append(d) => {
                    self.log.append(d);
                }
                GroupCmd::BumpLock(m, k) => {
                    // appended before bumped by the issuing saga's ordering;
                    // a stray bump for an absent datum is a harmless no-op
                    let _ = self.log.try_bump_and_lock(&Datum::Msg(m), Pos(k));
                }
                GroupCmd::ConsPropose(m, f, k) => {
                    self.cons.entry((m, f)).or_insert(k);
                }
            }
        }
        // drop completed head commands and (re)propose the next one
        while let Some(head) = self.outbox.front() {
            if self.done(head) {
                self.outbox.pop_front();
                self.inflight_at = None;
            } else {
                break;
            }
        }
        changed
    }

    /// Proposes the head outbox command at the next free instance.
    fn drive(&mut self) {
        if let Some(head) = self.outbox.front() {
            let needs_proposal = match self.inflight_at {
                None => true,
                // the instance we used got decided with someone else's
                // command: move on to the next free instance
                Some(at) => self.paxos.decision(at).is_some(),
            };
            if needs_proposal {
                let mut inst = self.applied;
                while self.paxos.decision(inst).is_some() {
                    inst += 1;
                }
                self.paxos.propose(inst, head.clone());
                self.inflight_at = Some(inst);
            }
        }
    }
}

/// The folded view of one `LOG_{g∩h}` fast log at this process.
#[derive(Debug, Clone)]
struct PairView {
    fl: FastLogProcess,
    applied: usize,
    log: Log<Datum>,
}

impl PairView {
    fn fold(&mut self) -> bool {
        let cmds = self.fl.log();
        let mut changed = false;
        for cmd in &cmds[self.applied..] {
            changed = true;
            let (bump, m) = decode_pair_cmd(*cmd);
            match bump {
                None => {
                    self.log.append(Datum::Msg(m));
                }
                Some(k) => {
                    // absent ⇒ no-op: the append command precedes the bump
                    // in every saga, but a crashed saga may leave a tail
                    let _ = self.log.try_bump_and_lock(&Datum::Msg(m), Pos(k));
                }
            }
        }
        self.applied = cmds.len();
        changed
    }

    fn done(&self, cmd: u64) -> bool {
        let (bump, m) = decode_pair_cmd(cmd);
        match bump {
            None => self.log.contains(&Datum::Msg(m)),
            Some(_) => self.log.locked(&Datum::Msg(m)),
        }
    }
}

/// One object operation of an effect saga.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Op {
    Group(GroupId, GroupCmd),
    Pair(GroupId, GroupId, u64),
    /// Read the position of `m` in `LOG_{g∩h}` and record it for the later
    /// `(m, h, i)` announcement (line 13's returned position).
    ReadPairPos(GroupId, GroupId, MessageId),
}

/// A running action: remaining operations, then a phase transition.
#[derive(Debug, Clone)]
struct Saga {
    msg: MessageId,
    ops: VecDeque<Op>,
    issued: bool,
    /// Phase to enter when the saga completes (None for stabilise sagas).
    then: Option<Phase>,
}

/// One process of the distributed deployment.
#[derive(Debug, Clone)]
pub struct DistProcess {
    me: ProcessId,
    system: GroupSystem,
    my_groups: GroupSet,
    groups: BTreeMap<GroupId, GroupView>,
    pairs: BTreeMap<(GroupId, GroupId), PairView>,
    phase: BTreeMap<MessageId, Phase>,
    delivered: Vec<MessageId>,
    /// Submitted multicast requests this process knows of: the client layer
    /// broadcast (`L_g` is approximated by gossiping submissions, then the
    /// group SMR provides the actual total order).
    known: BTreeMap<MessageId, GroupId>,
    saga: Option<Saga>,
    /// Pending `(m, h, i)` announcements collected by `ReadPairPos`.
    pending_pos: Vec<(MessageId, GroupId, u64)>,
    /// A delivery performed by the last `schedule_action`, to be emitted.
    pending_delivery: Option<MessageId>,
}

/// Emitted on local delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistDelivered {
    /// The delivered message.
    pub msg: MessageId,
}

impl DistProcess {
    /// Creates the automaton for `me` over `system`.
    pub fn new(me: ProcessId, system: &GroupSystem) -> Self {
        let my_groups = system.groups_of(me);
        let mut groups = BTreeMap::new();
        let mut pairs = BTreeMap::new();
        for g in my_groups {
            groups.insert(g, GroupView::new(me, system.members(g)));
            for h in my_groups {
                if g < h && system.intersecting(g, h) {
                    let inter = system.intersection(g, h);
                    pairs.insert(
                        (g, h),
                        PairView {
                            fl: FastLogProcess::new(me, inter, system.members(g)),
                            applied: 0,
                            log: Log::new(),
                        },
                    );
                }
            }
        }
        DistProcess {
            me,
            system: system.clone(),
            my_groups,
            groups,
            pairs,
            phase: BTreeMap::new(),
            delivered: Vec::new(),
            known: BTreeMap::new(),
            saga: None,
            pending_pos: Vec::new(),
            pending_delivery: None,
        }
    }

    /// Submits `multicast(m)` to `group` at this (member) process. The id
    /// must be globally unique (the test harness allocates them).
    ///
    /// # Panics
    ///
    /// Panics if this process is not a member of `group`.
    pub fn multicast(&mut self, m: MessageId, group: GroupId) {
        assert!(self.my_groups.contains(group), "src(m) ∈ dst(m) required");
        self.known.insert(m, group);
    }

    /// The local delivery sequence.
    pub fn delivered(&self) -> &[MessageId] {
        &self.delivered
    }

    fn phase_of(&self, m: MessageId) -> Phase {
        self.phase.get(&m).copied().unwrap_or(Phase::Start)
    }

    /// The log holding `m`'s entries for pair `(g, h)` (group log if `g=h`).
    fn pair_log(&self, g: GroupId, h: GroupId) -> Option<&Log<Datum>> {
        if g == h {
            self.groups.get(&g).map(|v| &v.log)
        } else {
            let key = if g < h { (g, h) } else { (h, g) };
            self.pairs.get(&key).map(|v| &v.log)
        }
    }

    fn msgs_before(&self, g: GroupId, h: GroupId, m: MessageId) -> Vec<MessageId> {
        let Some(log) = self.pair_log(g, h) else {
            return Vec::new();
        };
        let me = Datum::Msg(m);
        log.iter_in_order()
            .filter(|d| log.before(d, &me))
            .filter_map(|d| d.as_msg())
            .collect()
    }

    /// Starts the next enabled action, if any (one saga at a time).
    fn schedule_action(&mut self, fd: &DistFd) {
        if self.saga.is_some() {
            return;
        }
        // Collect candidate messages addressed to one of my groups.
        let mut candidates: Vec<(MessageId, GroupId)> = self
            .known
            .iter()
            .map(|(m, g)| (*m, *g))
            .filter(|(_, g)| self.my_groups.contains(*g))
            .collect();
        candidates.sort();
        for (m, g) in candidates {
            let group_log = &self.groups[&g].log;
            match self.phase_of(m) {
                Phase::Start => {
                    // client layer: inject m into LOG_g (help-multicast),
                    // in submission (id) order per group
                    if !group_log.contains(&Datum::Msg(m)) {
                        let earlier_pending = self.known.iter().any(|(m2, g2)| {
                            *g2 == g && *m2 < m && self.phase_of(*m2) != Phase::Deliver
                        });
                        if !earlier_pending {
                            self.saga = Some(Saga {
                                msg: m,
                                ops: VecDeque::from([Op::Group(
                                    g,
                                    GroupCmd::Append(Datum::Msg(m)),
                                )]),
                                issued: false,
                                then: None,
                            });
                            return;
                        }
                        continue;
                    }
                    // pending action (lines 8–15)
                    let prior_ok = self
                        .msgs_before(g, g, m)
                        .into_iter()
                        .all(|m2| self.phase_of(m2) >= Phase::Commit);
                    if prior_ok {
                        let mut ops = VecDeque::new();
                        for h in self.my_groups {
                            if h == g || self.system.intersecting(g, h) {
                                if h != g {
                                    ops.push_back(Op::Pair(
                                        g.min(h),
                                        g.max(h),
                                        encode_pair_cmd(None, m),
                                    ));
                                }
                                ops.push_back(Op::ReadPairPos(g, h, m));
                            }
                        }
                        self.saga = Some(Saga {
                            msg: m,
                            ops,
                            issued: false,
                            then: Some(Phase::Pending),
                        });
                        return;
                    }
                }
                Phase::Pending => {
                    // commit action (lines 16–24)
                    let gamma_g = fd.gamma[g.index()];
                    let have_all = gamma_g.iter().all(|h| {
                        group_log
                            .iter_in_order()
                            .any(|d| matches!(d, Datum::PosAnn(m2, h2, _) if *m2 == m && *h2 == h))
                    });
                    if !have_all {
                        continue;
                    }
                    let f = self.system.h_set(self.me, g);
                    let decided = self.groups[&g].cons.get(&(m, f)).copied();
                    match decided {
                        None => {
                            let k = group_log
                                .iter_in_order()
                                .filter_map(|d| match d {
                                    Datum::PosAnn(m2, _, i) if *m2 == m => Some(*i),
                                    _ => None,
                                })
                                .max()
                                .unwrap_or(1);
                            self.saga = Some(Saga {
                                msg: m,
                                ops: VecDeque::from([Op::Group(g, GroupCmd::ConsPropose(m, f, k))]),
                                issued: false,
                                then: None,
                            });
                            return;
                        }
                        Some(k) => {
                            let mut ops = VecDeque::new();
                            for h in self.my_groups {
                                if h == g {
                                    ops.push_back(Op::Group(g, GroupCmd::BumpLock(m, k)));
                                } else if self.system.intersecting(g, h) {
                                    ops.push_back(Op::Pair(
                                        g.min(h),
                                        g.max(h),
                                        encode_pair_cmd(Some(k), m),
                                    ));
                                }
                            }
                            self.saga = Some(Saga {
                                msg: m,
                                ops,
                                issued: false,
                                then: Some(Phase::Commit),
                            });
                            return;
                        }
                    }
                }
                Phase::Commit => {
                    // stabilise actions (lines 25–29), one group at a time
                    for h in self.my_groups {
                        if h == g || !self.system.intersecting(g, h) {
                            continue;
                        }
                        if group_log.contains(&Datum::StabAnn(m, h)) {
                            continue;
                        }
                        let prior_stable = self
                            .msgs_before(g, h, m)
                            .into_iter()
                            .all(|m2| self.phase_of(m2) >= Phase::Stable);
                        if prior_stable {
                            self.saga = Some(Saga {
                                msg: m,
                                ops: VecDeque::from([Op::Group(
                                    g,
                                    GroupCmd::Append(Datum::StabAnn(m, h)),
                                )]),
                                issued: false,
                                then: None,
                            });
                            return;
                        }
                    }
                    // stable action (lines 30–33)
                    let gamma_g = fd.gamma[g.index()];
                    let stable_ok = gamma_g
                        .iter()
                        .all(|h| group_log.contains(&Datum::StabAnn(m, h)));
                    if stable_ok {
                        self.phase.insert(m, Phase::Stable);
                        continue;
                    }
                }
                Phase::Stable => {
                    // deliver action (lines 34–37)
                    let ok = self.my_groups.iter().all(|h| {
                        if h != g && !self.system.intersecting(g, h) {
                            return true;
                        }
                        self.msgs_before(g, h, m)
                            .into_iter()
                            .all(|m2| self.phase_of(m2) == Phase::Deliver)
                    });
                    if ok {
                        self.phase.insert(m, Phase::Deliver);
                        self.delivered.push(m);
                        self.pending_delivery = Some(m);
                        return;
                    }
                }
                Phase::Deliver => {}
            }
        }
    }
}

impl DistProcess {
    fn op_done(&self, op: &Op) -> bool {
        match op {
            Op::Group(g, cmd) => self.groups[g].done(cmd),
            Op::Pair(g, h, cmd) => self.pairs[&(*g, *h)].done(*cmd),
            Op::ReadPairPos(..) => false, // executed synchronously
        }
    }
}

impl Automaton for DistProcess {
    type Msg = DistMsg;
    type Fd = DistFd;
    type Event = DistDelivered;

    fn step(
        &mut self,
        ctx: &mut StepCtx<DistMsg, DistDelivered>,
        input: Option<Envelope<DistMsg>>,
        fd: &DistFd,
    ) {
        let me = self.me;
        // ---- route incoming traffic to the owning sub-protocol ----------
        let mut group_inputs: Vec<(GroupId, Envelope<PaxosMsg<GroupCmd>>)> = Vec::new();
        let mut pair_inputs: Vec<((GroupId, GroupId), Envelope<FastLogMsg>)> = Vec::new();
        if let Some(env) = input {
            match env.payload {
                DistMsg::Group(g, msg) => group_inputs.push((
                    g,
                    Envelope {
                        id: env.id,
                        src: env.src,
                        dst: env.dst,
                        sent_at: env.sent_at,
                        payload: msg,
                    },
                )),
                DistMsg::Pair(g, h, msg) => pair_inputs.push((
                    (g, h),
                    Envelope {
                        id: env.id,
                        src: env.src,
                        dst: env.dst,
                        sent_at: env.sent_at,
                        payload: msg,
                    },
                )),
            }
        }
        // ---- drive every group SMR --------------------------------------
        let group_ids: Vec<GroupId> = self.groups.keys().copied().collect();
        for g in group_ids {
            let gi = group_inputs
                .iter()
                .position(|(g2, _)| *g2 == g)
                .map(|i| group_inputs.swap_remove(i).1);
            let view = self
                .groups
                .get_mut(&g)
                .expect("key was drawn from groups.keys(); views are never removed");
            view.drive();
            let mut sub: StepCtx<PaxosMsg<GroupCmd>, Decided<GroupCmd>> =
                StepCtx::detached(me, ctx.now());
            view.paxos.step(&mut sub, gi, &fd.groups[g.index()]);
            for (dst, msg) in sub.take_sends() {
                ctx.send(dst, DistMsg::Group(g, msg));
            }
            // decisions are read back through `decision()` during fold
            let _ = sub.take_events();
            view.fold();
        }
        // ---- drive every pair fast log -----------------------------------
        let pair_ids: Vec<(GroupId, GroupId)> = self.pairs.keys().copied().collect();
        for key in pair_ids {
            let pi = pair_inputs
                .iter()
                .position(|(k, _)| *k == key)
                .map(|i| pair_inputs.swap_remove(i).1);
            let view = self
                .pairs
                .get_mut(&key)
                .expect("key was drawn from pairs.keys(); views are never removed");
            let flfd = FastLogFd {
                inter_quorum: fd.pairs.get(&key).copied().flatten(),
                leader: fd.groups[key.0.index()].leader,
                group_quorum: fd.groups[key.0.index()].quorum,
            };
            let mut sub: StepCtx<FastLogMsg, SlotDecided> = StepCtx::detached(me, ctx.now());
            view.fl.step(&mut sub, pi, &flfd);
            for (dst, msg) in sub.take_sends() {
                ctx.send(dst, DistMsg::Pair(key.0, key.1, msg));
            }
            let _ = sub.take_events();
            view.fold();
        }
        // ---- progress the running saga ----------------------------------
        if let Some(mut saga) = self.saga.take() {
            // retire completed operations; execute reads synchronously
            while let Some(op) = saga.ops.front().cloned() {
                match op {
                    Op::ReadPairPos(g, h, m) => {
                        let pos = self
                            .pair_log(g, h)
                            .map(|l| l.pos(&Datum::Msg(m)).0)
                            .unwrap_or(0);
                        if pos > 0 {
                            saga.ops.pop_front();
                            saga.issued = false;
                            self.pending_pos.push((m, h, pos));
                        } else {
                            break;
                        }
                    }
                    _ => {
                        if self.op_done(&op) {
                            saga.ops.pop_front();
                            saga.issued = false;
                        } else {
                            break;
                        }
                    }
                }
            }
            // issue the head op, or finish the saga
            if let Some(op) = saga.ops.front().cloned() {
                if !saga.issued {
                    saga.issued = true;
                    match op {
                        Op::Group(g, cmd) => {
                            self.groups
                                .get_mut(&g)
                                .expect("sagas only target groups this process hosts")
                                .outbox
                                .push_back(cmd);
                        }
                        Op::Pair(g, h, cmd) => {
                            self.pairs
                                .get_mut(&(g, h))
                                .expect("sagas only target pairs this process hosts")
                                .fl
                                .append(cmd);
                        }
                        Op::ReadPairPos(..) => {}
                    }
                }
                self.saga = Some(saga);
            } else {
                // saga complete: flush collected announcements, then phase
                let m = saga.msg;
                let then = saga.then;
                let anns = std::mem::take(&mut self.pending_pos);
                if !anns.is_empty() {
                    let g = self.known[&m];
                    let ops: VecDeque<Op> = anns
                        .into_iter()
                        .map(|(m, h, i)| Op::Group(g, GroupCmd::Append(Datum::PosAnn(m, h, i))))
                        .collect();
                    self.saga = Some(Saga {
                        msg: m,
                        ops,
                        issued: false,
                        then,
                    });
                } else if let Some(phase) = then {
                    self.phase.insert(m, phase);
                }
            }
        }
        // ---- schedule the next action ------------------------------------
        self.pending_delivery = None;
        self.schedule_action(fd);
        if let Some(m) = self.pending_delivery.take() {
            ctx.emit(DistDelivered { msg: m });
        }
        // learn new submissions via the group logs (helping: any Msg datum
        // seen in LOG_g becomes known)
        let learned: Vec<(MessageId, GroupId)> = self
            .groups
            .iter()
            .flat_map(|(g, v)| {
                v.log
                    .iter_in_order()
                    .filter_map(|d| d.as_msg())
                    .map(|m| (m, *g))
                    .collect::<Vec<_>>()
            })
            .collect();
        for (m, g) in learned {
            self.known.entry(m).or_insert(g);
        }
    }

    fn is_active(&self) -> bool {
        self.saga.is_some()
            || self
                .known
                .iter()
                .any(|(m, g)| self.my_groups.contains(*g) && self.phase_of(*m) != Phase::Deliver)
    }
}

/// Builds the property-checker [`RunReport`](crate::RunReport) of a
/// kernel-level run driving [`DistProcess`] automata, so Level-B runs flow
/// through the same `spec` checkers as Level-A runs.
///
/// `submissions` lists the user-level multicasts injected before the run,
/// in [`MessageId`] order (index `i` is message `i`); they are stamped at
/// [`Time::ZERO`]. Deliveries and their times come from the
/// [`DistDelivered`] trace events; the per-process action counts are the
/// simulator's step counters.
pub fn run_report(
    sim: &gam_kernel::Simulator<DistProcess, MuHistory>,
    system: &GroupSystem,
    submissions: &[(ProcessId, GroupId, u64)],
    quiescent: bool,
) -> crate::RunReport {
    let n = sim.universe().max().map_or(0, |p| p.index() + 1);
    let mut delivered = vec![Vec::new(); n];
    for ev in sim.trace().events() {
        delivered[ev.pid.index()].push(crate::Delivery {
            msg: ev.event.msg,
            at: ev.time,
        });
    }
    crate::RunReport {
        system: system.clone(),
        pattern: sim.pattern().clone(),
        messages: submissions
            .iter()
            .map(|(src, group, payload)| crate::MessageInfo {
                src: *src,
                group: *group,
                payload: *payload,
            })
            .collect(),
        multicast_at: vec![Time::ZERO; submissions.len()],
        delivered,
        actions_of: sim
            .universe()
            .iter()
            .map(|p| sim.trace().steps_of(p))
            .collect(),
        quiescent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gam_detectors::MuConfig;
    use gam_groups::topology;
    use gam_kernel::{FailurePattern, RunOutcome, Scheduler, Simulator};

    fn system(gs: &GroupSystem, pattern: FailurePattern) -> Simulator<DistProcess, MuHistory> {
        let n = gs.universe().len();
        let autos = (0..n)
            .map(|i| DistProcess::new(ProcessId(i as u32), gs))
            .collect();
        let mu = MuOracle::new(gs, pattern.clone(), MuConfig::default());
        Simulator::new(autos, pattern, MuHistory::new(mu))
    }

    fn delivered(sim: &Simulator<DistProcess, MuHistory>, p: ProcessId) -> Vec<MessageId> {
        sim.automaton(p).delivered().to_vec()
    }

    #[test]
    fn single_group_delivers_over_messages() {
        let gs = topology::single_group(3);
        let pattern = FailurePattern::all_correct(gs.universe());
        let mut sim = system(&gs, pattern);
        sim.automaton_mut(ProcessId(0))
            .multicast(MessageId(0), GroupId(0));
        let out = sim.run(Scheduler::RoundRobin, 2_000_000);
        assert_eq!(out, RunOutcome::Quiescent);
        for p in gs.universe() {
            assert_eq!(delivered(&sim, p), vec![MessageId(0)], "{p}");
        }
    }

    #[test]
    fn two_overlapping_groups_agree_on_order() {
        let gs = topology::two_overlapping(3, 1); // g1={p0..p2}, g2={p2..p4}
        let pattern = FailurePattern::all_correct(gs.universe());
        let mut sim = system(&gs, pattern);
        sim.automaton_mut(ProcessId(0))
            .multicast(MessageId(0), GroupId(0));
        sim.automaton_mut(ProcessId(4))
            .multicast(MessageId(1), GroupId(1));
        let out = sim.run(Scheduler::RoundRobin, 5_000_000);
        assert_eq!(out, RunOutcome::Quiescent);
        for p in gs.members(GroupId(0)) {
            assert!(delivered(&sim, p).contains(&MessageId(0)), "{p}");
        }
        for p in gs.members(GroupId(1)) {
            assert!(delivered(&sim, p).contains(&MessageId(1)), "{p}");
        }
        // the overlap replica p2 delivers both, in some order — and every
        // other pair-wise shared destination agrees with it (trivially here)
        assert_eq!(delivered(&sim, ProcessId(2)).len(), 2);
    }

    #[test]
    fn genuineness_over_messages() {
        // a message to g1 only: processes outside g1 exchange no messages
        let gs = topology::disjoint(2, 3); // g1={p0..p2}, g2={p3..p5}
        let pattern = FailurePattern::all_correct(gs.universe());
        let mut sim = system(&gs, pattern);
        sim.automaton_mut(ProcessId(0))
            .multicast(MessageId(0), GroupId(0));
        let out = sim.run(Scheduler::RoundRobin, 2_000_000);
        assert_eq!(out, RunOutcome::Quiescent);
        for p in gs.members(GroupId(0)) {
            assert_eq!(delivered(&sim, p), vec![MessageId(0)]);
        }
        for p in gs.members(GroupId(1)) {
            assert_eq!(sim.trace().sends_of(p), 0, "{p} must send nothing");
            assert_eq!(sim.trace().receives_of(p), 0, "{p} must receive nothing");
        }
    }

    #[test]
    fn random_schedules_converge() {
        let gs = topology::two_overlapping(2, 1); // 3 processes
        for seed in 0..3u64 {
            let pattern = FailurePattern::all_correct(gs.universe());
            let mut sim = system(&gs, pattern).with_seed(seed);
            sim.automaton_mut(ProcessId(0))
                .multicast(MessageId(0), GroupId(0));
            sim.automaton_mut(ProcessId(2))
                .multicast(MessageId(1), GroupId(1));
            let out = sim.run(Scheduler::Random { null_prob: 0.2 }, 5_000_000);
            assert_eq!(out, RunOutcome::Quiescent, "seed {seed}");
            assert_eq!(delivered(&sim, ProcessId(1)).len(), 2, "seed {seed}");
        }
    }

    #[test]
    fn ring_with_concurrent_messages_quiesces() {
        // the cyclic case: γ is live and CONS coordinates the bumps
        let gs = topology::ring(3, 2);
        let pattern = FailurePattern::all_correct(gs.universe());
        let mut sim = system(&gs, pattern);
        for g in 0..3u32 {
            let src = gs.members(GroupId(g)).min().unwrap();
            sim.automaton_mut(src)
                .multicast(MessageId(g as u64), GroupId(g));
        }
        let out = sim.run(Scheduler::RoundRobin, 10_000_000);
        assert_eq!(out, RunOutcome::Quiescent);
        for g in 0..3u32 {
            for p in gs.members(GroupId(g)) {
                assert!(
                    delivered(&sim, p).contains(&MessageId(g as u64)),
                    "{p} missing m{g}"
                );
            }
        }
        // shared destinations agree on the relative order of shared messages
        for p in gs.universe() {
            for q in gs.universe() {
                let (dp, dq) = (delivered(&sim, p), delivered(&sim, q));
                for (i1, m1) in dp.iter().enumerate() {
                    for m2 in dp.iter().skip(i1 + 1) {
                        if let (Some(j1), Some(j2)) = (
                            dq.iter().position(|x| x == m1),
                            dq.iter().position(|x| x == m2),
                        ) {
                            assert!(j1 < j2, "{p}/{q} disagree on {m1:?},{m2:?}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn survives_group_side_crash() {
        // a non-intersection member of g1 crashes; Σ_g1 adapts and the
        // group SMR keeps deciding
        let gs = topology::two_overlapping(3, 1);
        let pattern =
            FailurePattern::from_crashes(gs.universe(), [(ProcessId(1), gam_kernel::Time(30))]);
        let mut sim = system(&gs, pattern.clone());
        sim.automaton_mut(ProcessId(0))
            .multicast(MessageId(0), GroupId(0));
        let out = sim.run(Scheduler::RoundRobin, 5_000_000);
        assert_eq!(out, RunOutcome::Quiescent);
        for p in gs.members(GroupId(0)) & pattern.correct() {
            assert_eq!(delivered(&sim, p), vec![MessageId(0)], "{p}");
        }
    }

    #[test]
    fn pair_cmd_encoding_round_trips() {
        for (bump, m) in [
            (None, MessageId(0)),
            (None, MessageId(77)),
            (Some(1u64), MessageId(3)),
            (Some(12345), MessageId(0xffff)),
        ] {
            assert_eq!(decode_pair_cmd(encode_pair_cmd(bump, m)), (bump, m));
        }
    }
}
