//! Message phases (line 4 and the `PHASE` mapping of Algorithm 1).
//!
//! A message starts in `start`, then moves to `pending` (line 15), `commit`
//! (line 24), `stable` (line 33) and finally `deliver` (line 37). Phases are
//! totally ordered by this progression and only ever increase (Claim 14/15).

use std::fmt;

/// The phase of a message at a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Phase {
    /// Initial phase: not yet picked up from the group log.
    #[default]
    Start,
    /// Positions announced in every `LOG_{g∩h}` (line 15).
    Pending,
    /// Final position agreed and locked (line 24).
    Commit,
    /// Predecessors frozen in every relevant log (line 33).
    Stable,
    /// Delivered to the application (line 37) — terminal.
    Deliver,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Phase::Start => "start",
            Phase::Pending => "pending",
            Phase::Commit => "commit",
            Phase::Stable => "stable",
            Phase::Deliver => "deliver",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn progression_is_totally_ordered() {
        use Phase::*;
        let order = [Start, Pending, Commit, Stable, Deliver];
        for w in order.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert_eq!(Phase::default(), Start);
    }

    #[test]
    fn display() {
        assert_eq!(Phase::Commit.to_string(), "commit");
        assert_eq!(Phase::Deliver.to_string(), "deliver");
    }
}
