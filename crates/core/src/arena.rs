//! Index-interned dense state tables for the Algorithm 1 runtime.
//!
//! The seed runtime kept its shared objects in key-ordered maps —
//! `logs: BTreeMap<(GroupId, GroupId), Log<Datum>>`,
//! `cons: BTreeMap<(MessageId, GroupSet), Consensus<u64>>` and a per-process
//! `BTreeMap<MessageId, Phase>` — so every hot-path guard paid `O(log n)`
//! per lookup plus a full log scan. This module interns every key that is
//! fixed by the *topology* at construction time into a small integer id:
//!
//! - group **pairs** `(g, h)` with `g ∩ h ≠ ∅` (plus the self pairs
//!   `(g, g)`) become dense pair ids in lexicographic key order — the same
//!   order the `BTreeMap` iterated in, so digest streams stay canonical;
//! - group **adjacency** (`h` intersecting `g`, ascending, `g` itself
//!   included) becomes a per-group array, with an `O(1)` position table;
//! - **membership** becomes per-group rank tables, so "the phase of `m` at
//!   `p`" is one array index instead of a map probe;
//! - consensus **families** `H(p, g)` become per-group interned ranks
//!   (under the pairwise weakening there is a single empty family);
//! - the `γ` guard becomes a per-`(group, member)` *timeline*: `γ(p, g, t)`
//!   is piecewise-constant in `t` with breakpoints only at family-exclusion
//!   instants (family faultiness is monotone), so the oracle is queried
//!   once per breakpoint at construction instead of once per guard.
//!
//! Everything in [`Tables`] is immutable after construction and shared by
//! the runtime behind an `Arc`, which is what keeps engine snapshots cheap:
//! cloning a runtime clones dense `Vec`s of plain words plus one `Arc`.
//!
//! The mutable side lives in [`UnitArena`] (struct-of-arrays per-*unit*
//! protocol state — a unit is a batch of consecutive `L_g` entries that
//! share one consensus decision, see the runtime docs) and [`PairState`]
//! (per-pair message order plus *frontier cursors*, the incremental form of
//! the "every message before `m` reached phase `X`" guards: by Claim 8
//! phases only rise and locked prefixes only shrink, so each guard is a
//! monotone frontier that can be maintained eagerly in `O(1)` amortized).

use crate::message::{MessageId, MessageInfo};
use crate::phase::Phase;
use crate::runtime::{RuntimeConfig, Variant};
use gam_detectors::{IndicatorMode, IndicatorOracle, MuOracle};
use gam_groups::{GroupId, GroupSet, GroupSystem};
use gam_kernel::{CowVec, FailurePattern, ProcessId, Time};

/// Sentinel for "no rank": `p` is not a member of the indexing group.
pub(crate) const NO_RANK: u16 = u16::MAX;
/// Sentinel for "no unit": the message has not been injected yet.
pub(crate) const NO_UNIT: u32 = u32::MAX;

/// The guard thresholds the per-pair frontier cursors track, in rising
/// order: index 0 gates `pending` (predecessors committed), index 1 gates
/// `stabilize` (predecessors stable), index 2 gates `deliver`.
pub(crate) const THRESHOLDS: [Phase; 3] = [Phase::Commit, Phase::Stable, Phase::Deliver];
/// Cursor index of the `≥ commit` threshold.
pub(crate) const T_COMMIT: usize = 0;
/// Cursor index of the `≥ stable` threshold.
pub(crate) const T_STABLE: usize = 1;
/// Cursor index of the `≥ deliver` threshold.
pub(crate) const T_DELIVER: usize = 2;

/// Struct-of-arrays storage for message metadata ([`MessageInfo`]).
///
/// The runtime's hot paths only ever need one column at a time (almost
/// always the destination group), so the arena stores sources, groups and
/// payloads in parallel vectors instead of an array of structs. The
/// columns are chunked [`CowVec`]s: cloning the arena (an engine
/// snapshot) shares every sealed chunk instead of copying the columns.
#[derive(Debug, Clone, Default)]
pub struct MessageArena {
    src: CowVec<ProcessId>,
    group: CowVec<GroupId>,
    payload: CowVec<u64>,
}

impl MessageArena {
    /// Number of messages in the arena.
    pub fn len(&self) -> usize {
        self.group.len()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.group.is_empty()
    }

    /// Appends a message, returning its id (ids are dense, in submission
    /// order).
    pub fn push(&mut self, info: MessageInfo) -> MessageId {
        let id = MessageId(self.group.len() as u64);
        self.src.push(info.src);
        self.group.push(info.group);
        self.payload.push(info.payload);
        id
    }

    /// The destination group of `m`.
    pub fn group(&self, m: MessageId) -> GroupId {
        self.group[m.0 as usize]
    }

    /// The full metadata record of `m`.
    pub fn get(&self, m: MessageId) -> MessageInfo {
        let i = m.0 as usize;
        MessageInfo {
            src: self.src[i],
            group: self.group[i],
            payload: self.payload[i],
        }
    }

    /// Materialises the arena as an array of structs (for [`crate::RunReport`]).
    pub fn to_vec(&self) -> Vec<MessageInfo> {
        (0..self.len())
            .map(|i| self.get(MessageId(i as u64)))
            .collect()
    }

    /// Bytes a `Clone` of the arena copies (chunk pointer tables only).
    pub fn shallow_bytes(&self) -> u64 {
        self.src.shallow_bytes() + self.group.shallow_bytes() + self.payload.shallow_bytes()
    }

    /// Bytes a deep column copy would have copied.
    pub fn deep_bytes(&self) -> u64 {
        self.src.deep_bytes() + self.group.deep_bytes() + self.payload.deep_bytes()
    }
}

/// One `(g → h)` edge as seen from a member `p` of `g`: everything the
/// guards need about the pair `LOG_{g∩h}`, pre-resolved.
#[derive(Debug, Clone, Copy)]
pub(crate) struct GpEntry {
    /// The other group (`h = g` for the self pair).
    pub h: GroupId,
    /// Position of `h` in `adj[g]` (the unit's per-adjacency arrays).
    pub adj_idx: u16,
    /// Interned id of the pair `(g, h)` (normalised).
    pub pair: u32,
    /// Rank of `p` among the pair's relevant processes (cursor row).
    pub prank: u16,
}

/// Everything about a runtime that is fixed once the topology, failure
/// pattern and configuration are known. Immutable; shared via `Arc`.
#[derive(Debug)]
pub(crate) struct Tables {
    pub system: GroupSystem,
    pub pattern: FailurePattern,
    pub mu: MuOracle,
    pub variant: Variant,
    /// Effective batch size (≥ 1); 1 reproduces the seed semantics exactly.
    pub batch_max: u32,
    /// Process-index bound (`universe.max + 1`).
    pub n: usize,
    /// Number of groups.
    pub n_groups: usize,
    /// Per group: members ascending.
    pub member_list: Vec<Vec<ProcessId>>,
    /// `[g * n + p]` → rank of `p` in `g`, or [`NO_RANK`].
    pub member_rank: Vec<u16>,
    /// Per group: prefix sum of member counts; last entry = total.
    pub member_base: Vec<u32>,
    /// Per process: `𝒢(p)`.
    pub groups_of: Vec<GroupSet>,
    /// Per process: crash time, `u64::MAX` if correct.
    pub crash_at: Vec<u64>,
    /// Interned pairs in lexicographic `(g, h)` key order (`g ≤ h`): every
    /// self pair plus every intersecting cross pair.
    pub pairs: Vec<(GroupId, GroupId)>,
    /// Per group: pair id of `(g, g)`.
    pub self_pair: Vec<u32>,
    /// Per group: adjacency (`g` itself plus intersecting groups), ascending.
    pub adj: Vec<Vec<GroupId>>,
    /// `[g * n_groups + h]` → position of `h` in `adj[g]`, or [`NO_RANK`].
    pub adj_pos: Vec<u16>,
    /// Per group: pair id per adjacency entry.
    pub adj_pair: Vec<Vec<u32>>,
    /// Per pair: relevant processes ascending (`g ∩ h`; members for self).
    pub pair_procs: Vec<Vec<ProcessId>>,
    /// Per pair: the `1^{g∩h}` oracle (strict variant, cross pairs only).
    pub indicators: Vec<Option<IndicatorOracle>>,
    /// `[gm(g, p)]` → the pairs `(g, h)` for `h ∈ 𝒢(p)`, ascending in `h`.
    pub per_gp: Vec<Vec<GpEntry>>,
    /// `[gm(g, p)]` → the `(g, g)` entry of `per_gp` (the pending guard's
    /// fast path into the self pair).
    pub self_gp: Vec<GpEntry>,
    /// `[gm(g, p)]` → interned rank of the consensus family `H(p, g)`.
    pub fam_rank: Vec<u16>,
    /// Per group: the interned consensus families, in rank order (each
    /// unit carries one `CONS` cell per entry).
    pub fams: Vec<Vec<GroupSet>>,
    /// `[gm(g, p)]` → ascending `(from, γ(p, g))` steps; first entry is at 0.
    pub gamma_timeline: Vec<Vec<(u64, GroupSet)>>,
}

impl Tables {
    pub fn new(system: &GroupSystem, pattern: FailurePattern, config: &RuntimeConfig) -> Self {
        let n = system.universe().max().map_or(0, |p| p.index() + 1);
        let n_groups = system.len();
        let mu = MuOracle::new(system, pattern.clone(), config.mu);

        let mut member_list = Vec::with_capacity(n_groups);
        let mut member_rank = vec![NO_RANK; n_groups * n];
        let mut member_base = Vec::with_capacity(n_groups + 1);
        let mut base = 0u32;
        for (g, members) in system.iter() {
            let list: Vec<ProcessId> = members.iter().collect();
            for (r, p) in list.iter().enumerate() {
                member_rank[g.index() * n + p.index()] = r as u16;
            }
            member_base.push(base);
            base += list.len() as u32;
            member_list.push(list);
        }
        member_base.push(base);

        let groups_of: Vec<GroupSet> = (0..n)
            .map(|i| system.groups_of(ProcessId(i as u32)))
            .collect();
        let crash_at: Vec<u64> = (0..n)
            .map(|i| {
                pattern
                    .crash_time(ProcessId(i as u32))
                    .map_or(u64::MAX, |t| t.0)
            })
            .collect();

        // Pairs in lexicographic key order — the iteration order the seed's
        // BTreeMap used, kept so the digest stream stays canonical.
        let mut pairs = Vec::new();
        let mut self_pair = vec![0u32; n_groups];
        let mut adj: Vec<Vec<GroupId>> = vec![Vec::new(); n_groups];
        let mut adj_pair: Vec<Vec<u32>> = vec![Vec::new(); n_groups];
        let mut adj_pos = vec![NO_RANK; n_groups * n_groups];
        let mut pair_procs = Vec::new();
        for gi in 0..n_groups {
            let g = GroupId(gi as u32);
            for hi in gi..n_groups {
                let h = GroupId(hi as u32);
                if hi != gi && !system.intersecting(g, h) {
                    continue;
                }
                let pid = pairs.len() as u32;
                pairs.push((g, h));
                if hi == gi {
                    self_pair[gi] = pid;
                    pair_procs.push(member_list[gi].clone());
                } else {
                    pair_procs.push(system.intersection(g, h).iter().collect());
                }
            }
        }
        for gi in 0..n_groups {
            let g = GroupId(gi as u32);
            for hi in 0..n_groups {
                let h = GroupId(hi as u32);
                if hi != gi && !system.intersecting(g, h) {
                    continue;
                }
                let (a, b) = if g <= h { (g, h) } else { (h, g) };
                let pid = pairs
                    .iter()
                    .position(|&k| k == (a, b))
                    .expect("pair interned above") as u32;
                adj_pos[gi * n_groups + hi] = adj[gi].len() as u16;
                adj[gi].push(h);
                adj_pair[gi].push(pid);
            }
        }
        let mut pair_rank = vec![NO_RANK; pairs.len() * n];
        for (pid, procs) in pair_procs.iter().enumerate() {
            for (r, p) in procs.iter().enumerate() {
                pair_rank[pid * n + p.index()] = r as u16;
            }
        }

        let indicators: Vec<Option<IndicatorOracle>> = pairs
            .iter()
            .map(|&(g, h)| {
                (config.variant == Variant::Strict && g != h).then(|| {
                    IndicatorOracle::new(
                        system.intersection(g, h),
                        system.members(g) | system.members(h),
                        pattern.clone(),
                        config.indicator_delay,
                        IndicatorMode::Truthful,
                    )
                })
            })
            .collect();

        // Consensus families H(p, g), interned per group by value. Under the
        // pairwise weakening the runtime behaves as if ℱ = ∅, so every
        // process proposes into the single (m, ∅) instance.
        let total_gm = base as usize;
        let mut fam_rank = vec![0u16; total_gm];
        let mut fams: Vec<Vec<GroupSet>> = Vec::with_capacity(n_groups);
        // `GroupSystem::h_set` re-enumerates the cyclic families (a
        // quadratic 2-core prune) on every call; with one call per
        // (group, member) that dominates construction at hundreds of
        // groups. Enumerate ℱ once and evaluate H(p, g) against it.
        let cyclic = system.cyclic_families();
        let h_set = |p: ProcessId, g: GroupId| -> GroupSet {
            let mut out = GroupSet::new();
            for f in &cyclic {
                if !f.contains(g) || !system.in_some_intersection(*f, p) {
                    continue;
                }
                for h in *f {
                    if g == h || system.intersecting(g, h) {
                        out.insert(h);
                    }
                }
            }
            out
        };
        for gi in 0..n_groups {
            let g = GroupId(gi as u32);
            let mut sets: Vec<GroupSet> = match config.variant {
                Variant::Pairwise => vec![GroupSet::EMPTY],
                _ => member_list[gi].iter().map(|&p| h_set(p, g)).collect(),
            };
            sets.sort_unstable();
            sets.dedup();
            if config.variant != Variant::Pairwise {
                for (r, &p) in member_list[gi].iter().enumerate() {
                    let f = h_set(p, g);
                    let rank = sets.binary_search(&f).expect("own family interned") as u16;
                    fam_rank[member_base[gi] as usize + r] = rank;
                }
            }
            fams.push(sets);
        }

        // γ timelines: γ(p, g, t) changes only at family-exclusion instants.
        let breakpoints = mu.gamma().exclusion_breakpoints();
        let mut gamma_timeline = vec![Vec::new(); total_gm];
        for gi in 0..n_groups {
            let g = GroupId(gi as u32);
            for (r, &p) in member_list[gi].iter().enumerate() {
                let gm = member_base[gi] as usize + r;
                let tl = &mut gamma_timeline[gm];
                if config.variant == Variant::Pairwise {
                    tl.push((0, GroupSet::EMPTY));
                    continue;
                }
                tl.push((0, mu.gamma_groups(p, g, Time(0))));
                for &b in &breakpoints {
                    let v = mu.gamma_groups(p, g, b);
                    if v != tl.last().expect("timeline starts at 0").1 {
                        tl.push((b.0, v));
                    }
                }
            }
        }

        // Per-(group, member) pair views.
        let mut per_gp = vec![Vec::new(); total_gm];
        let mut self_gp = vec![
            GpEntry {
                h: GroupId(0),
                adj_idx: 0,
                pair: 0,
                prank: 0,
            };
            total_gm
        ];
        for gi in 0..n_groups {
            let g = GroupId(gi as u32);
            for (r, &p) in member_list[gi].iter().enumerate() {
                let gm = member_base[gi] as usize + r;
                let entries = &mut per_gp[gm];
                for h in groups_of[p.index()] {
                    let a = adj_pos[gi * n_groups + h.index()];
                    debug_assert_ne!(a, NO_RANK, "p ∈ g ∩ h ⇒ h adjacent to g");
                    let pid = adj_pair[gi][a as usize];
                    let prank = pair_rank[pid as usize * n + p.index()];
                    debug_assert_ne!(prank, NO_RANK, "p ∈ g ∩ h ⇒ p relevant to the pair");
                    let entry = GpEntry {
                        h,
                        adj_idx: a,
                        pair: pid,
                        prank,
                    };
                    if h == g {
                        self_gp[gm] = entry;
                    }
                    entries.push(entry);
                }
            }
        }

        Tables {
            system: system.clone(),
            pattern,
            mu,
            variant: config.variant,
            batch_max: config.batch_max.max(1),
            n,
            n_groups,
            member_list,
            member_rank,
            member_base,
            groups_of,
            crash_at,
            pairs,
            self_pair,
            adj,
            adj_pos,
            adj_pair,
            pair_procs,
            indicators,
            per_gp,
            self_gp,
            fam_rank,
            fams,
            gamma_timeline,
        }
    }

    /// Rank of `p` among the members of `g` (panics in debug if `p ∉ g`).
    #[inline]
    pub fn rank(&self, g: GroupId, p: ProcessId) -> u16 {
        let r = self.member_rank[g.index() * self.n + p.index()];
        debug_assert_ne!(r, NO_RANK, "{p} ∉ {g}");
        r
    }

    /// Flat `(group, member)` index of `(g, p)`.
    #[inline]
    pub fn gm(&self, g: GroupId, p: ProcessId) -> usize {
        self.member_base[g.index()] as usize + self.rank(g, p) as usize
    }

    /// Position of `h` in `adj[g]` (panics in debug if not adjacent).
    #[inline]
    pub fn adj_of(&self, g: GroupId, h: GroupId) -> usize {
        let a = self.adj_pos[g.index() * self.n_groups + h.index()];
        debug_assert_ne!(a, NO_RANK, "{h} not adjacent to {g}");
        a as usize
    }

    /// `γ(p, g)` at time `now`, via the precomputed timeline.
    #[inline]
    pub fn gamma_at(&self, gm: usize, now: u64) -> GroupSet {
        let tl = &self.gamma_timeline[gm];
        let mut v = tl[0].1;
        for &(from, val) in &tl[1..] {
            if from <= now {
                v = val;
            } else {
                break;
            }
        }
        v
    }

    /// Whether `p` is alive at `now`.
    #[inline]
    pub fn alive(&self, p: ProcessId, now: u64) -> bool {
        now < self.crash_at[p.index()]
    }
}

/// A message entry of a pair's shared order: the `Datum::Msg` rows of the
/// seed's `Log`, kept sorted by `(slot, rep)` — slot order with the a-priori
/// `Datum` order breaking ties, exactly [`gam_objects::Log::before`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct OrderEntry {
    pub slot: u64,
    pub rep: MessageId,
    pub unit: u32,
}

impl OrderEntry {
    #[inline]
    pub fn key(&self) -> (u64, MessageId) {
        (self.slot, self.rep)
    }
}

/// Mutable per-pair state: the slot high-water mark (announcement appends
/// consume slots too), the sorted message order and the frontier cursors.
///
/// `cursors[prank * 3 + k]` is the length of the longest order prefix whose
/// every unit has reached `THRESHOLDS[k]` at the `prank`-th relevant
/// process. Guards compare a cursor against a unit's order index; apply
/// keeps cursors *maximal* (phase rises re-advance them, bump reorders fix
/// them up), which is what makes the guards exact rather than conservative.
#[derive(Debug, Clone, Default)]
pub(crate) struct PairState {
    pub max_slot: u64,
    pub order: Vec<OrderEntry>,
    pub cursors: Vec<u32>,
}

/// Struct-of-arrays per-unit protocol state.
///
/// A *unit* is a run of consecutive entries of one group list `L_g` that
/// travel through Algorithm 1 as one message: one log entry per relevant
/// pair, one position announcement set, one consensus decision. Its
/// *representative* is its first message id — the id that appears in
/// actions and log orders, so a batch size of 1 reproduces the seed's
/// per-message behaviour action for action.
///
/// Per-unit columns are indexed by unit id; the per-adjacency, per-member
/// and per-family columns are flat slices addressed via the `*_base`
/// offsets (units of different groups have different widths).
///
/// Every column is a chunked [`CowVec`]: a runtime clone (= an engine
/// snapshot) shares the sealed chunks, and post-snapshot writes copy only
/// the touched chunk — O(delta) per branch point instead of O(state).
#[derive(Debug, Clone, Default)]
pub(crate) struct UnitArena {
    pub group: CowVec<GroupId>,
    pub start: CowVec<u32>,
    pub len: CowVec<u32>,
    pub rep: CowVec<MessageId>,
    adj_base: CowVec<u32>,
    mem_base: CowVec<u32>,
    fam_base: CowVec<u32>,
    /// Per `(unit, adjacency)`: slot of the unit's `Msg` entry in the pair
    /// (`0` = not appended yet; real slots start at 1).
    pub slot: CowVec<u64>,
    /// Per `(unit, adjacency)`: whether the entry is locked (line 23).
    pub locked: CowVec<bool>,
    /// Per `(unit, adjacency)`: index of the entry in the pair's order.
    pub order_idx: CowVec<u32>,
    /// Per `(unit, adjacency)`: highest announced position `(m, h, i)` in
    /// `LOG_g` (`0` = none). Positions are non-decreasing per `(unit, h)`,
    /// so the maximum doubles as the idempotence check.
    pub ann_max: CowVec<u64>,
    /// Per `(unit, adjacency)`: whether `(m, h) ∈ LOG_g` (line 29).
    pub stab: CowVec<bool>,
    /// Per `(unit, member rank)`: the phase at that member.
    pub phase: CowVec<Phase>,
    /// Per `(unit, family rank)`: the consensus decision (`0` = undecided;
    /// decided positions are ≥ 1).
    pub cons: CowVec<u64>,
}

impl UnitArena {
    /// Number of units.
    #[inline]
    pub fn count(&self) -> usize {
        self.group.len()
    }

    /// Appends a unit with zeroed per-adjacency/member/family state.
    #[allow(clippy::too_many_arguments)]
    pub fn push(
        &mut self,
        g: GroupId,
        start: u32,
        len: u32,
        rep: MessageId,
        deg: usize,
        members: usize,
        fams: usize,
    ) -> u32 {
        let u = self.group.len() as u32;
        self.group.push(g);
        self.start.push(start);
        self.len.push(len);
        self.rep.push(rep);
        self.adj_base.push(self.slot.len() as u32);
        self.mem_base.push(self.phase.len() as u32);
        self.fam_base.push(self.cons.len() as u32);
        self.slot.resize(self.slot.len() + deg, 0);
        self.locked.resize(self.locked.len() + deg, false);
        self.order_idx.resize(self.order_idx.len() + deg, 0);
        self.ann_max.resize(self.ann_max.len() + deg, 0);
        self.stab.resize(self.stab.len() + deg, false);
        self.phase.resize(self.phase.len() + members, Phase::Start);
        self.cons.resize(self.cons.len() + fams, 0);
        u
    }

    /// Flat index of unit `u`'s `a`-th adjacency cell.
    #[inline]
    pub fn adj(&self, u: u32, a: usize) -> usize {
        self.adj_base[u as usize] as usize + a
    }

    /// Flat index of unit `u`'s phase cell at member rank `r`.
    #[inline]
    pub fn mem(&self, u: u32, r: u16) -> usize {
        self.mem_base[u as usize] as usize + r as usize
    }

    /// Flat index of unit `u`'s consensus cell at family rank `r`.
    #[inline]
    pub fn fam(&self, u: u32, r: u16) -> usize {
        self.fam_base[u as usize] as usize + r as usize
    }

    /// Width of unit `u`'s adjacency block.
    #[inline]
    pub fn deg(&self, u: u32) -> usize {
        let b = self.adj_base[u as usize] as usize;
        let e = self
            .adj_base
            .get(u as usize + 1)
            .map_or(self.slot.len(), |&x| x as usize);
        e - b
    }

    /// Bytes a `Clone` of the arena copies (chunk pointer tables only).
    pub fn shallow_bytes(&self) -> u64 {
        self.group.shallow_bytes()
            + self.start.shallow_bytes()
            + self.len.shallow_bytes()
            + self.rep.shallow_bytes()
            + self.adj_base.shallow_bytes()
            + self.mem_base.shallow_bytes()
            + self.fam_base.shallow_bytes()
            + self.slot.shallow_bytes()
            + self.locked.shallow_bytes()
            + self.order_idx.shallow_bytes()
            + self.ann_max.shallow_bytes()
            + self.stab.shallow_bytes()
            + self.phase.shallow_bytes()
            + self.cons.shallow_bytes()
    }

    /// Bytes a deep column copy would have copied.
    pub fn deep_bytes(&self) -> u64 {
        self.group.deep_bytes()
            + self.start.deep_bytes()
            + self.len.deep_bytes()
            + self.rep.deep_bytes()
            + self.adj_base.deep_bytes()
            + self.mem_base.deep_bytes()
            + self.fam_base.deep_bytes()
            + self.slot.deep_bytes()
            + self.locked.deep_bytes()
            + self.order_idx.deep_bytes()
            + self.ann_max.deep_bytes()
            + self.stab.deep_bytes()
            + self.phase.deep_bytes()
            + self.cons.deep_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gam_groups::topology;

    fn tables(gs: &GroupSystem) -> Tables {
        Tables::new(
            gs,
            FailurePattern::all_correct(gs.universe()),
            &RuntimeConfig::default(),
        )
    }

    #[test]
    fn pairs_are_interned_in_lexicographic_key_order() {
        let gs = topology::fig1();
        let t = tables(&gs);
        let mut keys = t.pairs.clone();
        keys.sort_unstable();
        assert_eq!(keys, t.pairs, "pair ids follow BTreeMap key order");
        // every self pair plus every intersecting pair
        assert_eq!(
            t.pairs.len(),
            gs.len() + gs.intersecting_pairs().len(),
            "one id per log object"
        );
        for gi in 0..gs.len() {
            let g = GroupId(gi as u32);
            assert_eq!(t.pairs[t.self_pair[gi] as usize], (g, g));
        }
    }

    #[test]
    fn ranks_and_adjacency_round_trip() {
        let gs = topology::fig1();
        let t = tables(&gs);
        for (g, members) in gs.iter() {
            for p in members {
                let r = t.rank(g, p);
                assert_eq!(t.member_list[g.index()][r as usize], p);
            }
            for (a, &h) in t.adj[g.index()].iter().enumerate() {
                assert_eq!(t.adj_of(g, h), a);
                assert!(h == g || gs.intersecting(g, h));
            }
        }
    }

    #[test]
    fn gamma_timeline_matches_oracle_queries() {
        let gs = topology::fig1();
        let pattern = FailurePattern::from_crashes(
            gs.universe(),
            [(ProcessId(1), Time(5)), (ProcessId(2), Time(7))],
        );
        let t = Tables::new(&gs, pattern.clone(), &RuntimeConfig::default());
        for (g, members) in gs.iter() {
            for p in members {
                let gm = t.gm(g, p);
                for now in 0..20u64 {
                    assert_eq!(
                        t.gamma_at(gm, now),
                        t.mu.gamma_groups(p, g, Time(now)),
                        "γ({p}, {g}, {now})"
                    );
                }
            }
        }
    }

    #[test]
    fn pairwise_variant_interns_a_single_empty_family() {
        let gs = topology::ring(3, 2);
        let cfg = RuntimeConfig {
            variant: Variant::Pairwise,
            ..Default::default()
        };
        let t = Tables::new(&gs, FailurePattern::all_correct(gs.universe()), &cfg);
        for gi in 0..gs.len() {
            assert_eq!(t.fams[gi], vec![GroupSet::EMPTY]);
        }
        assert!(t.fam_rank.iter().all(|&r| r == 0));
        for gm in 0..t.fam_rank.len() {
            assert_eq!(t.gamma_at(gm, 0), GroupSet::EMPTY);
        }
    }

    #[test]
    fn unit_arena_blocks_are_disjoint() {
        let mut a = UnitArena::default();
        let u0 = a.push(GroupId(0), 0, 2, MessageId(0), 3, 4, 1);
        let u1 = a.push(GroupId(1), 0, 1, MessageId(2), 2, 2, 2);
        assert_eq!(a.count(), 2);
        assert_eq!(a.deg(u0), 3);
        assert_eq!(a.deg(u1), 2);
        assert_eq!(a.adj(u1, 0), 3);
        assert_eq!(a.mem(u1, 0), 4);
        assert_eq!(a.fam(u1, 1), 2);
        let cell = a.adj(u0, 2);
        a.slot[cell] = 9;
        assert_eq!(a.slot[a.adj(u1, 0)], 0, "blocks do not alias");
    }

    #[test]
    fn message_arena_round_trips() {
        let mut a = MessageArena::default();
        assert!(a.is_empty());
        let info = MessageInfo {
            src: ProcessId(1),
            group: GroupId(2),
            payload: 7,
        };
        let m = a.push(info);
        assert_eq!(m, MessageId(0));
        assert_eq!(a.group(m), GroupId(2));
        assert_eq!(a.get(m), info);
        assert_eq!(a.to_vec(), vec![info]);
    }
}
