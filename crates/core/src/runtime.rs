//! The Algorithm 1 runtime — genuine atomic multicast from `μ`.
//!
//! This module executes Algorithm 1 of the paper at the shared-memory level:
//! the logs `LOG_{g∩h}` and consensus objects `CONS_{m,𝔣}` are linearizable
//! shared objects, and each simulator step executes one *enabled action*
//! (`multicast`, `pending`, `commit`, `stabilize`, `stable`, `deliver`) at
//! one process, exactly as the `pre:`/`eff:` pseudo-code prescribes. Since
//! one operation applies at a time, the execution *is* the linearization the
//! correctness proofs of §4.4 reason over.
//!
//! The client layer implements the Proposition 1 reduction from vanilla to
//! *group sequential* atomic multicast: each group `g` has a shared list
//! `L_g`; a submission appends to `L_g`, and members of `g` help-multicast
//! listed messages in order, each one only after its predecessor was
//! delivered locally.
//!
//! Two variations are provided as modes (§6):
//! - [`Variant::Strict`] — real-time order, replacing the line-32 guard with
//!   "`(m,h) ∈ LOG_g` or `1^{g∩h}` fired", for **all** `h` intersecting `g`;
//! - [`Variant::Pairwise`] — the pairwise-ordering weakening of §7, which
//!   needs no `γ` (the runtime behaves as if `ℱ = ∅`).
//!
//! # Flat state representation
//!
//! The runtime stores its state in the index-interned dense tables of
//! [`crate::arena`] rather than key-ordered maps: group pairs, adjacency
//! positions, member ranks and consensus families are interned to small
//! integers at construction ([`crate::arena`]'s `Tables`, shared behind an
//! `Arc`), and all evolving protocol state lives in struct-of-arrays unit
//! and pair tables. The "every message before `m` reached phase `X`" guards
//! are maintained incrementally as per-pair *frontier cursors* — by Claim 8
//! phases only rise and slots only grow, so the satisfying prefix of each
//! pair's message order is a monotone frontier; `apply` re-advances the
//! affected cursors eagerly and a guard is a single integer comparison.
//!
//! # Batching
//!
//! [`RuntimeConfig::batch_max`] > 1 turns on injection-level batching: an
//! `Inject` picks up to `batch_max` consecutive not-yet-injected entries of
//! `L_g` as one *unit* that travels through Algorithm 1 as a single message
//! (one log entry per pair, one consensus decision), amortising one
//! coordination decision across the whole batch; `Deliver` expands the unit
//! into per-message deliveries in list order. The unit is identified by its
//! first message id, so `batch_max ≤ 1` reproduces the unbatched runtime
//! action for action. Batching preserves every per-group delivery sequence
//! and the pairwise/global order properties over units; concurrently with a
//! unit boundary shift, cross-group interleavings of *individual* messages
//! may differ from an unbatched run (a unit delivers atomically), which is
//! why the equivalence suite compares per-group projections and spec
//! verdicts.

use crate::arena::{
    GpEntry, MessageArena, OrderEntry, PairState, Tables, UnitArena, NO_UNIT, THRESHOLDS, T_COMMIT,
    T_DELIVER, T_STABLE,
};
use crate::message::{MessageId, MessageInfo};
use crate::phase::Phase;
use gam_detectors::{MuConfig, MuOracle};
use gam_groups::{GroupId, GroupSystem};
use gam_kernel::{CowVec, FailurePattern, ProcessId, ProcessSet, RunOutcome, ScheduleSource, Time};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Which variation of atomic multicast the runtime solves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Variant {
    /// Vanilla (global total order) genuine atomic multicast — Algorithm 1
    /// with the candidate `μ`.
    #[default]
    Standard,
    /// Strict (real-time) ordering — §6.1, requires `μ ∧ (∧ 1^{g∩h})`.
    Strict,
    /// Pairwise ordering — §7, requires only `(∧ Σ_{g∩h}) ∧ (∧ Ω_g)`;
    /// delivery cycles across ≥ 3 groups are permitted.
    Pairwise,
}

/// How the runtime schedules enabled actions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ActionScheduler {
    /// Rotate over processes; fire the least enabled action (deterministic).
    #[default]
    RoundRobin,
    /// Pick a random process with enabled actions, then a random action.
    Random,
}

/// Configuration of a [`Runtime`].
#[derive(Debug, Clone, Copy, Default)]
pub struct RuntimeConfig {
    /// Which problem variation to solve.
    pub variant: Variant,
    /// Tuning of the `μ` oracle components.
    pub mu: MuConfig,
    /// Detection latency of the `1^{g∩h}` indicators (strict variant only).
    pub indicator_delay: u64,
    /// Scheduling policy.
    pub scheduler: ActionScheduler,
    /// Seed for the random scheduler.
    pub seed: u64,
    /// Maximum number of consecutive `L_g` entries one `Inject` bundles
    /// into a single protocol unit (one consensus decision for the whole
    /// batch). `0` and `1` both disable batching and reproduce the
    /// per-message semantics exactly.
    pub batch_max: u32,
}

/// An enabled action of Algorithm 1, at one process, about one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum Action {
    /// Help-multicast the next listed message of `L_g` (line 7 + Prop. 1).
    Inject(GroupId, MessageId),
    /// Lines 8–15.
    Pending(MessageId),
    /// Lines 16–24.
    Commit(MessageId),
    /// Lines 25–29, for group `h`.
    Stabilize(MessageId, GroupId),
    /// Lines 30–33.
    Stable(MessageId),
    /// Lines 34–37.
    Deliver(MessageId),
}

/// The classification of an enabled action that the explorer's
/// independence relation keys on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActionKind {
    /// Help-multicast the next listed message (line 7 + Prop. 1).
    Inject,
    /// Lines 8–15.
    Pending,
    /// Lines 16–24.
    Commit,
    /// Lines 25–29.
    Stabilize,
    /// Lines 30–33.
    Stable,
    /// Lines 34–37 — the only action that records wall-clock state (local
    /// delivery times), which is why the independence relation never
    /// commutes deliveries.
    Deliver,
}

/// An enabled action, described for the explorer's independence relation:
/// who steps, what kind of action fires, and which group's protocol state
/// it touches.
///
/// An action of process `p` about a unit of group `g` reads and writes
/// only the shared pairs `{g, h}` for `h ∈ 𝒢(p)` (see the arena
/// module's `per_gp` views), so two descriptors' touched pair
/// sets are disjoint iff their groups differ and neither process belongs
/// to the other action's group — the commutation test the explorer's
/// sleep sets build on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActionDesc {
    /// The stepping process.
    pub pid: ProcessId,
    /// The action kind.
    pub kind: ActionKind,
    /// The group whose unit/pair state the action touches.
    pub group: GroupId,
    /// The representative message of the action's unit (the injected
    /// message for `Inject`) — a stable diagnostic label.
    pub rep: MessageId,
    /// Disambiguator within the kind: the target group of a `Stabilize`
    /// (several can be enabled at once for the same unit), `0` otherwise.
    /// Descriptor equality then identifies one enabled action exactly —
    /// the matching the explorer's sleep sets rely on.
    pub aux: u32,
}

/// What a single [`Runtime::fire_enabled`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Fired {
    /// Whether an action actually fired (`false` when the process crashed
    /// at the very tick of its step — the step is consumed but has no
    /// effect, exactly as in the run loops).
    pub fired: bool,
    /// The message delivered by the action, if it was a `Deliver` — the
    /// unit's representative (first) message under batching.
    pub delivered: Option<MessageId>,
    /// How many messages the action delivered (> 1 only for batched units).
    pub delivered_count: u32,
}

/// A recorded delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// The delivered message.
    pub msg: MessageId,
    /// When the delivery happened.
    pub at: Time,
}

/// Everything a property checker needs to know about a finished run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The group system of the run.
    pub system: GroupSystem,
    /// The failure pattern of the run.
    pub pattern: FailurePattern,
    /// Message metadata, indexed by [`MessageId`].
    pub messages: Vec<MessageInfo>,
    /// Submission (user-level multicast) time per message.
    pub multicast_at: Vec<Time>,
    /// Per-process local delivery sequences, in delivery order.
    pub delivered: Vec<Vec<Delivery>>,
    /// Per-process action counts (the "steps" minimality quantifies over).
    pub actions_of: Vec<u64>,
    /// Whether the run reached quiescence within its budget.
    pub quiescent: bool,
}

impl RunReport {
    /// The local delivery sequence of `p`, as message ids.
    pub fn delivered_by(&self, p: ProcessId) -> Vec<MessageId> {
        self.delivered[p.index()].iter().map(|d| d.msg).collect()
    }

    /// Whether `p` delivered `m`.
    pub fn has_delivered(&self, p: ProcessId, m: MessageId) -> bool {
        self.delivered[p.index()].iter().any(|d| d.msg == m)
    }

    /// The earliest delivery time of `m` across processes, if delivered.
    pub fn first_delivery(&self, m: MessageId) -> Option<Time> {
        self.delivered
            .iter()
            .flatten()
            .filter(|d| d.msg == m)
            .map(|d| d.at)
            .min()
    }
}

/// Chunk capacity of the chunked per-process/per-message columns: small
/// enough that a post-snapshot write copies little, big enough that the
/// pointer tables stay tiny.
const COL_CHUNK: usize = 32;

/// Chunk capacity of the chunked rows holding heap payloads (pair states,
/// active lists, delivery logs): a copied chunk deep-clones its rows, so
/// these chunks stay narrow.
const ROW_CHUNK: usize = 4;

/// The Algorithm 1 runtime. See the module docs.
///
/// All evolving state lives in [`CowVec`] columns or behind `Arc`s, so a
/// `Clone` (= an engine snapshot) copies chunk pointer tables and a few
/// plain scalars — O(state / chunk) — and continuing execution after a
/// snapshot copies only the chunks it actually touches.
#[derive(Debug, Clone)]
pub struct Runtime {
    /// Immutable interned topology/oracle tables, shared across clones —
    /// this is what keeps engine snapshots cheap.
    pub(crate) tables: Arc<Tables>,
    scheduler: ActionScheduler,
    pub(crate) now: Time,
    // Shared objects, flat.
    pub(crate) pairs: CowVec<PairState>,
    pub(crate) units: UnitArena,
    /// Append-only submission lists `L_g`, shared across clones (mutated
    /// only by [`Runtime::multicast`], never by protocol actions).
    pub(crate) lists: Arc<Vec<Vec<MessageId>>>,
    /// Per message: owning unit, or [`NO_UNIT`] before injection.
    pub(crate) unit_of: CowVec<u32>,
    /// Per group: first `L_g` index not yet claimed by a unit.
    pub(crate) next_new: Vec<u32>,
    // Message metadata.
    arena: MessageArena,
    /// Submission times, shared like `lists`.
    multicast_at: Arc<Vec<Time>>,
    // Per-process state.
    /// Per `(group, member)`: first `L_g` index not locally delivered —
    /// the inject guard's cursor.
    pub(crate) inject_cursor: CowVec<u32>,
    /// Per process: units addressed to it that it has not delivered.
    pub(crate) active: CowVec<Vec<u32>>,
    pub(crate) delivered: CowVec<Vec<Delivery>>,
    pub(crate) actions_of: CowVec<u64>,
    /// Per process: undelivered messages addressed to it (obligations).
    pub(crate) owed: CowVec<u64>,
    pub(crate) rr_cursor: usize,
    rng: StdRng,
    /// Reusable enabled-action buffer for the allocation-free hot path.
    scratch: Vec<Action>,
}

impl Runtime {
    /// Builds a runtime over `system` with the given failure pattern.
    pub fn new(system: &GroupSystem, pattern: FailurePattern, config: RuntimeConfig) -> Self {
        let tables = Arc::new(Tables::new(system, pattern, &config));
        let n = tables.n;
        let pairs = tables
            .pair_procs
            .iter()
            .map(|procs| PairState {
                max_slot: 0,
                order: Vec::new(),
                cursors: vec![0; procs.len() * 3],
            })
            .collect();
        let total_gm = *tables.member_base.last().expect("base table non-empty") as usize;
        Runtime {
            scheduler: config.scheduler,
            now: Time::ZERO,
            pairs: CowVec::from_vec(ROW_CHUNK, pairs),
            units: UnitArena::default(),
            lists: Arc::new(vec![Vec::new(); tables.n_groups]),
            unit_of: CowVec::new(COL_CHUNK),
            next_new: vec![0; tables.n_groups],
            arena: MessageArena::default(),
            multicast_at: Arc::new(Vec::new()),
            inject_cursor: CowVec::from_vec(COL_CHUNK, vec![0; total_gm]),
            active: CowVec::from_vec(ROW_CHUNK, vec![Vec::new(); n]),
            delivered: CowVec::from_vec(ROW_CHUNK, vec![Vec::new(); n]),
            actions_of: CowVec::from_vec(COL_CHUNK, vec![0; n]),
            owed: CowVec::from_vec(COL_CHUNK, vec![0; n]),
            rr_cursor: 0,
            rng: StdRng::seed_from_u64(config.seed),
            scratch: Vec::new(),
            tables,
        }
    }

    /// The current global time (one tick per action or submission).
    pub fn now(&self) -> Time {
        self.now
    }

    /// The group system of the runtime.
    pub fn system(&self) -> &GroupSystem {
        &self.tables.system
    }

    /// The failure pattern driving the run.
    pub fn pattern(&self) -> &FailurePattern {
        &self.tables.pattern
    }

    /// The `μ` oracle whose component detectors guard the run's actions.
    pub fn mu(&self) -> &MuOracle {
        &self.tables.mu
    }

    fn alive(&self, p: ProcessId) -> bool {
        self.tables.alive(p, self.now.0)
    }

    /// Submits a user-level `multicast(m)` from `src` to `group` (the
    /// Proposition 1 client layer: appends to the shared list `L_g`).
    ///
    /// # Panics
    ///
    /// Panics if `src` is not a member of `group` (closed dissemination
    /// model) or has already crashed.
    pub fn multicast(&mut self, src: ProcessId, group: GroupId, payload: u64) -> MessageId {
        let t = Arc::clone(&self.tables);
        assert!(
            t.system.members(group).contains(src),
            "{src} ∉ {group}: closed model requires src(m) ∈ dst(m)"
        );
        self.now = self.now.next();
        assert!(self.alive(src), "{src} has crashed; it cannot multicast");
        let id = self.arena.push(MessageInfo {
            src,
            group,
            payload,
        });
        Arc::make_mut(&mut self.multicast_at).push(self.now);
        self.unit_of.push(NO_UNIT);
        Arc::make_mut(&mut self.lists)[group.index()].push(id);
        for &q in &t.member_list[group.index()] {
            self.owed[q.index()] += 1;
        }
        id
    }

    /// The phase of unit `u` at member `p` of its group.
    #[inline]
    fn unit_phase(&self, t: &Tables, u: u32, p: ProcessId) -> Phase {
        let g = self.units.group[u as usize];
        self.units.phase[self.units.mem(u, t.rank(g, p))]
    }

    /// Calls `f` for every action currently enabled at `p`. The traversal
    /// order is arbitrary (per-unit); callers needing the deterministic
    /// `Action` order sort afterwards.
    pub(crate) fn enabled_each(&self, p: ProcessId, f: &mut impl FnMut(Action)) {
        let t = &*self.tables;
        let pi = p.index();
        // Inject: the first locally-undelivered message of L_g, unless it
        // is already claimed by a unit (i.e. in LOG_g). Deliveries happen
        // in list order per (p, g), so "first undelivered" is a cursor.
        for g in t.groups_of[pi] {
            let gm = t.gm(g, p);
            let cur = self.inject_cursor[gm] as usize;
            let list = &self.lists[g.index()];
            if cur < list.len() {
                let m = list[cur];
                if self.unit_of[m.0 as usize] == NO_UNIT {
                    f(Action::Inject(g, m));
                }
            }
        }
        // Per-unit actions, for live units addressed to p.
        for &u in &self.active[pi] {
            let g = self.units.group[u as usize];
            let rep = self.units.rep[u as usize];
            match self.unit_phase(t, u, p) {
                Phase::Start => {
                    if self.pending_enabled(t, p, u, g) {
                        f(Action::Pending(rep));
                    }
                }
                Phase::Pending => {
                    if self.commit_enabled(t, p, u, g) {
                        f(Action::Commit(rep));
                    }
                }
                Phase::Commit => {
                    let gm = t.gm(g, p);
                    for e in &t.per_gp[gm] {
                        if self.stabilize_enabled(u, e) {
                            f(Action::Stabilize(rep, e.h));
                        }
                    }
                    if self.stable_enabled(t, p, u, g, gm) {
                        f(Action::Stable(rep));
                    }
                }
                Phase::Stable => {
                    if self.deliver_enabled(t, p, u, g) {
                        f(Action::Deliver(rep));
                    }
                }
                Phase::Deliver => {}
            }
        }
    }

    /// The enabled actions of `p`, sorted in the deterministic `Action`
    /// order (the replay-stable sub-choice indexing).
    fn enabled_sorted(&self, p: ProcessId) -> Vec<Action> {
        let mut out = Vec::new();
        self.enabled_each(p, &mut |a| out.push(a));
        out.sort_unstable();
        out
    }

    fn enabled_count(&self, p: ProcessId) -> usize {
        let mut n = 0usize;
        self.enabled_each(p, &mut |_| n += 1);
        n
    }

    /// Lines 9–11: `m ∈ LOG_g` and every message before it committed. The
    /// membership is an invariant (units are appended to `LOG_g` at
    /// inject); the prefix condition is the pair's commit frontier.
    fn pending_enabled(&self, t: &Tables, p: ProcessId, u: u32, g: GroupId) -> bool {
        let e = t.self_gp[t.gm(g, p)];
        let ai = self.units.adj(u, e.adj_idx as usize);
        debug_assert!(self.units.slot[ai] > 0, "unit appended to LOG_g at inject");
        self.pairs[e.pair as usize].cursors[e.prank as usize * 3 + T_COMMIT]
            >= self.units.order_idx[ai]
    }

    /// Lines 17–18: a position announcement from every `h ∈ γ(g)`.
    fn commit_enabled(&self, t: &Tables, p: ProcessId, u: u32, g: GroupId) -> bool {
        let gam = t.gamma_at(t.gm(g, p), self.now.0);
        gam.iter()
            .all(|h| self.units.ann_max[self.units.adj(u, t.adj_of(g, h))] > 0)
    }

    /// Lines 26–28 (plus a progress guard: the announcement is not yet in
    /// `LOG_g` — appending is idempotent, so this only prunes no-op actions).
    fn stabilize_enabled(&self, u: u32, e: &GpEntry) -> bool {
        let ai = self.units.adj(u, e.adj_idx as usize);
        !self.units.stab[ai]
            && self.units.slot[ai] > 0
            && self.pairs[e.pair as usize].cursors[e.prank as usize * 3 + T_STABLE]
                >= self.units.order_idx[ai]
    }

    /// Lines 31–32, with the §6.1 modification under [`Variant::Strict`].
    fn stable_enabled(&self, t: &Tables, p: ProcessId, u: u32, g: GroupId, gm: usize) -> bool {
        match t.variant {
            Variant::Standard | Variant::Pairwise => self
                .tables
                .gamma_at(gm, self.now.0)
                .iter()
                .all(|h| self.units.stab[self.units.adj(u, t.adj_of(g, h))]),
            Variant::Strict => t.adj[g.index()].iter().enumerate().all(|(a, &h)| {
                h == g
                    || self.units.stab[self.units.adj(u, a)]
                    || t.indicators[t.adj_pair[g.index()][a] as usize]
                        .as_ref()
                        .expect("strict cross pairs carry indicators")
                        .indicates(p, self.now)
                        .unwrap_or(false)
            }),
        }
    }

    /// Lines 35–36: every message before `m` in any log at `p` that contains
    /// `m` is locally delivered — the pair's deliver frontier.
    fn deliver_enabled(&self, t: &Tables, p: ProcessId, u: u32, g: GroupId) -> bool {
        let gm = t.gm(g, p);
        for e in &t.per_gp[gm] {
            // Deliberate mutation for explorer smoke-testing: ignore the
            // ordering constraints of the cross-group logs `LOG_{g∩h}`, so
            // overlap replicas may deliver concurrent messages of different
            // groups in different orders. Never enabled in normal builds.
            #[cfg(feature = "mutation")]
            if e.h != g {
                continue;
            }
            let ai = self.units.adj(u, e.adj_idx as usize);
            if self.units.slot[ai] == 0 {
                continue;
            }
            if self.pairs[e.pair as usize].cursors[e.prank as usize * 3 + T_DELIVER]
                < self.units.order_idx[ai]
            {
                return false;
            }
        }
        true
    }

    /// Appends unit `u`'s `Msg` entry to the pair at adjacency `sa` of its
    /// group: fresh slot past the high-water mark, tail of the order. The
    /// new entry cannot extend any frontier (at first-append time every
    /// process relevant to the pair is at most `pending` on `u` — a later
    /// phase would imply it appended the entry itself earlier), so no
    /// cursor re-advance is needed.
    fn append_unit(&mut self, pair: u32, u: u32, sa: usize) {
        let rep = self.units.rep[u as usize];
        let ps = &mut self.pairs[pair as usize];
        let slot = ps.max_slot + 1;
        ps.max_slot = slot;
        let ai = self.units.adj(u, sa);
        self.units.slot[ai] = slot;
        self.units.order_idx[ai] = ps.order.len() as u32;
        ps.order.push(OrderEntry { slot, rep, unit: u });
    }

    /// Adjacency cell of `entry_unit`'s row in `pair` (for order-index
    /// fix-ups when a bump reorders a pair).
    fn entry_adj(&self, t: &Tables, pair: usize, unit: u32) -> usize {
        let (a, b) = t.pairs[pair];
        let g2 = self.units.group[unit as usize];
        let other = if g2 == a { b } else { a };
        self.units.adj(unit, t.adj_of(g2, other))
    }

    /// Advances one frontier cursor to maximality.
    fn advance_from(&self, t: &Tables, pair: usize, q: ProcessId, k: usize, mut f: u32) -> u32 {
        let order = &self.pairs[pair].order;
        while let Some(entry) = order.get(f as usize) {
            if self.unit_phase(t, entry.unit, q) >= THRESHOLDS[k] {
                f += 1;
            } else {
                break;
            }
        }
        f
    }

    /// Re-advances every cursor of `pair` (after a bump reorder).
    fn advance_pair_cursors(&mut self, t: &Tables, pair: u32) {
        let pid = pair as usize;
        for (pr, &q) in t.pair_procs[pid].iter().enumerate() {
            for k in 0..3 {
                let f = self.advance_from(t, pid, q, k, self.pairs[pid].cursors[pr * 3 + k]);
                self.pairs[pid].cursors[pr * 3 + k] = f;
            }
        }
    }

    /// Raises `u`'s phase at `p` and re-advances the cursors the rise can
    /// extend (only `p`'s rows, only thresholds the new phase satisfies).
    fn set_phase_and_advance(&mut self, t: &Tables, p: ProcessId, g: GroupId, u: u32, ph: Phase) {
        let cell = self.units.mem(u, t.rank(g, p));
        self.units.phase[cell] = ph;
        let gm = t.gm(g, p);
        for e in &t.per_gp[gm] {
            for (k, &threshold) in THRESHOLDS.iter().enumerate() {
                if threshold > ph {
                    break;
                }
                let pid = e.pair as usize;
                let idx = e.prank as usize * 3 + k;
                let f = self.advance_from(t, pid, p, k, self.pairs[pid].cursors[idx]);
                self.pairs[pid].cursors[idx] = f;
            }
        }
    }

    /// Line 22–23: locks `u`'s entry in one pair at `max(slot, k)`. If the
    /// slot rises the entry migrates right in the pair order (keys only
    /// grow, so the new index is ≥ the old one); order indices and frontier
    /// cursors are fixed up and re-advanced to stay maximal.
    fn bump_and_lock(&mut self, t: &Tables, u: u32, e: &GpEntry, k: u64) {
        let ai = self.units.adj(u, e.adj_idx as usize);
        if self.units.locked[ai] {
            return;
        }
        self.units.locked[ai] = true;
        let old = self.units.slot[ai];
        debug_assert!(old > 0, "bump_and_lock on an appended entry");
        if k <= old {
            return;
        }
        self.units.slot[ai] = k;
        let pid = e.pair as usize;
        if k > self.pairs[pid].max_slot {
            self.pairs[pid].max_slot = k;
        }
        let i = self.units.order_idx[ai] as usize;
        let moved = OrderEntry {
            slot: k,
            rep: self.pairs[pid].order[i].rep,
            unit: u,
        };
        let mut j = i;
        while let Some(&next) = self.pairs[pid].order.get(j + 1) {
            if next.key() >= moved.key() {
                break;
            }
            self.pairs[pid].order[j] = next;
            let nai = self.entry_adj(t, pid, next.unit);
            self.units.order_idx[nai] = j as u32;
            j += 1;
        }
        self.pairs[pid].order[j] = moved;
        self.units.order_idx[ai] = j as u32;
        if j > i {
            // The entry left positions (i, j]: any frontier spanning them
            // shrinks by the one removed entry, then re-advances (entries
            // that shifted into the prefix may satisfy the threshold).
            let (lo, hi) = (i as u32, j as u32);
            for c in self.pairs[pid].cursors.iter_mut() {
                if *c > lo && *c <= hi {
                    *c -= 1;
                }
            }
            self.advance_pair_cursors(t, e.pair);
        }
    }

    /// Applies `action` at `p` (the `eff:` blocks).
    pub(crate) fn apply(&mut self, p: ProcessId, action: Action) {
        let t = Arc::clone(&self.tables);
        self.actions_of[p.index()] += 1;
        match action {
            Action::Inject(g, m) => {
                let gi = g.index();
                let start = self.next_new[gi];
                debug_assert_eq!(self.lists[gi][start as usize], m, "inject targets next-new");
                let avail = self.lists[gi].len() as u32 - start;
                let len = avail.min(t.batch_max);
                let deg = t.adj[gi].len();
                let members = t.member_list[gi].len();
                let fams = t.fams[gi].len();
                let u = self.units.push(g, start, len, m, deg, members, fams);
                for off in 0..len {
                    let claimed = self.lists[gi][(start + off) as usize];
                    self.unit_of[claimed.0 as usize] = u;
                }
                self.next_new[gi] = start + len;
                for &q in &t.member_list[gi] {
                    self.active[q.index()].push(u);
                }
                let sa = t.adj_of(g, g);
                self.append_unit(t.self_pair[gi], u, sa);
            }
            Action::Pending(m) => {
                let u = self.unit_of[m.0 as usize];
                let g = self.units.group[u as usize];
                let gm = t.gm(g, p);
                let self_pair = t.self_pair[g.index()] as usize;
                for e in &t.per_gp[gm] {
                    let ai = self.units.adj(u, e.adj_idx as usize);
                    if self.units.slot[ai] == 0 {
                        self.append_unit(e.pair, u, e.adj_idx as usize);
                    }
                    // (m, h, i) into LOG_g; a fresh announcement consumes a
                    // slot of the self pair. Positions are non-decreasing
                    // per (unit, h), so equality with the recorded maximum
                    // is exactly the append-idempotence check.
                    let i = self.units.slot[ai];
                    if self.units.ann_max[ai] != i {
                        self.units.ann_max[ai] = i;
                        self.pairs[self_pair].max_slot += 1;
                    }
                }
                self.set_phase_and_advance(&t, p, g, u, Phase::Pending);
            }
            Action::Commit(m) => {
                let u = self.unit_of[m.0 as usize];
                let ui = u as usize;
                let g = self.units.group[ui];
                let gm = t.gm(g, p);
                // line 19: k = max{i : ∃(m,-,i) ∈ LOG_g}
                let deg = self.units.deg(u);
                let mut k = 0u64;
                for a in 0..deg {
                    k = k.max(self.units.ann_max[self.units.adj(u, a)]);
                }
                debug_assert!(k > 0, "own position announcement present");
                // line 20–21: 𝔣 = H(p, g); k ← CONS_{m,𝔣}.propose(k).
                // First proposal wins; 0 encodes "undecided" (slots are ≥ 1).
                let ci = self.units.fam(u, t.fam_rank[gm]);
                let k = if self.units.cons[ci] != 0 {
                    self.units.cons[ci]
                } else {
                    self.units.cons[ci] = k;
                    k
                };
                // lines 22–23
                for e in &t.per_gp[gm] {
                    self.bump_and_lock(&t, u, e, k);
                }
                self.set_phase_and_advance(&t, p, g, u, Phase::Commit);
            }
            Action::Stabilize(m, h) => {
                let u = self.unit_of[m.0 as usize];
                let g = self.units.group[u as usize];
                let ai = self.units.adj(u, t.adj_of(g, h));
                debug_assert!(
                    !self.units.stab[ai],
                    "stabilize pruned to fresh announcements"
                );
                self.units.stab[ai] = true;
                // (m, h) appended to LOG_g consumes a slot of the self pair.
                self.pairs[t.self_pair[g.index()] as usize].max_slot += 1;
            }
            Action::Stable(m) => {
                let u = self.unit_of[m.0 as usize];
                let g = self.units.group[u as usize];
                self.set_phase_and_advance(&t, p, g, u, Phase::Stable);
            }
            Action::Deliver(m) => {
                let u = self.unit_of[m.0 as usize];
                let ui = u as usize;
                let g = self.units.group[ui];
                self.set_phase_and_advance(&t, p, g, u, Phase::Deliver);
                let start = self.units.start[ui] as usize;
                let len = self.units.len[ui] as usize;
                for off in 0..len {
                    let msg = self.lists[g.index()][start + off];
                    self.delivered[p.index()].push(Delivery { msg, at: self.now });
                }
                self.owed[p.index()] -= len as u64;
                let row = &mut self.active[p.index()];
                let pos = row
                    .iter()
                    .position(|&x| x == u)
                    .expect("delivered unit was active");
                row.swap_remove(pos);
                self.inject_cursor[t.gm(g, p)] = (start + len) as u32;
            }
        }
    }

    /// Runs until quiescence or `max_actions`, scheduling every process.
    /// Returns `true` on quiescence.
    pub fn run(&mut self, max_actions: u64) -> bool {
        self.run_only(self.tables.system.universe(), max_actions)
    }

    /// Returns `true` if some live process of `set` still owes a delivery:
    /// a submitted message addressed to it that it has not delivered.
    /// While obligations remain the run is not quiescent — a guard may be
    /// waiting on *time* alone (a γ exclusion, an indicator firing), so the
    /// run loop idles the clock forward instead of stopping.
    pub fn has_obligations(&self, set: ProcessSet) -> bool {
        set.iter()
            .any(|p| self.alive(p) && self.owed[p.index()] > 0)
    }

    /// Runs scheduling only the processes of `set` — the adversarial
    /// schedules that group parallelism (§6.2) and genuineness quantify
    /// over. Returns `true` on quiescence of `set`: no enabled action *and*
    /// no outstanding delivery obligation. A run whose obligations never
    /// resolve (a liveness failure, e.g. an ablated detector) exhausts its
    /// budget and returns `false`.
    pub fn run_only(&mut self, set: ProcessSet, max_actions: u64) -> bool {
        let n = self.tables.n;
        let mut taken = 0u64;
        loop {
            if taken >= max_actions {
                return false;
            }
            // advance time so crash injection precedes eligibility
            let candidates: Vec<(ProcessId, Vec<Action>)> = set
                .iter()
                .filter(|p| self.alive(*p))
                .map(|p| (p, self.enabled_sorted(p)))
                .filter(|(_, a)| !a.is_empty())
                .collect();
            if candidates.is_empty() {
                if !self.has_obligations(set) {
                    return true;
                }
                // Idle tick: guards can be enabled purely by the passage of
                // time (detector stabilisation); let the clock advance.
                self.now = self.now.next();
                taken += 1;
                continue;
            }
            let (p, action) = match self.scheduler {
                ActionScheduler::RoundRobin => {
                    let mut chosen = None;
                    for off in 0..n {
                        let idx = (self.rr_cursor + off) % n;
                        if let Some((p, acts)) = candidates.iter().find(|(p, _)| p.index() == idx) {
                            self.rr_cursor = (idx + 1) % n;
                            chosen = Some((*p, acts[0]));
                            break;
                        }
                    }
                    chosen.expect("candidates non-empty")
                }
                ActionScheduler::Random => {
                    let (p, acts) = &candidates[self.rng.gen_range(0..candidates.len())];
                    (*p, acts[self.rng.gen_range(0..acts.len())])
                }
            };
            self.now = self.now.next();
            if self.alive(p) {
                self.apply(p, action);
            }
            taken += 1;
        }
    }

    /// The sustained-load driver: fires the exact action sequence of
    /// [`Runtime::run_only`] under the round-robin scheduler, but amortizes
    /// candidate discovery. `run_only` materialises every process's
    /// enabled-action list on every step — O(processes × actions) of
    /// redundant guard evaluation per action fired — which is what the
    /// explorer's adversarial schedules need, not what a serving loop
    /// needs. Here the round-robin scan resumes at the stored cursor and
    /// fires the first enabled action it meets, so under load each step
    /// costs one process's guard evaluation. Returns `true` on quiescence
    /// of `set`, `false` on budget exhaustion.
    pub fn run_sustained(&mut self, set: ProcessSet, max_actions: u64) -> bool {
        let n = self.tables.n;
        let mut taken = 0u64;
        'steps: loop {
            if taken >= max_actions {
                return false;
            }
            for off in 0..n {
                let idx = (self.rr_cursor + off) % n;
                let p = ProcessId(idx as u32);
                if !set.contains(p) || !self.alive(p) {
                    continue;
                }
                // The minimum enabled action is the `acts[0]` the
                // round-robin arm of `run_only` fires.
                let mut first: Option<Action> = None;
                self.enabled_each(p, &mut |a| {
                    if first.is_none_or(|b| a < b) {
                        first = Some(a);
                    }
                });
                let Some(action) = first else { continue };
                self.rr_cursor = (idx + 1) % n;
                self.now = self.now.next();
                if self.alive(p) {
                    self.apply(p, action);
                }
                taken += 1;
                continue 'steps;
            }
            if !self.has_obligations(set) {
                return true;
            }
            // Idle tick, as in `run_only`: a guard may wait on time alone.
            self.now = self.now.next();
            taken += 1;
        }
    }

    /// Runs with every scheduling decision delegated to `source`,
    /// scheduling only the processes of `set`, until quiescence of `set`,
    /// budget exhaustion, or the source stopping.
    ///
    /// The choice space handed to the source lists each live process of
    /// `set` with at least one enabled action, in ascending process order,
    /// paired with its enabled-action count; sub-choice `c` fires the
    /// `c`-th enabled action in the deterministic `Action` order (so
    /// sub-choice `0` is the action the round-robin scheduler would fire).
    /// Idle ticks — the clock advancing while guards wait on time alone —
    /// happen automatically and are not scheduling choices.
    pub fn run_with_source<S: ScheduleSource>(
        &mut self,
        set: ProcessSet,
        source: &mut S,
        max_actions: u64,
    ) -> RunOutcome {
        let mut options = Vec::new();
        let mut taken = 0u64;
        loop {
            if taken >= max_actions {
                return RunOutcome::BudgetExhausted;
            }
            self.options_into(set, &mut options);
            if options.is_empty() {
                if !self.has_obligations(set) {
                    return RunOutcome::Quiescent;
                }
                self.idle_tick();
                taken += 1;
                continue;
            }
            let Some((idx, choice)) = source.next_choice(&options) else {
                return RunOutcome::Stopped;
            };
            self.fire_enabled(options[idx].0, choice);
            taken += 1;
        }
    }

    /// The current choice space over `set`, written into a caller-provided
    /// buffer: each live process with at least one enabled action, in
    /// ascending process order, paired with its enabled-action count. This
    /// is the allocation-free option enumerator the `gam-engine` hot loop
    /// uses; sub-choice `c` corresponds to the `c`-th enabled action in the
    /// deterministic `Action` order (fired by [`Runtime::fire_enabled`]).
    pub fn options_into(&self, set: ProcessSet, out: &mut Vec<(ProcessId, usize)>) {
        out.clear();
        for p in set {
            if self.alive(p) {
                let n = self.enabled_count(p);
                if n > 0 {
                    out.push((p, n));
                }
            }
        }
    }

    /// Describes the current choice space over `set` for the explorer's
    /// independence relation: one [`ActionDesc`] per enabled action, in
    /// exactly the flat order of [`Runtime::options_into`] followed by
    /// sub-choice index — processes ascending, and within a process the
    /// deterministic `Action` order that [`Runtime::fire_enabled`] indexes.
    pub fn describe_enabled(&self, set: ProcessSet, out: &mut Vec<ActionDesc>) {
        out.clear();
        for p in set {
            if !self.alive(p) {
                continue;
            }
            for a in self.enabled_sorted(p) {
                let (kind, group, rep, aux) = match a {
                    Action::Inject(g, m) => (ActionKind::Inject, g, m, 0),
                    Action::Pending(m) => (ActionKind::Pending, self.arena.group(m), m, 0),
                    Action::Commit(m) => (ActionKind::Commit, self.arena.group(m), m, 0),
                    Action::Stabilize(m, h) => (ActionKind::Stabilize, self.arena.group(m), m, h.0),
                    Action::Stable(m) => (ActionKind::Stable, self.arena.group(m), m, 0),
                    Action::Deliver(m) => (ActionKind::Deliver, self.arena.group(m), m, 0),
                };
                out.push(ActionDesc {
                    pid: p,
                    kind,
                    group,
                    rep,
                    aux,
                });
            }
        }
    }

    /// Fires the `choice`-th enabled action of `p` (in the deterministic
    /// `Action` order; out-of-range choices clamp to the last action, as
    /// in replay). Advances the clock by one tick first, so a process that
    /// crashes exactly at the new time consumes the step without effect —
    /// the same semantics as the built-in run loops.
    pub fn fire_enabled(&mut self, p: ProcessId, choice: usize) -> Fired {
        let mut acts = std::mem::take(&mut self.scratch);
        acts.clear();
        self.enabled_each(p, &mut |a| acts.push(a));
        acts.sort_unstable();
        self.now = self.now.next();
        if acts.is_empty() || !self.alive(p) {
            self.scratch = acts;
            return Fired::default();
        }
        let action = acts[choice.min(acts.len() - 1)];
        self.scratch = acts;
        let (delivered, delivered_count) = match action {
            Action::Deliver(m) => {
                let u = self.unit_of[m.0 as usize];
                (Some(m), self.units.len[u as usize])
            }
            _ => (None, 0),
        };
        self.apply(p, action);
        Fired {
            fired: true,
            delivered,
            delivered_count,
        }
    }

    /// Advances the clock by one tick without firing an action. Guards can
    /// become enabled purely by the passage of time (detector
    /// stabilisation, γ exclusions), so the run loops idle instead of
    /// stopping while obligations remain.
    pub fn idle_tick(&mut self) {
        self.now = self.now.next();
    }

    /// Returns `true` when `set` has quiesced: no live process of `set` has
    /// an enabled action *and* none owes a delivery (see
    /// [`Runtime::has_obligations`]).
    pub fn is_quiescent_in(&self, set: ProcessSet) -> bool {
        set.iter()
            .all(|p| !self.alive(p) || self.enabled_count(p) == 0)
            && !self.has_obligations(set)
    }

    /// Produces the report for property checking.
    pub fn report(&self, quiescent: bool) -> RunReport {
        RunReport {
            system: self.tables.system.clone(),
            pattern: self.tables.pattern.clone(),
            messages: self.arena.to_vec(),
            multicast_at: self.multicast_at.to_vec(),
            delivered: self.delivered.iter().cloned().collect(),
            actions_of: self.actions_of.iter().copied().collect(),
            quiescent,
        }
    }

    /// Batch-occupancy histogram of the units created so far:
    /// `out[w]` counts units spanning exactly `w` messages (index 0 is
    /// unused — units are never empty). The bench records this per case to
    /// show how full the `batch_max` window actually ran.
    pub fn unit_width_histogram(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for u in 0..self.units.count() {
            let w = self.units.len[u] as usize;
            if out.len() <= w {
                out.resize(w + 1, 0);
            }
            out[w] += 1;
        }
        out
    }

    /// Walks every piece of evolving runtime state as a deterministic `u64`
    /// word stream: the clock, every shared object (pair orders and slot
    /// high-water marks, per-unit announcements/stabilisations/consensus
    /// cells, lists), every per-process table (phases, deliveries, action
    /// counts). Two runtimes over the same scenario emitting the same
    /// stream behave identically under any deterministic continuation —
    /// the detector oracles are pure functions of the (fixed) pattern and
    /// the clock, and the remaining fields (frontier cursors, inject
    /// cursors, owed counts, active lists) are derived caches of the walked
    /// state, so nothing behavioral lives outside this walk. Pairs are
    /// visited in interned id order, which is their lexicographic key order
    /// — the same canonical order the seed's `BTreeMap` walk used; each
    /// variable-length section is length-prefixed so the stream is
    /// prefix-free.
    ///
    /// The engine folds this stream into the executor's state fingerprint,
    /// which the explorer's visited-set dedup prunes on.
    pub fn fold_state(&self, push: &mut impl FnMut(u64)) {
        let t = &*self.tables;
        push(self.now.0);
        // Shared pair orders, in interned (lexicographic key) order.
        push(self.pairs.len() as u64);
        for (pid, ps) in self.pairs.iter().enumerate() {
            let (a, b) = t.pairs[pid];
            push(u64::from(a.0));
            push(u64::from(b.0));
            push(ps.max_slot);
            push(ps.order.len() as u64);
            for entry in &ps.order {
                push(entry.slot);
                push(entry.rep.0);
                push(u64::from(
                    self.units.locked[self.entry_adj(t, pid, entry.unit)],
                ));
            }
        }
        // Units: identity, announcements, stabilisations, consensus cells
        // and per-member phases, in unit id (creation) order — creation
        // order is itself a function of the walked state, so the stream
        // stays canonical.
        push(self.units.count() as u64);
        for u in 0..self.units.count() as u32 {
            let ui = u as usize;
            push(u64::from(self.units.group[ui].0));
            push(u64::from(self.units.start[ui]));
            push(u64::from(self.units.len[ui]));
            let deg = self.units.deg(u);
            for a in 0..deg {
                let ai = self.units.adj(u, a);
                push(self.units.ann_max[ai]);
                push(u64::from(self.units.stab[ai]));
            }
            let g = self.units.group[ui];
            for r in 0..t.member_list[g.index()].len() {
                push(self.units.phase[self.units.mem(u, r as u16)] as u64);
            }
            for fr in 0..t.fams[g.index()].len() as u16 {
                push(self.units.cons[self.units.fam(u, fr)]);
            }
        }
        // Group submission lists (append-only; constant within a run but
        // part of the machine nonetheless).
        push(self.lists.len() as u64);
        for list in self.lists.iter() {
            push(list.len() as u64);
            for m in list {
                push(m.0);
            }
        }
        // Per-process protocol state.
        for seq in &self.delivered {
            push(seq.len() as u64);
            for d in seq {
                push(d.msg.0);
                push(d.at.0);
            }
        }
        for n in &self.actions_of {
            push(*n);
        }
    }

    /// Analytic snapshot cost in **heap** bytes, as `(copied, deep)`: what
    /// a `Clone` of this runtime actually copies beyond the inline struct
    /// (chunk pointer tables, plain `Vec` heap) versus what a deep
    /// per-element copy of the same logical state would have copied. The
    /// fixed-size struct itself (clock, cursors, rng, the `CowVec`/`Arc`
    /// headers) moves with *any* snapshot representation and is excluded
    /// from both sides — the ratio measures the heap traffic the
    /// copy-on-write layout saves, which is what a profiler sees. The
    /// explorer sums these at every branch point; their ratio is the
    /// snapshot-bytes headline of the DFS bench.
    pub fn snapshot_cost_bytes(&self) -> (u64, u64) {
        use std::mem::size_of;
        // Plain `Vec` fields a clone deep-copies in either layout.
        let base = (self.next_new.len() * size_of::<u32>()) as u64
            + (self.scratch.len() * size_of::<Action>()) as u64;
        let mut copied = base;
        let mut deep = base;
        // Chunked columns: a clone copies the pointer tables, a deep copy
        // the elements.
        copied += self.pairs.shallow_bytes()
            + self.units.shallow_bytes()
            + self.arena.shallow_bytes()
            + self.unit_of.shallow_bytes()
            + self.inject_cursor.shallow_bytes()
            + self.active.shallow_bytes()
            + self.delivered.shallow_bytes()
            + self.actions_of.shallow_bytes()
            + self.owed.shallow_bytes();
        deep += self.pairs.deep_bytes()
            + self.units.deep_bytes()
            + self.arena.deep_bytes()
            + self.unit_of.deep_bytes()
            + self.inject_cursor.deep_bytes()
            + self.active.deep_bytes()
            + self.delivered.deep_bytes()
            + self.actions_of.deep_bytes()
            + self.owed.deep_bytes();
        // Per-row heap payloads behind the chunked rows.
        for ps in self.pairs.iter() {
            deep += (ps.order.len() * size_of::<OrderEntry>() + ps.cursors.len() * size_of::<u32>())
                as u64;
        }
        for row in self.active.iter() {
            deep += (row.len() * size_of::<u32>()) as u64;
        }
        for seq in self.delivered.iter() {
            deep += (seq.len() * size_of::<Delivery>()) as u64;
        }
        // Arc-shared submission state: a clone bumps refcounts, a deep
        // copy would copy the lists.
        deep += (self.multicast_at.len() * size_of::<Time>()) as u64;
        for list in self.lists.iter() {
            deep += ((list.len() + 1) * size_of::<MessageId>()) as u64;
        }
        (copied, deep)
    }

    /// Convenience: run to quiescence (panicking if the budget is exhausted)
    /// and report.
    ///
    /// # Panics
    ///
    /// Panics if the run does not quiesce within `max_actions` — for
    /// experiments that *expect* blocking, use [`Runtime::run`] directly.
    pub fn run_to_quiescence(&mut self, max_actions: u64) -> RunReport {
        let q = self.run(max_actions);
        assert!(q, "runtime did not quiesce within {max_actions} actions");
        self.report(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gam_groups::topology;

    fn runtime(system: &GroupSystem, pattern: FailurePattern) -> Runtime {
        Runtime::new(system, pattern, RuntimeConfig::default())
    }

    #[test]
    fn run_sustained_matches_run_only_round_robin() {
        // The sustained driver is the same scheduler with candidate
        // discovery amortized: on a clone of the same runtime it must fire
        // the identical action sequence, hence reach the identical state.
        for gs in [
            topology::fig1(),
            topology::ring(3, 2),
            topology::two_overlapping(3, 1),
        ] {
            let mut a = runtime(&gs, FailurePattern::all_correct(gs.universe()));
            for (g, members) in gs.iter() {
                a.multicast(members.min().unwrap(), g, u64::from(g.0));
            }
            let mut b = a.clone();
            assert!(a.run_only(gs.universe(), 500_000), "run_only quiesces");
            assert!(
                b.run_sustained(gs.universe(), 500_000),
                "sustained quiesces"
            );
            let fold = |rt: &Runtime| {
                let mut v = Vec::new();
                rt.fold_state(&mut |w| v.push(w));
                v
            };
            assert_eq!(fold(&a), fold(&b), "state diverged on {gs:?}");
        }
    }

    #[test]
    fn single_group_single_message() {
        let gs = topology::single_group(3);
        let mut rt = runtime(&gs, FailurePattern::all_correct(gs.universe()));
        let m = rt.multicast(ProcessId(0), GroupId(0), 7);
        let report = rt.run_to_quiescence(10_000);
        for p in gs.universe() {
            assert_eq!(report.delivered_by(p), vec![m], "{p}");
        }
    }

    #[test]
    fn single_group_orders_messages_identically() {
        let gs = topology::single_group(4);
        let mut rt = runtime(&gs, FailurePattern::all_correct(gs.universe()));
        let m1 = rt.multicast(ProcessId(0), GroupId(0), 1);
        let m2 = rt.multicast(ProcessId(1), GroupId(0), 2);
        let m3 = rt.multicast(ProcessId(2), GroupId(0), 3);
        let report = rt.run_to_quiescence(100_000);
        let expected = vec![m1, m2, m3];
        for p in gs.universe() {
            assert_eq!(report.delivered_by(p), expected, "{p}");
        }
    }

    #[test]
    fn disjoint_groups_progress_independently() {
        let gs = topology::disjoint(3, 2);
        let mut rt = runtime(&gs, FailurePattern::all_correct(gs.universe()));
        let mut per_group = Vec::new();
        for g in 0..3u32 {
            let src = gs.members(GroupId(g)).min().unwrap();
            per_group.push(rt.multicast(src, GroupId(g), g as u64));
        }
        let report = rt.run_to_quiescence(100_000);
        for (g, m) in per_group.iter().enumerate() {
            for p in gs.members(GroupId(g as u32)) {
                assert_eq!(report.delivered_by(p), vec![*m]);
            }
        }
    }

    #[test]
    fn fig1_cross_group_messages_deliver_everywhere() {
        let gs = topology::fig1();
        let mut rt = runtime(&gs, FailurePattern::all_correct(gs.universe()));
        // one message per group, from its minimum member
        let ms: Vec<MessageId> = (0..4u32)
            .map(|g| {
                let src = gs.members(GroupId(g)).min().unwrap();
                rt.multicast(src, GroupId(g), g as u64)
            })
            .collect();
        let report = rt.run_to_quiescence(1_000_000);
        for (g, m) in ms.iter().enumerate() {
            for p in gs.members(GroupId(g as u32)) {
                assert!(report.has_delivered(p, *m), "{p} missing {m}");
            }
        }
    }

    #[test]
    fn ring_topology_with_contention_quiesces() {
        // The minimal cyclic topology: messages in all groups concurrently.
        let gs = topology::ring(3, 2);
        for seed in 0..5u64 {
            let mut rt = Runtime::new(
                &gs,
                FailurePattern::all_correct(gs.universe()),
                RuntimeConfig {
                    scheduler: ActionScheduler::Random,
                    seed,
                    ..Default::default()
                },
            );
            let ms: Vec<MessageId> = (0..3u32)
                .map(|g| {
                    let src = gs.members(GroupId(g)).min().unwrap();
                    rt.multicast(src, GroupId(g), g as u64)
                })
                .collect();
            let report = rt.run_to_quiescence(1_000_000);
            for (g, m) in ms.iter().enumerate() {
                for p in gs.members(GroupId(g as u32)) {
                    assert!(report.has_delivered(p, *m), "seed {seed}: {p} missing {m}");
                }
            }
        }
    }

    #[test]
    fn group_sequential_discipline_allows_bursts() {
        // Multiple messages submitted to the same group up-front: the
        // Proposition 1 layer sequences them.
        let gs = topology::two_overlapping(3, 1);
        let mut rt = runtime(&gs, FailurePattern::all_correct(gs.universe()));
        let mut ms = Vec::new();
        for i in 0..5u64 {
            ms.push(rt.multicast(ProcessId(0), GroupId(0), i));
        }
        let report = rt.run_to_quiescence(1_000_000);
        for p in gs.members(GroupId(0)) {
            assert_eq!(report.delivered_by(p), ms, "{p}");
        }
    }

    #[test]
    fn crashed_intersection_does_not_block_fig1() {
        // p2 = g1∩g2 crashes immediately after a message to g1 is submitted.
        // γ eventually reports the families through g1∩g2 faulty; the
        // correct members of g1 must still deliver.
        let gs = topology::fig1();
        let pattern = FailurePattern::from_crashes(gs.universe(), [(ProcessId(1), Time(2))]);
        let mut rt = runtime(&gs, pattern);
        let m = rt.multicast(ProcessId(0), GroupId(0), 9);
        let report = rt.run_to_quiescence(1_000_000);
        // correct members of g1 = {p1}
        assert!(report.has_delivered(ProcessId(0), m));
    }

    #[test]
    fn multicast_rejects_non_member() {
        let gs = topology::fig1();
        let mut rt = runtime(&gs, FailurePattern::all_correct(gs.universe()));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rt.multicast(ProcessId(4), GroupId(0), 0) // p5 ∉ g1
        }));
        assert!(result.is_err());
    }

    #[test]
    fn report_accessors() {
        let gs = topology::single_group(2);
        let mut rt = runtime(&gs, FailurePattern::all_correct(gs.universe()));
        let m = rt.multicast(ProcessId(0), GroupId(0), 1);
        let report = rt.run_to_quiescence(10_000);
        assert!(report.first_delivery(m).is_some());
        assert!(report.has_delivered(ProcessId(1), m));
        assert!(report.quiescent);
        assert!(report.actions_of.iter().sum::<u64>() > 0);
    }

    #[test]
    fn batching_preserves_per_group_delivery_sequences() {
        // The same burst under batch sizes 0..4 delivers exactly the same
        // per-group sequences; only the unit granularity differs.
        let gs = topology::fig1();
        let submit = |rt: &mut Runtime| {
            let mut ms = Vec::new();
            for i in 0..6u64 {
                ms.push(rt.multicast(ProcessId(0), GroupId(0), i));
            }
            for i in 0..3u64 {
                ms.push(rt.multicast(ProcessId(2), GroupId(2), 100 + i));
            }
            ms
        };
        let mut reference: Option<Vec<Vec<Vec<MessageId>>>> = None;
        for batch in [0u32, 1, 2, 4] {
            let mut rt = Runtime::new(
                &gs,
                FailurePattern::all_correct(gs.universe()),
                RuntimeConfig {
                    batch_max: batch,
                    ..Default::default()
                },
            );
            submit(&mut rt);
            let report = rt.run_to_quiescence(1_000_000);
            // Units deliver atomically, so the cross-group interleave at an
            // overlap process may legally shift with the batch size; the
            // guarantee is per-group: project each local sequence onto each
            // destination group.
            let seqs: Vec<Vec<Vec<MessageId>>> = gs
                .universe()
                .iter()
                .map(|p| {
                    (0..gs.len())
                        .map(|g| {
                            report
                                .delivered_by(p)
                                .into_iter()
                                .filter(|m| {
                                    report.messages[m.0 as usize].group == GroupId(g as u32)
                                })
                                .collect()
                        })
                        .collect()
                })
                .collect();
            match &reference {
                None => reference = Some(seqs),
                Some(r) => assert_eq!(r, &seqs, "batch_max = {batch}"),
            }
        }
    }

    #[test]
    fn batched_fire_reports_unit_width() {
        let gs = topology::single_group(2);
        let mut rt = Runtime::new(
            &gs,
            FailurePattern::all_correct(gs.universe()),
            RuntimeConfig {
                batch_max: 3,
                ..Default::default()
            },
        );
        for i in 0..3u64 {
            rt.multicast(ProcessId(0), GroupId(0), i);
        }
        let q = rt.run(1_000_000);
        assert!(q);
        let report = rt.report(true);
        // All three messages travel as one unit: each member delivers all
        // of them at a single instant.
        for p in gs.universe() {
            let at: Vec<Time> = report.delivered[p.index()].iter().map(|d| d.at).collect();
            assert_eq!(at.len(), 3);
            assert!(at.windows(2).all(|w| w[0] == w[1]), "atomic unit delivery");
        }
    }

    #[test]
    fn unbatched_and_batch_one_fold_identically() {
        // batch_max 0 and 1 are the same machine; their digest streams
        // must agree step for step.
        let gs = topology::ring(3, 2);
        let mk = |batch: u32| {
            let mut rt = Runtime::new(
                &gs,
                FailurePattern::all_correct(gs.universe()),
                RuntimeConfig {
                    batch_max: batch,
                    ..Default::default()
                },
            );
            for g in 0..3u32 {
                let src = gs.members(GroupId(g)).min().unwrap();
                rt.multicast(src, GroupId(g), u64::from(g));
            }
            rt.run(100_000);
            let mut words = Vec::new();
            rt.fold_state(&mut |w| words.push(w));
            words
        };
        assert_eq!(mk(0), mk(1));
    }
}
