//! The Algorithm 1 runtime — genuine atomic multicast from `μ`.
//!
//! This module executes Algorithm 1 of the paper at the shared-memory level:
//! the logs `LOG_{g∩h}` and consensus objects `CONS_{m,𝔣}` are linearizable
//! shared objects, and each simulator step executes one *enabled action*
//! (`multicast`, `pending`, `commit`, `stabilize`, `stable`, `deliver`) at
//! one process, exactly as the `pre:`/`eff:` pseudo-code prescribes. Since
//! one operation applies at a time, the execution *is* the linearization the
//! correctness proofs of §4.4 reason over.
//!
//! The client layer implements the Proposition 1 reduction from vanilla to
//! *group sequential* atomic multicast: each group `g` has a shared list
//! `L_g`; a submission appends to `L_g`, and members of `g` help-multicast
//! listed messages in order, each one only after its predecessor was
//! delivered locally.
//!
//! Two variations are provided as modes (§6):
//! - [`Variant::Strict`] — real-time order, replacing the line-32 guard with
//!   "`(m,h) ∈ LOG_g` or `1^{g∩h}` fired", for **all** `h` intersecting `g`;
//! - [`Variant::Pairwise`] — the pairwise-ordering weakening of §7, which
//!   needs no `γ` (the runtime behaves as if `ℱ = ∅`).

use crate::message::{Datum, MessageId, MessageInfo};
use crate::phase::Phase;
use gam_detectors::{IndicatorMode, IndicatorOracle, MuConfig, MuOracle};
use gam_groups::{GroupId, GroupSet, GroupSystem};
use gam_kernel::{FailurePattern, ProcessId, ProcessSet, RunOutcome, ScheduleSource, Time};
use gam_objects::{Consensus, Log, Pos};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Which variation of atomic multicast the runtime solves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Variant {
    /// Vanilla (global total order) genuine atomic multicast — Algorithm 1
    /// with the candidate `μ`.
    #[default]
    Standard,
    /// Strict (real-time) ordering — §6.1, requires `μ ∧ (∧ 1^{g∩h})`.
    Strict,
    /// Pairwise ordering — §7, requires only `(∧ Σ_{g∩h}) ∧ (∧ Ω_g)`;
    /// delivery cycles across ≥ 3 groups are permitted.
    Pairwise,
}

/// How the runtime schedules enabled actions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ActionScheduler {
    /// Rotate over processes; fire the least enabled action (deterministic).
    #[default]
    RoundRobin,
    /// Pick a random process with enabled actions, then a random action.
    Random,
}

/// Configuration of a [`Runtime`].
#[derive(Debug, Clone, Copy, Default)]
pub struct RuntimeConfig {
    /// Which problem variation to solve.
    pub variant: Variant,
    /// Tuning of the `μ` oracle components.
    pub mu: MuConfig,
    /// Detection latency of the `1^{g∩h}` indicators (strict variant only).
    pub indicator_delay: u64,
    /// Scheduling policy.
    pub scheduler: ActionScheduler,
    /// Seed for the random scheduler.
    pub seed: u64,
}

/// An enabled action of Algorithm 1, at one process, about one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Action {
    /// Help-multicast the next listed message of `L_g` (line 7 + Prop. 1).
    Inject(GroupId, MessageId),
    /// Lines 8–15.
    Pending(MessageId),
    /// Lines 16–24.
    Commit(MessageId),
    /// Lines 25–29, for group `h`.
    Stabilize(MessageId, GroupId),
    /// Lines 30–33.
    Stable(MessageId),
    /// Lines 34–37.
    Deliver(MessageId),
}

/// What a single [`Runtime::fire_enabled`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Fired {
    /// Whether an action actually fired (`false` when the process crashed
    /// at the very tick of its step — the step is consumed but has no
    /// effect, exactly as in the run loops).
    pub fired: bool,
    /// The message delivered by the action, if it was a `Deliver`.
    pub delivered: Option<MessageId>,
}

/// A recorded delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// The delivered message.
    pub msg: MessageId,
    /// When the delivery happened.
    pub at: Time,
}

/// Everything a property checker needs to know about a finished run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The group system of the run.
    pub system: GroupSystem,
    /// The failure pattern of the run.
    pub pattern: FailurePattern,
    /// Message metadata, indexed by [`MessageId`].
    pub messages: Vec<MessageInfo>,
    /// Submission (user-level multicast) time per message.
    pub multicast_at: Vec<Time>,
    /// Per-process local delivery sequences, in delivery order.
    pub delivered: Vec<Vec<Delivery>>,
    /// Per-process action counts (the "steps" minimality quantifies over).
    pub actions_of: Vec<u64>,
    /// Whether the run reached quiescence within its budget.
    pub quiescent: bool,
}

impl RunReport {
    /// The local delivery sequence of `p`, as message ids.
    pub fn delivered_by(&self, p: ProcessId) -> Vec<MessageId> {
        self.delivered[p.index()].iter().map(|d| d.msg).collect()
    }

    /// Whether `p` delivered `m`.
    pub fn has_delivered(&self, p: ProcessId, m: MessageId) -> bool {
        self.delivered[p.index()].iter().any(|d| d.msg == m)
    }

    /// The earliest delivery time of `m` across processes, if delivered.
    pub fn first_delivery(&self, m: MessageId) -> Option<Time> {
        self.delivered
            .iter()
            .flatten()
            .filter(|d| d.msg == m)
            .map(|d| d.at)
            .min()
    }
}

/// The Algorithm 1 runtime. See the module docs.
#[derive(Debug, Clone)]
pub struct Runtime {
    system: GroupSystem,
    pattern: FailurePattern,
    mu: MuOracle,
    indicators: BTreeMap<(GroupId, GroupId), IndicatorOracle>,
    variant: Variant,
    scheduler: ActionScheduler,
    now: Time,
    // Shared objects.
    logs: BTreeMap<(GroupId, GroupId), Log<Datum>>,
    cons: BTreeMap<(MessageId, GroupSet), Consensus<u64>>,
    lists: Vec<Vec<MessageId>>,
    // Message metadata.
    messages: Vec<MessageInfo>,
    multicast_at: Vec<Time>,
    // Per-process state.
    phase: Vec<BTreeMap<MessageId, Phase>>,
    delivered: Vec<Vec<Delivery>>,
    actions_of: Vec<u64>,
    rr_cursor: usize,
    rng: StdRng,
}

impl Runtime {
    /// Builds a runtime over `system` with the given failure pattern.
    pub fn new(system: &GroupSystem, pattern: FailurePattern, config: RuntimeConfig) -> Self {
        let n = system.universe().max().map_or(0, |p| p.index() + 1);
        let mu = MuOracle::new(system, pattern.clone(), config.mu);
        let mut indicators = BTreeMap::new();
        if config.variant == Variant::Strict {
            for (g, h) in system.intersecting_pairs() {
                indicators.insert(
                    (g, h),
                    IndicatorOracle::new(
                        system.intersection(g, h),
                        system.members(g) | system.members(h),
                        pattern.clone(),
                        config.indicator_delay,
                        IndicatorMode::Truthful,
                    ),
                );
            }
        }
        let mut logs = BTreeMap::new();
        for (g, _) in system.iter() {
            logs.insert((g, g), Log::new());
        }
        for (g, h) in system.intersecting_pairs() {
            logs.insert((g, h), Log::new());
        }
        Runtime {
            system: system.clone(),
            pattern,
            mu,
            indicators,
            variant: config.variant,
            scheduler: config.scheduler,
            now: Time::ZERO,
            logs,
            cons: BTreeMap::new(),
            lists: vec![Vec::new(); system.len()],
            messages: Vec::new(),
            multicast_at: Vec::new(),
            phase: vec![BTreeMap::new(); n],
            delivered: vec![Vec::new(); n],
            actions_of: vec![0; n],
            rr_cursor: 0,
            rng: StdRng::seed_from_u64(config.seed),
        }
    }

    /// The current global time (one tick per action or submission).
    pub fn now(&self) -> Time {
        self.now
    }

    /// The group system of the runtime.
    pub fn system(&self) -> &GroupSystem {
        &self.system
    }

    /// The failure pattern driving the run.
    pub fn pattern(&self) -> &FailurePattern {
        &self.pattern
    }

    fn log_key(&self, g: GroupId, h: GroupId) -> (GroupId, GroupId) {
        if g <= h {
            (g, h)
        } else {
            (h, g)
        }
    }

    fn log(&self, g: GroupId, h: GroupId) -> &Log<Datum> {
        &self.logs[&self.log_key(g, h)]
    }

    fn log_mut(&mut self, g: GroupId, h: GroupId) -> &mut Log<Datum> {
        let key = self.log_key(g, h);
        self.logs
            .get_mut(&key)
            .expect("LOG_{g∩h} is created for every intersecting pair at init")
    }

    fn phase_of(&self, p: ProcessId, m: MessageId) -> Phase {
        self.phase[p.index()]
            .get(&m)
            .copied()
            .unwrap_or(Phase::Start)
    }

    fn alive(&self, p: ProcessId) -> bool {
        !self.pattern.is_crashed(p, self.now)
    }

    /// Submits a user-level `multicast(m)` from `src` to `group` (the
    /// Proposition 1 client layer: appends to the shared list `L_g`).
    ///
    /// # Panics
    ///
    /// Panics if `src` is not a member of `group` (closed dissemination
    /// model) or has already crashed.
    pub fn multicast(&mut self, src: ProcessId, group: GroupId, payload: u64) -> MessageId {
        assert!(
            self.system.members(group).contains(src),
            "{src} ∉ {group}: closed model requires src(m) ∈ dst(m)"
        );
        self.now = self.now.next();
        assert!(self.alive(src), "{src} has crashed; it cannot multicast");
        let id = MessageId(self.messages.len() as u64);
        self.messages.push(MessageInfo {
            src,
            group,
            payload,
        });
        self.multicast_at.push(self.now);
        self.lists[group.index()].push(id);
        id
    }

    /// The groups of `p` (`𝒢(p)`).
    fn groups_of(&self, p: ProcessId) -> GroupSet {
        self.system.groups_of(p)
    }

    /// Enumerates the actions currently enabled at `p`.
    fn enabled_actions(&self, p: ProcessId) -> Vec<Action> {
        let mut out = Vec::new();
        let my_groups = self.groups_of(p);
        // Inject: the first locally-undelivered message of L_g, unless it is
        // already in LOG_g.
        for g in my_groups {
            if let Some(m) = self.lists[g.index()]
                .iter()
                .find(|m| self.phase_of(p, **m) != Phase::Deliver)
            {
                if !self.log(g, g).contains(&Datum::Msg(*m)) {
                    out.push(Action::Inject(g, *m));
                }
            }
        }
        // Per-message actions, for messages addressed to p.
        for (i, info) in self.messages.iter().enumerate() {
            let m = MessageId(i as u64);
            let g = info.group;
            if !my_groups.contains(g) {
                continue;
            }
            match self.phase_of(p, m) {
                Phase::Start => {
                    if self.pending_enabled(p, m, g) {
                        out.push(Action::Pending(m));
                    }
                }
                Phase::Pending => {
                    if self.commit_enabled(p, m, g) {
                        out.push(Action::Commit(m));
                    }
                }
                Phase::Commit => {
                    for h in my_groups {
                        if self.stabilize_enabled(p, m, g, h) {
                            out.push(Action::Stabilize(m, h));
                        }
                    }
                    if self.stable_enabled(p, m, g) {
                        out.push(Action::Stable(m));
                    }
                }
                Phase::Stable => {
                    if self.deliver_enabled(p, m, g) {
                        out.push(Action::Deliver(m));
                    }
                }
                Phase::Deliver => {}
            }
        }
        out
    }

    /// Lines 9–11.
    fn pending_enabled(&self, p: ProcessId, m: MessageId, g: GroupId) -> bool {
        let log = self.log(g, g);
        if !log.contains(&Datum::Msg(m)) {
            return false;
        }
        // ∀ m' <_{LOG_g} m (message entries): PHASE[m'] ≥ commit
        self.msgs_before(g, g, m)
            .into_iter()
            .all(|m2| self.phase_of(p, m2) >= Phase::Commit)
    }

    /// Message entries of `LOG_{g∩h}` strictly before `m` in log order.
    fn msgs_before(&self, g: GroupId, h: GroupId, m: MessageId) -> Vec<MessageId> {
        let log = self.log(g, h);
        let me = Datum::Msg(m);
        log.iter_in_order()
            .filter(|d| log.before(d, &me))
            .filter_map(|d| d.as_msg())
            .collect()
    }

    /// `γ(g)` as seen by `p` now — for the pairwise variant, always empty.
    fn gamma_groups(&self, p: ProcessId, g: GroupId) -> GroupSet {
        match self.variant {
            Variant::Pairwise => GroupSet::EMPTY,
            _ => self.mu.gamma_groups(p, g, self.now),
        }
    }

    /// Lines 17–18.
    fn commit_enabled(&self, p: ProcessId, m: MessageId, g: GroupId) -> bool {
        let log = self.log(g, g);
        self.gamma_groups(p, g).iter().all(|h| {
            log.iter_in_order()
                .any(|d| matches!(d, Datum::PosAnn(m2, h2, _) if *m2 == m && *h2 == h))
        })
    }

    /// Lines 26–28 (plus a progress guard: the announcement is not yet in
    /// `LOG_g` — appending is idempotent, so this only prunes no-op actions).
    fn stabilize_enabled(&self, p: ProcessId, m: MessageId, g: GroupId, h: GroupId) -> bool {
        if self.log(g, g).contains(&Datum::StabAnn(m, h)) {
            return false;
        }
        if !self.log(g, h).contains(&Datum::Msg(m)) {
            return false;
        }
        self.msgs_before(g, h, m)
            .into_iter()
            .all(|m2| self.phase_of(p, m2) >= Phase::Stable)
    }

    /// Lines 31–32, with the §6.1 modification under [`Variant::Strict`].
    fn stable_enabled(&self, p: ProcessId, m: MessageId, g: GroupId) -> bool {
        let log = self.log(g, g);
        match self.variant {
            Variant::Standard | Variant::Pairwise => self
                .gamma_groups(p, g)
                .iter()
                .all(|h| log.contains(&Datum::StabAnn(m, h))),
            Variant::Strict => self.system.iter().all(|(h, _)| {
                if h == g || !self.system.intersecting(g, h) {
                    return true;
                }
                log.contains(&Datum::StabAnn(m, h))
                    || self.indicators[&self.log_key(g, h)]
                        .indicates(p, self.now)
                        .unwrap_or(false)
            }),
        }
    }

    /// Lines 35–36: every message before `m` in any log at `p` that contains
    /// `m` is locally delivered.
    fn deliver_enabled(&self, p: ProcessId, m: MessageId, g: GroupId) -> bool {
        for h in self.groups_of(p) {
            // Deliberate mutation for explorer smoke-testing: ignore the
            // ordering constraints of the cross-group logs `LOG_{g∩h}`, so
            // overlap replicas may deliver concurrent messages of different
            // groups in different orders. Never enabled in normal builds.
            #[cfg(feature = "mutation")]
            if h != g {
                continue;
            }
            if !self.log(g, h).contains(&Datum::Msg(m)) {
                continue;
            }
            let ok = self
                .msgs_before(g, h, m)
                .into_iter()
                .all(|m2| self.phase_of(p, m2) == Phase::Deliver);
            if !ok {
                return false;
            }
        }
        true
    }

    /// Applies `action` at `p` (the `eff:` blocks).
    fn apply(&mut self, p: ProcessId, action: Action) {
        self.actions_of[p.index()] += 1;
        match action {
            Action::Inject(g, m) => {
                self.log_mut(g, g).append(Datum::Msg(m));
            }
            Action::Pending(m) => {
                let g = self.messages[m.0 as usize].group;
                for h in self.groups_of(p) {
                    let i = self.log_mut(g, h).append(Datum::Msg(m)).0;
                    self.log_mut(g, g).append(Datum::PosAnn(m, h, i));
                }
                self.phase[p.index()].insert(m, Phase::Pending);
            }
            Action::Commit(m) => {
                let g = self.messages[m.0 as usize].group;
                // line 19: k = max{i : ∃(m,-,i) ∈ LOG_g}
                let k = self
                    .log(g, g)
                    .iter_in_order()
                    .filter_map(|d| match d {
                        Datum::PosAnn(m2, _, i) if *m2 == m => Some(*i),
                        _ => None,
                    })
                    .max()
                    .expect("own position announcement present");
                // line 20: 𝔣 = H(p, g) — under the pairwise weakening the
                // runtime behaves as if ℱ = ∅, so 𝔣 = ∅ as well.
                let f = match self.variant {
                    Variant::Pairwise => GroupSet::EMPTY,
                    _ => self.system.h_set(p, g),
                };
                // line 21: k ← CONS_{m,𝔣}.propose(k)
                let k = self.cons.entry((m, f)).or_default().propose(k);
                // lines 22–23
                for h in self.groups_of(p) {
                    self.log_mut(g, h).bump_and_lock(&Datum::Msg(m), Pos(k));
                }
                self.phase[p.index()].insert(m, Phase::Commit);
            }
            Action::Stabilize(m, h) => {
                let g = self.messages[m.0 as usize].group;
                self.log_mut(g, g).append(Datum::StabAnn(m, h));
            }
            Action::Stable(m) => {
                self.phase[p.index()].insert(m, Phase::Stable);
            }
            Action::Deliver(m) => {
                self.phase[p.index()].insert(m, Phase::Deliver);
                self.delivered[p.index()].push(Delivery {
                    msg: m,
                    at: self.now,
                });
            }
        }
    }

    /// Runs until quiescence or `max_actions`, scheduling every process.
    /// Returns `true` on quiescence.
    pub fn run(&mut self, max_actions: u64) -> bool {
        self.run_only(self.system.universe(), max_actions)
    }

    /// Returns `true` if some live process of `set` still owes a delivery:
    /// a submitted message addressed to it that it has not delivered.
    /// While obligations remain the run is not quiescent — a guard may be
    /// waiting on *time* alone (a γ exclusion, an indicator firing), so the
    /// run loop idles the clock forward instead of stopping.
    pub fn has_obligations(&self, set: ProcessSet) -> bool {
        self.messages.iter().enumerate().any(|(i, info)| {
            let m = MessageId(i as u64);
            (self.system.members(info.group) & set)
                .iter()
                .any(|p| self.alive(p) && self.phase_of(p, m) != Phase::Deliver)
        })
    }

    /// Runs scheduling only the processes of `set` — the adversarial
    /// schedules that group parallelism (§6.2) and genuineness quantify
    /// over. Returns `true` on quiescence of `set`: no enabled action *and*
    /// no outstanding delivery obligation. A run whose obligations never
    /// resolve (a liveness failure, e.g. an ablated detector) exhausts its
    /// budget and returns `false`.
    pub fn run_only(&mut self, set: ProcessSet, max_actions: u64) -> bool {
        let n = self.phase.len();
        let mut taken = 0u64;
        loop {
            if taken >= max_actions {
                return false;
            }
            // advance time so crash injection precedes eligibility
            let candidates: Vec<(ProcessId, Vec<Action>)> = set
                .iter()
                .filter(|p| self.alive(*p))
                .map(|p| (p, self.enabled_actions(p)))
                .filter(|(_, a)| !a.is_empty())
                .collect();
            if candidates.is_empty() {
                if !self.has_obligations(set) {
                    return true;
                }
                // Idle tick: guards can be enabled purely by the passage of
                // time (detector stabilisation); let the clock advance.
                self.now = self.now.next();
                taken += 1;
                continue;
            }
            let (p, action) = match self.scheduler {
                ActionScheduler::RoundRobin => {
                    let mut chosen = None;
                    for off in 0..n {
                        let idx = (self.rr_cursor + off) % n;
                        if let Some((p, acts)) = candidates.iter().find(|(p, _)| p.index() == idx) {
                            self.rr_cursor = (idx + 1) % n;
                            let least = *acts
                                .iter()
                                .min()
                                .expect("candidate lists only hold processes with enabled actions");
                            chosen = Some((*p, least));
                            break;
                        }
                    }
                    chosen.expect("candidates non-empty")
                }
                ActionScheduler::Random => {
                    let (p, acts) = &candidates[self.rng.gen_range(0..candidates.len())];
                    (*p, acts[self.rng.gen_range(0..acts.len())])
                }
            };
            self.now = self.now.next();
            if self.alive(p) {
                self.apply(p, action);
            }
            taken += 1;
        }
    }

    /// Runs with every scheduling decision delegated to `source`,
    /// scheduling only the processes of `set`, until quiescence of `set`,
    /// budget exhaustion, or the source stopping.
    ///
    /// The choice space handed to the source lists each live process of
    /// `set` with at least one enabled action, in ascending process order,
    /// paired with its enabled-action count; sub-choice `c` fires the
    /// `c`-th enabled action in the deterministic `Action` order (so
    /// sub-choice `0` is the action the round-robin scheduler would fire).
    /// Idle ticks — the clock advancing while guards wait on time alone —
    /// happen automatically and are not scheduling choices.
    pub fn run_with_source<S: ScheduleSource>(
        &mut self,
        set: ProcessSet,
        source: &mut S,
        max_actions: u64,
    ) -> RunOutcome {
        let mut options = Vec::new();
        let mut taken = 0u64;
        loop {
            if taken >= max_actions {
                return RunOutcome::BudgetExhausted;
            }
            self.options_into(set, &mut options);
            if options.is_empty() {
                if !self.has_obligations(set) {
                    return RunOutcome::Quiescent;
                }
                self.idle_tick();
                taken += 1;
                continue;
            }
            let Some((idx, choice)) = source.next_choice(&options) else {
                return RunOutcome::Stopped;
            };
            self.fire_enabled(options[idx].0, choice);
            taken += 1;
        }
    }

    /// The current choice space over `set`, written into a caller-provided
    /// buffer: each live process with at least one enabled action, in
    /// ascending process order, paired with its enabled-action count. This
    /// is the allocation-free option enumerator the `gam-engine` hot loop
    /// uses; sub-choice `c` corresponds to the `c`-th enabled action in the
    /// deterministic `Action` order (fired by [`Runtime::fire_enabled`]).
    pub fn options_into(&self, set: ProcessSet, out: &mut Vec<(ProcessId, usize)>) {
        out.clear();
        for p in set {
            if self.alive(p) {
                let n = self.enabled_actions(p).len();
                if n > 0 {
                    out.push((p, n));
                }
            }
        }
    }

    /// Fires the `choice`-th enabled action of `p` (in the deterministic
    /// `Action` order; out-of-range choices clamp to the last action, as
    /// in replay). Advances the clock by one tick first, so a process that
    /// crashes exactly at the new time consumes the step without effect —
    /// the same semantics as the built-in run loops.
    pub fn fire_enabled(&mut self, p: ProcessId, choice: usize) -> Fired {
        let mut acts = self.enabled_actions(p);
        acts.sort_unstable();
        self.now = self.now.next();
        if acts.is_empty() || !self.alive(p) {
            return Fired::default();
        }
        let action = acts[choice.min(acts.len() - 1)];
        self.apply(p, action);
        Fired {
            fired: true,
            delivered: match action {
                Action::Deliver(m) => Some(m),
                _ => None,
            },
        }
    }

    /// Advances the clock by one tick without firing an action. Guards can
    /// become enabled purely by the passage of time (detector
    /// stabilisation, γ exclusions), so the run loops idle instead of
    /// stopping while obligations remain.
    pub fn idle_tick(&mut self) {
        self.now = self.now.next();
    }

    /// Returns `true` when `set` has quiesced: no live process of `set` has
    /// an enabled action *and* none owes a delivery (see
    /// [`Runtime::has_obligations`]).
    pub fn is_quiescent_in(&self, set: ProcessSet) -> bool {
        set.iter()
            .all(|p| !self.alive(p) || self.enabled_actions(p).is_empty())
            && !self.has_obligations(set)
    }

    /// Produces the report for property checking.
    pub fn report(&self, quiescent: bool) -> RunReport {
        RunReport {
            system: self.system.clone(),
            pattern: self.pattern.clone(),
            messages: self.messages.clone(),
            multicast_at: self.multicast_at.clone(),
            delivered: self.delivered.clone(),
            actions_of: self.actions_of.clone(),
            quiescent,
        }
    }

    /// Walks every piece of evolving runtime state as a deterministic `u64`
    /// word stream: the clock, every shared object (logs, consensus,
    /// lists), every per-process table (phases, deliveries, action counts).
    /// Two runtimes over the same scenario emitting the same stream behave
    /// identically under any deterministic continuation — the detector
    /// oracles are pure functions of the (fixed) pattern and the clock, so
    /// nothing behavioral lives outside this walk. Map entries are visited
    /// in key order (every table here is a `BTreeMap` — gam-lint D001
    /// enforces that), making the stream independent of insertion history;
    /// each variable-length section is length-prefixed so the stream is
    /// prefix-free.
    ///
    /// The engine folds this stream into the executor's state fingerprint,
    /// which the explorer's visited-set dedup prunes on.
    pub fn fold_state(&self, push: &mut impl FnMut(u64)) {
        push(self.now.0);
        // Shared logs, in (g, h) key order (BTreeMap iteration).
        push(self.logs.len() as u64);
        for (key, log) in &self.logs {
            let (g, h) = *key;
            push(u64::from(g.0));
            push(u64::from(h.0));
            push(log.len() as u64);
            for (d, pos, locked) in log.entries() {
                match d {
                    Datum::Msg(m) => {
                        push(0);
                        push(m.0);
                    }
                    Datum::PosAnn(m, h, i) => {
                        push(1);
                        push(m.0);
                        push(u64::from(h.0));
                        push(*i);
                    }
                    Datum::StabAnn(m, h) => {
                        push(2);
                        push(m.0);
                        push(u64::from(h.0));
                    }
                }
                push(pos.0);
                push(u64::from(locked));
            }
        }
        // Consensus objects, in (m, 𝔣) key order. The decision is the
        // behavioral state; the proposal counter is bookkeeping.
        push(self.cons.len() as u64);
        for (key, cons) in &self.cons {
            let (m, fam) = *key;
            push(m.0);
            push(fam.0);
            push(cons.decision().map_or(0, |v| v + 1));
        }
        // Group submission lists (append-only; constant within a run but
        // part of the machine nonetheless).
        push(self.lists.len() as u64);
        for list in &self.lists {
            push(list.len() as u64);
            for m in list {
                push(m.0);
            }
        }
        // Per-process protocol state.
        push(self.phase.len() as u64);
        for table in &self.phase {
            push(table.len() as u64);
            for (m, phase) in table {
                push(m.0);
                push(*phase as u64);
            }
        }
        for seq in &self.delivered {
            push(seq.len() as u64);
            for d in seq {
                push(d.msg.0);
                push(d.at.0);
            }
        }
        for n in &self.actions_of {
            push(*n);
        }
    }

    /// Convenience: run to quiescence (panicking if the budget is exhausted)
    /// and report.
    ///
    /// # Panics
    ///
    /// Panics if the run does not quiesce within `max_actions` — for
    /// experiments that *expect* blocking, use [`Runtime::run`] directly.
    pub fn run_to_quiescence(&mut self, max_actions: u64) -> RunReport {
        let q = self.run(max_actions);
        assert!(q, "runtime did not quiesce within {max_actions} actions");
        self.report(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gam_groups::topology;

    fn runtime(system: &GroupSystem, pattern: FailurePattern) -> Runtime {
        Runtime::new(system, pattern, RuntimeConfig::default())
    }

    #[test]
    fn single_group_single_message() {
        let gs = topology::single_group(3);
        let mut rt = runtime(&gs, FailurePattern::all_correct(gs.universe()));
        let m = rt.multicast(ProcessId(0), GroupId(0), 7);
        let report = rt.run_to_quiescence(10_000);
        for p in gs.universe() {
            assert_eq!(report.delivered_by(p), vec![m], "{p}");
        }
    }

    #[test]
    fn single_group_orders_messages_identically() {
        let gs = topology::single_group(4);
        let mut rt = runtime(&gs, FailurePattern::all_correct(gs.universe()));
        let m1 = rt.multicast(ProcessId(0), GroupId(0), 1);
        let m2 = rt.multicast(ProcessId(1), GroupId(0), 2);
        let m3 = rt.multicast(ProcessId(2), GroupId(0), 3);
        let report = rt.run_to_quiescence(100_000);
        let expected = vec![m1, m2, m3];
        for p in gs.universe() {
            assert_eq!(report.delivered_by(p), expected, "{p}");
        }
    }

    #[test]
    fn disjoint_groups_progress_independently() {
        let gs = topology::disjoint(3, 2);
        let mut rt = runtime(&gs, FailurePattern::all_correct(gs.universe()));
        let mut per_group = Vec::new();
        for g in 0..3u32 {
            let src = gs.members(GroupId(g)).min().unwrap();
            per_group.push(rt.multicast(src, GroupId(g), g as u64));
        }
        let report = rt.run_to_quiescence(100_000);
        for (g, m) in per_group.iter().enumerate() {
            for p in gs.members(GroupId(g as u32)) {
                assert_eq!(report.delivered_by(p), vec![*m]);
            }
        }
    }

    #[test]
    fn fig1_cross_group_messages_deliver_everywhere() {
        let gs = topology::fig1();
        let mut rt = runtime(&gs, FailurePattern::all_correct(gs.universe()));
        // one message per group, from its minimum member
        let ms: Vec<MessageId> = (0..4u32)
            .map(|g| {
                let src = gs.members(GroupId(g)).min().unwrap();
                rt.multicast(src, GroupId(g), g as u64)
            })
            .collect();
        let report = rt.run_to_quiescence(1_000_000);
        for (g, m) in ms.iter().enumerate() {
            for p in gs.members(GroupId(g as u32)) {
                assert!(report.has_delivered(p, *m), "{p} missing {m}");
            }
        }
    }

    #[test]
    fn ring_topology_with_contention_quiesces() {
        // The minimal cyclic topology: messages in all groups concurrently.
        let gs = topology::ring(3, 2);
        for seed in 0..5u64 {
            let mut rt = Runtime::new(
                &gs,
                FailurePattern::all_correct(gs.universe()),
                RuntimeConfig {
                    scheduler: ActionScheduler::Random,
                    seed,
                    ..Default::default()
                },
            );
            let ms: Vec<MessageId> = (0..3u32)
                .map(|g| {
                    let src = gs.members(GroupId(g)).min().unwrap();
                    rt.multicast(src, GroupId(g), g as u64)
                })
                .collect();
            let report = rt.run_to_quiescence(1_000_000);
            for (g, m) in ms.iter().enumerate() {
                for p in gs.members(GroupId(g as u32)) {
                    assert!(report.has_delivered(p, *m), "seed {seed}: {p} missing {m}");
                }
            }
        }
    }

    #[test]
    fn group_sequential_discipline_allows_bursts() {
        // Multiple messages submitted to the same group up-front: the
        // Proposition 1 layer sequences them.
        let gs = topology::two_overlapping(3, 1);
        let mut rt = runtime(&gs, FailurePattern::all_correct(gs.universe()));
        let mut ms = Vec::new();
        for i in 0..5u64 {
            ms.push(rt.multicast(ProcessId(0), GroupId(0), i));
        }
        let report = rt.run_to_quiescence(1_000_000);
        for p in gs.members(GroupId(0)) {
            assert_eq!(report.delivered_by(p), ms, "{p}");
        }
    }

    #[test]
    fn crashed_intersection_does_not_block_fig1() {
        // p2 = g1∩g2 crashes immediately after a message to g1 is submitted.
        // γ eventually reports the families through g1∩g2 faulty; the
        // correct members of g1 must still deliver.
        let gs = topology::fig1();
        let pattern = FailurePattern::from_crashes(gs.universe(), [(ProcessId(1), Time(2))]);
        let mut rt = runtime(&gs, pattern);
        let m = rt.multicast(ProcessId(0), GroupId(0), 9);
        let report = rt.run_to_quiescence(1_000_000);
        // correct members of g1 = {p1}
        assert!(report.has_delivered(ProcessId(0), m));
    }

    #[test]
    fn multicast_rejects_non_member() {
        let gs = topology::fig1();
        let mut rt = runtime(&gs, FailurePattern::all_correct(gs.universe()));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rt.multicast(ProcessId(4), GroupId(0), 0) // p5 ∉ g1
        }));
        assert!(result.is_err());
    }

    #[test]
    fn report_accessors() {
        let gs = topology::single_group(2);
        let mut rt = runtime(&gs, FailurePattern::all_correct(gs.universe()));
        let m = rt.multicast(ProcessId(0), GroupId(0), 1);
        let report = rt.run_to_quiescence(10_000);
        assert!(report.first_delivery(m).is_some());
        assert!(report.has_delivered(ProcessId(1), m));
        assert!(report.quiescent);
        assert!(report.actions_of.iter().sum::<u64>() > 0);
    }
}
