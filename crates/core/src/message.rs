//! Multicast messages and log entries.

use gam_groups::GroupId;
use gam_kernel::ProcessId;
use std::fmt;

/// The identity of a multicast message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MessageId(pub u64);

impl fmt::Display for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Static information about a multicast message: sender, destination group
/// and payload. Under the closed dissemination model `src(m) ∈ dst(m)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageInfo {
    /// `src(m)` — the multicasting process.
    pub src: ProcessId,
    /// `dst(m)` — the destination group.
    pub group: GroupId,
    /// `payload(m)` — an opaque application payload.
    pub payload: u64,
}

/// A data item stored in the shared logs of Algorithm 1.
///
/// `LOG_g` holds three kinds of entries: plain messages (line 7/13),
/// position announcements `(m, h, i)` (line 14) and stabilisation
/// announcements `(m, h)` (line 29). `LOG_{g∩h}` for `g ≠ h` only ever holds
/// plain messages. The derived `Ord` provides the a-priori total order that
/// breaks ties within a slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Datum {
    /// A multicast message `m`.
    Msg(MessageId),
    /// `(m, h, i)`: message `m` occupies slot `i` of `LOG_{g∩h}`.
    PosAnn(MessageId, GroupId, u64),
    /// `(m, h)`: message `m` is stabilised in group `h`.
    StabAnn(MessageId, GroupId),
}

impl Datum {
    /// The message the entry refers to.
    pub fn message(&self) -> MessageId {
        match self {
            Datum::Msg(m) | Datum::PosAnn(m, _, _) | Datum::StabAnn(m, _) => *m,
        }
    }

    /// Returns the message id if this is a plain message entry.
    pub fn as_msg(&self) -> Option<MessageId> {
        match self {
            Datum::Msg(m) => Some(*m),
            _ => None,
        }
    }
}

impl fmt::Display for Datum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Datum::Msg(m) => write!(f, "{m}"),
            Datum::PosAnn(m, h, i) => write!(f, "({m},{h},{i})"),
            Datum::StabAnn(m, h) => write!(f, "({m},{h})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datum_accessors() {
        let m = MessageId(3);
        assert_eq!(Datum::Msg(m).message(), m);
        assert_eq!(Datum::PosAnn(m, GroupId(1), 4).message(), m);
        assert_eq!(Datum::StabAnn(m, GroupId(1)).message(), m);
        assert_eq!(Datum::Msg(m).as_msg(), Some(m));
        assert_eq!(Datum::StabAnn(m, GroupId(1)).as_msg(), None);
    }

    #[test]
    fn display_forms() {
        let m = MessageId(3);
        assert_eq!(Datum::Msg(m).to_string(), "m3");
        assert_eq!(Datum::PosAnn(m, GroupId(0), 4).to_string(), "(m3,g1,4)");
        assert_eq!(Datum::StabAnn(m, GroupId(0)).to_string(), "(m3,g1)");
        assert_eq!(m.to_string(), "m3");
    }

    #[test]
    fn total_order_is_deterministic() {
        let a = Datum::Msg(MessageId(1));
        let b = Datum::Msg(MessageId(2));
        let c = Datum::PosAnn(MessageId(0), GroupId(0), 0);
        assert!(a < b);
        assert!(a < c); // Msg variants sort before PosAnn
    }
}
