//! State-machine replication over atomic multicast (§6.1).
//!
//! The classical use of ordering primitives is SMR: commands are funnelled
//! through the primitive and applied at every replica in delivery order. A
//! destination group is a *shard* replicating one state machine; commands
//! touching several shards are multicast to a group covering them. §6.1
//! observes that plain atomic multicast is **not** enough for
//! linearizability — if command `d` is submitted after command `c` was
//! delivered, nothing forces `c` before `d` — and that is what the *strict*
//! variation (with the indicator detectors `1^{g∩h}`) fixes. The
//! [`ReplicatedService`] defaults to [`Variant::Strict`] accordingly.

use crate::runtime::{Runtime, RuntimeConfig, Variant};
use crate::spec::{self, SpecViolation};
use crate::MessageId;
use gam_groups::{GroupId, GroupSystem};
use gam_kernel::{FailurePattern, ProcessId};

/// A deterministic state machine replicated by a destination group.
///
/// Commands and outputs are `u64` payloads; the application encodes its own
/// structure on top (see the `sharded_store` example).
pub trait StateMachine: Clone + Default + std::fmt::Debug {
    /// Applies a delivered command, returning an output.
    fn apply(&mut self, cmd: u64) -> u64;
}

/// A simple additive counter machine, useful for tests and demos.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(pub i64);

impl StateMachine for Counter {
    fn apply(&mut self, cmd: u64) -> u64 {
        // low 32 bits: magnitude; bit 32: sign
        let magnitude = (cmd & 0xffff_ffff) as i64;
        if cmd & (1 << 32) != 0 {
            self.0 -= magnitude;
        } else {
            self.0 += magnitude;
        }
        self.0 as u64
    }
}

/// Encodes an increment for [`Counter`].
pub fn incr(by: u32) -> u64 {
    by as u64
}

/// Encodes a decrement for [`Counter`].
pub fn decr(by: u32) -> u64 {
    (1u64 << 32) | by as u64
}

/// A replicated service: one state machine copy per (process, group)
/// replica, driven by the delivery order of the underlying multicast.
#[derive(Debug)]
pub struct ReplicatedService<SM: StateMachine> {
    runtime: Runtime,
    variant: Variant,
    /// `replicas[p][g]`: the copy of shard `g` maintained by process `p`
    /// (only meaningful when `p ∈ g`).
    replicas: Vec<Vec<SM>>,
    /// How many deliveries of each process have been applied so far.
    applied: Vec<usize>,
}

impl<SM: StateMachine> ReplicatedService<SM> {
    /// Creates the service over `system`, with [`Variant::Strict`] ordering
    /// (linearizable SMR — the §6.1 requirement).
    pub fn new(system: &GroupSystem, pattern: FailurePattern) -> Self {
        Self::with_config(
            system,
            pattern,
            RuntimeConfig {
                variant: Variant::Strict,
                ..Default::default()
            },
        )
    }

    /// Creates the service with an explicit runtime configuration (e.g.
    /// [`Variant::Standard`] when real-time order is not needed).
    pub fn with_config(
        system: &GroupSystem,
        pattern: FailurePattern,
        config: RuntimeConfig,
    ) -> Self {
        let n = system.universe().max().map_or(0, |p| p.index() + 1);
        ReplicatedService {
            runtime: Runtime::new(system, pattern, config),
            variant: config.variant,
            replicas: vec![vec![SM::default(); system.len()]; n],
            applied: vec![0; n],
        }
    }

    /// Submits a command to shard `group` from `client` (a member).
    pub fn submit(&mut self, client: ProcessId, group: GroupId, cmd: u64) -> MessageId {
        self.runtime.multicast(client, group, cmd)
    }

    /// Runs the underlying multicast and applies new deliveries, in local
    /// delivery order, to each replica. Returns `true` on quiescence.
    pub fn run(&mut self, budget: u64) -> bool {
        let q = self.runtime.run(budget);
        let report = self.runtime.report(q);
        for (i, deliveries) in report.delivered.iter().enumerate() {
            for d in &deliveries[self.applied[i]..] {
                let info = report.messages[d.msg.0 as usize];
                self.replicas[i][info.group.index()].apply(info.payload);
            }
            self.applied[i] = deliveries.len();
        }
        q
    }

    /// The copy of shard `group` at process `p`.
    pub fn replica(&self, p: ProcessId, group: GroupId) -> &SM {
        &self.replicas[p.index()][group.index()]
    }

    /// Checks the service run against the multicast specification.
    ///
    /// # Errors
    ///
    /// Returns the first [`SpecViolation`] found.
    pub fn check(&self) -> Result<(), SpecViolation> {
        spec::check_all(&self.runtime.report(true), self.variant)
    }

    /// Direct access to the underlying runtime.
    pub fn runtime_mut(&mut self) -> &mut Runtime {
        &mut self.runtime
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gam_groups::topology;
    use gam_kernel::ProcessSet;

    #[test]
    fn counter_semantics() {
        let mut c = Counter::default();
        c.apply(incr(5));
        c.apply(decr(2));
        assert_eq!(c, Counter(3));
    }

    #[test]
    fn replicas_of_a_shard_converge() {
        let gs = topology::two_overlapping(3, 1);
        let mut svc: ReplicatedService<Counter> =
            ReplicatedService::new(&gs, FailurePattern::all_correct(gs.universe()));
        svc.submit(ProcessId(0), GroupId(0), incr(10));
        svc.run(1_000_000);
        svc.submit(ProcessId(2), GroupId(1), incr(7));
        svc.run(1_000_000);
        svc.submit(ProcessId(1), GroupId(0), decr(4));
        svc.run(1_000_000);
        svc.check().unwrap();
        // shard g1 replicas: 10 - 4 = 6
        for p in gs.members(GroupId(0)) {
            assert_eq!(svc.replica(p, GroupId(0)), &Counter(6), "{p}");
        }
        // shard g2 replicas: 7
        for p in gs.members(GroupId(1)) {
            assert_eq!(svc.replica(p, GroupId(1)), &Counter(7), "{p}");
        }
    }

    #[test]
    fn sequential_clients_see_linearizable_history() {
        // A sequential client alternating shards: under the strict variant
        // the combined history respects submission order (strict ordering
        // holds), so the final states are exactly the sequential outcome.
        let gs = topology::fig1();
        let mut svc: ReplicatedService<Counter> =
            ReplicatedService::new(&gs, FailurePattern::all_correct(gs.universe()));
        let cmds = [
            (GroupId(0), incr(1)),
            (GroupId(2), incr(2)),
            (GroupId(0), incr(3)),
            (GroupId(3), incr(4)),
            (GroupId(2), decr(1)),
        ];
        for (g, cmd) in cmds {
            let client = gs.members(g).min().unwrap();
            svc.submit(client, g, cmd);
            assert!(svc.run(1_000_000));
        }
        svc.check().unwrap();
        for p in gs.members(GroupId(0)) {
            assert_eq!(svc.replica(p, GroupId(0)), &Counter(4));
        }
        for p in gs.members(GroupId(2)) {
            assert_eq!(svc.replica(p, GroupId(2)), &Counter(1));
        }
        for p in gs.members(GroupId(3)) {
            assert_eq!(svc.replica(p, GroupId(3)), &Counter(4));
        }
    }

    #[test]
    fn service_survives_replica_crash() {
        let gs = topology::two_overlapping(3, 1);
        let pattern =
            FailurePattern::from_crashes(gs.universe(), [(ProcessId(2), gam_kernel::Time(3))]);
        let mut svc: ReplicatedService<Counter> = ReplicatedService::new(&gs, pattern.clone());
        svc.submit(ProcessId(0), GroupId(0), incr(9));
        assert!(svc.run(1_000_000));
        svc.check().unwrap();
        for p in gs.members(GroupId(0)) & pattern.correct() {
            assert_eq!(svc.replica(p, GroupId(0)), &Counter(9), "{p}");
        }
    }

    #[test]
    fn standard_variant_is_available_for_non_linearizable_services() {
        let gs = topology::chain(3, 2);
        let mut svc: ReplicatedService<Counter> = ReplicatedService::with_config(
            &gs,
            FailurePattern::all_correct(gs.universe()),
            RuntimeConfig::default(),
        );
        for (g, members) in gs.iter() {
            let _ = members;
            svc.submit(gs.members(g).min().unwrap(), g, incr(1));
        }
        assert!(svc.run(1_000_000));
        svc.check().unwrap();
        let _ = ProcessSet::first_n(1);
    }
}
