//! # gam-core — genuine atomic multicast with the weakest failure detector
//!
//! The paper's primary contribution: Algorithm 1, a genuine solution to
//! (group sequential) atomic multicast using
//! `μ = (∧_{g,h} Σ_{g∩h}) ∧ (∧_g Ω_g) ∧ γ`, executed over linearizable
//! shared logs and consensus objects; plus the §6 variations (strict
//! real-time order, strong genuineness, pairwise ordering), the property
//! checkers for every axiom of the problem, and the baselines the paper
//! positions itself against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
pub mod baseline;
pub mod distributed;
mod message;
mod phase;
mod runtime;
mod shard;
pub mod smr;
pub mod spec;
pub mod variants;

pub use arena::MessageArena;
pub use message::{Datum, MessageId, MessageInfo};
pub use phase::Phase;
pub use runtime::{
    ActionDesc, ActionKind, ActionScheduler, Delivery, Fired, RunReport, Runtime, RuntimeConfig,
    Variant,
};
pub use shard::{ShardRun, ShardSpec};
