//! Baseline multicast algorithms the paper positions itself against.
//!
//! - [`BroadcastBased`] — the naive, **non-genuine** solution of §1/§2.3:
//!   every message goes through a single atomic broadcast and every process
//!   scans the whole log, delivering only what is addressed to it. Its
//!   weakest failure detector is `Ω ∧ Σ` (Table 1, first row), but it fails
//!   *minimality*: processes take steps for messages not addressed to them,
//!   which is why it does not scale with the number of groups [33, 37].
//! - [`ComponentBroadcast`] — broadcast per connected component of the
//!   intersection graph: genuine at component granularity only. This is the
//!   spirit of the disjoint-decomposition assumption most prior protocols
//!   make (§7).
//! - [`SkeenProcess`] — Skeen's classical failure-free multicast [5, 22]
//!   (propose / collect-max / final timestamps), run over the
//!   message-passing kernel. It is genuine but blocks forever if any
//!   destination crashes mid-protocol — the paper's Algorithm 1 is its
//!   fault-tolerant generalisation.

use crate::message::{MessageId, MessageInfo};
use crate::runtime::{Delivery, RunReport};
use gam_groups::{GroupId, GroupSystem};
use gam_kernel::{Automaton, Envelope, FailurePattern, ProcessId, ProcessSet, StepCtx, Time};
use std::collections::BTreeMap;

/// The naive multicast over one global atomic broadcast.
///
/// At the shared-memory level the broadcast is a single shared log that
/// every process scans in order; the scan of a non-addressed entry still
/// costs a step — exactly the waste genuineness rules out.
#[derive(Debug)]
pub struct BroadcastBased {
    system: GroupSystem,
    pattern: FailurePattern,
    now: Time,
    log: Vec<MessageId>,
    cursor: Vec<usize>,
    messages: Vec<MessageInfo>,
    multicast_at: Vec<Time>,
    delivered: Vec<Vec<Delivery>>,
    actions_of: Vec<u64>,
}

impl BroadcastBased {
    /// Creates the baseline over `system` with the given failure pattern.
    pub fn new(system: &GroupSystem, pattern: FailurePattern) -> Self {
        let n = system.universe().max().map_or(0, |p| p.index() + 1);
        BroadcastBased {
            system: system.clone(),
            pattern,
            now: Time::ZERO,
            log: Vec::new(),
            cursor: vec![0; n],
            messages: Vec::new(),
            multicast_at: Vec::new(),
            delivered: vec![Vec::new(); n],
            actions_of: vec![0; n],
        }
    }

    /// Submits a multicast: appends to the global broadcast log.
    ///
    /// # Panics
    ///
    /// Panics if `src ∉ group`.
    pub fn multicast(&mut self, src: ProcessId, group: GroupId, payload: u64) -> MessageId {
        assert!(self.system.members(group).contains(src));
        self.now = self.now.next();
        let id = MessageId(self.messages.len() as u64);
        self.messages.push(MessageInfo {
            src,
            group,
            payload,
        });
        self.multicast_at.push(self.now);
        self.log.push(id);
        id
    }

    /// Runs round-robin until every live process has scanned the whole log
    /// or `max_actions` is exhausted; returns `true` on quiescence.
    pub fn run(&mut self, max_actions: u64) -> bool {
        let n = self.cursor.len();
        let mut taken = 0u64;
        loop {
            let mut progressed = false;
            for i in 0..n {
                let p = ProcessId(i as u32);
                if self.pattern.is_crashed(p, self.now) {
                    continue;
                }
                if self.cursor[i] < self.log.len() {
                    if taken >= max_actions {
                        return false;
                    }
                    self.now = self.now.next();
                    let m = self.log[self.cursor[i]];
                    self.cursor[i] += 1;
                    self.actions_of[i] += 1; // a step, addressed or not
                    let dst = self.system.members(self.messages[m.0 as usize].group);
                    if dst.contains(p) {
                        self.delivered[i].push(Delivery {
                            msg: m,
                            at: self.now,
                        });
                    }
                    progressed = true;
                    taken += 1;
                }
            }
            if !progressed {
                return true;
            }
        }
    }

    /// Produces a [`RunReport`] compatible with the `spec` checkers.
    pub fn report(&self, quiescent: bool) -> RunReport {
        RunReport {
            system: self.system.clone(),
            pattern: self.pattern.clone(),
            messages: self.messages.clone(),
            multicast_at: self.multicast_at.clone(),
            delivered: self.delivered.clone(),
            actions_of: self.actions_of.clone(),
            quiescent,
        }
    }
}

/// Broadcast per connected component of the intersection graph — the
/// disjoint-decomposition baseline of §7, at component granularity.
#[derive(Debug)]
pub struct ComponentBroadcast {
    inner: BroadcastBased,
    /// component index per group
    comp_of_group: Vec<usize>,
    /// component members
    comp_members: Vec<ProcessSet>,
    comp_logs: Vec<Vec<MessageId>>,
    cursor: Vec<Vec<usize>>, // per component, per process index
}

impl ComponentBroadcast {
    /// Creates the baseline over `system`.
    pub fn new(system: &GroupSystem, pattern: FailurePattern) -> Self {
        let comps = system.components();
        let mut comp_of_group = vec![0usize; system.len()];
        let mut comp_members = Vec::new();
        for (ci, comp) in comps.iter().enumerate() {
            let mut members = ProcessSet::EMPTY;
            for g in *comp {
                comp_of_group[g.index()] = ci;
                members |= system.members(g);
            }
            comp_members.push(members);
        }
        let n = system.universe().max().map_or(0, |p| p.index() + 1);
        ComponentBroadcast {
            inner: BroadcastBased::new(system, pattern),
            comp_of_group,
            comp_members,
            comp_logs: vec![Vec::new(); comps.len()],
            cursor: vec![vec![0; n]; comps.len()],
        }
    }

    /// Submits a multicast into its component's broadcast log.
    ///
    /// # Panics
    ///
    /// Panics if `src ∉ group`.
    pub fn multicast(&mut self, src: ProcessId, group: GroupId, payload: u64) -> MessageId {
        assert!(self.inner.system.members(group).contains(src));
        self.inner.now = self.inner.now.next();
        let id = MessageId(self.inner.messages.len() as u64);
        self.inner.messages.push(MessageInfo {
            src,
            group,
            payload,
        });
        self.inner.multicast_at.push(self.inner.now);
        self.comp_logs[self.comp_of_group[group.index()]].push(id);
        id
    }

    /// Runs to quiescence (or budget); returns `true` on quiescence.
    pub fn run(&mut self, max_actions: u64) -> bool {
        let mut taken = 0u64;
        loop {
            let mut progressed = false;
            for (ci, members) in self.comp_members.clone().iter().enumerate() {
                for p in *members {
                    let i = p.index();
                    if self.inner.pattern.is_crashed(p, self.inner.now) {
                        continue;
                    }
                    if self.cursor[ci][i] < self.comp_logs[ci].len() {
                        if taken >= max_actions {
                            return false;
                        }
                        self.inner.now = self.inner.now.next();
                        let m = self.comp_logs[ci][self.cursor[ci][i]];
                        self.cursor[ci][i] += 1;
                        self.inner.actions_of[i] += 1;
                        let dst = self
                            .inner
                            .system
                            .members(self.inner.messages[m.0 as usize].group);
                        if dst.contains(p) {
                            self.inner.delivered[i].push(Delivery {
                                msg: m,
                                at: self.inner.now,
                            });
                        }
                        progressed = true;
                        taken += 1;
                    }
                }
            }
            if !progressed {
                return true;
            }
        }
    }

    /// Produces a [`RunReport`] compatible with the `spec` checkers.
    pub fn report(&self, quiescent: bool) -> RunReport {
        self.inner.report(quiescent)
    }
}

/// Messages of Skeen's algorithm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SkeenMsg {
    /// The sender proposes `m` to its destination group.
    Propose {
        /// The multicast message.
        m: MessageId,
        /// Its destination group.
        group: GroupId,
    },
    /// A destination replies with its local timestamp.
    TsReply {
        /// The multicast message.
        m: MessageId,
        /// Proposed local timestamp.
        ts: u64,
    },
    /// The sender announces the final timestamp (max of proposals).
    Final {
        /// The multicast message.
        m: MessageId,
        /// Final timestamp.
        ts: u64,
    },
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum SkeenState {
    Proposed { ts: u64 },
    Final { ts: u64 },
}

/// One process of Skeen's failure-free atomic multicast.
///
/// Emits the delivered [`MessageId`]s as events. Blocks (never delivers)
/// if any member of a destination group crashes before replying — the
/// behaviour the fault-tolerant Algorithm 1 fixes.
#[derive(Debug)]
pub struct SkeenProcess {
    me: ProcessId,
    system: GroupSystem,
    clock: u64,
    /// Pending messages at this destination: proposed or final timestamp.
    pending: BTreeMap<MessageId, SkeenState>,
    /// Sender-side collection: message → (group, replies, max ts).
    collecting: BTreeMap<MessageId, (GroupId, ProcessSet, u64)>,
    /// Outbox of multicasts to launch.
    outbox: Vec<(MessageId, GroupId)>,
}

impl SkeenProcess {
    /// Creates the automaton for `me` over `system`.
    pub fn new(me: ProcessId, system: &GroupSystem) -> Self {
        SkeenProcess {
            me,
            system: system.clone(),
            clock: 0,
            pending: BTreeMap::new(),
            collecting: BTreeMap::new(),
            outbox: Vec::new(),
        }
    }

    /// Queues `multicast(m)` to `group`.
    ///
    /// # Panics
    ///
    /// Panics if this process is not a member of `group`.
    pub fn multicast(&mut self, m: MessageId, group: GroupId) {
        assert!(self.system.members(group).contains(self.me));
        self.outbox.push((m, group));
    }

    fn try_deliver(&mut self, ctx: &mut StepCtx<SkeenMsg, MessageId>) {
        // Deliver every final message whose (ts, id) is below every other
        // pending entry's current (ts, id); proposed timestamps only grow,
        // so this is safe.
        loop {
            let deliverable: Option<MessageId> = self
                .pending
                .iter()
                .filter_map(|(m, s)| match s {
                    SkeenState::Final { ts } => Some((*ts, *m)),
                    SkeenState::Proposed { .. } => None,
                })
                .min()
                .and_then(|(ts, m)| {
                    let min_all = self
                        .pending
                        .iter()
                        .map(|(m2, s2)| match s2 {
                            SkeenState::Final { ts } | SkeenState::Proposed { ts } => (*ts, *m2),
                        })
                        .min()
                        .expect("pending non-empty");
                    if (ts, m) <= min_all {
                        Some(m)
                    } else {
                        None
                    }
                });
            match deliverable {
                Some(m) => {
                    self.pending.remove(&m);
                    ctx.emit(m);
                }
                None => return,
            }
        }
    }
}

impl Automaton for SkeenProcess {
    type Msg = SkeenMsg;
    type Fd = ();
    type Event = MessageId;

    fn step(
        &mut self,
        ctx: &mut StepCtx<SkeenMsg, MessageId>,
        input: Option<Envelope<SkeenMsg>>,
        _fd: &(),
    ) {
        if let Some(env) = input {
            match env.payload {
                SkeenMsg::Propose { m, group: _ } => {
                    self.clock += 1;
                    let ts = self.clock;
                    self.pending.insert(m, SkeenState::Proposed { ts });
                    ctx.send_to(env.src, SkeenMsg::TsReply { m, ts });
                }
                SkeenMsg::TsReply { m, ts } => {
                    if let Some((group, replies, max_ts)) = self.collecting.get_mut(&m) {
                        replies.insert(env.src);
                        *max_ts = (*max_ts).max(ts);
                        if self.system.members(*group).is_subset(*replies) {
                            let final_ts = *max_ts;
                            let dst = self.system.members(*group);
                            self.collecting.remove(&m);
                            ctx.send(dst, SkeenMsg::Final { m, ts: final_ts });
                        }
                    }
                }
                SkeenMsg::Final { m, ts } => {
                    self.clock = self.clock.max(ts);
                    self.pending.insert(m, SkeenState::Final { ts });
                    self.try_deliver(ctx);
                }
            }
        }
        // Launch queued multicasts.
        for (m, group) in std::mem::take(&mut self.outbox) {
            self.collecting.insert(m, (group, ProcessSet::EMPTY, 0));
            ctx.send(self.system.members(group), SkeenMsg::Propose { m, group });
        }
    }

    fn is_active(&self) -> bool {
        !self.outbox.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec;
    use gam_groups::topology;
    use gam_kernel::{NoDetector, RunOutcome, Scheduler, Simulator};

    #[test]
    fn broadcast_based_delivers_and_orders() {
        let gs = topology::disjoint(3, 2);
        let mut bb = BroadcastBased::new(&gs, FailurePattern::all_correct(gs.universe()));
        // A single message, addressed to g1 only: the other four processes
        // are addressed by nothing, yet the broadcast makes them step.
        bb.multicast(ProcessId(0), GroupId(0), 7);
        assert!(bb.run(100_000));
        let r = bb.report(true);
        spec::check_integrity(&r).unwrap();
        spec::check_ordering(&r).unwrap();
        spec::check_termination(&r).unwrap();
        // Non-genuine: every process scanned the message.
        assert_eq!(
            spec::check_minimality(&r).unwrap_err().property,
            "minimality"
        );
        assert!(r.actions_of.iter().all(|c| *c == 1));
    }

    #[test]
    fn broadcast_minimality_holds_when_everyone_addressed() {
        let gs = topology::single_group(3);
        let mut bb = BroadcastBased::new(&gs, FailurePattern::all_correct(gs.universe()));
        bb.multicast(ProcessId(0), GroupId(0), 0);
        assert!(bb.run(1000));
        spec::check_minimality(&bb.report(true)).unwrap();
    }

    #[test]
    fn component_broadcast_is_genuine_at_component_level() {
        let gs = topology::disjoint(3, 2);
        let mut cb = ComponentBroadcast::new(&gs, FailurePattern::all_correct(gs.universe()));
        cb.multicast(ProcessId(0), GroupId(0), 0);
        assert!(cb.run(1000));
        let r = cb.report(true);
        // With disjoint groups, each group is its own component: genuine.
        spec::check_minimality(&r).unwrap();
        spec::check_termination(&r).unwrap();
        // Only g1's two processes took steps.
        assert_eq!(r.actions_of.iter().filter(|c| **c > 0).count(), 2);
    }

    #[test]
    fn component_broadcast_on_fig1_spans_the_whole_component() {
        let gs = topology::fig1(); // single connected component
        let mut cb = ComponentBroadcast::new(&gs, FailurePattern::all_correct(gs.universe()));
        cb.multicast(ProcessId(1), GroupId(1), 0); // to g2 = {p2,p3}
        assert!(cb.run(1000));
        let r = cb.report(true);
        // all five processes are in the component: everyone steps
        assert!(r.actions_of.iter().all(|c| *c == 1));
        assert_eq!(
            spec::check_minimality(&r).unwrap_err().property,
            "minimality"
        );
    }

    fn skeen_sim(gs: &GroupSystem, pattern: FailurePattern) -> Simulator<SkeenProcess, NoDetector> {
        let n = gs.universe().len();
        let autos = (0..n)
            .map(|i| SkeenProcess::new(ProcessId(i as u32), gs))
            .collect();
        Simulator::new(autos, pattern, NoDetector)
    }

    #[test]
    fn skeen_delivers_in_agreed_order() {
        let gs = topology::fig1();
        for seed in 0..5u64 {
            let mut sim =
                skeen_sim(&gs, FailurePattern::all_correct(gs.universe())).with_seed(seed);
            // concurrent multicasts to all four groups
            for g in 0..4u32 {
                let src = gs.members(GroupId(g)).min().unwrap();
                sim.automaton_mut(src)
                    .multicast(MessageId(g as u64), GroupId(g));
            }
            let out = sim.run(Scheduler::Random { null_prob: 0.2 }, 1_000_000);
            assert_eq!(out, RunOutcome::Quiescent);
            // every destination delivers, and common destinations agree on
            // the relative order
            for g in 0..4u32 {
                for p in gs.members(GroupId(g)) {
                    assert!(
                        sim.trace()
                            .events_of(p)
                            .any(|e| e.event == MessageId(g as u64)),
                        "seed {seed}: {p} missing m{g}"
                    );
                }
            }
            // pairwise agreement on shared messages
            let order_of = |p: ProcessId| -> Vec<MessageId> {
                sim.trace().events_of(p).map(|e| e.event).collect()
            };
            for p in gs.universe() {
                for q in gs.universe() {
                    let (po, qo) = (order_of(p), order_of(q));
                    for m1 in &po {
                        for m2 in &po {
                            let (i1, i2) = (
                                po.iter().position(|x| x == m1).unwrap(),
                                po.iter().position(|x| x == m2).unwrap(),
                            );
                            if i1 < i2 {
                                if let (Some(j1), Some(j2)) = (
                                    qo.iter().position(|x| x == m1),
                                    qo.iter().position(|x| x == m2),
                                ) {
                                    assert!(
                                        j1 < j2,
                                        "seed {seed}: {p} and {q} disagree on {m1}/{m2}"
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn skeen_blocks_on_crash() {
        // A destination crashes before replying: the message never gets a
        // final timestamp and no one delivers it.
        let gs = topology::single_group(3);
        let pattern = FailurePattern::from_crashes(gs.universe(), [(ProcessId(2), Time(1))]);
        let mut sim = skeen_sim(&gs, pattern);
        sim.automaton_mut(ProcessId(0))
            .multicast(MessageId(0), GroupId(0));
        sim.run(Scheduler::RoundRobin, 100_000);
        for p in [ProcessId(0), ProcessId(1)] {
            assert_eq!(sim.trace().events_of(p).count(), 0, "{p} must block");
        }
    }
}
