//! Shard-local execution and the deterministic commit merge behind the
//! parallel sustained-load driver (`gam-engine`'s `run_sustained_par`).
//!
//! ## The projection argument
//!
//! [`Runtime::run_sustained`] is a round-robin scan: starting from
//! `rr_cursor = rr0`, visit slot `j` (for `j = 0, 1, 2, …`) inspects
//! process `(rr0 + j) mod n` and fires its minimum enabled action, if any.
//! Under a *par-eligible* scenario ([`Runtime::par_eligible`]: crash-free
//! pattern, non-strict variant, fresh protocol state) every guard is
//! **time-invariant** — the `γ` timelines have a single entry, no
//! indicators, liveness is universal — so whether a visit fires, and what
//! it fires, is a function of protocol state alone, never of the clock.
//!
//! By genuineness, an action of `p` about a unit of group `g` touches only
//! the pairs `{g, h}` for `h ∈ 𝒢(p)`, the unit's cells and `p`'s rows —
//! all local to `g`'s *shard* (the connected component of the group
//! intersection graph; see `gam-engine`'s `shard_partition`). Hence the
//! global visit stream **projects** onto each shard: the visits landing on
//! a shard's processes form that shard's own round-robin, and their
//! fire/skip decisions depend only on shard-local state. Each worker
//! replays exactly this projection with [`Runtime::run_shard_record`] on a
//! private clone, tagging every fired action with its *global* visit slot
//! `j = ((p − rr0) mod n) + round·n`.
//!
//! Only two pieces of global state cross shards, and both are pure
//! functions of the fired-slot sets:
//!
//! - **the clock** — the sequential driver ticks once per fired action, so
//!   the action fired at slot `j` executes at time `t0 + rank(j)` where
//!   `rank` counts fired slots `≤ j` across all shards (crash-free runs
//!   never idle-tick before quiescence: a full non-firing sweep with
//!   time-invariant guards is a fixpoint, not a stall);
//! - **unit-id allocation order** — `Inject` at slot `j` allocates the
//!   `rank_inject(j)`-th unit id.
//!
//! [`Runtime::commit_merge`] re-sequences exactly these two globals: it
//! merges the per-shard fired-slot streams, rebuilds the unit arena in
//! global inject order (remapping every recorded unit id), patches
//! delivery timestamps from slots to ranks, and copies every shard-owned
//! pair/unit/process column from its owning worker. The result is
//! byte-identical — the full [`Runtime::fold_state`] walk, not just the
//! digest — to what the sequential driver would have produced.

use crate::arena::OrderEntry;
use crate::runtime::{Action, Delivery, Runtime, Variant};
use gam_groups::GroupId;
use gam_kernel::{ProcessId, ProcessSet, Time};
use std::sync::Arc;

/// One shard of the connected-group-family partition, as the parallel
/// driver schedules it and the merge consumes it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpec {
    /// The shard's groups (one connected component of the intersection
    /// graph), ascending.
    pub groups: Vec<GroupId>,
    /// Every member of the shard's groups, ascending — the processes whose
    /// per-process rows the shard's actions may touch (an `Inject`
    /// activates a unit at *all* members, scheduled or not).
    pub procs: Vec<ProcessId>,
    /// The scheduled subset (the run's `set` ∩ `procs`), ascending — the
    /// population of the shard's round-robin projection.
    pub pids: Vec<ProcessId>,
}

/// What one shard's recorded run produced, in global-visit-slot terms.
#[derive(Debug, Clone, Default)]
pub struct ShardRun {
    /// Global visit slots of the shard's fired actions, strictly
    /// ascending.
    pub fired_slots: Vec<u64>,
    /// `(slot, unit id in the worker's clone)` per fired `Inject`, in fire
    /// order — the data the merge needs to re-sequence unit allocation.
    pub injects: Vec<(u64, u32)>,
    /// Whether the shard reached a fixpoint with no outstanding delivery
    /// obligations. `false` means the global run would not have quiesced
    /// (stuck obligations or budget exhaustion) and the merge must not
    /// commit.
    pub quiesced: bool,
}

impl Runtime {
    /// True when the sharded parallel driver reproduces
    /// [`Runtime::run_sustained`] byte for byte from this state: the
    /// failure pattern is crash-free and the variant non-strict (so every
    /// guard is time-invariant — constant `γ` timelines, no `1^{g∩h}`
    /// indicators, universal liveness), and no unit exists yet (so unit-id
    /// allocation is re-sequenced from zero by the merge). Scenarios
    /// outside this class fall back to the sequential driver.
    pub fn par_eligible(&self) -> bool {
        self.units.count() == 0
            && self.tables.variant != Variant::Strict
            && self.tables.crash_at.iter().all(|&c| c == u64::MAX)
    }

    /// Runs one shard's projection of the sustained round-robin to a local
    /// fixpoint, recording global visit slots. `take_budget` is consulted
    /// once per fired action; returning `false` aborts the shard (the
    /// caller discards the clone, so partial state is fine).
    ///
    /// The clock is stamped with the *visit slot* before each fired action
    /// — an arbitrary placeholder as far as guards are concerned (they are
    /// time-invariant under [`Runtime::par_eligible`]) that makes every
    /// recorded delivery timestamp invertible to its slot, which
    /// [`Runtime::commit_merge`] patches to the true global time.
    pub fn run_shard_record(
        &mut self,
        pids: &[ProcessId],
        mut take_budget: impl FnMut() -> bool,
    ) -> ShardRun {
        let n = self.tables.n;
        let rr0 = self.rr_cursor;
        debug_assert!(rr0 < n, "round-robin cursor is always reduced mod n");
        let mut run = ShardRun::default();
        if pids.is_empty() {
            run.quiesced = true;
            return run;
        }
        let set: ProcessSet = pids.iter().copied().collect();
        // The global scan meets the shard's processes in ascending order of
        // offset (p − rr0) mod n, cyclically; round r visits p at global
        // slot offset(p) + r·n.
        let mut order: Vec<(usize, ProcessId)> = pids
            .iter()
            .map(|&p| ((p.index() + n - rr0) % n, p))
            .collect();
        order.sort_unstable();
        let mut round = vec![0u64; order.len()];
        let mut at = 0usize;
        let mut idle = 0usize;
        loop {
            let (off, p) = order[at];
            let slot = off as u64 + round[at] * n as u64;
            round[at] += 1;
            let mut first: Option<Action> = None;
            self.enabled_each(p, &mut |a| {
                if first.is_none_or(|b| a < b) {
                    first = Some(a);
                }
            });
            if let Some(action) = first {
                if !take_budget() {
                    return run; // aborted: quiesced stays false
                }
                self.now = Time(slot);
                let inject = matches!(action, Action::Inject(..));
                self.apply(p, action);
                if inject {
                    run.injects.push((slot, self.units.count() as u32 - 1));
                }
                run.fired_slots.push(slot);
                idle = 0;
            } else {
                idle += 1;
                if idle >= order.len() {
                    // A full shard round fired nothing: with time-invariant
                    // guards and no cross-shard interference this is a
                    // fixpoint forever, exactly when the sequential sweep
                    // would stop (or idle-tick to budget death).
                    run.quiesced = !self.has_obligations(set);
                    return run;
                }
            }
            at = (at + 1) % order.len();
        }
    }

    /// Commits the recorded shard runs into `self` (the pre-run state the
    /// workers were cloned from), re-sequencing the two global objects —
    /// the clock and unit-id allocation order — so the result is the state
    /// [`Runtime::run_sustained`] would have reached. Each element of
    /// `parts` pairs a shard's spec and recording with the worker clone
    /// that ran it (a clone may appear for several shards).
    ///
    /// The caller must have verified every shard quiesced within budget;
    /// committing a partial recording would desynchronize the clock.
    pub fn commit_merge(&mut self, parts: &[(&Runtime, &ShardSpec, &ShardRun)]) {
        let t = Arc::clone(&self.tables);
        let n = self.tables.n;
        let t0 = self.now.0;
        debug_assert_eq!(self.units.count(), 0, "par_eligible gated fresh state");
        // Global fired order: slots are unique across shards (slot mod n
        // identifies the process, and a process belongs to one shard).
        let mut all_slots: Vec<u64> = parts
            .iter()
            .flat_map(|(_, _, r)| r.fired_slots.iter().copied())
            .collect();
        all_slots.sort_unstable();
        let rank_of = |slot: u64| -> u64 {
            all_slots
                .binary_search(&slot)
                .expect("delivery timestamp encodes a fired slot") as u64
                + 1
        };
        // Global unit order: injects sorted by slot. Per-part remap tables
        // from clone-local unit ids to global ids (a part's pair orders
        // only reference units its own shard injected).
        let mut all_inj: Vec<(u64, usize, u32)> = parts
            .iter()
            .enumerate()
            .flat_map(|(pi, (_, _, r))| r.injects.iter().map(move |&(s, u)| (s, pi, u)))
            .collect();
        all_inj.sort_unstable();
        let mut remap: Vec<Vec<(u32, u32)>> = vec![Vec::new(); parts.len()];
        for (pos, &(_, pi, cuid)) in all_inj.iter().enumerate() {
            remap[pi].push((cuid, pos as u32));
        }
        for r in &mut remap {
            r.sort_unstable();
        }
        let lookup = |pi: usize, cuid: u32| -> u32 {
            let r = &remap[pi];
            r[r.binary_search_by_key(&cuid, |e| e.0)
                .expect("order entry references a unit this shard injected")]
            .1
        };
        // Rebuild the unit arena in global allocation order, copying each
        // unit's cell blocks from the worker that ran it.
        for &(_, pi, cuid) in &all_inj {
            let (w, _, _) = parts[pi];
            let cu = cuid as usize;
            let g = w.units.group[cu];
            let gi = g.index();
            let start = w.units.start[cu];
            let len = w.units.len[cu];
            let deg = t.adj[gi].len();
            let members = t.member_list[gi].len();
            let fams = t.fams[gi].len();
            let u = self
                .units
                .push(g, start, len, w.units.rep[cu], deg, members, fams);
            for a in 0..deg {
                let src = w.units.adj(cuid, a);
                let dst = self.units.adj(u, a);
                self.units.slot[dst] = w.units.slot[src];
                self.units.locked[dst] = w.units.locked[src];
                self.units.order_idx[dst] = w.units.order_idx[src];
                self.units.ann_max[dst] = w.units.ann_max[src];
                self.units.stab[dst] = w.units.stab[src];
            }
            for r in 0..members as u16 {
                let dst = self.units.mem(u, r);
                self.units.phase[dst] = w.units.phase[w.units.mem(cuid, r)];
            }
            for fr in 0..fams as u16 {
                let dst = self.units.fam(u, fr);
                self.units.cons[dst] = w.units.cons[w.units.fam(cuid, fr)];
            }
            for off in 0..len {
                let m = self.lists[gi][(start + off) as usize];
                self.unit_of[m.0 as usize] = u;
            }
        }
        // Shard-owned columns, from each shard's owning worker. Pairs are
        // owned by the shard of their first group (both groups of a pair
        // intersect, hence share a component).
        let mut owner = vec![usize::MAX; t.n_groups];
        for (pi, (_, spec, _)) in parts.iter().enumerate() {
            for g in &spec.groups {
                owner[g.index()] = pi;
            }
        }
        for pid in 0..t.pairs.len() {
            let pi = owner[t.pairs[pid].0.index()];
            if pi == usize::MAX {
                continue; // no scheduled process — the pair never moved
            }
            let (w, _, _) = parts[pi];
            let src = &w.pairs[pid];
            let dst = &mut self.pairs[pid];
            dst.max_slot = src.max_slot;
            dst.cursors.clone_from(&src.cursors);
            dst.order.clear();
            dst.order.extend(src.order.iter().map(|e| OrderEntry {
                slot: e.slot,
                rep: e.rep,
                unit: lookup(pi, e.unit),
            }));
        }
        for (pi, &(w, spec, _)) in parts.iter().enumerate() {
            for g in &spec.groups {
                let gi = g.index();
                self.next_new[gi] = w.next_new[gi];
                for r in 0..t.member_list[gi].len() {
                    let gm = t.member_base[gi] as usize + r;
                    self.inject_cursor[gm] = w.inject_cursor[gm];
                }
            }
            for &p in &spec.procs {
                let i = p.index();
                self.actions_of[i] = w.actions_of[i];
                self.owed[i] = w.owed[i];
                let active = &mut self.active[i];
                active.clear();
                active.extend(w.active[i].iter().map(|&u| lookup(pi, u)));
                let row = &mut self.delivered[i];
                debug_assert!(row.is_empty(), "par_eligible gated fresh state");
                row.clear();
                row.extend(w.delivered[i].iter().map(|d| Delivery {
                    msg: d.msg,
                    at: Time(t0 + rank_of(d.at.0)),
                }));
            }
        }
        // The two global scalars, re-derived from the merged fired order:
        // one clock tick per fired action, and the cursor one past the
        // process the last-fired slot visited.
        self.now = Time(t0 + all_slots.len() as u64);
        if let Some(&last) = all_slots.last() {
            let idx = (self.rr_cursor + last as usize % n) % n;
            self.rr_cursor = (idx + 1) % n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::RuntimeConfig;
    use gam_groups::topology;
    use gam_kernel::FailurePattern;

    fn fold(rt: &Runtime) -> Vec<u64> {
        let mut v = Vec::new();
        rt.fold_state(&mut |w| v.push(w));
        v
    }

    /// Manual two-shard split on disjoint groups: record each shard on its
    /// own clone, merge, and compare the full state walk against the
    /// sequential driver. This is the single-threaded core of the
    /// equivalence the engine's parallel driver and the workspace grid
    /// test check at scale.
    #[test]
    fn recorded_shards_merge_to_the_sequential_state() {
        for batch in [1u32, 3] {
            let gs = topology::disjoint(3, 3);
            let mut rt = Runtime::new(
                &gs,
                FailurePattern::all_correct(gs.universe()),
                RuntimeConfig {
                    batch_max: batch,
                    ..Default::default()
                },
            );
            for g in 0..3u32 {
                let src = gs.members(GroupId(g)).min().unwrap();
                for i in 0..4u64 {
                    rt.multicast(src, GroupId(g), u64::from(g) * 10 + i);
                }
            }
            assert!(rt.par_eligible());
            let mut seq = rt.clone();
            assert!(seq.run_sustained(gs.universe(), 100_000));

            let specs: Vec<ShardSpec> = (0..3u32)
                .map(|g| {
                    let procs: Vec<ProcessId> = gs.members(GroupId(g)).iter().collect();
                    ShardSpec {
                        groups: vec![GroupId(g)],
                        procs: procs.clone(),
                        pids: procs,
                    }
                })
                .collect();
            let mut clones: Vec<Runtime> = specs.iter().map(|_| rt.clone()).collect();
            let runs: Vec<ShardRun> = specs
                .iter()
                .zip(clones.iter_mut())
                .map(|(spec, c)| c.run_shard_record(&spec.pids, || true))
                .collect();
            assert!(runs.iter().all(|r| r.quiesced));
            let parts: Vec<(&Runtime, &ShardSpec, &ShardRun)> = specs
                .iter()
                .enumerate()
                .map(|(i, spec)| (&clones[i], spec, &runs[i]))
                .collect();
            rt.commit_merge(&parts);
            assert_eq!(fold(&rt), fold(&seq), "batch={batch}");
            assert_eq!(rt.rr_cursor, seq.rr_cursor);
            assert_eq!(rt.next_new, seq.next_new);
        }
    }

    #[test]
    fn par_eligibility_gates_crashes_strict_and_inflight_units() {
        let gs = topology::fig1();
        let fresh = Runtime::new(
            &gs,
            FailurePattern::all_correct(gs.universe()),
            RuntimeConfig::default(),
        );
        assert!(fresh.par_eligible());
        let crashy = Runtime::new(
            &gs,
            FailurePattern::from_crashes(gs.universe(), [(ProcessId(1), Time(2))]),
            RuntimeConfig::default(),
        );
        assert!(!crashy.par_eligible());
        let strict = Runtime::new(
            &gs,
            FailurePattern::all_correct(gs.universe()),
            RuntimeConfig {
                variant: Variant::Strict,
                ..Default::default()
            },
        );
        assert!(!strict.par_eligible());
        let mut inflight = Runtime::new(
            &gs,
            FailurePattern::all_correct(gs.universe()),
            RuntimeConfig::default(),
        );
        inflight.multicast(ProcessId(0), GroupId(0), 1);
        assert!(inflight.par_eligible(), "submissions alone stay eligible");
        inflight.run(3);
        assert!(!inflight.par_eligible(), "in-flight units are not");
    }
}
