//! Property checkers for atomic multicast runs (§2.2, §2.3, §6, §7).
//!
//! Each checker consumes a [`RunReport`] and verifies one axiom of the
//! problem: *integrity*, *ordering* (acyclicity of the delivery relation
//! `↦`), *termination*, *minimality* (genuineness), *strict ordering*
//! (`↦ ∪ ⤳` acyclic) and *pairwise ordering*. The experiment suites use
//! these to populate the Table 1 solvability matrix.

use crate::message::MessageId;
use crate::runtime::RunReport;
use gam_kernel::{ProcessId, ProcessSet};

/// A violation of an atomic multicast property.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecViolation {
    /// Which property failed.
    pub property: &'static str,
    /// Human-readable details.
    pub detail: String,
}

impl std::fmt::Display for SpecViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} violated: {}", self.property, self.detail)
    }
}

impl std::error::Error for SpecViolation {}

fn dst(report: &RunReport, m: MessageId) -> ProcessSet {
    report.system.members(report.messages[m.0 as usize].group)
}

/// Per-process delivery positions, indexed `[p][m] → rank of m at p`: the
/// O(1) form of `delivered_by(p).iter().position(|x| x == m)` the pairwise
/// checkers would otherwise re-scan per message pair. First occurrence wins,
/// matching `position` on (invalid) double-delivery reports.
fn position_tables(report: &RunReport) -> Vec<Vec<Option<u32>>> {
    report
        .delivered
        .iter()
        .map(|ds| {
            let mut pos = vec![None; report.messages.len()];
            for (r, d) in ds.iter().enumerate() {
                // `get_mut`: unknown message ids (caught by integrity, but
                // each checker must stand alone) simply stay unranked.
                if let Some(slot @ None) = pos.get_mut(d.msg.0 as usize) {
                    *slot = Some(r as u32);
                }
            }
            pos
        })
        .collect()
}

/// *(Integrity)* Every process delivers a message at most once, and only if
/// it belongs to `dst(m)` and `m` was previously multicast.
///
/// # Errors
///
/// Returns the first [`SpecViolation`] found.
pub fn check_integrity(report: &RunReport) -> Result<(), SpecViolation> {
    for (i, deliveries) in report.delivered.iter().enumerate() {
        let p = ProcessId(i as u32);
        let mut seen = std::collections::BTreeSet::new();
        for d in deliveries {
            if d.msg.0 as usize >= report.messages.len() {
                return Err(SpecViolation {
                    property: "integrity",
                    detail: format!("{p} delivered unknown message {}", d.msg),
                });
            }
            if !seen.insert(d.msg) {
                return Err(SpecViolation {
                    property: "integrity",
                    detail: format!("{p} delivered {} twice", d.msg),
                });
            }
            if !dst(report, d.msg).contains(p) {
                return Err(SpecViolation {
                    property: "integrity",
                    detail: format!("{p} ∉ dst({}) but delivered it", d.msg),
                });
            }
            if d.at < report.multicast_at[d.msg.0 as usize] {
                return Err(SpecViolation {
                    property: "integrity",
                    detail: format!("{} delivered before it was multicast", d.msg),
                });
            }
        }
    }
    Ok(())
}

/// The local delivery relation `m ↦_p m'`: `p ∈ dst(m) ∩ dst(m')` and, at the
/// time `p` delivers `m`, it has not (yet) delivered `m'`.
fn local_edges(report: &RunReport, p: ProcessId) -> Vec<(MessageId, MessageId)> {
    let seq = report.delivered_by(p);
    let mut delivered = vec![false; report.messages.len()];
    for m in &seq {
        if let Some(slot) = delivered.get_mut(m.0 as usize) {
            *slot = true;
        }
    }
    // m' addressed to p but never delivered by p: the same tail for every
    // delivered m, so compute it once instead of rescanning ℳ per message.
    let undelivered: Vec<MessageId> = (0..report.messages.len())
        .map(|j| MessageId(j as u64))
        .filter(|m2| !delivered[m2.0 as usize] && dst(report, *m2).contains(p))
        .collect();
    let mut edges = Vec::new();
    for (i, m) in seq.iter().enumerate() {
        // Delivered pairs, in local order.
        for m2 in &seq[i + 1..] {
            edges.push((*m, *m2));
        }
        for m2 in &undelivered {
            edges.push((*m, *m2));
        }
    }
    edges
}

/// The delivery relation `↦ = ∪_p ↦_p` of the run.
pub fn delivery_relation(report: &RunReport) -> Vec<(MessageId, MessageId)> {
    let m_count = report.messages.len();
    // Dedup through a dense m×m bitmap: a linear `contains` scan over the
    // accumulated edge list is quadratic in |↦| and dominates spec checking
    // on dense multi-group runs.
    let mut seen = vec![false; m_count * m_count];
    let mut edges = Vec::new();
    for i in 0..report.delivered.len() {
        for e in local_edges(report, ProcessId(i as u32)) {
            let (a, b) = (e.0 .0 as usize, e.1 .0 as usize);
            if a < m_count && b < m_count {
                if !seen[a * m_count + b] {
                    seen[a * m_count + b] = true;
                    edges.push(e);
                }
            } else if !edges.contains(&e) {
                // unknown ids (malformed reports): the slow path keeps the
                // relation total, as integrity will flag them anyway
                edges.push(e);
            }
        }
    }
    edges
}

fn acyclic(n: usize, edges: &[(MessageId, MessageId)]) -> Result<(), Vec<MessageId>> {
    // Iterative DFS three-colour cycle detection.
    let mut adj = vec![Vec::new(); n];
    for (a, b) in edges {
        adj[a.0 as usize].push(b.0 as usize);
    }
    let mut colour = vec![0u8; n]; // 0 white, 1 grey, 2 black
    for start in 0..n {
        if colour[start] != 0 {
            continue;
        }
        let mut stack = vec![(start, 0usize)];
        colour[start] = 1;
        while let Some((v, i)) = stack.pop() {
            if i < adj[v].len() {
                stack.push((v, i + 1));
                let w = adj[v][i];
                match colour[w] {
                    0 => {
                        colour[w] = 1;
                        stack.push((w, 0));
                    }
                    1 => {
                        // grey → grey edge: cycle through w
                        let mut cyc: Vec<MessageId> =
                            stack.iter().map(|(v, _)| MessageId(*v as u64)).collect();
                        cyc.push(MessageId(w as u64));
                        return Err(cyc);
                    }
                    _ => {}
                }
            } else {
                colour[v] = 2;
            }
        }
    }
    Ok(())
}

/// *(Ordering)* The delivery relation `↦` is acyclic over `ℳ`.
///
/// # Errors
///
/// Returns the first [`SpecViolation`] found.
pub fn check_ordering(report: &RunReport) -> Result<(), SpecViolation> {
    let edges = delivery_relation(report);
    acyclic(report.messages.len(), &edges).map_err(|cyc| SpecViolation {
        property: "ordering",
        detail: format!("delivery cycle: {cyc:?}"),
    })
}

/// *(Termination)* If a correct process multicasts `m`, or any process
/// delivers `m`, then every correct process of `dst(m)` delivers `m`.
///
/// Only meaningful on quiescent reports.
///
/// # Errors
///
/// Returns the first [`SpecViolation`] found.
pub fn check_termination(report: &RunReport) -> Result<(), SpecViolation> {
    if !report.quiescent {
        return Err(SpecViolation {
            property: "termination",
            detail: "run did not quiesce within its budget".into(),
        });
    }
    let correct = report.pattern.correct();
    for (i, info) in report.messages.iter().enumerate() {
        let m = MessageId(i as u64);
        let delivered_somewhere =
            (0..report.delivered.len()).any(|j| report.has_delivered(ProcessId(j as u32), m));
        let must_deliver = correct.contains(info.src) || delivered_somewhere;
        if !must_deliver {
            continue;
        }
        for p in dst(report, m) & correct {
            if !report.has_delivered(p, m) {
                return Err(SpecViolation {
                    property: "termination",
                    detail: format!("correct {p} ∈ dst({m}) never delivered it"),
                });
            }
        }
    }
    Ok(())
}

/// *(Minimality — genuineness)* A correct process takes steps only if some
/// multicast message is addressed to it.
///
/// # Errors
///
/// Returns the first [`SpecViolation`] found.
pub fn check_minimality(report: &RunReport) -> Result<(), SpecViolation> {
    let addressed: ProcessSet = report
        .messages
        .iter()
        .map(|info| report.system.members(info.group))
        .fold(ProcessSet::EMPTY, |a, b| a | b);
    for (i, count) in report.actions_of.iter().enumerate() {
        let p = ProcessId(i as u32);
        if *count > 0 && !addressed.contains(p) {
            return Err(SpecViolation {
                property: "minimality",
                detail: format!("{p} took {count} steps but no message is addressed to it"),
            });
        }
    }
    Ok(())
}

/// *(Strict Ordering — §6.1)* The transitive closure of `↦ ∪ ⤳` is a strict
/// partial order, where `m ⤳ m'` when `m` is delivered in real time before
/// `m'` is multicast.
///
/// # Errors
///
/// Returns the first [`SpecViolation`] found.
pub fn check_strict_ordering(report: &RunReport) -> Result<(), SpecViolation> {
    let m_count = report.messages.len();
    let mut edges = delivery_relation(report);
    let mut seen = vec![false; m_count * m_count];
    for (a, b) in &edges {
        seen[a.0 as usize * m_count + b.0 as usize] = true;
    }
    for i in 0..m_count {
        let m = MessageId(i as u64);
        let Some(t) = report.first_delivery(m) else {
            continue;
        };
        for j in 0..m_count {
            let m2 = MessageId(j as u64);
            if m != m2 && t < report.multicast_at[j] && !seen[i * m_count + j] {
                seen[i * m_count + j] = true;
                edges.push((m, m2));
            }
        }
    }
    acyclic(report.messages.len(), &edges).map_err(|cyc| SpecViolation {
        property: "strict-ordering",
        detail: format!("cycle in ↦ ∪ ⤳: {cyc:?}"),
    })
}

/// *(Pairwise Ordering — §7)* If `p` delivers `m` then `m'`, every process
/// that delivers `m'` has delivered `m` before.
///
/// # Errors
///
/// Returns the first [`SpecViolation`] found.
pub fn check_pairwise_ordering(report: &RunReport) -> Result<(), SpecViolation> {
    let n = report.delivered.len();
    let pos = position_tables(report);
    for i in 0..n {
        let p = ProcessId(i as u32);
        let seq = report.delivered_by(p);
        for (a, m) in seq.iter().enumerate() {
            for m2 in &seq[a + 1..] {
                // p delivers m then m'. Check every q delivering m'.
                for (j, qpos) in pos.iter().enumerate() {
                    let q = ProcessId(j as u32);
                    if !dst(report, *m).contains(q) {
                        continue;
                    }
                    if let Some(pos2) = qpos[m2.0 as usize] {
                        match qpos[m.0 as usize] {
                            Some(pos1) if pos1 < pos2 => {}
                            _ => {
                                return Err(SpecViolation {
                                    property: "pairwise-ordering",
                                    detail: format!(
                                        "{p} delivered {m} before {m2}, but {q} delivered {m2} without {m} first"
                                    ),
                                });
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// *(Agreement on co-delivered pairs)* Any two processes that both deliver
/// two messages deliver them in the same relative order.
///
/// Unlike [`check_ordering`], this draws no edges toward messages a process
/// has *not yet* delivered, so it is sound on partial (budget-cut) runs: a
/// valid prefix of a correct run never trips it. It is correspondingly
/// weaker on complete runs — use [`check_all`] for those.
///
/// # Errors
///
/// Returns the first [`SpecViolation`] found.
pub fn check_pairwise_agreement(report: &RunReport) -> Result<(), SpecViolation> {
    let n = report.delivered.len();
    let pos = position_tables(report);
    for i in 0..n {
        let p = ProcessId(i as u32);
        let dp = report.delivered_by(p);
        for (j, qpos) in pos.iter().enumerate().take(n) {
            let q = ProcessId(j as u32);
            for (a, m1) in dp.iter().enumerate() {
                for m2 in &dp[a + 1..] {
                    if let (Some(b1), Some(b2)) = (qpos[m1.0 as usize], qpos[m2.0 as usize]) {
                        if b1 >= b2 {
                            return Err(SpecViolation {
                                property: "pairwise-agreement",
                                detail: format!("{p} and {q} disagree on {m1}/{m2}"),
                            });
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// *(Group Sequentiality — §4.1)* Messages addressed to the same group are
/// totally ordered by `≺`: under the Proposition 1 client layer this means
/// every member delivers its group's messages in submission (`L_g`) order.
///
/// # Errors
///
/// Returns the first [`SpecViolation`] found.
pub fn check_group_sequential(report: &RunReport) -> Result<(), SpecViolation> {
    for g in 0..report.system.len() {
        // submission order of messages addressed to group g
        let mut listed: Vec<MessageId> = (0..report.messages.len())
            .map(|i| MessageId(i as u64))
            .filter(|m| report.messages[m.0 as usize].group.index() == g)
            .collect();
        listed.sort_by_key(|m| report.multicast_at[m.0 as usize]);
        for p in report.system.members(gam_groups::GroupId(g as u32)) {
            // `delivered_by(p)`, restricted to g's messages, must respect
            // `listed` order — filter_map drops foreign messages and maps
            // the rest to their L_g position in one pass.
            let positions: Vec<usize> = report
                .delivered_by(p)
                .into_iter()
                .filter_map(|m| listed.iter().position(|x| *x == m))
                .collect();
            if positions.windows(2).any(|w| w[0] > w[1]) {
                return Err(SpecViolation {
                    property: "group-sequential",
                    detail: format!("{p} delivered group g{} out of L_g order", g + 1),
                });
            }
        }
    }
    Ok(())
}

/// Runs all checks appropriate for the given variant of the problem.
///
/// # Errors
///
/// Returns the first [`SpecViolation`] found.
pub fn check_all(report: &RunReport, variant: crate::Variant) -> Result<(), SpecViolation> {
    check_integrity(report)?;
    check_minimality(report)?;
    check_termination(report)?;
    match variant {
        crate::Variant::Standard => check_ordering(report),
        crate::Variant::Strict => {
            check_ordering(report)?;
            check_strict_ordering(report)
        }
        crate::Variant::Pairwise => check_pairwise_ordering(report),
    }
}

/// Runs the single checker that reports violations of `property`
/// (the [`SpecViolation::property`] string), regardless of variant.
/// Returns `None` for an unknown property name.
///
/// This is the targeted companion of [`check_all`]: a counterexample that
/// violates a property *outside* its variant's checked set — e.g. a
/// pairwise-variant run violating global `ordering`, the paper's
/// solvability boundary made executable — can still be re-validated and
/// shrunk against exactly the property it was found under.
pub fn check_named(report: &RunReport, property: &str) -> Option<Result<(), SpecViolation>> {
    match property {
        "integrity" => Some(check_integrity(report)),
        "minimality" => Some(check_minimality(report)),
        "termination" => Some(check_termination(report)),
        "ordering" => Some(check_ordering(report)),
        "strict-ordering" => Some(check_strict_ordering(report)),
        "pairwise-ordering" => Some(check_pairwise_ordering(report)),
        "pairwise-agreement" => Some(check_pairwise_agreement(report)),
        "group-sequential" => Some(check_group_sequential(report)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MessageInfo;
    use crate::runtime::{Delivery, RunReport};
    use gam_groups::{topology, GroupId};
    use gam_kernel::{FailurePattern, Time};

    /// Hand-built report over the two-overlapping topology.
    fn base_report() -> RunReport {
        let system = topology::two_overlapping(2, 1); // g1={p0,p1}, g2={p1,p2}
        let pattern = FailurePattern::all_correct(system.universe());
        RunReport {
            system,
            pattern,
            messages: vec![
                MessageInfo {
                    src: ProcessId(0),
                    group: GroupId(0),
                    payload: 0,
                },
                MessageInfo {
                    src: ProcessId(1),
                    group: GroupId(1),
                    payload: 1,
                },
            ],
            multicast_at: vec![Time(1), Time(2)],
            delivered: vec![Vec::new(); 3],
            actions_of: vec![0; 3],
            quiescent: true,
        }
    }

    fn deliver(report: &mut RunReport, p: u32, m: u64, at: u64) {
        report.delivered[p as usize].push(Delivery {
            msg: MessageId(m),
            at: Time(at),
        });
    }

    #[test]
    fn integrity_rejects_double_delivery() {
        let mut r = base_report();
        deliver(&mut r, 0, 0, 3);
        deliver(&mut r, 0, 0, 4);
        assert_eq!(check_integrity(&r).unwrap_err().property, "integrity");
    }

    #[test]
    fn integrity_rejects_non_member_delivery() {
        let mut r = base_report();
        deliver(&mut r, 2, 0, 3); // p2 ∉ g1
        assert_eq!(check_integrity(&r).unwrap_err().property, "integrity");
    }

    #[test]
    fn integrity_rejects_delivery_before_multicast() {
        let mut r = base_report();
        deliver(&mut r, 0, 0, 0); // before multicast_at = 1
        assert_eq!(check_integrity(&r).unwrap_err().property, "integrity");
    }

    #[test]
    fn ordering_accepts_agreeing_orders() {
        let mut r = base_report();
        // p1 ∈ both groups delivers m0 then m1; others consistent.
        deliver(&mut r, 0, 0, 3);
        deliver(&mut r, 1, 0, 4);
        deliver(&mut r, 1, 1, 5);
        deliver(&mut r, 2, 1, 6);
        check_integrity(&r).unwrap();
        check_ordering(&r).unwrap();
        check_pairwise_ordering(&r).unwrap();
        check_termination(&r).unwrap();
    }

    #[test]
    fn ordering_rejects_two_process_disagreement() {
        // Two messages both addressed to both overlapping groups? Use a
        // single group with two members disagreeing on order.
        let system = topology::single_group(2);
        let pattern = FailurePattern::all_correct(system.universe());
        let mut r = RunReport {
            system,
            pattern,
            messages: vec![
                MessageInfo {
                    src: ProcessId(0),
                    group: GroupId(0),
                    payload: 0,
                },
                MessageInfo {
                    src: ProcessId(1),
                    group: GroupId(0),
                    payload: 1,
                },
            ],
            multicast_at: vec![Time(1), Time(2)],
            delivered: vec![Vec::new(); 2],
            actions_of: vec![0; 2],
            quiescent: true,
        };
        deliver(&mut r, 0, 0, 3);
        deliver(&mut r, 0, 1, 4);
        deliver(&mut r, 1, 1, 3);
        deliver(&mut r, 1, 0, 4);
        assert_eq!(check_ordering(&r).unwrap_err().property, "ordering");
        assert_eq!(
            check_pairwise_ordering(&r).unwrap_err().property,
            "pairwise-ordering"
        );
    }

    #[test]
    fn check_named_dispatches_every_property() {
        let r = base_report();
        for property in [
            "integrity",
            "minimality",
            "termination",
            "ordering",
            "strict-ordering",
            "pairwise-ordering",
            "pairwise-agreement",
            "group-sequential",
        ] {
            let verdict = check_named(&r, property).unwrap_or_else(|| panic!("{property} known"));
            // the targeted checker reports under its own name when it fires
            if let Err(v) = verdict {
                assert_eq!(v.property, property);
            }
        }
        assert!(check_named(&r, "no-such-property").is_none());
    }

    #[test]
    fn termination_rejects_missing_delivery() {
        let mut r = base_report();
        deliver(&mut r, 0, 0, 3); // p1 (correct, ∈ g1) never delivers m0
        assert_eq!(check_termination(&r).unwrap_err().property, "termination");
    }

    #[test]
    fn termination_ignores_undelivered_faulty_multicast() {
        let mut r = base_report();
        r.pattern = FailurePattern::from_crashes(r.system.universe(), [(ProcessId(0), Time(2))]);
        // m0 multicast by p0 (faulty), delivered nowhere: fine.
        deliver(&mut r, 1, 1, 5);
        deliver(&mut r, 2, 1, 6);
        check_termination(&r).unwrap();
    }

    #[test]
    fn termination_requires_quiescence() {
        let mut r = base_report();
        r.quiescent = false;
        assert_eq!(check_termination(&r).unwrap_err().property, "termination");
    }

    #[test]
    fn minimality_rejects_spurious_steps() {
        let system = topology::disjoint(2, 2); // g1={p0,p1}, g2={p2,p3}
        let pattern = FailurePattern::all_correct(system.universe());
        let mut r = RunReport {
            system,
            pattern,
            messages: vec![MessageInfo {
                src: ProcessId(0),
                group: GroupId(0),
                payload: 0,
            }],
            multicast_at: vec![Time(1)],
            delivered: vec![Vec::new(); 4],
            actions_of: vec![3, 3, 0, 0],
            quiescent: true,
        };
        deliver(&mut r, 0, 0, 2);
        deliver(&mut r, 1, 0, 3);
        check_minimality(&r).unwrap();
        // p3 (no message addressed) takes a step: violation.
        r.actions_of[3] = 1;
        assert_eq!(check_minimality(&r).unwrap_err().property, "minimality");
    }

    #[test]
    fn strict_ordering_detects_real_time_inversion() {
        let mut r = base_report();
        // m0 delivered at t3 (first delivery); m1 multicast at t2 < t3, so
        // no ⤳ edge from m0 to m1. Make m1 ⤳-before... build inversion:
        // m1 delivered everywhere before m0's multicast? multicast_at[0]=1.
        // Instead: set multicast_at[1] = 10, m1 multicast after m0 delivered
        // at t3 ⇒ m0 ⤳ m1. If some process delivers m1 "before" m0 in ↦,
        // we get a cycle.
        r.multicast_at[1] = Time(10);
        deliver(&mut r, 0, 0, 3); // m0 delivered at 3 ⇒ m0 ⤳ m1
        deliver(&mut r, 1, 1, 11); // p1 delivers m1 but never m0 ⇒ m1 ↦_p1 m0
        deliver(&mut r, 2, 1, 12);
        assert_eq!(
            check_strict_ordering(&r).unwrap_err().property,
            "strict-ordering"
        );
        // Plain ordering also fails here? No: ↦ alone has m1 ↦ m0 only — acyclic.
        check_ordering(&r).unwrap();
    }

    #[test]
    fn check_all_on_real_run() {
        let gs = topology::fig1();
        let mut rt = crate::Runtime::new(
            &gs,
            FailurePattern::all_correct(gs.universe()),
            crate::RuntimeConfig::default(),
        );
        for g in 0..4u32 {
            let src = gs.members(GroupId(g)).min().unwrap();
            rt.multicast(src, GroupId(g), g as u64);
        }
        let report = rt.run_to_quiescence(1_000_000);
        check_all(&report, crate::Variant::Standard).unwrap();
        check_group_sequential(&report).unwrap();
    }

    #[test]
    fn group_sequential_detects_out_of_order_delivery() {
        let system = topology::single_group(2);
        let pattern = FailurePattern::all_correct(system.universe());
        let mut r = RunReport {
            system,
            pattern,
            messages: vec![
                MessageInfo {
                    src: ProcessId(0),
                    group: GroupId(0),
                    payload: 0,
                },
                MessageInfo {
                    src: ProcessId(1),
                    group: GroupId(0),
                    payload: 1,
                },
            ],
            multicast_at: vec![Time(1), Time(2)],
            delivered: vec![Vec::new(); 2],
            actions_of: vec![0; 2],
            quiescent: true,
        };
        deliver(&mut r, 0, 0, 3);
        deliver(&mut r, 0, 1, 4);
        // p1 delivers in the reverse of the submission order
        deliver(&mut r, 1, 1, 3);
        deliver(&mut r, 1, 0, 4);
        assert_eq!(
            check_group_sequential(&r).unwrap_err().property,
            "group-sequential"
        );
    }

    #[test]
    fn pairwise_agreement_is_sound_on_partial_runs() {
        let system = topology::single_group(2);
        let pattern = FailurePattern::all_correct(system.universe());
        let mut r = RunReport {
            system,
            pattern,
            messages: vec![
                MessageInfo {
                    src: ProcessId(0),
                    group: GroupId(0),
                    payload: 0,
                },
                MessageInfo {
                    src: ProcessId(1),
                    group: GroupId(0),
                    payload: 1,
                },
            ],
            multicast_at: vec![Time(1), Time(2)],
            delivered: vec![Vec::new(); 2],
            actions_of: vec![1; 2],
            quiescent: false,
        };
        // Budget-cut prefix: p0 has delivered only m0, p1 only m1. No pair
        // is co-delivered, so agreement holds — while `check_ordering`
        // draws edges toward the still-undelivered messages and reports a
        // spurious cycle.
        deliver(&mut r, 0, 0, 3);
        deliver(&mut r, 1, 1, 3);
        check_pairwise_agreement(&r).unwrap();
        assert_eq!(check_ordering(&r).unwrap_err().property, "ordering");
        // A genuine inversion on a co-delivered pair is still caught.
        deliver(&mut r, 0, 1, 4);
        deliver(&mut r, 1, 0, 4);
        assert_eq!(
            check_pairwise_agreement(&r).unwrap_err().property,
            "pairwise-agreement"
        );
    }

    #[test]
    fn group_sequential_holds_on_bursty_runtime_run() {
        let gs = topology::two_overlapping(3, 1);
        let mut rt = crate::Runtime::new(
            &gs,
            FailurePattern::all_correct(gs.universe()),
            crate::RuntimeConfig {
                scheduler: crate::ActionScheduler::Random,
                seed: 5,
                ..Default::default()
            },
        );
        for i in 0..4u64 {
            rt.multicast(ProcessId(0), GroupId(0), i);
            rt.multicast(ProcessId(4), GroupId(1), i);
        }
        let report = rt.run_to_quiescence(2_000_000);
        check_group_sequential(&report).unwrap();
    }
}
