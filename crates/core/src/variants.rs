//! The §6/§7 variations of atomic multicast, exercised end-to-end.
//!
//! - **Strict** (§6.1): delivery follows real time; the weakest failure
//!   detector is `μ ∧ (∧_{g,h} 1^{g∩h})`. [`Variant::Strict`](crate::Variant)
//!   implements the modified line-32 guard; the tests here show that the
//!   indicators unblock stabilisation when an intersection crashes, and that
//!   strict ordering holds across schedules.
//! - **Strongly genuine** (§6.2): a destination group running in isolation
//!   must deliver. [`check_group_parallelism`] runs Algorithm 1 scheduling
//!   only `Correct ∩ dst(m)` and verifies delivery; this holds when
//!   `ℱ = ∅` and fails on cyclic topologies — exactly the paper's split.
//! - **Pairwise** (§7): ordering is only enforced pairwise; `γ` is not
//!   needed, and the runtime behaves as if `ℱ = ∅`.

use crate::runtime::{Runtime, RuntimeConfig};
use crate::spec::SpecViolation;
use gam_groups::{GroupId, GroupSystem};
use gam_kernel::FailurePattern;

/// *(Group Parallelism — §6.2)* Multicasts one message to `group` from its
/// minimum correct member, then schedules **only** `Correct ∩ dst(m)`. The
/// property requires every such process to deliver the message.
///
/// # Errors
///
/// Returns a [`SpecViolation`] when the isolated group blocks (which the
/// paper shows is unavoidable for Algorithm 1 when the group belongs to a
/// correct cyclic family and only `μ` is available).
pub fn check_group_parallelism(
    system: &GroupSystem,
    pattern: FailurePattern,
    group: GroupId,
    config: RuntimeConfig,
    max_actions: u64,
) -> Result<(), SpecViolation> {
    let mut rt = Runtime::new(system, pattern, config);
    check_group_parallelism_staged(&mut rt, group, max_actions)
}

/// As [`check_group_parallelism`], but over a pre-staged runtime: the caller
/// may first create cross-group contention (partially processed messages to
/// other groups), which is where the §6.2 delivery chains bite.
///
/// # Errors
///
/// Returns a [`SpecViolation`] when a correct member of `group` fails to
/// deliver while the group runs in isolation.
pub fn check_group_parallelism_staged(
    rt: &mut Runtime,
    group: GroupId,
    max_actions: u64,
) -> Result<(), SpecViolation> {
    let system = rt.system().clone();
    let correct_members = system.members(group) & rt.pattern().correct();
    let Some(src) = correct_members.min() else {
        return Ok(()); // vacuous: no correct member
    };
    let m = rt.multicast(src, group, 0);
    rt.run_only(correct_members, max_actions);
    for p in correct_members {
        if !rt.report(true).has_delivered(p, m) {
            return Err(SpecViolation {
                property: "group-parallelism",
                detail: format!("{p} did not deliver {m} while {group} ran in isolation"),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec;
    use crate::{ActionScheduler, Variant};
    use gam_groups::topology;
    use gam_kernel::ProcessId;
    use gam_kernel::Time;

    fn config(variant: Variant) -> RuntimeConfig {
        RuntimeConfig {
            variant,
            ..Default::default()
        }
    }

    // ---------- strict variant (§6.1) ----------

    #[test]
    fn strict_variant_delivers_failure_free() {
        let gs = topology::fig1();
        let mut rt = Runtime::new(
            &gs,
            FailurePattern::all_correct(gs.universe()),
            config(Variant::Strict),
        );
        for g in 0..4u32 {
            let src = gs.members(GroupId(g)).min().unwrap();
            rt.multicast(src, GroupId(g), g as u64);
        }
        let report = rt.run_to_quiescence(1_000_000);
        spec::check_all(&report, Variant::Strict).unwrap();
    }

    #[test]
    fn strict_variant_sequential_submissions_follow_real_time() {
        // Submit sequentially: each message only after the previous is
        // delivered. Strict ordering must reflect the submission order.
        let gs = topology::two_overlapping(3, 1);
        let mut rt = Runtime::new(
            &gs,
            FailurePattern::all_correct(gs.universe()),
            config(Variant::Strict),
        );
        let m1 = rt.multicast(ProcessId(0), GroupId(0), 1);
        rt.run(1_000_000);
        let m2 = rt.multicast(ProcessId(4), GroupId(1), 2);
        rt.run(1_000_000);
        let report = rt.report(true);
        spec::check_strict_ordering(&report).unwrap();
        // the shared member p2 (index 2) delivers m1 then m2
        assert_eq!(report.delivered_by(ProcessId(2)), vec![m1, m2]);
    }

    #[test]
    fn strict_variant_unblocks_via_indicator_when_intersection_dies() {
        // g ∩ h crashes before anyone can stabilise: without 1^{g∩h} the
        // strict guard would wait forever (γ is of no help in an acyclic
        // topology — γ(g) = ∅ but strict mode quantifies over *all*
        // intersecting groups).
        let gs = topology::two_overlapping(3, 1); // g∩h = {p2}
        let pattern = FailurePattern::from_crashes(gs.universe(), [(ProcessId(2), Time(2))]);
        let mut rt = Runtime::new(&gs, pattern, config(Variant::Strict));
        let m = rt.multicast(ProcessId(0), GroupId(0), 0);
        let report = rt.run_to_quiescence(1_000_000);
        for p in [ProcessId(0), ProcessId(1)] {
            assert!(report.has_delivered(p, m), "{p}");
        }
        spec::check_all(&report, Variant::Strict).unwrap();
    }

    // ---------- pairwise variant (§7) ----------

    #[test]
    fn pairwise_variant_delivers_on_cyclic_topology() {
        let gs = topology::ring(3, 2);
        for seed in 0..10u64 {
            let mut rt = Runtime::new(
                &gs,
                FailurePattern::all_correct(gs.universe()),
                RuntimeConfig {
                    variant: Variant::Pairwise,
                    scheduler: ActionScheduler::Random,
                    seed,
                    ..Default::default()
                },
            );
            for g in 0..3u32 {
                let src = gs.members(GroupId(g)).min().unwrap();
                rt.multicast(src, GroupId(g), g as u64);
            }
            let report = rt.run_to_quiescence(1_000_000);
            spec::check_integrity(&report).unwrap();
            spec::check_termination(&report).unwrap();
            spec::check_pairwise_ordering(&report).unwrap_or_else(|v| panic!("seed {seed}: {v}"));
        }
    }

    #[test]
    fn pairwise_variant_matches_standard_on_acyclic_topology() {
        // With ℱ = ∅ the two variants coincide (§7): pairwise ordering is
        // computationally equivalent to the global one.
        let gs = topology::chain(4, 3);
        for variant in [Variant::Standard, Variant::Pairwise] {
            let mut rt = Runtime::new(
                &gs,
                FailurePattern::all_correct(gs.universe()),
                config(variant),
            );
            for g in 0..4u32 {
                let src = gs.members(GroupId(g)).min().unwrap();
                rt.multicast(src, GroupId(g), g as u64);
            }
            let report = rt.run_to_quiescence(1_000_000);
            spec::check_all(&report, Variant::Standard)
                .unwrap_or_else(|v| panic!("{variant:?}: {v}"));
        }
    }

    // ---------- strong genuineness (§6.2) ----------

    #[test]
    fn group_parallelism_holds_when_f_empty() {
        // Acyclic topologies: the isolated group delivers.
        for gs in [
            topology::chain(4, 3),
            topology::disjoint(3, 3),
            topology::two_overlapping(3, 1),
        ] {
            for (g, _) in gs.iter() {
                check_group_parallelism(
                    &gs,
                    FailurePattern::all_correct(gs.universe()),
                    g,
                    config(Variant::Standard),
                    1_000_000,
                )
                .unwrap_or_else(|v| panic!("{g}: {v}"));
            }
        }
    }

    #[test]
    fn group_parallelism_fails_under_cross_group_contention() {
        // The §6.2 chain: on the ring g1={p0,p1}, g2={p1,p2}, g3={p2,p0},
        // a message m2 to g2 is processed by p1 alone, so it sits *pending*
        // in LOG_{g1∩g2} (its commit needs the (m2,g3,·) announcement from
        // p2). Then g1 runs in isolation: its message lands after m2 in
        // LOG_{g1∩g2}, and p1 cannot deliver it before m2 — which needs p2.
        let gs = topology::ring(3, 2);
        let mut rt = Runtime::new(
            &gs,
            FailurePattern::all_correct(gs.universe()),
            config(Variant::Standard),
        );
        rt.multicast(ProcessId(1), GroupId(1), 99); // m2 → g2
                                                    // Warm up with only p1: m2 reaches LOG_{g1∩g2} but stays pending.
        rt.run_only(gam_kernel::ProcessSet::singleton(ProcessId(1)), 100_000);
        let err = check_group_parallelism_staged(&mut rt, GroupId(0), 200_000).unwrap_err();
        // Both members block: p1 waits for m2 in LOG_{g1∩g2}, and p0 waits
        // for the (m1,g2) stabilisation announcement only p1 could produce.
        assert_eq!(err.property, "group-parallelism");
    }

    #[test]
    fn fresh_isolated_group_delivers_even_on_a_ring() {
        // Without pre-existing contention, the members of g supply all the
        // position announcements themselves (they are the intersections),
        // so a fresh isolated group delivers — contention is essential to
        // the §6.2 separation.
        let gs = topology::ring(3, 2);
        check_group_parallelism(
            &gs,
            FailurePattern::all_correct(gs.universe()),
            GroupId(0),
            config(Variant::Standard),
            200_000,
        )
        .unwrap();
    }

    #[test]
    fn group_parallelism_with_crashed_family_resumes() {
        // If the cyclic family is faulty (one ring joint crashed), γ stops
        // reporting it and the isolated group can commit again.
        let gs = topology::ring(3, 2);
        // crash p2 — the g2∩g3 joint — making the single family faulty.
        let pattern = FailurePattern::from_crashes(gs.universe(), [(ProcessId(2), Time(0))]);
        check_group_parallelism(
            &gs,
            pattern,
            GroupId(0),
            config(Variant::Standard),
            1_000_000,
        )
        .unwrap();
    }
}
