//! ABD atomic registers from the quorum detector `Σ` (message passing).
//!
//! §4 of the paper builds its shared objects bottom-up: "`Σ_g` permits to
//! build shared atomic registers in `g`". This module implements the
//! classic two-phase ABD emulation, generalised from majorities to
//! `Σ`-quorums as in Delporte-Gallet et al.: an operation completes once
//! every member of *some* quorum currently output by `Σ` has acknowledged.
//! Quorum intersection gives atomicity; `Σ`-liveness (eventually only correct
//! processes in quorums) gives wait-freedom for correct clients.
//!
//! The automaton hosts any number of registers, keyed by [`RegisterId`], and
//! serves one client operation at a time per process.

use gam_kernel::{Automaton, Envelope, ProcessId, ProcessSet, StepCtx};

/// Names a register within the ABD automaton's register space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RegisterId(pub u64);

/// A logical timestamp `(sequence, writer)` ordered lexicographically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Stamp {
    /// The write sequence number.
    pub seq: u64,
    /// The writer process (tie-breaker).
    pub writer: u32,
}

/// Protocol messages of the ABD emulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbdMsg<V> {
    /// Phase-1 query: send me your (stamp, value) for `reg`.
    Query {
        /// Target register.
        reg: RegisterId,
        /// Client-local operation tag.
        tag: u64,
    },
    /// Phase-1 reply.
    QueryAck {
        /// Target register.
        reg: RegisterId,
        /// Echoed operation tag.
        tag: u64,
        /// Replica stamp.
        stamp: Stamp,
        /// Replica value (None when never written).
        value: Option<V>,
    },
    /// Phase-2 update: adopt `(stamp, value)` if newer.
    Update {
        /// Target register.
        reg: RegisterId,
        /// Client-local operation tag.
        tag: u64,
        /// Stamp to install.
        stamp: Stamp,
        /// Value to install.
        value: V,
    },
    /// Phase-2 reply.
    UpdateAck {
        /// Target register.
        reg: RegisterId,
        /// Echoed operation tag.
        tag: u64,
    },
}

/// Completion events emitted by the automaton.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbdEvent<V> {
    /// A `read` completed with the given value.
    ReadDone {
        /// The register read.
        reg: RegisterId,
        /// The value read (None when the register was never written).
        value: Option<V>,
    },
    /// A `write` completed.
    WriteDone {
        /// The register written.
        reg: RegisterId,
    },
}

#[derive(Debug, Clone)]
enum Pending<V> {
    /// Phase 1 of a read or write: collecting `QueryAck`s.
    Query {
        tag: u64,
        reg: RegisterId,
        acks: ProcessSet,
        best: (Stamp, Option<V>),
        write: Option<V>,
    },
    /// Phase 2: collecting `UpdateAck`s.
    Update {
        tag: u64,
        reg: RegisterId,
        acks: ProcessSet,
        is_read: bool,
        value: Option<V>,
    },
}

/// The per-process ABD automaton: replica plus client.
///
/// Drive it by calling [`AbdProcess::read`] / [`AbdProcess::write`] between
/// simulator steps, then run the simulator until the corresponding
/// [`AbdEvent`] appears in the trace.
#[derive(Debug, Clone)]
pub struct AbdProcess<V> {
    me: ProcessId,
    scope: ProcessSet,
    replicas: std::collections::BTreeMap<RegisterId, (Stamp, Option<V>)>,
    pending: Option<Pending<V>>,
    queued: std::collections::VecDeque<(RegisterId, Option<V>)>,
    next_tag: u64,
    started: bool,
}

impl<V: Clone + std::fmt::Debug> AbdProcess<V> {
    /// Creates the automaton for process `me` within `scope`.
    ///
    /// # Panics
    ///
    /// Panics if `me ∉ scope`.
    pub fn new(me: ProcessId, scope: ProcessSet) -> Self {
        assert!(scope.contains(me), "{me} must be in the register scope");
        AbdProcess {
            me,
            scope,
            replicas: Default::default(),
            pending: None,
            queued: Default::default(),
            next_tag: 0,
            started: false,
        }
    }

    /// Enqueues a read of `reg`. Completes with [`AbdEvent::ReadDone`].
    pub fn read(&mut self, reg: RegisterId) {
        self.queued.push_back((reg, None));
    }

    /// Enqueues a write of `value` to `reg`. Completes with
    /// [`AbdEvent::WriteDone`].
    pub fn write(&mut self, reg: RegisterId, value: V) {
        self.queued.push_back((reg, Some(value)));
    }

    /// Whether an operation is in flight or queued.
    pub fn busy(&self) -> bool {
        self.pending.is_some() || !self.queued.is_empty()
    }

    fn replica(&mut self, reg: RegisterId) -> &mut (Stamp, Option<V>) {
        self.replicas.entry(reg).or_insert((Stamp::default(), None))
    }

    fn start_next(&mut self, ctx: &mut StepCtx<AbdMsg<V>, AbdEvent<V>>) {
        if self.pending.is_some() {
            return;
        }
        let Some((reg, write)) = self.queued.pop_front() else {
            return;
        };
        let tag = self.next_tag;
        self.next_tag += 1;
        self.pending = Some(Pending::Query {
            tag,
            reg,
            acks: ProcessSet::EMPTY,
            best: (Stamp::default(), None),
            write,
        });
        ctx.send(self.scope, AbdMsg::Query { reg, tag });
    }

    fn quorum_acked(acks: ProcessSet, sigma: &Option<ProcessSet>) -> bool {
        sigma.as_ref().is_some_and(|q| q.is_subset(acks))
    }
}

impl<V: Clone + std::fmt::Debug> Automaton for AbdProcess<V> {
    type Msg = AbdMsg<V>;
    /// The `Σ_scope` sample (⊥ outside the scope).
    type Fd = Option<ProcessSet>;
    type Event = AbdEvent<V>;

    fn step(
        &mut self,
        ctx: &mut StepCtx<AbdMsg<V>, AbdEvent<V>>,
        input: Option<Envelope<AbdMsg<V>>>,
        sigma: &Option<ProcessSet>,
    ) {
        self.started = true;
        // Replica + client message handling.
        if let Some(env) = input {
            match env.payload {
                AbdMsg::Query { reg, tag } => {
                    let (stamp, value) = self.replica(reg).clone();
                    ctx.send_to(
                        env.src,
                        AbdMsg::QueryAck {
                            reg,
                            tag,
                            stamp,
                            value,
                        },
                    );
                }
                AbdMsg::Update {
                    reg,
                    tag,
                    stamp,
                    value,
                } => {
                    let replica = self.replica(reg);
                    if stamp > replica.0 {
                        *replica = (stamp, Some(value));
                    }
                    ctx.send_to(env.src, AbdMsg::UpdateAck { reg, tag });
                }
                AbdMsg::QueryAck {
                    reg,
                    tag,
                    stamp,
                    value,
                } => {
                    if let Some(Pending::Query {
                        tag: t,
                        reg: r,
                        acks,
                        best,
                        ..
                    }) = &mut self.pending
                    {
                        if *t == tag && *r == reg {
                            acks.insert(env.src);
                            if stamp > best.0 {
                                *best = (stamp, value);
                            }
                        }
                    }
                }
                AbdMsg::UpdateAck { reg, tag } => {
                    if let Some(Pending::Update {
                        tag: t,
                        reg: r,
                        acks,
                        ..
                    }) = &mut self.pending
                    {
                        if *t == tag && *r == reg {
                            acks.insert(env.src);
                        }
                    }
                }
            }
        }
        // Phase transitions, guarded by the current Σ sample.
        match self.pending.take() {
            Some(Pending::Query {
                tag,
                reg,
                acks,
                best,
                write,
            }) => {
                if Self::quorum_acked(acks, sigma) {
                    let (is_read, stamp, value) = match write {
                        Some(v) => (
                            false,
                            Stamp {
                                seq: best.0.seq + 1,
                                writer: self.me.0,
                            },
                            Some(v),
                        ),
                        None => (true, best.0, best.1.clone()),
                    };
                    match &value {
                        Some(v) => {
                            let tag2 = self.next_tag;
                            self.next_tag += 1;
                            self.pending = Some(Pending::Update {
                                tag: tag2,
                                reg,
                                acks: ProcessSet::EMPTY,
                                is_read,
                                value: value.clone(),
                            });
                            ctx.send(
                                self.scope,
                                AbdMsg::Update {
                                    reg,
                                    tag: tag2,
                                    stamp,
                                    value: v.clone(),
                                },
                            );
                        }
                        None => {
                            // Read of a never-written register: no
                            // write-back needed (all replicas agree on ⊥).
                            ctx.emit(AbdEvent::ReadDone { reg, value: None });
                        }
                    }
                } else {
                    self.pending = Some(Pending::Query {
                        tag,
                        reg,
                        acks,
                        best,
                        write,
                    });
                }
            }
            Some(Pending::Update {
                tag,
                reg,
                acks,
                is_read,
                value,
            }) => {
                if Self::quorum_acked(acks, sigma) {
                    if is_read {
                        ctx.emit(AbdEvent::ReadDone { reg, value });
                    } else {
                        ctx.emit(AbdEvent::WriteDone { reg });
                    }
                } else {
                    self.pending = Some(Pending::Update {
                        tag,
                        reg,
                        acks,
                        is_read,
                        value,
                    });
                }
            }
            None => {}
        }
        self.start_next(ctx);
    }

    fn is_active(&self) -> bool {
        // Need a spontaneous step to launch a queued operation, or to
        // re-check quorum membership as Σ evolves.
        !self.queued.is_empty() || self.pending.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gam_detectors::{SigmaMode, SigmaOracle};
    use gam_kernel::{FailurePattern, ProcessSet, RunOutcome, Scheduler, Simulator, Time};

    fn system(n: usize, pattern: FailurePattern) -> Simulator<AbdProcess<u64>, SigmaOracle> {
        let scope = ProcessSet::first_n(n);
        let autos = (0..n)
            .map(|i| AbdProcess::new(ProcessId(i as u32), scope))
            .collect();
        let sigma = SigmaOracle::new(scope, pattern.clone(), SigmaMode::Alive);
        Simulator::new(autos, pattern, sigma)
    }

    const R: RegisterId = RegisterId(0);

    #[test]
    fn write_then_read_returns_value() {
        let n = 3;
        let pattern = FailurePattern::all_correct(ProcessSet::first_n(n));
        let mut sim = system(n, pattern);
        sim.automaton_mut(ProcessId(0)).write(R, 42);
        let out = sim.run(Scheduler::RoundRobin, 100_000);
        assert_eq!(out, RunOutcome::Quiescent);
        assert!(sim
            .trace()
            .events_of(ProcessId(0))
            .any(|e| matches!(e.event, AbdEvent::WriteDone { .. })));
        // Now read from another process.
        sim.automaton_mut(ProcessId(1)).read(R);
        sim.run(Scheduler::RoundRobin, 100_000);
        assert!(sim.trace().events_of(ProcessId(1)).any(|e| e.event
            == AbdEvent::ReadDone {
                reg: R,
                value: Some(42)
            }));
    }

    #[test]
    fn read_of_unwritten_register_is_none() {
        let n = 3;
        let pattern = FailurePattern::all_correct(ProcessSet::first_n(n));
        let mut sim = system(n, pattern);
        sim.automaton_mut(ProcessId(2)).read(R);
        sim.run(Scheduler::RoundRobin, 100_000);
        assert!(sim.trace().events_of(ProcessId(2)).any(|e| e.event
            == AbdEvent::ReadDone {
                reg: R,
                value: None
            }));
    }

    #[test]
    fn survives_minority_crash() {
        let n = 5;
        let pattern = FailurePattern::from_crashes(
            ProcessSet::first_n(n),
            [(ProcessId(3), Time(1)), (ProcessId(4), Time(1))],
        );
        let mut sim = system(n, pattern);
        sim.automaton_mut(ProcessId(0)).write(R, 7);
        sim.automaton_mut(ProcessId(1)).read(R);
        let out = sim.run(Scheduler::RoundRobin, 200_000);
        assert_eq!(out, RunOutcome::Quiescent);
        assert!(sim
            .trace()
            .events_of(ProcessId(0))
            .any(|e| matches!(e.event, AbdEvent::WriteDone { .. })));
        // The read returns either ⊥ or 7 (concurrent with the write) but completes.
        assert!(sim
            .trace()
            .events_of(ProcessId(1))
            .any(|e| matches!(e.event, AbdEvent::ReadDone { .. })));
    }

    #[test]
    fn reads_after_write_completion_are_never_stale() {
        // Sequential: w(1); w(2); then reads from every process see 2.
        let n = 4;
        let pattern = FailurePattern::all_correct(ProcessSet::first_n(n));
        let mut sim = system(n, pattern);
        sim.automaton_mut(ProcessId(0)).write(R, 1);
        sim.run(Scheduler::RoundRobin, 100_000);
        sim.automaton_mut(ProcessId(1)).write(R, 2);
        sim.run(Scheduler::RoundRobin, 100_000);
        for i in 0..n {
            sim.automaton_mut(ProcessId(i as u32)).read(R);
        }
        sim.run(Scheduler::Random { null_prob: 0.2 }, 400_000);
        for i in 0..n {
            let p = ProcessId(i as u32);
            assert!(
                sim.trace().events_of(p).any(|e| e.event
                    == AbdEvent::ReadDone {
                        reg: R,
                        value: Some(2)
                    }),
                "{p} read a stale value"
            );
        }
    }

    #[test]
    fn multiple_registers_are_independent() {
        let n = 3;
        let pattern = FailurePattern::all_correct(ProcessSet::first_n(n));
        let mut sim = system(n, pattern);
        sim.automaton_mut(ProcessId(0)).write(RegisterId(1), 10);
        sim.automaton_mut(ProcessId(1)).write(RegisterId(2), 20);
        sim.run(Scheduler::RoundRobin, 200_000);
        sim.automaton_mut(ProcessId(2)).read(RegisterId(1));
        sim.automaton_mut(ProcessId(2)).read(RegisterId(2));
        sim.run(Scheduler::RoundRobin, 200_000);
        let reads: Vec<_> = sim
            .trace()
            .events_of(ProcessId(2))
            .filter_map(|e| match &e.event {
                AbdEvent::ReadDone { reg, value } => Some((*reg, *value)),
                _ => None,
            })
            .collect();
        assert!(reads.contains(&(RegisterId(1), Some(10))));
        assert!(reads.contains(&(RegisterId(2), Some(20))));
    }

    #[test]
    fn stamp_ordering_is_lexicographic() {
        let a = Stamp { seq: 1, writer: 9 };
        let b = Stamp { seq: 2, writer: 0 };
        let c = Stamp { seq: 2, writer: 1 };
        assert!(a < b && b < c);
    }
}
