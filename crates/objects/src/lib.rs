//! # gam-objects — wait-free shared objects
//!
//! The shared-object substrate of §4.3 "Implementing the shared objects":
//!
//! - **Sequential specifications** applied atomically in the shared-memory
//!   execution level: the [`Log`] of Algorithm 1 (slots, `append`,
//!   `bumpAndLock`, `pos`, `locked`, the order `<_L`), one-shot
//!   [`Consensus`], and Gafni's [`AdoptCommit`] objects.
//! - **Message-passing constructions** over the `gam-kernel` simulator:
//!   [`AbdProcess`] builds atomic registers from `Σ`-quorums, and
//!   [`PaxosProcess`] is the `Ω`-boosted indulgent consensus the paper uses
//!   inside each destination group.
//!
//! ## Quickstart
//!
//! ```
//! use gam_objects::{Log, Pos};
//!
//! let mut log: Log<&str> = Log::new();
//! log.append("m1");
//! log.append("m2");
//! log.bump_and_lock(&"m1", Pos(3)); // Skeen-style bump
//! assert!(log.before(&"m2", &"m1"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod abd;
mod adopt_commit;
mod consensus;
mod fast_log;
mod log;
mod paxos;

pub use abd::{AbdEvent, AbdMsg, AbdProcess, RegisterId, Stamp};
pub use adopt_commit::{AdoptCommit, Grade};
pub use consensus::Consensus;
pub use fast_log::{FastLogFd, FastLogHistory, FastLogMsg, FastLogProcess, SlotDecided};
pub use log::{Log, Pos};
pub use paxos::{Decided, OmegaSigma, OmegaSigmaHistory, PaxosMsg, PaxosProcess};
