//! Consensus objects (sequential specification).
//!
//! Algorithm 1 indexes consensus objects by message and family
//! (`CONS_{m,𝔣}`, line 3) and uses them to agree on the final position of a
//! message in the logs. In the shared-memory execution level the object is
//! linearizable by construction: `propose` decides the first proposed value.
//!
//! The message-passing implementation — an `Ω`-boosted indulgent consensus
//! over `Σ`-quorums, the route of §4.3 "Implementing the shared objects" —
//! lives in [`crate::paxos`].

use std::fmt;

/// A one-shot consensus object: the first proposal wins.
///
/// Satisfies *validity* (the decision was proposed), *agreement* (every
/// `propose` returns the same value) and *integrity* (the decision never
/// changes).
///
/// # Examples
///
/// ```
/// use gam_objects::Consensus;
///
/// let mut c = Consensus::new();
/// assert_eq!(c.propose(7), 7);
/// assert_eq!(c.propose(9), 7); // decided
/// assert_eq!(c.decision(), Some(&7));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Consensus<V: Clone> {
    decided: Option<V>,
    proposals: u64,
}

impl<V: Clone> Consensus<V> {
    /// Creates an undecided consensus object.
    pub fn new() -> Self {
        Consensus {
            decided: None,
            proposals: 0,
        }
    }

    /// Proposes `v`; returns the decision (the first value ever proposed).
    pub fn propose(&mut self, v: V) -> V {
        self.proposals += 1;
        self.decided.get_or_insert(v).clone()
    }

    /// The decision, if any proposal has been made.
    pub fn decision(&self) -> Option<&V> {
        self.decided.as_ref()
    }

    /// Number of `propose` invocations so far.
    pub fn proposal_count(&self) -> u64 {
        self.proposals
    }
}

impl<V: Clone + fmt::Display> fmt::Display for Consensus<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.decided {
            Some(v) => write!(f, "decided({v})"),
            None => write!(f, "undecided"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn first_proposal_wins() {
        let mut c = Consensus::new();
        assert_eq!(c.decision(), None);
        assert_eq!(c.propose("a"), "a");
        assert_eq!(c.propose("b"), "a");
        assert_eq!(c.proposal_count(), 2);
        assert_eq!(c.to_string(), "decided(a)");
    }

    proptest! {
        /// Agreement + validity over arbitrary proposal sequences.
        #[test]
        fn prop_agreement_validity(proposals in proptest::collection::vec(0u32..100, 1..20)) {
            let mut c = Consensus::new();
            let mut outs = Vec::new();
            for v in &proposals {
                outs.push(c.propose(*v));
            }
            // agreement
            prop_assert!(outs.iter().all(|o| *o == outs[0]));
            // validity
            prop_assert!(proposals.contains(&outs[0]));
            // the decision is the first proposal (sequential spec)
            prop_assert_eq!(outs[0], proposals[0]);
        }
    }
}
