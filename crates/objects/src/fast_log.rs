//! The contention-free fast log for `LOG_{g∩h}` — the modified universal
//! construction of §4.3 and Proposition 47.
//!
//! `μ` offers no consensus in `g ∩ h`, so the log shared by two intersecting
//! groups is built from an unbounded list of *contention-free fast*
//! consensus objects: each slot is guarded by an adopt–commit object
//! implemented from `Σ_{g∩h}`-quorums **among the intersection only**, and
//! falls back to an `Ω_g ∧ Σ_g` consensus (Paxos) **in the full group `g`**
//! only when the adopt–commit fails. When processes execute operations in
//! the exact same order (no step contention), every slot commits on the
//! fast path and *only the processes of `g ∩ h` take steps* — which is how
//! the construction preserves minimality (Proposition 47).
//!
//! The adopt–commit here is the classic two-phase quorum protocol: phase 1
//! announces the proposal and collects the values seen by a quorum; phase 2
//! announces `(value, clean?)` and commits iff a quorum saw only clean
//! announcements of a single value.

use crate::paxos::{Decided, PaxosMsg, PaxosProcess};
use gam_kernel::{Automaton, Envelope, History, ProcessId, ProcessSet, StepCtx, Time};
use std::collections::{BTreeMap, BTreeSet};

/// The failure-detector sample the fast log consumes:
/// `Σ_{g∩h} ∧ Ω_g ∧ Σ_g`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastLogFd {
    /// `Σ_{g∩h}` (⊥ outside the intersection).
    pub inter_quorum: Option<ProcessSet>,
    /// `Ω_g` (⊥ outside `g`).
    pub leader: Option<ProcessId>,
    /// `Σ_g` (⊥ outside `g`).
    pub group_quorum: Option<ProcessSet>,
}

/// A [`History`] bundling the three constituent oracles.
#[derive(Debug, Clone)]
pub struct FastLogHistory<I, O, G> {
    inter: I,
    omega: O,
    group: G,
}

impl<I, O, G> FastLogHistory<I, O, G> {
    /// Bundles `Σ_{g∩h}`, `Ω_g` and `Σ_g` histories.
    pub fn new(inter: I, omega: O, group: G) -> Self {
        FastLogHistory {
            inter,
            omega,
            group,
        }
    }
}

impl<I, O, G> History for FastLogHistory<I, O, G>
where
    I: History<Value = Option<ProcessSet>>,
    O: History<Value = Option<ProcessId>>,
    G: History<Value = Option<ProcessSet>>,
{
    type Value = FastLogFd;

    fn sample(&self, p: ProcessId, t: Time) -> FastLogFd {
        FastLogFd {
            inter_quorum: self.inter.sample(p, t),
            leader: self.omega.sample(p, t),
            group_quorum: self.group.sample(p, t),
        }
    }
}

/// Protocol messages of the fast log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FastLogMsg {
    /// AC phase 1: announce a proposal for `slot`.
    AcP1 {
        /// Log slot.
        slot: u64,
        /// Proposed command.
        value: u64,
    },
    /// AC phase-1 acknowledgement: the values this replica has seen.
    AcP1Ack {
        /// Log slot.
        slot: u64,
        /// Snapshot of phase-1 values seen by the replica.
        seen: Vec<u64>,
    },
    /// AC phase 2: announce `(value, clean)`.
    AcP2 {
        /// Log slot.
        slot: u64,
        /// Carried value.
        value: u64,
        /// Whether phase 1 saw only this value.
        clean: bool,
    },
    /// AC phase-2 acknowledgement: the `(value, clean)` entries seen.
    AcP2Ack {
        /// Log slot.
        slot: u64,
        /// Snapshot of phase-2 entries seen by the replica.
        seen: Vec<(u64, bool)>,
    },
    /// Fast-path decision announcement within `g ∩ h`.
    SlotDecide {
        /// Log slot.
        slot: u64,
        /// Decided command.
        value: u64,
    },
    /// Encapsulated backup-consensus traffic (within `g`).
    Paxos(PaxosMsg<u64>),
}

/// Emitted when a slot's command is learnt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotDecided {
    /// Log slot.
    pub slot: u64,
    /// Decided command.
    pub value: u64,
}

#[derive(Debug, Clone)]
enum AcState {
    P1 {
        value: u64,
        acks: ProcessSet,
        union: BTreeSet<u64>,
    },
    P2 {
        value: u64,
        clean: bool,
        acks: ProcessSet,
        union: BTreeSet<(u64, bool)>,
    },
}

/// One process of the fast log: replica + client + backup-consensus member.
#[derive(Debug, Clone)]
pub struct FastLogProcess {
    me: ProcessId,
    /// `g ∩ h` — the fast-path participants.
    inter: ProcessSet,
    /// `g` — the backup-consensus participants.
    group: ProcessSet,
    /// Replica state: phase-1 values and phase-2 entries per slot.
    p1_seen: BTreeMap<u64, BTreeSet<u64>>,
    p2_seen: BTreeMap<u64, BTreeSet<(u64, bool)>>,
    /// Learnt log prefix.
    decided: BTreeMap<u64, u64>,
    /// Client: commands waiting to be appended.
    queue: std::collections::VecDeque<u64>,
    /// The in-flight adopt–commit attempt (slot, state).
    attempt: Option<(u64, AcState)>,
    /// Slots for which a backup consensus is engaged.
    fallback: BTreeSet<u64>,
    paxos: PaxosProcess<u64>,
}

impl FastLogProcess {
    /// Creates the automaton for process `me` with fast path in `inter` and
    /// backup consensus in `group`.
    ///
    /// # Panics
    ///
    /// Panics if `inter ⊄ group` or `me ∉ group`.
    pub fn new(me: ProcessId, inter: ProcessSet, group: ProcessSet) -> Self {
        assert!(inter.is_subset(group), "g∩h must be within g");
        assert!(group.contains(me), "{me} must be in g");
        FastLogProcess {
            me,
            inter,
            group,
            p1_seen: BTreeMap::new(),
            p2_seen: BTreeMap::new(),
            decided: BTreeMap::new(),
            queue: Default::default(),
            attempt: None,
            fallback: BTreeSet::new(),
            paxos: PaxosProcess::new(me, group),
        }
    }

    /// Queues `append(cmd)` — only members of `g ∩ h` may append (they are
    /// the processes executing log operations in Algorithm 1).
    ///
    /// # Panics
    ///
    /// Panics if this process is outside `g ∩ h`.
    pub fn append(&mut self, cmd: u64) {
        assert!(self.inter.contains(self.me), "only g∩h appends");
        self.queue.push_back(cmd);
    }

    /// The backup-consensus scope `g`.
    pub fn group(&self) -> ProcessSet {
        self.group
    }

    /// The learnt command of `slot`, if any.
    pub fn slot(&self, slot: u64) -> Option<u64> {
        self.decided.get(&slot).copied()
    }

    /// The learnt log prefix, in slot order.
    pub fn log(&self) -> Vec<u64> {
        let mut out = Vec::new();
        let mut s = 0u64;
        while let Some(v) = self.decided.get(&s) {
            out.push(*v);
            s += 1;
        }
        out
    }

    fn next_free_slot(&self) -> u64 {
        let mut s = 0u64;
        while self.decided.contains_key(&s) {
            s += 1;
        }
        s
    }

    fn decide(
        &mut self,
        slot: u64,
        value: u64,
        ctx: &mut StepCtx<FastLogMsg, SlotDecided>,
        announce: bool,
    ) {
        if self.decided.insert(slot, value).is_none() {
            ctx.emit(SlotDecided { slot, value });
            if announce {
                ctx.send(self.inter, FastLogMsg::SlotDecide { slot, value });
            }
        }
    }

    fn drive_paxos(
        &mut self,
        ctx: &mut StepCtx<FastLogMsg, SlotDecided>,
        input: Option<Envelope<PaxosMsg<u64>>>,
        fd: &FastLogFd,
    ) {
        let mut sub: StepCtx<PaxosMsg<u64>, Decided<u64>> = StepCtx::detached(self.me, ctx.now());
        self.paxos.step(
            &mut sub,
            input,
            &crate::paxos::OmegaSigma {
                leader: fd.leader,
                quorum: fd.group_quorum,
            },
        );
        for (dst, msg) in sub.take_sends() {
            ctx.send(dst, FastLogMsg::Paxos(msg));
        }
        for d in sub.take_events() {
            self.decide(d.instance, d.value, ctx, false);
        }
    }
}

impl Automaton for FastLogProcess {
    type Msg = FastLogMsg;
    type Fd = FastLogFd;
    type Event = SlotDecided;

    fn step(
        &mut self,
        ctx: &mut StepCtx<FastLogMsg, SlotDecided>,
        input: Option<Envelope<FastLogMsg>>,
        fd: &FastLogFd,
    ) {
        let me = self.me;
        // ---- message handling ------------------------------------------
        let mut paxos_input: Option<Envelope<PaxosMsg<u64>>> = None;
        if let Some(env) = input {
            let src = env.src;
            match env.payload {
                FastLogMsg::AcP1 { slot, value } => {
                    let seen = self.p1_seen.entry(slot).or_default();
                    seen.insert(value);
                    let snapshot: Vec<u64> = seen.iter().copied().collect();
                    ctx.send_to(
                        src,
                        FastLogMsg::AcP1Ack {
                            slot,
                            seen: snapshot,
                        },
                    );
                }
                FastLogMsg::AcP2 { slot, value, clean } => {
                    let seen = self.p2_seen.entry(slot).or_default();
                    seen.insert((value, clean));
                    let snapshot: Vec<(u64, bool)> = seen.iter().copied().collect();
                    ctx.send_to(
                        src,
                        FastLogMsg::AcP2Ack {
                            slot,
                            seen: snapshot,
                        },
                    );
                }
                FastLogMsg::AcP1Ack { slot, seen } => {
                    if let Some((s, AcState::P1 { acks, union, .. })) = &mut self.attempt {
                        if *s == slot {
                            acks.insert(src);
                            union.extend(seen);
                        }
                    }
                }
                FastLogMsg::AcP2Ack { slot, seen } => {
                    if let Some((s, AcState::P2 { acks, union, .. })) = &mut self.attempt {
                        if *s == slot {
                            acks.insert(src);
                            union.extend(seen);
                        }
                    }
                }
                FastLogMsg::SlotDecide { slot, value } => {
                    self.decide(slot, value, ctx, false);
                }
                FastLogMsg::Paxos(msg) => {
                    paxos_input = Some(Envelope {
                        id: env.id,
                        src: env.src,
                        dst: env.dst,
                        sent_at: env.sent_at,
                        payload: msg,
                    });
                }
            }
        }

        // ---- adopt–commit phase transitions -----------------------------
        match self.attempt.take() {
            Some((slot, AcState::P1 { value, acks, union })) => {
                if self.decided.contains_key(&slot) {
                    // decided underneath us (fast or backup path)
                } else if fd.inter_quorum.as_ref().is_some_and(|q| q.is_subset(acks)) {
                    let clean = union.iter().all(|v| *v == value);
                    let est = if clean {
                        value
                    } else {
                        *union.iter().min().expect("phase 1 saw at least our value")
                    };
                    self.attempt = Some((
                        slot,
                        AcState::P2 {
                            value: est,
                            clean,
                            acks: ProcessSet::EMPTY,
                            union: BTreeSet::new(),
                        },
                    ));
                    ctx.send(
                        self.inter,
                        FastLogMsg::AcP2 {
                            slot,
                            value: est,
                            clean,
                        },
                    );
                } else {
                    self.attempt = Some((slot, AcState::P1 { value, acks, union }));
                }
            }
            Some((
                slot,
                AcState::P2 {
                    value,
                    clean,
                    acks,
                    union,
                },
            )) => {
                if self.decided.contains_key(&slot) {
                    // decided underneath us
                } else if fd.inter_quorum.as_ref().is_some_and(|q| q.is_subset(acks)) {
                    let all_clean_same = union.iter().all(|(v, c)| *c && *v == value) && clean;
                    if all_clean_same {
                        // fast-path commit
                        self.decide(slot, value, ctx, true);
                    } else {
                        // adopt: carry a clean value if one exists, else est
                        let carried = union
                            .iter()
                            .find(|(_, c)| *c)
                            .map(|(v, _)| *v)
                            .unwrap_or(value);
                        self.fallback.insert(slot);
                        self.paxos.propose(slot, carried);
                    }
                } else {
                    self.attempt = Some((
                        slot,
                        AcState::P2 {
                            value,
                            clean,
                            acks,
                            union,
                        },
                    ));
                }
            }
            None => {}
        }

        // ---- backup consensus -------------------------------------------
        // Drive Paxos when it has traffic or an engaged fallback slot; this
        // is the *only* path on which processes of g \ (g∩h) take steps.
        if paxos_input.is_some() || !self.fallback.is_empty() {
            self.drive_paxos(ctx, paxos_input, fd);
            let decided_now: Vec<u64> = self
                .fallback
                .iter()
                .copied()
                .filter(|s| self.decided.contains_key(s))
                .collect();
            for s in decided_now {
                self.fallback.remove(&s);
            }
        }

        // ---- client: launch the next append -----------------------------
        if self.attempt.is_none() && self.inter.contains(me) {
            if let Some(cmd) = self.queue.front().copied() {
                // retry at successive slots until our command lands
                if self.log().contains(&cmd) {
                    self.queue.pop_front();
                } else {
                    let slot = self.next_free_slot();
                    self.attempt = Some((
                        slot,
                        AcState::P1 {
                            value: cmd,
                            acks: ProcessSet::EMPTY,
                            union: BTreeSet::new(),
                        },
                    ));
                    ctx.send(self.inter, FastLogMsg::AcP1 { slot, value: cmd });
                }
            }
        }
    }

    fn is_active(&self) -> bool {
        !self.queue.is_empty() || self.attempt.is_some() || !self.fallback.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gam_detectors::{OmegaMode, OmegaOracle, SigmaMode, SigmaOracle};
    use gam_kernel::{FailurePattern, RunOutcome, Scheduler, Simulator};

    /// g = {p0..p4}, g∩h = {p0, p1}.
    fn system(
        pattern: FailurePattern,
    ) -> Simulator<FastLogProcess, FastLogHistory<SigmaOracle, OmegaOracle, SigmaOracle>> {
        let group = ProcessSet::first_n(5);
        let inter = ProcessSet::from_iter([0u32, 1]);
        let autos = group
            .iter()
            .map(|p| FastLogProcess::new(p, inter, group))
            .collect();
        let hist = FastLogHistory::new(
            SigmaOracle::new(inter, pattern.clone(), SigmaMode::Alive),
            OmegaOracle::new(group, pattern.clone(), OmegaMode::MinAlive),
            SigmaOracle::new(group, pattern.clone(), SigmaMode::Alive),
        );
        Simulator::new(autos, pattern, hist)
    }

    #[test]
    fn contention_free_appends_use_only_the_intersection() {
        // Proposition 47: sequential appends (same order everywhere) stay
        // on the adopt–commit fast path — no process of g \ (g∩h) takes a
        // single step.
        let pattern = FailurePattern::all_correct(ProcessSet::first_n(5));
        let mut sim = system(pattern);
        for (i, cmd) in [10u64, 20, 30].iter().enumerate() {
            let appender = ProcessId((i % 2) as u32); // alternate p0/p1
            sim.automaton_mut(appender).append(*cmd);
            let out = sim.run(Scheduler::RoundRobin, 100_000);
            assert_eq!(out, RunOutcome::Quiescent);
        }
        for p in [ProcessId(0), ProcessId(1)] {
            assert_eq!(sim.automaton(p).log(), vec![10, 20, 30], "{p}");
        }
        for p in [ProcessId(2), ProcessId(3), ProcessId(4)] {
            assert_eq!(
                sim.trace().steps_of(p),
                0,
                "{p} ∈ g∖(g∩h) must take no steps (Prop. 47)"
            );
        }
    }

    #[test]
    fn contention_falls_back_to_group_consensus() {
        // Concurrent conflicting appends: the adopt–commit fails and the
        // backup consensus in g engages — now g∖(g∩h) does step, and the
        // replicas still agree on a total order containing both commands.
        let pattern = FailurePattern::all_correct(ProcessSet::first_n(5));
        for seed in 0..5u64 {
            let mut sim = system(pattern.clone()).with_seed(seed);
            sim.automaton_mut(ProcessId(0)).append(111);
            sim.automaton_mut(ProcessId(1)).append(222);
            let out = sim.run(Scheduler::Random { null_prob: 0.2 }, 2_000_000);
            assert_eq!(out, RunOutcome::Quiescent, "seed {seed}");
            let l0 = sim.automaton(ProcessId(0)).log();
            let l1 = sim.automaton(ProcessId(1)).log();
            assert_eq!(l0, l1, "seed {seed}: replica logs agree");
            assert!(
                l0.contains(&111) && l0.contains(&222),
                "seed {seed}: {l0:?}"
            );
        }
    }

    #[test]
    fn fast_path_survives_group_side_crashes() {
        // Crashes outside g∩h do not disturb the fast path at all.
        let pattern = FailurePattern::from_crashes(
            ProcessSet::first_n(5),
            [(ProcessId(3), Time(0)), (ProcessId(4), Time(0))],
        );
        let mut sim = system(pattern);
        sim.automaton_mut(ProcessId(0)).append(7);
        let out = sim.run(Scheduler::RoundRobin, 100_000);
        assert_eq!(out, RunOutcome::Quiescent);
        assert_eq!(sim.automaton(ProcessId(1)).log(), vec![7]);
    }

    #[test]
    fn slot_accessors() {
        let pattern = FailurePattern::all_correct(ProcessSet::first_n(5));
        let mut sim = system(pattern);
        sim.automaton_mut(ProcessId(0)).append(42);
        sim.run(Scheduler::RoundRobin, 100_000);
        assert_eq!(sim.automaton(ProcessId(0)).slot(0), Some(42));
        assert_eq!(sim.automaton(ProcessId(0)).slot(1), None);
    }

    #[test]
    #[should_panic(expected = "only g∩h appends")]
    fn append_outside_intersection_rejected() {
        let group = ProcessSet::first_n(3);
        let inter = ProcessSet::from_iter([0u32]);
        let mut p = FastLogProcess::new(ProcessId(2), inter, group);
        p.append(1);
    }
}
