//! The log object of §4.3 — the shared data structure Algorithm 1 is built
//! on.
//!
//! A log is an infinite array of slots, numbered from 1, each holding zero or
//! more data items. `append(d)` inserts `d` at the head (the first free slot
//! after which there are only free slots); `bumpAndLock(d, k)` moves `d` from
//! its slot `l` to `max(k, l)` and locks it there (a locked datum can never
//! move again); `pos(d)` returns the slot of `d` (0 when absent); `locked(d)`
//! tells whether `d` is locked. A log induces the order `d <_L d'` — lower
//! slot first, ties broken by the a-priori total order on data.
//!
//! The "trivia" invariants of Table 2 (Claims 2–8) are enforced by
//! construction and exercised by the unit and property tests below.

use std::collections::BTreeMap;
use std::fmt;

/// A position in a log: slot numbers start at 1; [`Pos::ABSENT`] (0) means
/// the datum is not in the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pos(pub u64);

impl Pos {
    /// The position of a datum that is not in the log.
    pub const ABSENT: Pos = Pos(0);

    /// Returns `true` if this denotes a real slot.
    pub fn is_present(self) -> bool {
        self.0 > 0
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Entry {
    slot: u64,
    locked: bool,
}

/// A linearizable, long-lived, wait-free log (sequential specification).
///
/// In the shared-memory execution level the simulator applies one operation
/// at a time, so this sequential object *is* the linearization the paper
/// reasons over.
///
/// # Examples
///
/// ```
/// use gam_objects::{Log, Pos};
///
/// let mut log: Log<&str> = Log::new();
/// assert_eq!(log.append("a"), Pos(1));
/// assert_eq!(log.append("b"), Pos(2));
/// // Bump "a" to slot 5 and lock it there.
/// assert_eq!(log.bump_and_lock(&"a", Pos(5)), Pos(5));
/// assert!(log.locked(&"a"));
/// assert!(log.before(&"b", &"a")); // b (#2) <_L a (#5)
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log<D: Ord + Clone> {
    entries: BTreeMap<D, Entry>,
    /// Highest occupied slot (0 when empty). The head is `max_slot + 1`.
    max_slot: u64,
}

impl<D: Ord + Clone> Default for Log<D> {
    fn default() -> Self {
        Self::new()
    }
}

impl<D: Ord + Clone> Log<D> {
    /// Creates an empty log (head at slot 1).
    pub fn new() -> Self {
        Log {
            entries: BTreeMap::new(),
            max_slot: 0,
        }
    }

    /// The head of the log: the first free slot after which there are only
    /// free slots.
    pub fn head(&self) -> Pos {
        Pos(self.max_slot + 1)
    }

    /// `append(d)`: inserts `d` at the head and returns its position. If `d`
    /// is already present, does nothing and returns its current position.
    pub fn append(&mut self, d: D) -> Pos {
        if let Some(e) = self.entries.get(&d) {
            return Pos(e.slot);
        }
        let slot = self.max_slot + 1;
        self.max_slot = slot;
        self.entries.insert(
            d,
            Entry {
                slot,
                locked: false,
            },
        );
        Pos(slot)
    }

    /// `pos(d)`: the position of `d`, or [`Pos::ABSENT`].
    pub fn pos(&self, d: &D) -> Pos {
        self.entries.get(d).map_or(Pos::ABSENT, |e| Pos(e.slot))
    }

    /// `d ∈ L`.
    pub fn contains(&self, d: &D) -> bool {
        self.entries.contains_key(d)
    }

    /// `locked(d)`: whether `d` is locked (false when absent).
    pub fn locked(&self, d: &D) -> bool {
        self.entries.get(d).is_some_and(|e| e.locked)
    }

    /// `bumpAndLock(d, k)`: moves `d` from its slot `l` to `max(k, l)`, then
    /// locks it. Returns the final position. If `d` is already locked this
    /// is a no-op (a locked datum cannot be bumped anymore).
    ///
    /// # Panics
    ///
    /// Panics if `d` is not in the log — protocol callers guard with
    /// [`Log::contains`] or use [`Log::try_bump_and_lock`].
    pub fn bump_and_lock(&mut self, d: &D, k: Pos) -> Pos {
        self.try_bump_and_lock(d, k)
            .expect("bumpAndLock requires the datum to be in the log")
    }

    /// Non-panicking [`Log::bump_and_lock`]: returns `None` when `d` is not
    /// in the log, leaving the log unchanged.
    pub fn try_bump_and_lock(&mut self, d: &D, k: Pos) -> Option<Pos> {
        let e = self.entries.get_mut(d)?;
        if e.locked {
            return Some(Pos(e.slot));
        }
        e.slot = e.slot.max(k.0);
        e.locked = true;
        let slot = e.slot;
        self.max_slot = self.max_slot.max(slot);
        Some(Pos(slot))
    }

    /// `d <_L d'`: `d` occupies a lower position, or the same slot with
    /// `d < d'` under the a-priori total order. False unless both present.
    pub fn before(&self, d: &D, d2: &D) -> bool {
        match (self.entries.get(d), self.entries.get(d2)) {
            (Some(a), Some(b)) => a.slot < b.slot || (a.slot == b.slot && *d < *d2),
            _ => false,
        }
    }

    /// Number of data items in the log.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the log holds no datum.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entries as `(datum, position, locked)` triples, in the a-priori
    /// data order (deterministic regardless of operation history) — the
    /// iteration state fingerprints walk.
    pub fn entries(&self) -> impl Iterator<Item = (&D, Pos, bool)> {
        self.entries.iter().map(|(d, e)| (d, Pos(e.slot), e.locked))
    }

    /// The data items in log order (`<_L`).
    pub fn iter_in_order(&self) -> impl Iterator<Item = &D> {
        let mut v: Vec<(&D, u64)> = self.entries.iter().map(|(d, e)| (d, e.slot)).collect();
        v.sort_by(|(d1, s1), (d2, s2)| s1.cmp(s2).then_with(|| d1.cmp(d2)));
        v.into_iter().map(|(d, _)| d)
    }

    /// The data items strictly before `d` in log order. Empty when `d` is
    /// absent.
    pub fn predecessors(&self, d: &D) -> Vec<D> {
        if !self.contains(d) {
            return Vec::new();
        }
        self.iter_in_order()
            .take_while(|x| *x != d)
            .filter(|x| self.before(x, d))
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn appends_take_consecutive_slots() {
        let mut log = Log::new();
        assert_eq!(log.head(), Pos(1));
        assert_eq!(log.append(10), Pos(1));
        assert_eq!(log.append(20), Pos(2));
        assert_eq!(log.append(30), Pos(3));
        assert_eq!(log.head(), Pos(4));
    }

    #[test]
    fn append_is_idempotent() {
        let mut log = Log::new();
        log.append("x");
        assert_eq!(log.append("x"), Pos(1));
        assert_eq!(log.len(), 1);
        assert_eq!(log.head(), Pos(2));
    }

    #[test]
    fn pos_of_absent_is_zero() {
        let log: Log<u32> = Log::new();
        assert_eq!(log.pos(&7), Pos::ABSENT);
        assert!(!log.pos(&7).is_present());
        assert!(!log.contains(&7));
        assert!(!log.locked(&7));
        assert!(log.is_empty());
    }

    #[test]
    fn bump_moves_to_max_of_current_and_target() {
        let mut log = Log::new();
        log.append("a"); // slot 1
        log.append("b"); // slot 2
                         // bump below current position: stays
        assert_eq!(log.bump_and_lock(&"b", Pos(1)), Pos(2));
        // bump above: moves
        assert_eq!(log.bump_and_lock(&"a", Pos(9)), Pos(9));
        // head follows the maximum occupied slot (first free after all data)
        assert_eq!(log.head(), Pos(10));
    }

    #[test]
    fn locked_datum_cannot_be_bumped_again() {
        let mut log = Log::new();
        log.append(1u32);
        log.bump_and_lock(&1, Pos(4));
        assert!(log.locked(&1));
        // Claim 4/5: locked stays locked, at the same position
        assert_eq!(log.bump_and_lock(&1, Pos(100)), Pos(4));
        assert_eq!(log.pos(&1), Pos(4));
    }

    #[test]
    #[should_panic(expected = "requires the datum")]
    fn bump_of_absent_panics() {
        let mut log: Log<u32> = Log::new();
        log.bump_and_lock(&5, Pos(1));
    }

    #[test]
    fn shared_slot_orders_by_data_order() {
        let mut log = Log::new();
        log.append("b"); // slot 1
        log.append("a"); // slot 2
        log.bump_and_lock(&"b", Pos(2)); // now both in slot 2
        assert_eq!(log.pos(&"a"), log.pos(&"b"));
        assert!(log.before(&"a", &"b"));
        assert!(!log.before(&"b", &"a"));
        let order: Vec<&&str> = log.iter_in_order().collect();
        assert_eq!(order, vec![&"a", &"b"]);
    }

    #[test]
    fn claim7_new_data_lands_after_locked() {
        // Claim 7: if d' is locked and d joins later, then d' <_L d.
        let mut log = Log::new();
        log.append(1u32);
        log.bump_and_lock(&1, Pos(50));
        log.append(2);
        assert!(log.before(&1, &2));
        assert_eq!(log.pos(&2), Pos(51));
    }

    #[test]
    fn predecessors_in_order() {
        let mut log = Log::new();
        for d in ["a", "b", "c", "d"] {
            log.append(d);
        }
        assert_eq!(log.predecessors(&"c"), vec!["a", "b"]);
        assert!(log.predecessors(&"a").is_empty());
        assert!(log.predecessors(&"zz").is_empty());
    }

    proptest! {
        /// Claim 3: positions only grow over any operation sequence.
        #[test]
        fn prop_positions_monotone(ops in proptest::collection::vec((0u8..2, 0u16..20, 1u64..30), 1..60)) {
            let mut log: Log<u16> = Log::new();
            let mut last_pos: std::collections::BTreeMap<u16, u64> = Default::default();
            for (op, d, k) in ops {
                match op {
                    0 => { log.append(d); }
                    _ => {
                        if log.contains(&d) {
                            log.bump_and_lock(&d, Pos(k));
                        }
                    }
                }
                for (d, p) in &last_pos {
                    prop_assert!(log.pos(d).0 >= *p, "position of {d} shrank");
                }
                for d in 0..20u16 {
                    if log.contains(&d) {
                        last_pos.insert(d, log.pos(&d).0);
                    }
                }
            }
        }

        /// Claim 6: a locked datum ordered before another stays before it.
        /// Claim 8: nothing can later slip *before* a locked datum — its set
        /// of predecessors can only shrink (an unlocked predecessor may be
        /// bumped past it; that is exactly Skeen-style bumping).
        #[test]
        fn prop_locked_order_is_stable(ops in proptest::collection::vec((0u8..2, 0u16..12, 1u64..20), 1..60)) {
            let mut log: Log<u16> = Log::new();
            // (locked d, befores and afters at lock time)
            let mut snapshots: Vec<(u16, Vec<u16>, Vec<u16>)> = Vec::new();
            for (op, d, k) in ops {
                match op {
                    0 => { log.append(d); }
                    _ => {
                        if log.contains(&d) && !log.locked(&d) {
                            log.bump_and_lock(&d, Pos(k));
                            let befores = (0..12u16).filter(|x| log.before(x, &d)).collect();
                            let afters = (0..12u16).filter(|x| log.before(&d, x)).collect();
                            snapshots.push((d, befores, afters));
                        }
                    }
                }
                for (d, befores, afters) in &snapshots {
                    // Claim 6: locked d before x ⇒ stays before x.
                    for x in afters {
                        prop_assert!(log.before(d, x), "locked {d} no longer before {x}");
                    }
                    // Claim 8: predecessors of a locked datum only shrink.
                    for x in 0..12u16 {
                        if log.before(&x, d) {
                            prop_assert!(
                                befores.contains(&x),
                                "{x} slipped before locked {d}"
                            );
                        }
                    }
                }
            }
        }

        /// The order `<_L` is a strict total order over present data.
        #[test]
        fn prop_order_total_and_acyclic(ops in proptest::collection::vec((0u8..2, 0u16..10, 1u64..15), 1..40)) {
            let mut log: Log<u16> = Log::new();
            for (op, d, k) in ops {
                match op {
                    0 => { log.append(d); }
                    _ => if log.contains(&d) { log.bump_and_lock(&d, Pos(k)); }
                }
            }
            let present: Vec<u16> = (0..10).filter(|d| log.contains(d)).collect();
            for a in &present {
                prop_assert!(!log.before(a, a));
                for b in &present {
                    if a != b {
                        prop_assert!(log.before(a, b) ^ log.before(b, a));
                    }
                }
            }
            // iter_in_order is consistent with before()
            let order: Vec<u16> = log.iter_in_order().copied().collect();
            for i in 0..order.len() {
                for j in (i + 1)..order.len() {
                    prop_assert!(log.before(&order[i], &order[j]));
                }
            }
        }
    }
}
