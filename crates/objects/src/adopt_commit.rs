//! Adopt–commit objects (Gafni's round-by-round fault detectors).
//!
//! The contention-free fast consensus of §4.3 guards each consensus object
//! with an adopt–commit object `AC`: `propose(v)` first goes through `AC`,
//! and only when `AC` *fails* (returns `adopt`) is the heavier consensus
//! object called. When processes execute operations in the exact same order,
//! only the adopt–commit objects are used — which is how the modified
//! universal construction for `LOG_{g∩h}` keeps minimality (Proposition 47).
//!
//! An adopt–commit object guarantees:
//!
//! - *(Validity)* the output value was proposed;
//! - *(Agreement)* if some process outputs `(commit, v)`, every output has
//!   value `v`;
//! - *(Convergence)* if all proposals are for the same value `v`, every
//!   output is `(commit, v)`.

use std::fmt;

/// The grade of an adopt–commit output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Grade {
    /// The value is decided; no other value can ever be committed.
    Commit,
    /// The value must be adopted (carried to the backup consensus), but
    /// other processes may have adopted a different value.
    Adopt,
}

impl fmt::Display for Grade {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Grade::Commit => write!(f, "commit"),
            Grade::Adopt => write!(f, "adopt"),
        }
    }
}

/// An adopt–commit object (sequential specification).
///
/// The sequential linearization commits while all proposals agree with the
/// first one, and degrades to `adopt` as soon as a conflicting value shows
/// up.
///
/// # Examples
///
/// ```
/// use gam_objects::{AdoptCommit, Grade};
///
/// let mut ac = AdoptCommit::new();
/// assert_eq!(ac.propose(1), (Grade::Commit, 1));
/// assert_eq!(ac.propose(1), (Grade::Commit, 1));
/// assert_eq!(ac.propose(2), (Grade::Adopt, 1)); // conflict: adopt first value
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AdoptCommit<V: Clone + PartialEq> {
    first: Option<V>,
    conflicted: bool,
}

impl<V: Clone + PartialEq> AdoptCommit<V> {
    /// Creates a fresh adopt–commit object.
    pub fn new() -> Self {
        AdoptCommit {
            first: None,
            conflicted: false,
        }
    }

    /// Proposes `v`, returning a graded value.
    pub fn propose(&mut self, v: V) -> (Grade, V) {
        match &self.first {
            None => {
                self.first = Some(v.clone());
                (Grade::Commit, v)
            }
            Some(f) => {
                if *f != v {
                    self.conflicted = true;
                }
                let grade = if self.conflicted {
                    Grade::Adopt
                } else {
                    Grade::Commit
                };
                (grade, f.clone())
            }
        }
    }

    /// Whether conflicting values have been proposed.
    pub fn conflicted(&self) -> bool {
        self.conflicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn convergence_when_unanimous() {
        let mut ac = AdoptCommit::new();
        for _ in 0..5 {
            assert_eq!(ac.propose("v"), (Grade::Commit, "v"));
        }
        assert!(!ac.conflicted());
    }

    #[test]
    fn conflict_degrades_to_adopt() {
        let mut ac = AdoptCommit::new();
        assert_eq!(ac.propose(1), (Grade::Commit, 1));
        assert_eq!(ac.propose(2), (Grade::Adopt, 1));
        // even a later proposal of the first value only adopts now
        assert_eq!(ac.propose(1), (Grade::Adopt, 1));
        assert!(ac.conflicted());
    }

    #[test]
    fn grade_display() {
        assert_eq!(Grade::Commit.to_string(), "commit");
        assert_eq!(Grade::Adopt.to_string(), "adopt");
    }

    proptest! {
        /// Validity + agreement over arbitrary proposal sequences.
        #[test]
        fn prop_adopt_commit_axioms(proposals in proptest::collection::vec(0u32..5, 1..25)) {
            let mut ac = AdoptCommit::new();
            let mut outs = Vec::new();
            for v in &proposals {
                outs.push(ac.propose(*v));
            }
            for (grade, v) in &outs {
                // validity
                prop_assert!(proposals.contains(v));
                // agreement: a commit pins every output's value
                if *grade == Grade::Commit {
                    prop_assert!(outs.iter().all(|(_, w)| w == v));
                }
            }
            // convergence
            if proposals.iter().all(|v| *v == proposals[0]) {
                prop_assert!(outs.iter().all(|(g, v)| *g == Grade::Commit && *v == proposals[0]));
            }
        }
    }
}
