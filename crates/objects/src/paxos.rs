//! Indulgent consensus from `Ω ∧ Σ` (message passing).
//!
//! §4.3 implements consensus objects inside a group `g` from the failure
//! detector `Σ_g ∧ Ω_g`: registers from `Σ_g` give an obstruction-free
//! consensus that `Ω_g` boosts into a wait-free one. This module provides the
//! classic flattened form of that construction — a single-decree,
//! multi-instance, leader-based protocol (à la Paxos):
//!
//! * safety (agreement/validity) holds **whatever** the detector outputs —
//!   the algorithm is *indulgent*;
//! * liveness holds once `Ω` stabilises on a correct leader and `Σ` returns
//!   live quorums.
//!
//! Ballots are partitioned per process (`ballot ≡ pid (mod n)`), so two
//! proposers never reuse a ballot.

use gam_detectors::{OmegaOracle, SigmaOracle};
use gam_kernel::{Automaton, Envelope, History, ProcessId, ProcessSet, StepCtx, Time};
use std::collections::BTreeMap;

/// The combined `Ω ∧ Σ` sample consumed at each step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OmegaSigma {
    /// The `Ω` output (⊥ outside its scope).
    pub leader: Option<ProcessId>,
    /// The `Σ` output (⊥ outside its scope).
    pub quorum: Option<ProcessSet>,
}

/// A [`History`] pairing an [`OmegaOracle`] with a [`SigmaOracle`] — the
/// conjunction `Ω_P ∧ Σ_P`.
#[derive(Debug, Clone)]
pub struct OmegaSigmaHistory {
    omega: OmegaOracle,
    sigma: SigmaOracle,
}

impl OmegaSigmaHistory {
    /// Pairs the two oracles.
    pub fn new(omega: OmegaOracle, sigma: SigmaOracle) -> Self {
        OmegaSigmaHistory { omega, sigma }
    }
}

impl History for OmegaSigmaHistory {
    type Value = OmegaSigma;

    fn sample(&self, p: ProcessId, t: Time) -> OmegaSigma {
        OmegaSigma {
            leader: self.omega.leader(p, t),
            quorum: self.sigma.quorum(p, t),
        }
    }
}

/// Protocol messages, tagged by consensus instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PaxosMsg<V> {
    /// Phase-1a: reserve `ballot`.
    Prepare {
        /// Consensus instance.
        instance: u64,
        /// Proposer ballot.
        ballot: u64,
    },
    /// Phase-1b: promise, reporting the highest accepted proposal.
    Promise {
        /// Consensus instance.
        instance: u64,
        /// Promised ballot.
        ballot: u64,
        /// Highest accepted `(ballot, value)` so far, if any.
        accepted: Option<(u64, V)>,
    },
    /// Rejection of a stale ballot, reporting the ballot promised instead.
    Nack {
        /// Consensus instance.
        instance: u64,
        /// The stale ballot being rejected.
        ballot: u64,
        /// The higher ballot the acceptor has promised.
        promised: u64,
    },
    /// Phase-2a: accept `value` at `ballot`.
    Accept {
        /// Consensus instance.
        instance: u64,
        /// Proposer ballot.
        ballot: u64,
        /// Proposed value.
        value: V,
    },
    /// Phase-2b: acceptance acknowledgement.
    Accepted {
        /// Consensus instance.
        instance: u64,
        /// Accepted ballot.
        ballot: u64,
    },
    /// A non-leader forwards its proposal to the current `Ω` leader.
    Forward {
        /// Consensus instance.
        instance: u64,
        /// Forwarded proposal.
        value: V,
    },
    /// Learn the decision.
    Decide {
        /// Consensus instance.
        instance: u64,
        /// Decided value.
        value: V,
    },
}

/// Emitted once per process per instance upon learning the decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decided<V> {
    /// The decided instance.
    pub instance: u64,
    /// The decision.
    pub value: V,
}

#[derive(Debug, Clone)]
enum Attempt<V> {
    Prepare {
        ballot: u64,
        promises: ProcessSet,
        best: Option<(u64, V)>,
    },
    Accept {
        ballot: u64,
        acks: ProcessSet,
        value: V,
    },
}

#[derive(Debug, Clone)]
struct Instance<V> {
    // Acceptor state.
    promised: u64,
    accepted: Option<(u64, V)>,
    // Proposer state.
    proposal: Option<V>,
    attempt: Option<Attempt<V>>,
    max_ballot_seen: u64,
    decided: Option<V>,
    forwarded_to: Option<ProcessId>,
}

impl<V> Default for Instance<V> {
    fn default() -> Self {
        Instance {
            promised: 0,
            accepted: None,
            proposal: None,
            attempt: None,
            max_ballot_seen: 0,
            decided: None,
            forwarded_to: None,
        }
    }
}

/// The per-process consensus automaton, hosting unboundedly many instances.
#[derive(Debug, Clone)]
pub struct PaxosProcess<V> {
    me: ProcessId,
    scope: ProcessSet,
    n: u64,
    instances: BTreeMap<u64, Instance<V>>,
}

impl<V: Clone + std::fmt::Debug + PartialEq> PaxosProcess<V> {
    /// Creates the automaton for process `me` within `scope`.
    ///
    /// # Panics
    ///
    /// Panics if `me ∉ scope`.
    pub fn new(me: ProcessId, scope: ProcessSet) -> Self {
        assert!(scope.contains(me), "{me} must be in the consensus scope");
        PaxosProcess {
            me,
            scope,
            n: scope.max().map_or(1, |p| p.0 as u64 + 1),
            instances: BTreeMap::new(),
        }
    }

    /// Proposes `value` in `instance`. A later decision is reported through
    /// a [`Decided`] event; re-proposing in a decided instance is a no-op.
    pub fn propose(&mut self, instance: u64, value: V) {
        let inst = self.instances.entry(instance).or_default();
        if inst.proposal.is_none() && inst.decided.is_none() {
            inst.proposal = Some(value);
        }
    }

    /// The local decision of `instance`, if known.
    pub fn decision(&self, instance: u64) -> Option<&V> {
        self.instances
            .get(&instance)
            .and_then(|i| i.decided.as_ref())
    }

    /// My next ballot strictly above `above`: the smallest ballot `b ≡ me
    /// (mod n)` with `b > above`.
    fn next_ballot(&self, above: u64) -> u64 {
        let base = self.me.0 as u64 + 1;
        let mut b = base;
        while b <= above {
            b += self.n;
        }
        b
    }

    fn decide(
        me: ProcessId,
        inst: &mut Instance<V>,
        instance: u64,
        value: V,
        ctx: &mut StepCtx<PaxosMsg<V>, Decided<V>>,
        scope: ProcessSet,
        broadcast: bool,
    ) {
        if inst.decided.is_none() {
            inst.decided = Some(value.clone());
            inst.attempt = None;
            ctx.emit(Decided {
                instance,
                value: value.clone(),
            });
            if broadcast {
                ctx.send(
                    scope - ProcessSet::singleton(me),
                    PaxosMsg::Decide { instance, value },
                );
            }
        }
    }
}

impl<V: Clone + std::fmt::Debug + PartialEq> Automaton for PaxosProcess<V> {
    type Msg = PaxosMsg<V>;
    type Fd = OmegaSigma;
    type Event = Decided<V>;

    fn step(
        &mut self,
        ctx: &mut StepCtx<PaxosMsg<V>, Decided<V>>,
        input: Option<Envelope<PaxosMsg<V>>>,
        fd: &OmegaSigma,
    ) {
        let me = self.me;
        let scope = self.scope;
        if let Some(env) = input {
            match env.payload {
                PaxosMsg::Prepare { instance, ballot } => {
                    let inst = self.instances.entry(instance).or_default();
                    inst.max_ballot_seen = inst.max_ballot_seen.max(ballot);
                    if ballot > inst.promised {
                        inst.promised = ballot;
                        ctx.send_to(
                            env.src,
                            PaxosMsg::Promise {
                                instance,
                                ballot,
                                accepted: inst.accepted.clone(),
                            },
                        );
                    } else {
                        ctx.send_to(
                            env.src,
                            PaxosMsg::Nack {
                                instance,
                                ballot,
                                promised: inst.promised,
                            },
                        );
                    }
                }
                PaxosMsg::Accept {
                    instance,
                    ballot,
                    value,
                } => {
                    let inst = self.instances.entry(instance).or_default();
                    inst.max_ballot_seen = inst.max_ballot_seen.max(ballot);
                    if ballot >= inst.promised {
                        inst.promised = ballot;
                        inst.accepted = Some((ballot, value));
                        ctx.send_to(env.src, PaxosMsg::Accepted { instance, ballot });
                    } else {
                        ctx.send_to(
                            env.src,
                            PaxosMsg::Nack {
                                instance,
                                ballot,
                                promised: inst.promised,
                            },
                        );
                    }
                }
                PaxosMsg::Promise {
                    instance,
                    ballot,
                    accepted,
                } => {
                    let inst = self.instances.entry(instance).or_default();
                    if let Some(Attempt::Prepare {
                        ballot: b,
                        promises,
                        best,
                    }) = &mut inst.attempt
                    {
                        if *b == ballot {
                            promises.insert(env.src);
                            if let Some((ab, av)) = accepted {
                                if best.as_ref().is_none_or(|(bb, _)| ab > *bb) {
                                    *best = Some((ab, av));
                                }
                            }
                        }
                    }
                }
                PaxosMsg::Accepted { instance, ballot } => {
                    let inst = self.instances.entry(instance).or_default();
                    if let Some(Attempt::Accept {
                        ballot: b, acks, ..
                    }) = &mut inst.attempt
                    {
                        if *b == ballot {
                            acks.insert(env.src);
                        }
                    }
                }
                PaxosMsg::Nack {
                    instance,
                    ballot,
                    promised,
                } => {
                    let inst = self.instances.entry(instance).or_default();
                    inst.max_ballot_seen = inst.max_ballot_seen.max(promised);
                    // Abandon the attempt using this stale ballot.
                    let stale = match &inst.attempt {
                        Some(Attempt::Prepare { ballot: b, .. })
                        | Some(Attempt::Accept { ballot: b, .. }) => *b == ballot,
                        None => false,
                    };
                    if stale {
                        inst.attempt = None;
                    }
                }
                PaxosMsg::Forward { instance, value } => {
                    let inst = self.instances.entry(instance).or_default();
                    if inst.proposal.is_none() && inst.decided.is_none() {
                        inst.proposal = Some(value);
                    }
                }
                PaxosMsg::Decide { instance, value } => {
                    let inst = self.instances.entry(instance).or_default();
                    Self::decide(me, inst, instance, value, ctx, scope, false);
                }
            }
        }

        // Proposer progress, guarded by the current Ω ∧ Σ sample.
        let i_lead = fd.leader == Some(me);
        let ids: Vec<u64> = self.instances.keys().copied().collect();
        for id in ids {
            let max_seen = self.instances[&id].max_ballot_seen;
            let fresh_ballot = self.next_ballot(max_seen);
            let inst = self
                .instances
                .get_mut(&id)
                .expect("id was drawn from instances.keys(); instances are never removed");
            if inst.decided.is_some() || inst.proposal.is_none() {
                continue;
            }
            // A non-leader relays its proposal to the leader (once per
            // leader change), so the leader has something to drive.
            if !i_lead {
                if let Some(l) = fd.leader {
                    if inst.forwarded_to != Some(l) {
                        inst.forwarded_to = Some(l);
                        let value = inst.proposal.clone().expect("proposal present");
                        ctx.send_to(
                            l,
                            PaxosMsg::Forward {
                                instance: id,
                                value,
                            },
                        );
                    }
                }
            }
            match inst.attempt.take() {
                None => {
                    if i_lead {
                        let ballot = fresh_ballot;
                        inst.max_ballot_seen = ballot;
                        inst.attempt = Some(Attempt::Prepare {
                            ballot,
                            promises: ProcessSet::EMPTY,
                            best: None,
                        });
                        ctx.send(
                            scope,
                            PaxosMsg::Prepare {
                                instance: id,
                                ballot,
                            },
                        );
                    }
                }
                Some(Attempt::Prepare {
                    ballot,
                    promises,
                    best,
                }) => {
                    let quorum_ok = fd.quorum.as_ref().is_some_and(|q| q.is_subset(promises));
                    if quorum_ok {
                        let value = best
                            .map(|(_, v)| v)
                            .unwrap_or_else(|| inst.proposal.clone().expect("proposal present"));
                        inst.attempt = Some(Attempt::Accept {
                            ballot,
                            acks: ProcessSet::EMPTY,
                            value: value.clone(),
                        });
                        ctx.send(
                            scope,
                            PaxosMsg::Accept {
                                instance: id,
                                ballot,
                                value,
                            },
                        );
                    } else {
                        inst.attempt = Some(Attempt::Prepare {
                            ballot,
                            promises,
                            best,
                        });
                    }
                }
                Some(Attempt::Accept {
                    ballot,
                    acks,
                    value,
                }) => {
                    let quorum_ok = fd.quorum.as_ref().is_some_and(|q| q.is_subset(acks));
                    if quorum_ok {
                        Self::decide(me, inst, id, value, ctx, scope, true);
                    } else {
                        inst.attempt = Some(Attempt::Accept {
                            ballot,
                            acks,
                            value,
                        });
                    }
                }
            }
        }
    }

    fn is_active(&self) -> bool {
        self.instances
            .values()
            .any(|i| i.proposal.is_some() && i.decided.is_none())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gam_detectors::{OmegaMode, SigmaMode};
    use gam_kernel::{FailurePattern, RunOutcome, Scheduler, Simulator};

    fn system(
        n: usize,
        pattern: FailurePattern,
        omega_mode: OmegaMode,
    ) -> Simulator<PaxosProcess<u64>, OmegaSigmaHistory> {
        let scope = ProcessSet::first_n(n);
        let autos = (0..n)
            .map(|i| PaxosProcess::new(ProcessId(i as u32), scope))
            .collect();
        let hist = OmegaSigmaHistory::new(
            OmegaOracle::new(scope, pattern.clone(), omega_mode),
            SigmaOracle::new(scope, pattern.clone(), SigmaMode::Alive),
        );
        Simulator::new(autos, pattern, hist)
    }

    fn decisions(sim: &Simulator<PaxosProcess<u64>, OmegaSigmaHistory>, inst: u64) -> Vec<u64> {
        sim.trace()
            .events()
            .iter()
            .filter(|e| e.event.instance == inst)
            .map(|e| e.event.value)
            .collect()
    }

    #[test]
    fn single_proposer_decides_everywhere() {
        let n = 3;
        let pattern = FailurePattern::all_correct(ProcessSet::first_n(n));
        let mut sim = system(n, pattern, OmegaMode::MinAlive);
        sim.automaton_mut(ProcessId(0)).propose(0, 99);
        let out = sim.run(Scheduler::RoundRobin, 200_000);
        assert_eq!(out, RunOutcome::Quiescent);
        let d = decisions(&sim, 0);
        assert_eq!(d.len(), n, "every process learns");
        assert!(d.iter().all(|v| *v == 99));
    }

    #[test]
    fn concurrent_proposals_agree() {
        let n = 5;
        let pattern = FailurePattern::all_correct(ProcessSet::first_n(n));
        for seed in 0..10u64 {
            let mut sim = system(n, pattern.clone(), OmegaMode::MinAlive);
            for i in 0..n {
                sim.automaton_mut(ProcessId(i as u32)).propose(0, i as u64);
            }
            sim.run(Scheduler::Random { null_prob: 0.3 }, 500_000);
            let d = decisions(&sim, 0);
            assert!(!d.is_empty(), "seed {seed}: someone decides");
            assert!(
                d.iter().all(|v| *v == d[0]),
                "seed {seed}: agreement violated: {d:?}"
            );
            assert!(*d.first().unwrap() < n as u64, "validity");
        }
    }

    #[test]
    fn decides_despite_leader_crash() {
        let n = 5;
        // p0 (initial Ω choice) crashes early.
        let pattern =
            FailurePattern::from_crashes(ProcessSet::first_n(n), [(ProcessId(0), Time(10))]);
        let mut sim = system(n, pattern, OmegaMode::MinAlive);
        for i in 1..n {
            sim.automaton_mut(ProcessId(i as u32)).propose(0, 7);
        }
        let out = sim.run(Scheduler::RoundRobin, 500_000);
        assert_eq!(out, RunOutcome::Quiescent);
        let d = decisions(&sim, 0);
        assert!(d.len() >= n - 1);
        assert!(d.iter().all(|v| *v == 7));
    }

    #[test]
    fn agreement_survives_adversarial_omega() {
        // Ω rotates for a long while — safety must hold throughout, and
        // liveness resumes after stabilisation.
        let n = 4;
        let pattern = FailurePattern::all_correct(ProcessSet::first_n(n));
        let mut sim = system(
            n,
            pattern,
            OmegaMode::RotateUntil {
                stabilize_at: Time(300),
                period: 7,
            },
        );
        for i in 0..n {
            sim.automaton_mut(ProcessId(i as u32))
                .propose(0, 100 + i as u64);
        }
        sim.run(Scheduler::Random { null_prob: 0.2 }, 1_000_000);
        let d = decisions(&sim, 0);
        assert!(!d.is_empty());
        assert!(d.iter().all(|v| *v == d[0]), "agreement: {d:?}");
    }

    #[test]
    fn instances_are_independent() {
        let n = 3;
        let pattern = FailurePattern::all_correct(ProcessSet::first_n(n));
        let mut sim = system(n, pattern, OmegaMode::MinAlive);
        sim.automaton_mut(ProcessId(0)).propose(0, 11);
        sim.automaton_mut(ProcessId(1)).propose(1, 22);
        sim.automaton_mut(ProcessId(2)).propose(2, 33);
        sim.run(Scheduler::RoundRobin, 500_000);
        for (inst, v) in [(0u64, 11u64), (1, 22), (2, 33)] {
            let d = decisions(&sim, inst);
            assert_eq!(d.len(), n);
            assert!(d.iter().all(|x| *x == v), "instance {inst}: {d:?}");
        }
    }

    #[test]
    fn decision_accessor_matches_events() {
        let n = 3;
        let pattern = FailurePattern::all_correct(ProcessSet::first_n(n));
        let mut sim = system(n, pattern, OmegaMode::MinAlive);
        sim.automaton_mut(ProcessId(2)).propose(5, 42);
        sim.run(Scheduler::RoundRobin, 200_000);
        for i in 0..n {
            assert_eq!(sim.automaton(ProcessId(i as u32)).decision(5), Some(&42));
        }
    }

    #[test]
    fn ballot_partitioning_is_disjoint() {
        let scope = ProcessSet::first_n(3);
        let p0: PaxosProcess<u64> = PaxosProcess::new(ProcessId(0), scope);
        let p1: PaxosProcess<u64> = PaxosProcess::new(ProcessId(1), scope);
        let b0: Vec<u64> = (0..5)
            .scan(0, |a, _| {
                *a = p0.next_ballot(*a);
                Some(*a)
            })
            .collect();
        let b1: Vec<u64> = (0..5)
            .scan(0, |a, _| {
                *a = p1.next_ballot(*a);
                Some(*a)
            })
            .collect();
        assert!(b0.iter().all(|b| !b1.contains(b)));
        assert_eq!(b0, vec![1, 4, 7, 10, 13]);
    }
}
