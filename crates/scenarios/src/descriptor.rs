//! The `gam-scn v1` descriptor format.
//!
//! A descriptor is a compact, single-line, fully deterministic address of a
//! scenario: topology family + parameters, generation seed, crash plan,
//! traffic trace, problem variant and step budget. Rendering is canonical
//! and parsing is its exact inverse (`parse ∘ render = id`), so a
//! descriptor string pasted into a fixture file, a bench record or a CI log
//! regenerates the identical topology and workload anywhere:
//!
//! ```text
//! gam-scn v1 family=ring(3,2) seed=7 crash=isect(1) traffic=zipf(1200,6) variant=standard budget=200000
//! ```
//!
//! Only `family` is mandatory; the other keys default to
//! `seed=0 crash=none traffic=one variant=standard budget=200000`. Blank
//! lines and `#` comments are ignored, so a `.scn` fixture file may carry
//! provenance notes above the descriptor line.

use gam_core::Variant;
use std::fmt;

/// The default step budget of a descriptor (`budget=` absent).
pub const DEFAULT_BUDGET: u64 = 200_000;

/// A parameterized topology family.
///
/// The families deliberately straddle the paper's solvability boundary:
/// [`Family::Chain`], [`Family::Two`], [`Family::Disjoint`],
/// [`Family::Single`] and [`Family::RandAcyclic`] have acyclic intersection
/// graphs (`ℱ = ∅`), while [`Family::Ring`], [`Family::Hub`] (for `k ≥ 3`)
/// and [`Family::RandCyclic`] contain cyclic families, and [`Family::Rand`]
/// samples either side depending on the seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// The paper's Figure 1 system (5 processes, 4 groups, 3 cyclic families).
    Fig1,
    /// One group of `n` processes (atomic broadcast).
    Single {
        /// Number of processes.
        n: u32,
    },
    /// `k` pairwise-disjoint groups of `size` processes.
    Disjoint {
        /// Number of groups.
        k: u32,
        /// Processes per group.
        size: u32,
    },
    /// A chain of `k` groups, adjacent groups sharing one process (acyclic).
    Chain {
        /// Number of groups.
        k: u32,
        /// Processes per group.
        size: u32,
    },
    /// `c` pairwise-disjoint chains of `k` groups each (acyclic): the
    /// canonical multi-shard workload — `c` connected components for the
    /// sharded parallel driver, each with real cross-group coordination
    /// along its chain.
    Multichain {
        /// Number of disjoint chains (connected components).
        c: u32,
        /// Groups per chain.
        k: u32,
        /// Processes per group.
        size: u32,
    },
    /// A ring of `k ≥ 3` groups (the minimal cyclic family).
    Ring {
        /// Number of groups.
        k: u32,
        /// Processes per group.
        size: u32,
    },
    /// `k` groups sharing one hub process (complete intersection graph).
    Hub {
        /// Number of groups.
        k: u32,
        /// Processes per group.
        size: u32,
    },
    /// Two groups of `size` processes intersecting in `overlap` processes.
    Two {
        /// Processes per group.
        size: u32,
        /// Size of the intersection.
        overlap: u32,
    },
    /// `k` seeded-random groups over `n` processes with membership density
    /// `density_permille / 1000`.
    Rand {
        /// Number of processes.
        n: u32,
        /// Number of groups.
        k: u32,
        /// Membership probability, in permille (`50..=900`).
        density_permille: u32,
    },
    /// A seeded-random *tree* of `k` groups (adjacent groups share one
    /// dedicated process; the intersection graph is the tree, so `ℱ = ∅`).
    RandAcyclic {
        /// Number of groups.
        k: u32,
        /// Base group size (private members + one joint per tree edge).
        size: u32,
    },
    /// A ring of `k` groups plus `chords` seeded-random chord overlaps —
    /// guaranteed cyclic (the ring's hamiltonian cycle survives chords).
    RandCyclic {
        /// Number of groups.
        k: u32,
        /// Processes per group before chords.
        size: u32,
        /// Extra shared processes between random non-adjacent group pairs.
        chords: u32,
    },
}

impl Family {
    /// A short label naming the family (the descriptor keyword).
    pub fn label(self) -> &'static str {
        match self {
            Family::Fig1 => "fig1",
            Family::Single { .. } => "single",
            Family::Disjoint { .. } => "disjoint",
            Family::Chain { .. } => "chain",
            Family::Multichain { .. } => "multichain",
            Family::Ring { .. } => "ring",
            Family::Hub { .. } => "hub",
            Family::Two { .. } => "two",
            Family::Rand { .. } => "rand",
            Family::RandAcyclic { .. } => "randacyclic",
            Family::RandCyclic { .. } => "randcyclic",
        }
    }

    /// Whether every system of the family has an acyclic intersection graph
    /// (`None` when it depends on the seed, as for [`Family::Rand`]).
    pub fn known_acyclic(self) -> Option<bool> {
        match self {
            Family::Fig1 => Some(false),
            Family::Single { .. } | Family::Disjoint { .. } | Family::Chain { .. } => Some(true),
            Family::Multichain { .. } => Some(true),
            Family::Two { .. } => Some(true),
            Family::Ring { .. } | Family::RandCyclic { .. } => Some(false),
            Family::Hub { k, .. } => Some(k < 3),
            Family::Rand { .. } => None,
            Family::RandAcyclic { .. } => Some(true),
        }
    }
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Family::Fig1 => write!(f, "fig1"),
            Family::Single { n } => write!(f, "single({n})"),
            Family::Disjoint { k, size } => write!(f, "disjoint({k},{size})"),
            Family::Chain { k, size } => write!(f, "chain({k},{size})"),
            Family::Multichain { c, k, size } => write!(f, "multichain({c},{k},{size})"),
            Family::Ring { k, size } => write!(f, "ring({k},{size})"),
            Family::Hub { k, size } => write!(f, "hub({k},{size})"),
            Family::Two { size, overlap } => write!(f, "two({size},{overlap})"),
            Family::Rand {
                n,
                k,
                density_permille,
            } => write!(f, "rand({n},{k},{density_permille})"),
            Family::RandAcyclic { k, size } => write!(f, "randacyclic({k},{size})"),
            Family::RandCyclic { k, size, chords } => {
                write!(f, "randcyclic({k},{size},{chords})")
            }
        }
    }
}

/// A deterministic crash schedule, derived from the descriptor seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPlan {
    /// No crashes (every process is correct).
    None,
    /// Crash the first `count` eligible *intersection* processes at
    /// staggered times — the adversarial victims of the paper's
    /// constructions (a crash inside `g ∩ h` is what makes families
    /// faulty).
    Isect {
        /// Number of victims (best effort; fewer when eligibility runs out).
        count: u32,
    },
    /// Crash `count` seeded-random processes at seeded-random times.
    /// Victims additionally keep every nonempty `g ∩ h` live: fully
    /// crashing an edge of a chorded-but-live cyclic family is the
    /// Lemma 25 traversal-semantics corner (DESIGN.md "Deviations",
    /// note 1) where `γ` never excludes the dead edge and termination
    /// legitimately stalls.
    Rand {
        /// Number of victims (best effort; fewer when eligibility runs out).
        count: u32,
    },
}

impl fmt::Display for CrashPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CrashPlan::None => write!(f, "none"),
            CrashPlan::Isect { count } => write!(f, "isect({count})"),
            CrashPlan::Rand { count } => write!(f, "rand({count})"),
        }
    }
}

/// A deterministic traffic trace, derived from the descriptor seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficPlan {
    /// One message per group, from its least live member (the classic
    /// fixture workload).
    One,
    /// `msgs` messages to uniformly-random groups.
    Uniform {
        /// Number of messages.
        msgs: u32,
    },
    /// `msgs` messages, group picked Zipfian with exponent
    /// `s_permille / 1000` over group indices.
    Zipf {
        /// Zipf exponent, in permille (e.g. `1200` ≈ s = 1.2).
        s_permille: u32,
        /// Number of messages.
        msgs: u32,
    },
    /// `msgs` messages; with probability `hot_permille / 1000` the message
    /// goes to group `g1`, otherwise to a uniform other group.
    Hot {
        /// Probability of hitting the hot group, in permille.
        hot_permille: u32,
        /// Number of messages.
        msgs: u32,
    },
}

impl fmt::Display for TrafficPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TrafficPlan::One => write!(f, "one"),
            TrafficPlan::Uniform { msgs } => write!(f, "uniform({msgs})"),
            TrafficPlan::Zipf { s_permille, msgs } => write!(f, "zipf({s_permille},{msgs})"),
            TrafficPlan::Hot { hot_permille, msgs } => write!(f, "hot({hot_permille},{msgs})"),
        }
    }
}

/// A typed `gam-scn v1` parse/validation error. The parser never panics:
/// malformed input of any shape maps to one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScnError {
    /// The `gam-scn v1` header is missing or wrong.
    Header,
    /// A token is not of the form `key=value`.
    Token(String),
    /// A key appeared that the format does not define.
    UnknownKey(String),
    /// A key appeared twice.
    DuplicateKey(&'static str),
    /// The mandatory `family` key is missing.
    MissingFamily,
    /// A value failed to parse for the named key.
    BadValue {
        /// The key whose value is malformed.
        key: &'static str,
        /// What went wrong.
        reason: String,
    },
    /// The descriptor parsed but its parameters are out of the supported
    /// bounds (process/group caps, family minimums, density range…).
    Invalid(String),
}

impl fmt::Display for ScnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScnError::Header => write!(f, "missing `gam-scn v1` header"),
            ScnError::Token(t) => write!(f, "malformed token {t:?} (expected key=value)"),
            ScnError::UnknownKey(k) => write!(f, "unknown key {k:?}"),
            ScnError::DuplicateKey(k) => write!(f, "duplicate key {k:?}"),
            ScnError::MissingFamily => write!(f, "missing mandatory `family` key"),
            ScnError::BadValue { key, reason } => write!(f, "bad value for {key:?}: {reason}"),
            ScnError::Invalid(why) => write!(f, "invalid descriptor: {why}"),
        }
    }
}

impl std::error::Error for ScnError {}

/// A parsed, validated `gam-scn v1` descriptor.
///
/// Everything a scenario needs is a pure function of this value: the
/// topology ([`ScnDescriptor::system`]), the crash schedule
/// ([`ScnDescriptor::crashes`]) and the traffic trace
/// ([`ScnDescriptor::submissions`]) each draw from an independent RNG
/// stream derived from [`ScnDescriptor::seed`], so they regenerate
/// byte-identically on any thread, engine or host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScnDescriptor {
    /// The topology family and its parameters.
    pub family: Family,
    /// The generation seed (topology for `rand*` families, crash times,
    /// traffic).
    pub seed: u64,
    /// The crash schedule.
    pub crash: CrashPlan,
    /// The traffic trace.
    pub traffic: TrafficPlan,
    /// The problem variation the scenario is checked against.
    pub variant: Variant,
    /// The step budget of one run (schedule prefix + fair tail).
    pub budget: u64,
}

fn variant_name(v: Variant) -> &'static str {
    match v {
        Variant::Standard => "standard",
        Variant::Strict => "strict",
        Variant::Pairwise => "pairwise",
    }
}

impl ScnDescriptor {
    /// A descriptor of `family` with all other fields at their defaults
    /// (`seed=0 crash=none traffic=one variant=standard budget=200000`).
    pub fn new(family: Family) -> Self {
        ScnDescriptor {
            family,
            seed: 0,
            crash: CrashPlan::None,
            traffic: TrafficPlan::One,
            variant: Variant::Standard,
            budget: DEFAULT_BUDGET,
        }
    }

    /// The same descriptor under a different generation seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The same descriptor under a different step budget.
    #[must_use]
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = budget;
        self
    }

    /// Renders the canonical single-line form. `parse(render(d)) == d` and
    /// `render(parse(s)) == s` for canonical `s`.
    pub fn render(&self) -> String {
        format!(
            "gam-scn v1 family={} seed={} crash={} traffic={} variant={} budget={}",
            self.family,
            self.seed,
            self.crash,
            self.traffic,
            variant_name(self.variant),
            self.budget
        )
    }

    // `Display` (below) delegates here, so `{descriptor}` in an assertion
    // message prints the canonical replayable line.

    /// Parses a descriptor (inverse of [`ScnDescriptor::render`]). Blank
    /// lines and `#` comment lines are ignored; keys may come in any order;
    /// every key except `family` is optional.
    ///
    /// # Errors
    ///
    /// Returns a typed [`ScnError`] on the first malformed token or
    /// out-of-bounds parameter; never panics.
    pub fn parse(text: &str) -> Result<Self, ScnError> {
        let mut tokens = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .flat_map(str::split_whitespace);
        if tokens.next() != Some("gam-scn") || tokens.next() != Some("v1") {
            return Err(ScnError::Header);
        }
        let mut family: Option<Family> = None;
        let mut seed: Option<u64> = None;
        let mut crash: Option<CrashPlan> = None;
        let mut traffic: Option<TrafficPlan> = None;
        let mut variant: Option<Variant> = None;
        let mut budget: Option<u64> = None;
        for tok in tokens {
            let (key, value) = tok
                .split_once('=')
                .ok_or_else(|| ScnError::Token(tok.to_string()))?;
            match key {
                "family" => set_once(&mut family, "family", parse_family(value)?)?,
                "seed" => set_once(&mut seed, "seed", parse_u64("seed", value)?)?,
                "crash" => set_once(&mut crash, "crash", parse_crash(value)?)?,
                "traffic" => set_once(&mut traffic, "traffic", parse_traffic(value)?)?,
                "variant" => set_once(&mut variant, "variant", parse_variant(value)?)?,
                "budget" => set_once(&mut budget, "budget", parse_u64("budget", value)?)?,
                other => return Err(ScnError::UnknownKey(other.to_string())),
            }
        }
        let descriptor = ScnDescriptor {
            family: family.ok_or(ScnError::MissingFamily)?,
            seed: seed.unwrap_or(0),
            crash: crash.unwrap_or(CrashPlan::None),
            traffic: traffic.unwrap_or(TrafficPlan::One),
            variant: variant.unwrap_or(Variant::Standard),
            budget: budget.unwrap_or(DEFAULT_BUDGET),
        };
        descriptor.validate()?;
        Ok(descriptor)
    }

    /// Checks the parameter bounds that keep generation total (no panics
    /// downstream). Acyclic families scale to the bitset widths — 512
    /// processes, 256 groups — since `ℱ = ∅` costs nothing to enumerate.
    /// Cyclic families stay much smaller (`ring`/`randcyclic` ≤ 16 groups,
    /// `hub` ≤ 12, `rand` ≤ 8): cyclic-family enumeration is exponential in
    /// the 2-core of the intersection graph and hard-caps at 20 groups.
    ///
    /// # Errors
    ///
    /// Returns [`ScnError::Invalid`] naming the violated bound.
    pub fn validate(&self) -> Result<(), ScnError> {
        let invalid = |why: String| Err(ScnError::Invalid(why));
        let check = |ok: bool, why: &str| {
            if ok {
                Ok(())
            } else {
                Err(ScnError::Invalid(why.to_string()))
            }
        };
        match self.family {
            Family::Fig1 => {}
            Family::Single { n } => check((1..=512).contains(&n), "single: 1 <= n <= 512")?,
            Family::Disjoint { k, size } => {
                check((1..=256).contains(&k), "disjoint: 1 <= k <= 256")?;
                check(size >= 1, "disjoint: size >= 1")?;
                check(k * size <= 512, "disjoint: k*size <= 512 processes")?;
            }
            Family::Chain { k, size } => {
                check((1..=256).contains(&k), "chain: 1 <= k <= 256")?;
                check((2..=8).contains(&size), "chain: 2 <= size <= 8")?;
                check(
                    (k + 1) + k * (size - 2) <= 512,
                    "chain: process count <= 512",
                )?;
            }
            Family::Multichain { c, k, size } => {
                check((1..=64).contains(&c), "multichain: 1 <= c <= 64")?;
                check((1..=256).contains(&k), "multichain: 1 <= k <= 256")?;
                check((2..=8).contains(&size), "multichain: 2 <= size <= 8")?;
                check(c * k <= 256, "multichain: c*k <= 256 groups")?;
                check(
                    c * ((k + 1) + k * (size - 2)) <= 512,
                    "multichain: process count <= 512",
                )?;
            }
            Family::Ring { k, size } => {
                check((3..=16).contains(&k), "ring: 3 <= k <= 16")?;
                check((2..=8).contains(&size), "ring: 2 <= size <= 8")?;
                check(k + k * (size - 2) <= 512, "ring: process count <= 512")?;
            }
            Family::Hub { k, size } => {
                check((1..=12).contains(&k), "hub: 1 <= k <= 12")?;
                check((2..=8).contains(&size), "hub: 2 <= size <= 8")?;
                check(k * (size - 1) < 512, "hub: process count <= 512")?;
            }
            Family::Two { size, overlap } => {
                check((1..=256).contains(&size), "two: 1 <= size <= 256")?;
                check(overlap >= 1 && overlap <= size, "two: 1 <= overlap <= size")?;
            }
            Family::Rand {
                n,
                k,
                density_permille,
            } => {
                check((4..=64).contains(&n), "rand: 4 <= n <= 64")?;
                check((1..=8).contains(&k) && k <= n, "rand: 1 <= k <= min(8, n)")?;
                check(
                    (100..=900).contains(&density_permille),
                    "rand: 100 <= density_permille <= 900",
                )?;
            }
            Family::RandAcyclic { k, size } => {
                check((2..=256).contains(&k), "randacyclic: 2 <= k <= 256")?;
                check((2..=8).contains(&size), "randacyclic: 2 <= size <= 8")?;
                check(
                    (k - 1) + k * (size - 1) <= 512,
                    "randacyclic: process count <= 512",
                )?;
            }
            Family::RandCyclic { k, size, chords } => {
                check((3..=16).contains(&k), "randcyclic: 3 <= k <= 16")?;
                check((2..=8).contains(&size), "randcyclic: 2 <= size <= 8")?;
                check(chords <= 8, "randcyclic: chords <= 8")?;
                check(
                    chords == 0 || k >= 4,
                    "randcyclic: chords need k >= 4 (no non-adjacent pairs in a triangle)",
                )?;
                check(
                    k + k * (size - 2) + chords <= 512,
                    "randcyclic: process count <= 512",
                )?;
            }
        }
        match self.crash {
            CrashPlan::None => {}
            CrashPlan::Isect { count } | CrashPlan::Rand { count } => {
                if count > 256 {
                    return invalid("crash: count <= 256".to_string());
                }
            }
        }
        match self.traffic {
            TrafficPlan::One => {}
            TrafficPlan::Uniform { msgs } => {
                check((1..=10_000).contains(&msgs), "traffic: 1 <= msgs <= 10000")?
            }
            TrafficPlan::Zipf { s_permille, msgs } => {
                check((1..=10_000).contains(&msgs), "traffic: 1 <= msgs <= 10000")?;
                check(s_permille <= 4000, "zipf: s_permille <= 4000")?;
            }
            TrafficPlan::Hot { hot_permille, msgs } => {
                check((1..=10_000).contains(&msgs), "traffic: 1 <= msgs <= 10000")?;
                check(hot_permille <= 1000, "hot: hot_permille <= 1000")?;
            }
        }
        if self.budget == 0 {
            return invalid("budget must be positive".to_string());
        }
        Ok(())
    }
}

impl fmt::Display for ScnDescriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

fn set_once<T>(slot: &mut Option<T>, key: &'static str, value: T) -> Result<(), ScnError> {
    if slot.is_some() {
        return Err(ScnError::DuplicateKey(key));
    }
    *slot = Some(value);
    Ok(())
}

fn parse_u64(key: &'static str, value: &str) -> Result<u64, ScnError> {
    value.parse().map_err(|_| ScnError::BadValue {
        key,
        reason: format!("{value:?} is not an unsigned integer"),
    })
}

/// Splits `name(a,b,…)` into the name and its integer arguments; a bare
/// `name` has zero arguments.
fn parse_call<'v>(key: &'static str, value: &'v str) -> Result<(&'v str, Vec<u32>), ScnError> {
    let bad = |reason: String| ScnError::BadValue { key, reason };
    let Some(open) = value.find('(') else {
        return Ok((value, Vec::new()));
    };
    let Some(inner) = value[open + 1..].strip_suffix(')') else {
        return Err(bad(format!("{value:?} is missing the closing ')'")));
    };
    let name = &value[..open];
    let mut args = Vec::new();
    for part in inner.split(',') {
        args.push(
            part.parse::<u32>()
                .map_err(|_| bad(format!("argument {part:?} is not an unsigned integer")))?,
        );
    }
    Ok((name, args))
}

fn arity<const N: usize>(
    key: &'static str,
    name: &str,
    args: Vec<u32>,
) -> Result<[u32; N], ScnError> {
    let got = args.len();
    args.try_into().map_err(|_| ScnError::BadValue {
        key,
        reason: format!("{name} takes {N} argument(s), got {got}"),
    })
}

fn parse_family(value: &str) -> Result<Family, ScnError> {
    let (name, args) = parse_call("family", value)?;
    match name {
        "fig1" => {
            arity::<0>("family", name, args)?;
            Ok(Family::Fig1)
        }
        "single" => {
            let [n] = arity("family", name, args)?;
            Ok(Family::Single { n })
        }
        "disjoint" => {
            let [k, size] = arity("family", name, args)?;
            Ok(Family::Disjoint { k, size })
        }
        "chain" => {
            let [k, size] = arity("family", name, args)?;
            Ok(Family::Chain { k, size })
        }
        "multichain" => {
            let [c, k, size] = arity("family", name, args)?;
            Ok(Family::Multichain { c, k, size })
        }
        "ring" => {
            let [k, size] = arity("family", name, args)?;
            Ok(Family::Ring { k, size })
        }
        "hub" => {
            let [k, size] = arity("family", name, args)?;
            Ok(Family::Hub { k, size })
        }
        "two" => {
            let [size, overlap] = arity("family", name, args)?;
            Ok(Family::Two { size, overlap })
        }
        "rand" => {
            let [n, k, density_permille] = arity("family", name, args)?;
            Ok(Family::Rand {
                n,
                k,
                density_permille,
            })
        }
        "randacyclic" => {
            let [k, size] = arity("family", name, args)?;
            Ok(Family::RandAcyclic { k, size })
        }
        "randcyclic" => {
            let [k, size, chords] = arity("family", name, args)?;
            Ok(Family::RandCyclic { k, size, chords })
        }
        other => Err(ScnError::BadValue {
            key: "family",
            reason: format!("unknown family {other:?}"),
        }),
    }
}

fn parse_crash(value: &str) -> Result<CrashPlan, ScnError> {
    let (name, args) = parse_call("crash", value)?;
    match name {
        "none" => {
            arity::<0>("crash", name, args)?;
            Ok(CrashPlan::None)
        }
        "isect" => {
            let [count] = arity("crash", name, args)?;
            Ok(CrashPlan::Isect { count })
        }
        "rand" => {
            let [count] = arity("crash", name, args)?;
            Ok(CrashPlan::Rand { count })
        }
        other => Err(ScnError::BadValue {
            key: "crash",
            reason: format!("unknown crash plan {other:?}"),
        }),
    }
}

fn parse_traffic(value: &str) -> Result<TrafficPlan, ScnError> {
    let (name, args) = parse_call("traffic", value)?;
    match name {
        "one" => {
            arity::<0>("traffic", name, args)?;
            Ok(TrafficPlan::One)
        }
        "uniform" => {
            let [msgs] = arity("traffic", name, args)?;
            Ok(TrafficPlan::Uniform { msgs })
        }
        "zipf" => {
            let [s_permille, msgs] = arity("traffic", name, args)?;
            Ok(TrafficPlan::Zipf { s_permille, msgs })
        }
        "hot" => {
            let [hot_permille, msgs] = arity("traffic", name, args)?;
            Ok(TrafficPlan::Hot { hot_permille, msgs })
        }
        other => Err(ScnError::BadValue {
            key: "traffic",
            reason: format!("unknown traffic trace {other:?}"),
        }),
    }
}

fn parse_variant(value: &str) -> Result<Variant, ScnError> {
    match value {
        "standard" => Ok(Variant::Standard),
        "strict" => Ok(Variant::Strict),
        "pairwise" => Ok(Variant::Pairwise),
        other => Err(ScnError::BadValue {
            key: "variant",
            reason: format!("unknown variant {other:?}"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn canonical() -> ScnDescriptor {
        ScnDescriptor {
            family: Family::Ring { k: 3, size: 2 },
            seed: 7,
            crash: CrashPlan::Isect { count: 1 },
            traffic: TrafficPlan::Zipf {
                s_permille: 1200,
                msgs: 6,
            },
            variant: Variant::Standard,
            budget: 200_000,
        }
    }

    #[test]
    fn render_parse_round_trip() {
        let d = canonical();
        let text = d.render();
        assert_eq!(
            text,
            "gam-scn v1 family=ring(3,2) seed=7 crash=isect(1) traffic=zipf(1200,6) variant=standard budget=200000"
        );
        assert_eq!(ScnDescriptor::parse(&text).unwrap(), d);
        assert_eq!(ScnDescriptor::parse(&text).unwrap().render(), text);
    }

    #[test]
    fn defaults_fill_in_missing_keys() {
        let d = ScnDescriptor::parse("gam-scn v1 family=fig1").unwrap();
        assert_eq!(d, ScnDescriptor::new(Family::Fig1));
        assert_eq!(d.budget, DEFAULT_BUDGET);
        // comments and blank lines are ignored
        let d2 = ScnDescriptor::parse("# provenance\n\n  gam-scn v1 family=fig1\n").unwrap();
        assert_eq!(d, d2);
    }

    #[test]
    fn keys_come_in_any_order_but_render_is_canonical() {
        let shuffled = "gam-scn v1 budget=99 family=two(3,1) variant=pairwise seed=4";
        let d = ScnDescriptor::parse(shuffled).unwrap();
        assert_eq!(d.budget, 99);
        assert_eq!(d.variant, Variant::Pairwise);
        assert_eq!(
            d.render(),
            "gam-scn v1 family=two(3,1) seed=4 crash=none traffic=one variant=pairwise budget=99"
        );
    }

    type ErrCase = (&'static str, fn(&ScnError) -> bool);

    #[test]
    fn typed_errors_on_malformed_input() {
        use ScnError::*;
        let cases: &[ErrCase] = &[
            ("", |e| matches!(e, Header)),
            ("gam-scn v2 family=fig1", |e| matches!(e, Header)),
            ("gam-scn v1", |e| matches!(e, MissingFamily)),
            ("gam-scn v1 family=fig1 bogus", |e| matches!(e, Token(_))),
            ("gam-scn v1 family=fig1 color=red", |e| {
                matches!(e, UnknownKey(_))
            }),
            ("gam-scn v1 family=fig1 seed=1 seed=2", |e| {
                matches!(e, DuplicateKey("seed"))
            }),
            ("gam-scn v1 family=nope(1)", |e| {
                matches!(e, BadValue { key: "family", .. })
            }),
            ("gam-scn v1 family=ring(3", |e| {
                matches!(e, BadValue { key: "family", .. })
            }),
            ("gam-scn v1 family=ring(3,2,9)", |e| {
                matches!(e, BadValue { key: "family", .. })
            }),
            ("gam-scn v1 family=ring(x,2)", |e| {
                matches!(e, BadValue { key: "family", .. })
            }),
            ("gam-scn v1 family=ring(2,2)", |e| matches!(e, Invalid(_))),
            ("gam-scn v1 family=single(999)", |e| matches!(e, Invalid(_))),
            ("gam-scn v1 family=fig1 seed=banana", |e| {
                matches!(e, BadValue { key: "seed", .. })
            }),
            ("gam-scn v1 family=fig1 variant=loose", |e| {
                matches!(e, BadValue { key: "variant", .. })
            }),
            ("gam-scn v1 family=fig1 budget=0", |e| {
                matches!(e, Invalid(_))
            }),
            ("gam-scn v1 family=rand(32,8,950)", |e| {
                matches!(e, Invalid(_))
            }),
            // chords need a non-adjacent pair to attach to, so k >= 4
            ("gam-scn v1 family=randcyclic(3,2,1)", |e| {
                matches!(e, Invalid(_))
            }),
        ];
        for (text, matches) in cases {
            let err = ScnDescriptor::parse(text).unwrap_err();
            assert!(matches(&err), "{text:?} gave unexpected error: {err}");
            // every error renders a message
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn acyclic_families_scale_to_the_bitset_widths() {
        // In-bounds large instances: hundreds of groups / processes.
        for text in [
            "gam-scn v1 family=single(512)",
            "gam-scn v1 family=disjoint(256,2)",
            "gam-scn v1 family=chain(170,3)",
            "gam-scn v1 family=randacyclic(240,2)",
            "gam-scn v1 family=two(256,4)",
            "gam-scn v1 family=ring(16,2)",
            "gam-scn v1 family=rand(64,8,450)",
            "gam-scn v1 family=fig1 crash=rand(256)",
        ] {
            ScnDescriptor::parse(text).unwrap_or_else(|e| panic!("{text}: {e}"));
        }
        // One past each cap still rejects.
        for text in [
            "gam-scn v1 family=single(513)",
            "gam-scn v1 family=randacyclic(257,2)",
            "gam-scn v1 family=randacyclic(256,3)", // 255 + 256*2 > 512
            "gam-scn v1 family=ring(17,2)",         // cyclic: 2-core cap
            "gam-scn v1 family=rand(65,8,450)",
            "gam-scn v1 family=fig1 crash=rand(257)",
        ] {
            assert!(
                matches!(ScnDescriptor::parse(text), Err(ScnError::Invalid(_))),
                "{text} should be out of bounds"
            );
        }
    }

    #[test]
    fn every_family_renders_and_reparses() {
        let families = [
            Family::Fig1,
            Family::Single { n: 4 },
            Family::Disjoint { k: 3, size: 3 },
            Family::Chain { k: 4, size: 3 },
            Family::Multichain {
                c: 3,
                k: 3,
                size: 3,
            },
            Family::Ring { k: 3, size: 2 },
            Family::Hub { k: 3, size: 2 },
            Family::Two {
                size: 3,
                overlap: 1,
            },
            Family::Rand {
                n: 8,
                k: 4,
                density_permille: 450,
            },
            Family::RandAcyclic { k: 5, size: 3 },
            Family::RandCyclic {
                k: 4,
                size: 2,
                chords: 1,
            },
        ];
        for family in families {
            let d = ScnDescriptor::new(family);
            let parsed = ScnDescriptor::parse(&d.render()).unwrap();
            assert_eq!(parsed, d, "{family}");
            assert_eq!(parsed.family.label(), family.label());
        }
    }
}
