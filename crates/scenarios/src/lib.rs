//! `gam-scenarios` — the seeded scenario corpus.
//!
//! The verification machinery used to run on three hand-written fixtures.
//! This crate turns "a scenario" into an *address*: a compact `gam-scn v1`
//! descriptor string (see [`ScnDescriptor`]) that names a parameterized
//! topology family, a generation seed, a crash plan and a traffic trace —
//! and regenerates the identical topology + workload from it, on any
//! thread, any engine, any host. Descriptors round-trip
//! (`parse ∘ render = id`), so a one-line string in a fixture file, bench
//! record or CI log is a complete, replayable scenario.
//!
//! The families deliberately sweep the paper's solvability axis — the
//! cyclic-vs-acyclic structure of the group intersection graph
//! (arXiv:2208.07650): `chain`/`two`/`disjoint`/`single`/`randacyclic`
//! generate systems with `ℱ = ∅`, while `ring`/`hub`/`randcyclic`/`fig1`
//! contain cyclic families, the side of the boundary where genuine atomic
//! multicast needs the full failure detector `μ`.
//!
//! Generation is schedule-deterministic by construction: the only
//! randomness is `StdRng::seed_from_u64` over sub-seeds derived from the
//! descriptor seed ([`gam_engine::digest::derive_seed`]), one independent
//! stream per ingredient. `gam-lint` enforces this (the crate is in the
//! `[deterministic]` scope of `gam-lint.toml`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod descriptor;
mod fixtures;
mod generate;

pub use descriptor::{CrashPlan, Family, ScnDescriptor, ScnError, TrafficPlan, DEFAULT_BUDGET};
pub use fixtures::{fixture, try_fixture, FIXTURES};
pub use generate::Generated;

use gam_core::Variant;

/// The standard sweep corpus: one descriptor template per family, spanning
/// both sides of the solvability boundary and all traffic shapes. Seeds are
/// applied per instance with [`ScnDescriptor::with_seed`]; `scenario_sweep`
/// and the conformance grid both draw from this list so the committed bench
/// record and the test corpus stay aligned.
pub fn corpus() -> Vec<(&'static str, ScnDescriptor)> {
    let one = TrafficPlan::One;
    let uniform = TrafficPlan::Uniform { msgs: 6 };
    let zipf = TrafficPlan::Zipf {
        s_permille: 1200,
        msgs: 6,
    };
    let hot = TrafficPlan::Hot {
        hot_permille: 700,
        msgs: 6,
    };
    let entry = |family, traffic| {
        let mut d = ScnDescriptor::new(family);
        d.traffic = traffic;
        d.variant = Variant::Standard;
        // Headroom over the default: the corpus instances must quiesce under
        // any schedule, so a termination violation means a real bug, not a
        // starved budget.
        d.budget = 500_000;
        d
    };
    vec![
        ("chain", entry(Family::Chain { k: 4, size: 3 }, uniform)),
        (
            "multichain",
            entry(
                Family::Multichain {
                    c: 3,
                    k: 2,
                    size: 3,
                },
                uniform,
            ),
        ),
        ("ring", entry(Family::Ring { k: 3, size: 2 }, zipf)),
        ("hub", entry(Family::Hub { k: 4, size: 2 }, hot)),
        (
            "two",
            entry(
                Family::Two {
                    size: 3,
                    overlap: 1,
                },
                uniform,
            ),
        ),
        (
            "rand",
            entry(
                Family::Rand {
                    n: 8,
                    k: 4,
                    density_permille: 450,
                },
                uniform,
            ),
        ),
        (
            "randacyclic",
            entry(Family::RandAcyclic { k: 5, size: 3 }, zipf),
        ),
        (
            "randcyclic",
            entry(
                Family::RandCyclic {
                    k: 4,
                    size: 2,
                    chords: 1,
                },
                one,
            ),
        ),
        // Crash/churn variants: the same committed templates under failures.
        // `chain_crash` kills one adversarial intersection process (the
        // paper's victim shape) on an acyclic topology, where γ owes
        // nothing and termination survives even a fully crashed overlap;
        // `rand_churn` staggers seeded-random crashes across a dense cyclic
        // topology, where victims keep every group *and* every pairwise
        // intersection live (the `CrashPlan::Rand` eligibility rule) so the
        // sweep stays out of the Lemma 25 traversal-semantics corner
        // (DESIGN.md "Deviations", note 1). Within that regime the corpus
        // termination obligation holds and a violation is a real bug.
        ("chain_crash", {
            let mut d = entry(Family::Chain { k: 4, size: 3 }, uniform);
            d.crash = CrashPlan::Isect { count: 1 };
            d
        }),
        ("rand_churn", {
            let mut d = entry(
                Family::Rand {
                    n: 8,
                    k: 4,
                    density_permille: 450,
                },
                zipf,
            );
            d.crash = CrashPlan::Rand { count: 2 };
            d
        }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_spans_the_solvability_boundary() {
        let corpus = corpus();
        assert!(corpus.len() >= 5, "at least five families");
        let mut acyclic = 0;
        let mut cyclic = 0;
        for (name, d) in &corpus {
            d.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            // every template round-trips
            assert_eq!(ScnDescriptor::parse(&d.render()).unwrap(), *d);
            match d.family.known_acyclic() {
                Some(true) => acyclic += 1,
                Some(false) => cyclic += 1,
                None => {}
            }
            // generation is total for a spread of seeds
            for seed in 0..3 {
                let gen = d.with_seed(seed).generate();
                assert!(!gen.system.is_empty(), "{name} seed {seed}");
                assert!(!gen.submissions.is_empty(), "{name} seed {seed}");
            }
        }
        assert!(acyclic >= 2, "corpus has acyclic families");
        assert!(cyclic >= 2, "corpus has cyclic families");
        let crashing = corpus
            .iter()
            .filter(|(_, d)| d.crash != CrashPlan::None)
            .count();
        assert!(crashing >= 2, "corpus has crash/churn templates");
    }
}
