//! Deterministic generation: descriptor → topology, crash schedule, traffic.
//!
//! Everything here is a pure function of the descriptor. The three
//! ingredients draw from *independent* RNG streams derived from the one
//! descriptor seed via [`gam_engine::digest::derive_seed`], so changing the
//! crash plan of a descriptor never shifts which groups its traffic
//! targets, and vice versa.

use crate::descriptor::{CrashPlan, Family, ScnDescriptor, TrafficPlan};
use gam_engine::digest::derive_seed;
use gam_groups::{topology, GroupId, GroupSystem};
use gam_kernel::{ProcessId, ProcessSet, Time};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sub-seed tag of the topology stream (`rand*` families only).
const TAG_TOPOLOGY: u64 = 1;
/// Sub-seed tag of the crash-schedule stream.
const TAG_CRASH: u64 = 2;
/// Sub-seed tag of the traffic stream.
const TAG_TRAFFIC: u64 = 3;

/// A fully generated scenario: the three deterministic ingredients of one
/// descriptor, computed together (cheaper than calling the per-ingredient
/// accessors separately, since crashes and traffic both need the system).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Generated {
    /// The group system `𝒢`.
    pub system: GroupSystem,
    /// Crash schedule: `(victim, crash time)` pairs, ascending in victim id
    /// for [`CrashPlan::Isect`], in draw order for [`CrashPlan::Rand`].
    pub crashes: Vec<(ProcessId, Time)>,
    /// Traffic trace: `(source, destination group, payload)` triples.
    pub submissions: Vec<(ProcessId, GroupId, u64)>,
}

impl ScnDescriptor {
    /// Generates the group system of this descriptor. Deterministic: equal
    /// descriptors generate equal (`==`) systems on any thread or host.
    pub fn system(&self) -> GroupSystem {
        let topo_seed = derive_seed(self.seed, TAG_TOPOLOGY);
        match self.family {
            Family::Fig1 => topology::fig1(),
            Family::Single { n } => topology::single_group(n as usize),
            Family::Disjoint { k, size } => topology::disjoint(k as usize, size as usize),
            Family::Chain { k, size } => topology::chain(k as usize, size as usize),
            Family::Multichain { c, k, size } => multichain(c as usize, k as usize, size as usize),
            Family::Ring { k, size } => topology::ring(k as usize, size as usize),
            Family::Hub { k, size } => topology::hub(k as usize, size as usize),
            Family::Two { size, overlap } => {
                topology::two_overlapping(size as usize, overlap as usize)
            }
            Family::Rand {
                n,
                k,
                density_permille,
            } => topology::random(
                n as usize,
                k as usize,
                f64::from(density_permille) / 1000.0,
                topo_seed,
            ),
            Family::RandAcyclic { k, size } => random_acyclic(k as usize, size as usize, topo_seed),
            Family::RandCyclic { k, size, chords } => {
                random_cyclic(k as usize, size as usize, chords as usize, topo_seed)
            }
        }
    }

    /// Generates the crash schedule of this descriptor (see
    /// [`ScnDescriptor::generate`] to share the system computation).
    pub fn crashes(&self) -> Vec<(ProcessId, Time)> {
        crashes_for(self, &self.system())
    }

    /// Generates the traffic trace of this descriptor (see
    /// [`ScnDescriptor::generate`] to share the system computation).
    pub fn submissions(&self) -> Vec<(ProcessId, GroupId, u64)> {
        let system = self.system();
        let crashes = crashes_for(self, &system);
        submissions_for(self, &system, &crashes)
    }

    /// Generates system, crashes and submissions in one pass.
    pub fn generate(&self) -> Generated {
        let system = self.system();
        let crashes = crashes_for(self, &system);
        let submissions = submissions_for(self, &system, &crashes);
        Generated {
            system,
            crashes,
            submissions,
        }
    }
}

/// A seeded random *tree* of `k` groups: group `i > 0` is attached to a
/// uniformly random earlier group (a random recursive tree), and each tree
/// edge is realized by one dedicated joint process shared by exactly its
/// two endpoint groups. Every group additionally owns `size - 1` private
/// processes, so groups are distinct and the intersection graph is exactly
/// the tree — acyclic by construction (`ℱ = ∅`).
/// `c` disjoint copies of [`topology::chain`]`(k, size)`, each copy's
/// process ids offset by a full chain's worth: `c` connected components of
/// the intersection graph (= `c` shards for the parallel driver), with
/// genuine cross-group coordination along every chain.
fn multichain(c: usize, k: usize, size: usize) -> GroupSystem {
    assert!(c >= 1 && k >= 1 && size >= 2);
    let per = (k + 1) + k * (size - 2);
    let universe = ProcessSet::first_n(c * per);
    let chain = topology::chain(k, size);
    let mut groups = Vec::with_capacity(c * k);
    for copy in 0..c {
        let base = copy * per;
        for (_, members) in chain.iter() {
            groups.push(
                members
                    .iter()
                    .map(|p| ProcessId((p.index() + base) as u32))
                    .collect::<ProcessSet>(),
            );
        }
    }
    GroupSystem::new(universe, groups)
}

fn random_acyclic(k: usize, size: usize, seed: u64) -> GroupSystem {
    assert!(k >= 2 && size >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let private = size - 1;
    let n = k * private + (k - 1);
    let universe = ProcessSet::first_n(n);
    let mut groups: Vec<ProcessSet> = (0..k)
        .map(|i| (i * private..(i + 1) * private).collect())
        .collect();
    for i in 1..k {
        let parent = rng.gen_range(0usize..i);
        let joint = ProcessId((k * private + (i - 1)) as u32);
        groups[parent].insert(joint);
        groups[i].insert(joint);
    }
    GroupSystem::new(universe, groups)
}

/// A ring of `k` groups plus `chords` seeded-random chord processes, each
/// shared between two non-adjacent ring groups. The ring's hamiltonian
/// cycle survives every chord, so the system is cyclic by construction;
/// chords only densify the intersection graph (and add cyclic families).
fn random_cyclic(k: usize, size: usize, chords: usize, seed: u64) -> GroupSystem {
    assert!(k >= 3 && size >= 2);
    assert!(chords == 0 || k >= 4, "chords need a non-adjacent pair");
    let mut rng = StdRng::seed_from_u64(seed);
    let ring = topology::ring(k, size);
    let base = ring.universe().len();
    let universe = ProcessSet::first_n(base + chords);
    let mut groups: Vec<ProcessSet> = ring.iter().map(|(_, members)| members).collect();
    for c in 0..chords {
        let i = rng.gen_range(0usize..k);
        // Ring distance ≥ 2 in both directions keeps the pair non-adjacent.
        let offset = rng.gen_range(2usize..k - 1);
        let j = (i + offset) % k;
        let chord = ProcessId((base + c) as u32);
        groups[i].insert(chord);
        groups[j].insert(chord);
    }
    GroupSystem::new(universe, groups)
}

/// Whether crashing `p` on top of `victims` still leaves every group with
/// at least one live member — the eligibility rule of every crash plan
/// (a fully crashed group would make termination vacuously unfalsifiable).
fn keeps_groups_live(system: &GroupSystem, victims: ProcessSet, p: ProcessId) -> bool {
    let mut v = victims;
    v.insert(p);
    system.iter().all(|(_, members)| !(members - v).is_empty())
}

/// Whether crashing `p` on top of `victims` also leaves every nonempty
/// pairwise intersection `g ∩ h` with at least one live member. This is the
/// stricter eligibility rule of [`CrashPlan::Rand`]: a fully crashed edge
/// inside a *chorded* cyclic family that stays alive through another
/// hamiltonian cycle is exactly the Lemma 25 corner flagged in DESIGN.md
/// ("Deviations", note 1) — under traversal semantics `γ` never excludes
/// the dead edge's groups, the line-32 stable guard blocks forever, and
/// termination legitimately stalls. Keeping every edge live keeps the
/// random-churn corpus inside the regime where the two faultiness readings
/// agree and the corpus termination obligation is meaningful.
fn keeps_edges_live(system: &GroupSystem, victims: ProcessSet, p: ProcessId) -> bool {
    if !keeps_groups_live(system, victims, p) {
        return false;
    }
    let mut v = victims;
    v.insert(p);
    system
        .intersecting_pairs()
        .into_iter()
        .all(|(g, h)| !(system.intersection(g, h) - v).is_empty())
}

fn crashes_for(d: &ScnDescriptor, system: &GroupSystem) -> Vec<(ProcessId, Time)> {
    let mut out = Vec::new();
    let mut victims = ProcessSet::new();
    match d.crash {
        CrashPlan::None => {}
        CrashPlan::Isect { count } => {
            // The adversarial victims of the paper's constructions: processes
            // inside some g ∩ h, in ascending id order, at staggered times.
            let mut isect = ProcessSet::new();
            for x in system.intersections() {
                for p in x.iter() {
                    isect.insert(p);
                }
            }
            for p in isect.iter() {
                if out.len() as u32 >= count {
                    break;
                }
                if keeps_groups_live(system, victims, p) {
                    victims.insert(p);
                    out.push((p, Time(3 + 2 * out.len() as u64)));
                }
            }
        }
        CrashPlan::Rand { count } => {
            let mut rng = StdRng::seed_from_u64(derive_seed(d.seed, TAG_CRASH));
            let pool: Vec<ProcessId> = system.universe().iter().collect();
            // Best effort: eligibility shrinks as victims accumulate, so a
            // bounded number of draws may find fewer than `count` victims.
            for _ in 0..20 * pool.len() {
                if out.len() as u32 >= count {
                    break;
                }
                let p = pool[rng.gen_range(0usize..pool.len())];
                if !victims.contains(p) && keeps_edges_live(system, victims, p) {
                    victims.insert(p);
                    out.push((p, Time(1 + rng.gen_range(0u64..50))));
                }
            }
        }
    }
    out
}

/// Picks a message source for group `g`: a uniformly random *live* member
/// (falling back to any member when the crash plan leaves none live —
/// crashed sources are legal, their submission just may not terminate).
fn pick_source(rng: &mut StdRng, members: ProcessSet, victims: ProcessSet) -> ProcessId {
    let live = members - victims;
    let pool = if live.is_empty() { members } else { live };
    let idx = rng.gen_range(0usize..pool.len());
    pool.iter().nth(idx).expect("groups are nonempty")
}

fn submissions_for(
    d: &ScnDescriptor,
    system: &GroupSystem,
    crashes: &[(ProcessId, Time)],
) -> Vec<(ProcessId, GroupId, u64)> {
    let mut victims = ProcessSet::new();
    for (p, _) in crashes {
        victims.insert(*p);
    }
    let k = system.len();
    let mut out = Vec::new();
    match d.traffic {
        TrafficPlan::One => {
            // One message per group from its least live member — the shape of
            // `Scenario::one_per_group` (identical when there are no crashes).
            for (g, members) in system.iter() {
                let live = members - victims;
                let pool = if live.is_empty() { members } else { live };
                let src = pool.min().expect("groups are nonempty");
                out.push((src, g, u64::from(g.0)));
            }
        }
        TrafficPlan::Uniform { msgs } => {
            let mut rng = StdRng::seed_from_u64(derive_seed(d.seed, TAG_TRAFFIC));
            for i in 0..msgs {
                let g = GroupId(rng.gen_range(0u32..k as u32));
                let src = pick_source(&mut rng, system.members(g), victims);
                out.push((src, g, u64::from(i)));
            }
        }
        TrafficPlan::Zipf { s_permille, msgs } => {
            let mut rng = StdRng::seed_from_u64(derive_seed(d.seed, TAG_TRAFFIC));
            let s = f64::from(s_permille) / 1000.0;
            // Cumulative Zipf weights over group indices: w_r = (r+1)^-s.
            let mut cum = Vec::with_capacity(k);
            let mut total = 0.0f64;
            for r in 0..k {
                total += ((r + 1) as f64).powf(-s);
                cum.push(total);
            }
            for i in 0..msgs {
                let u = rng.gen_range(0u64..1_000_000) as f64 / 1_000_000.0 * total;
                let gi = cum.iter().position(|c| u < *c).unwrap_or(k - 1);
                let g = GroupId(gi as u32);
                let src = pick_source(&mut rng, system.members(g), victims);
                out.push((src, g, u64::from(i)));
            }
        }
        TrafficPlan::Hot { hot_permille, msgs } => {
            let mut rng = StdRng::seed_from_u64(derive_seed(d.seed, TAG_TRAFFIC));
            for i in 0..msgs {
                let hot = rng.gen_range(0u32..1000) < hot_permille;
                let g = if hot || k == 1 {
                    GroupId(0)
                } else {
                    GroupId(rng.gen_range(1u32..k as u32))
                };
                let src = pick_source(&mut rng, system.members(g), victims);
                out.push((src, g, u64::from(i)));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::{CrashPlan, Family, ScnDescriptor, TrafficPlan};
    use gam_core::Variant;

    fn desc(family: Family) -> ScnDescriptor {
        ScnDescriptor::new(family).with_seed(11)
    }

    #[test]
    fn generation_is_deterministic() {
        let d = ScnDescriptor {
            family: Family::Rand {
                n: 8,
                k: 4,
                density_permille: 450,
            },
            seed: 99,
            crash: CrashPlan::Rand { count: 2 },
            traffic: TrafficPlan::Zipf {
                s_permille: 1200,
                msgs: 8,
            },
            variant: Variant::Standard,
            budget: 10_000,
        };
        assert_eq!(d.generate(), d.generate());
        let other = d.with_seed(100);
        assert_ne!(d.generate().system, other.generate().system);
    }

    #[test]
    fn rand_acyclic_is_a_tree() {
        for seed in 0..20 {
            let d = desc(Family::RandAcyclic { k: 5, size: 3 }).with_seed(seed);
            let gs = d.system();
            assert_eq!(gs.len(), 5);
            assert!(gs.cyclic_families().is_empty(), "seed {seed} is acyclic");
            // a tree over 5 groups has exactly 4 intersection edges
            assert_eq!(gs.intersecting_pairs().len(), 4, "seed {seed}");
        }
    }

    #[test]
    fn rand_cyclic_keeps_the_ring_cycle() {
        for seed in 0..20 {
            let d = desc(Family::RandCyclic {
                k: 5,
                size: 2,
                chords: 2,
            })
            .with_seed(seed);
            let gs = d.system();
            assert_eq!(gs.len(), 5);
            assert!(!gs.cyclic_families().is_empty(), "seed {seed} stays cyclic");
            assert_eq!(gs.universe().len(), 5 + 2);
        }
    }

    #[test]
    fn crash_plans_keep_every_group_live() {
        for seed in 0..10 {
            for crash in [CrashPlan::Isect { count: 3 }, CrashPlan::Rand { count: 3 }] {
                let mut d = desc(Family::Ring { k: 4, size: 3 }).with_seed(seed);
                d.crash = crash;
                let gen = d.generate();
                let mut victims = ProcessSet::new();
                for (p, t) in &gen.crashes {
                    assert!(t.0 >= 1);
                    victims.insert(*p);
                }
                for (g, members) in gen.system.iter() {
                    assert!(
                        !(members - victims).is_empty(),
                        "seed {seed} {crash:?}: {g} retains a live member"
                    );
                }
            }
        }
    }

    #[test]
    fn rand_crash_victims_keep_every_edge_live() {
        // Dense cyclic topologies form chorded families; a fully crashed
        // edge inside a live family is the Lemma 25 corner where γ never
        // excludes it and termination stalls. The Rand plan must not
        // generate such patterns.
        for seed in 0..30 {
            let mut d = desc(Family::Rand {
                n: 8,
                k: 4,
                density_permille: 450,
            })
            .with_seed(seed);
            d.crash = CrashPlan::Rand { count: 3 };
            let gen = d.generate();
            let mut victims = ProcessSet::new();
            for (p, _) in &gen.crashes {
                victims.insert(*p);
            }
            for (g, h) in gen.system.intersecting_pairs() {
                assert!(
                    !(gen.system.intersection(g, h) - victims).is_empty(),
                    "seed {seed}: {g} ∩ {h} fully crashed"
                );
            }
        }
    }

    #[test]
    fn isect_crash_victims_sit_in_intersections() {
        let mut d = desc(Family::Ring { k: 4, size: 3 });
        d.crash = CrashPlan::Isect { count: 2 };
        let gen = d.generate();
        assert_eq!(gen.crashes.len(), 2);
        for (p, _) in &gen.crashes {
            assert!(
                gen.system.groups_of(*p).len() >= 2,
                "{p:?} is a joint process"
            );
        }
    }

    #[test]
    fn traffic_one_matches_one_per_group_shape() {
        let d = desc(Family::Fig1);
        let gen = d.generate();
        assert_eq!(gen.submissions.len(), gen.system.len());
        for (src, g, payload) in &gen.submissions {
            assert_eq!(*payload, u64::from(g.0));
            assert_eq!(*src, gen.system.members(*g).min().unwrap());
        }
    }

    #[test]
    fn traffic_sources_are_group_members() {
        for traffic in [
            TrafficPlan::Uniform { msgs: 30 },
            TrafficPlan::Zipf {
                s_permille: 1500,
                msgs: 30,
            },
            TrafficPlan::Hot {
                hot_permille: 700,
                msgs: 30,
            },
        ] {
            let mut d = desc(Family::Chain { k: 4, size: 3 });
            d.traffic = traffic;
            let gen = d.generate();
            assert_eq!(gen.submissions.len(), 30);
            for (i, (src, g, payload)) in gen.submissions.iter().enumerate() {
                assert_eq!(*payload, i as u64);
                assert!(gen.system.members(*g).contains(*src));
            }
        }
    }

    #[test]
    fn zipf_skews_toward_low_groups_and_hot_toward_group_one() {
        let mut d = desc(Family::Disjoint { k: 4, size: 2 });
        d.traffic = TrafficPlan::Zipf {
            s_permille: 2000,
            msgs: 200,
        };
        let zipf = d.generate();
        let count = |subs: &[(ProcessId, GroupId, u64)], g: u32| {
            subs.iter().filter(|(_, gid, _)| gid.0 == g).count()
        };
        assert!(
            count(&zipf.submissions, 0) > count(&zipf.submissions, 3),
            "zipf(2.0) favors g1 over g4"
        );
        d.traffic = TrafficPlan::Hot {
            hot_permille: 900,
            msgs: 200,
        };
        let hot = d.generate();
        assert!(
            count(&hot.submissions, 0) > 120,
            "hot(900‰) sends most traffic to g1"
        );
    }

    #[test]
    fn live_sources_preferred_under_crashes() {
        let mut d = desc(Family::Two {
            size: 3,
            overlap: 1,
        });
        d.crash = CrashPlan::Isect { count: 1 };
        d.traffic = TrafficPlan::Uniform { msgs: 40 };
        let gen = d.generate();
        assert_eq!(gen.crashes.len(), 1);
        let victim = gen.crashes[0].0;
        for (src, _, _) in &gen.submissions {
            assert_ne!(*src, victim, "live members exist, so none picks the victim");
        }
    }
}
