//! Pinned fixture descriptors.
//!
//! The regression fixtures under `tests/fixtures/` used to hard-code their
//! topology construction at every consumer (kernel tests, bench bins, the
//! regression suite). They are now just pinned `gam-scn v1` descriptors:
//! every consumer calls [`fixture`] and gets byte-identical topology and
//! workload, and the checked-in `.scn` files carry the same strings.

use crate::descriptor::ScnDescriptor;

/// The pinned fixture corpus: `(name, canonical descriptor)`.
///
/// The seeds mirror the swarm seeds of the matching `.repro` files (the
/// generation seed is unused by these crash-free `traffic=one` descriptors,
/// but keeping them aligned documents provenance), and the budgets match
/// the recorded `budget` lines.
pub const FIXTURES: &[(&str, &str)] = &[
    (
        "fig1",
        "gam-scn v1 family=fig1 seed=1 crash=none traffic=one variant=standard budget=500000",
    ),
    (
        "ring_3_2",
        "gam-scn v1 family=ring(3,2) seed=2 crash=none traffic=one variant=standard budget=500000",
    ),
    (
        "two_overlapping_3_1",
        "gam-scn v1 family=two(3,1) seed=3 crash=none traffic=one variant=standard budget=500000",
    ),
    // The large-instance pin: a 240-group random tree over 479 processes
    // with Zipf-skewed traffic and staggered intersection crashes — the
    // sustained-load shape the `throughput` bench runs, committed here so
    // the bench, the smoke test and CI all address one descriptor.
    (
        "large_tree_240",
        "gam-scn v1 family=randacyclic(240,2) seed=9 crash=isect(4) traffic=zipf(1100,480) variant=standard budget=2000000",
    ),
];

/// Looks up a pinned fixture descriptor by name.
pub fn try_fixture(name: &str) -> Option<ScnDescriptor> {
    FIXTURES
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, text)| ScnDescriptor::parse(text).expect("pinned descriptors are valid"))
}

/// Looks up a pinned fixture descriptor by name.
///
/// # Panics
///
/// Panics (listing the known names) if `name` is not a pinned fixture —
/// fixture lookups are compile-time-known call sites, so a miss is a bug.
pub fn fixture(name: &str) -> ScnDescriptor {
    try_fixture(name).unwrap_or_else(|| {
        let known: Vec<&str> = FIXTURES.iter().map(|(n, _)| *n).collect();
        panic!("unknown fixture {name:?}; known fixtures: {known:?}")
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_fixtures_parse_and_render_canonically() {
        use crate::descriptor::{CrashPlan, TrafficPlan};
        for (name, text) in FIXTURES {
            let d = fixture(name);
            assert_eq!(&d.render(), text, "{name} is pinned in canonical form");
            // the descriptor regenerates a valid system
            let gen = d.generate();
            assert!(!gen.system.is_empty());
            if d.traffic == TrafficPlan::One {
                assert_eq!(gen.submissions.len(), gen.system.len());
            } else {
                assert!(!gen.submissions.is_empty());
            }
            assert_eq!(gen.crashes.is_empty(), d.crash == CrashPlan::None, "{name}");
        }
    }

    #[test]
    fn large_tree_fixture_reaches_hundreds_of_groups() {
        let gen = fixture("large_tree_240").generate();
        assert_eq!(gen.system.len(), 240, "hundreds of groups");
        assert_eq!(gen.system.universe().len(), 479);
        assert_eq!(gen.crashes.len(), 4);
        assert_eq!(gen.submissions.len(), 480);
        // acyclic by construction: generation stays cheap at this scale
        assert!(gen.system.cyclic_families().is_empty());
    }

    #[test]
    fn unknown_fixture_is_a_loud_error() {
        assert!(try_fixture("nope").is_none());
    }

    #[test]
    fn fixture_topologies_match_the_legacy_builders() {
        use gam_groups::topology;
        assert_eq!(fixture("fig1").system(), topology::fig1());
        assert_eq!(fixture("ring_3_2").system(), topology::ring(3, 2));
        assert_eq!(
            fixture("two_overlapping_3_1").system(),
            topology::two_overlapping(3, 1)
        );
    }
}
