//! Algorithm 3 — emulating the cyclicity detector `γ` (§5.2).
//!
//! For every cyclic family `𝔣` and every closed path `π ∈ cpaths(𝔣)` whose
//! first edge intersection `π[0] ∩ π[1]` is failure-prone, the extraction
//! runs a *probe*: an instance `A_π` of the multicast black box in which all
//! of `𝔣` participates **except** `π[0] ∩ π[|π|-2]` — the intersection with
//! the last group before the start. The probe's first message (to `π[0]`)
//! can therefore only be delivered once that excluded intersection has
//! actually crashed; delivery then chains around the cycle
//! (`signal(π, i)` / multicast to `π[i+1]`), and the flag `failed[π]` is
//! raised when the chain completes or meets a probe of the same cycle
//! running in the converse direction. A family is excluded from the output
//! once **every** equivalence class of its closed paths has a failed probe —
//! which happens exactly when every hamiltonian cycle of the family has a
//! crashed edge, i.e. when the family is faulty.
//!
//! Note on line 12–13 of the paper's pseudo-code: the converse-direction
//! rendezvous is implemented as "`rcv(π, j)` with `π[j+1] = π'[0]` and
//! `dir(π') = -dir(π)`" — the chain of `π` stalled entering the group where
//! the reverse probe `π'` starts. (The published text reads `π[j] = π'[0]`,
//! which does not fire in the scenario of Theorem 50's own completeness
//! proof; see DESIGN.md.)

use crate::blackbox::BlackBox;
use gam_core::MessageId;
use gam_groups::{ClosedPath, GroupId, GroupSet, GroupSystem};
use gam_kernel::{Environment, FailurePattern, ProcessId, ProcessSet, Time};
use std::collections::BTreeSet;

#[derive(Debug)]
struct Probe {
    family: GroupSet,
    path: ClosedPath,
    /// Undirected edge set — the equivalence class key.
    class: BTreeSet<(GroupId, GroupId)>,
    bbox: BlackBox,
    /// `launched[i]` = the chain message addressed to `π[i]`.
    launched: Vec<Option<MessageId>>,
    /// Signals `(π, i)` received (delivery of message `i` at a live member
    /// of `π[i+1]`).
    signals: BTreeSet<usize>,
    failed: bool,
}

/// The γ extraction of Algorithm 3.
#[derive(Debug)]
pub struct GammaExtraction {
    system: GroupSystem,
    pattern: FailurePattern,
    probes: Vec<Probe>,
    now: Time,
}

impl GammaExtraction {
    /// Builds the probes for every cyclic family of the system, in
    /// environment `env` (probes only exist for paths whose first edge is
    /// failure-prone).
    pub fn new(system: &GroupSystem, pattern: FailurePattern, env: &Environment) -> Self {
        let mut probes = Vec::new();
        for family in system.cyclic_families() {
            let family_members: ProcessSet = family
                .iter()
                .map(|g| system.members(g))
                .fold(ProcessSet::EMPTY, |a, b| a | b);
            for path in system.cpaths(family) {
                let k = path.len() - 1; // number of groups
                let first_edge = system.intersection(path.get(0), path.get(1));
                if !env.set_failure_prone(first_edge) {
                    continue;
                }
                let excluded = system.intersection(path.get(0), path.get(k - 1));
                let participants = family_members - excluded;
                let bbox = BlackBox::new(system, pattern.clone(), participants);
                probes.push(Probe {
                    family,
                    class: path.edges(),
                    launched: vec![None; k],
                    signals: BTreeSet::new(),
                    failed: false,
                    path,
                    bbox,
                });
            }
        }
        GammaExtraction {
            system: system.clone(),
            pattern,
            probes,
            now: Time::ZERO,
        }
    }

    /// Number of probe instances running.
    pub fn probe_count(&self) -> usize {
        self.probes.len()
    }

    /// Advances the extraction to time `now`: launches initial messages,
    /// drives the chains, raises `failed` flags.
    pub fn advance(&mut self, now: Time) {
        self.now = self.now.max(now);
        let crashed = self.pattern.faulty_at(now);
        // Phase 1: launch and chain within each probe.
        for probe in &mut self.probes {
            let k = probe.path.len() - 1;
            // lines 4–5: a live member of π[0]∩π[1] multicasts (p, 0).
            if probe.launched[0].is_none() {
                let senders = self
                    .system
                    .intersection(probe.path.get(0), probe.path.get(1))
                    - crashed;
                if let Some(p) = senders.min() {
                    probe.launched[0] = probe.bbox.multicast(p, probe.path.get(0), now);
                }
            }
            probe.bbox.advance(now);
            // lines 6–10: when message i is delivered at a live member of
            // π[i+1], record signal (π, i) and multicast message i+1.
            for i in 0..k {
                let Some(m) = probe.launched[i] else { continue };
                if !probe.bbox.delivered(m, now) {
                    continue;
                }
                let deliverers = self
                    .system
                    .intersection(probe.path.get(i), probe.path.get(i + 1))
                    & probe.bbox.participants();
                let live = deliverers - crashed;
                if live.is_empty() {
                    continue;
                }
                if i < k - 1 {
                    probe.signals.insert(i);
                    if probe.launched[i + 1].is_none() {
                        let p = live.min().expect("non-empty");
                        probe.launched[i + 1] = probe.bbox.multicast(p, probe.path.get(i + 1), now);
                    }
                }
            }
        }
        // Phase 2: update failed flags (needs cross-probe reads).
        for idx in 0..self.probes.len() {
            if self.probes[idx].failed {
                continue;
            }
            let k = self.probes[idx].path.len() - 1;
            // direct completion: signal (π, |π|-3) = (π, k-2)
            if k >= 2 && self.probes[idx].signals.contains(&(k - 2)) {
                self.probes[idx].failed = true;
                continue;
            }
            // converse-direction rendezvous
            let my_dir = self.probes[idx].path.direction();
            let my_class = self.probes[idx].class.clone();
            let my_family = self.probes[idx].family;
            let stall_groups: Vec<GroupId> = self.probes[idx]
                .signals
                .iter()
                .map(|j| self.probes[idx].path.get(j + 1))
                .collect();
            let hit = self.probes.iter().any(|other| {
                other.family == my_family
                    && other.class == my_class
                    && other.path.direction() == -my_dir
                    && other.signals.contains(&0)
                    && stall_groups.contains(&other.path.get(0))
            });
            if hit {
                self.probes[idx].failed = true;
            }
        }
    }

    /// The emulated `γ(p, t)` output — line 16: the families of `ℱ(p)` with
    /// some path class entirely un-failed.
    ///
    /// (Queries are answered at the current extraction time; `advance` must
    /// have been driven at least to `t`.)
    pub fn families(&self, p: ProcessId) -> Vec<GroupSet> {
        self.system
            .families_of_process(p)
            .into_iter()
            .filter(|f| {
                // group probes of f by class; f stays iff some class has no
                // failed probe (including classes with no probes at all).
                let mut classes: Vec<(BTreeSet<(GroupId, GroupId)>, bool)> = Vec::new();
                for probe in self.probes.iter().filter(|pr| pr.family == *f) {
                    match classes.iter_mut().find(|(c, _)| *c == probe.class) {
                        Some((_, failed)) => *failed |= probe.failed,
                        None => classes.push((probe.class.clone(), probe.failed)),
                    }
                }
                classes.is_empty() || classes.iter().any(|(_, failed)| !failed)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gam_detectors::validate::validate_gamma;
    use gam_groups::topology;

    fn drive(ext: &mut GammaExtraction, horizon: u64) {
        for t in 0..=horizon {
            ext.advance(Time(t));
        }
    }

    fn run_and_validate(system: &GroupSystem, pattern: FailurePattern, settle: u64, horizon: u64) {
        let env = Environment::wait_free(system.universe());
        let mut ext = GammaExtraction::new(system, pattern.clone(), &env);
        // Sample the output at every instant while driving.
        let mut samples: Vec<Vec<Vec<GroupSet>>> = Vec::new(); // [t][p]
        let n = system.universe().len();
        for t in 0..=horizon {
            ext.advance(Time(t));
            samples.push((0..n).map(|i| ext.families(ProcessId(i as u32))).collect());
        }
        validate_gamma(
            |p, t| samples[t.0 as usize][p.index()].clone(),
            system,
            &pattern,
            Time(settle),
            Time(horizon),
        )
        .unwrap();
    }

    #[test]
    fn ring_all_correct_keeps_family() {
        let gs = topology::ring(3, 2);
        run_and_validate(&gs, FailurePattern::all_correct(gs.universe()), 10, 40);
    }

    #[test]
    fn ring_single_joint_crash_excludes_family() {
        let gs = topology::ring(3, 2);
        // p0 = g1∩g3 joint: its crash makes the single family faulty.
        let pattern = FailurePattern::from_crashes(gs.universe(), [(ProcessId(0), Time(5))]);
        run_and_validate(&gs, pattern.clone(), 30, 60);
        // and the family is indeed excluded at the correct member p1 ∈ g1∩g2
        let env = Environment::wait_free(gs.universe());
        let mut ext = GammaExtraction::new(&gs, pattern, &env);
        drive(&mut ext, 60);
        assert!(ext.families(ProcessId(1)).is_empty());
    }

    #[test]
    fn ring_two_adjacent_joint_crashes_still_detected() {
        // Two faulty edges: the chain stalls and the converse-direction
        // rendezvous (line 13) is required.
        let gs = topology::ring(3, 2);
        let pattern = FailurePattern::from_crashes(
            gs.universe(),
            [(ProcessId(0), Time(3)), (ProcessId(1), Time(6))],
        );
        run_and_validate(&gs, pattern, 40, 80);
    }

    #[test]
    fn fig1_crash_of_p2_excludes_exactly_two_families() {
        let gs = topology::fig1();
        let pattern = FailurePattern::from_crashes(gs.universe(), [(ProcessId(1), Time(5))]);
        run_and_validate(&gs, pattern.clone(), 40, 80);
        let env = Environment::wait_free(gs.universe());
        let mut ext = GammaExtraction::new(&gs, pattern, &env);
        drive(&mut ext, 80);
        // At p1 (∈ every family), only 𝔣' = {g1,g3,g4} survives.
        let fams = ext.families(ProcessId(0));
        let fprime: GroupSet = [GroupId(0), GroupId(2), GroupId(3)].into_iter().collect();
        assert_eq!(fams, vec![fprime]);
    }

    #[test]
    fn acyclic_topology_has_no_probes() {
        let gs = topology::chain(4, 3);
        let env = Environment::wait_free(gs.universe());
        let ext = GammaExtraction::new(&gs, FailurePattern::all_correct(gs.universe()), &env);
        assert_eq!(ext.probe_count(), 0);
    }

    #[test]
    fn reliable_environment_spawns_no_probes() {
        // If no intersection is failure-prone, Algorithm 3 runs no instances
        // and γ constantly outputs ℱ(p) — which is then always accurate.
        let gs = topology::ring(3, 2);
        let env = Environment::with_failure_prone(gs.universe(), ProcessSet::EMPTY);
        let ext = GammaExtraction::new(&gs, FailurePattern::all_correct(gs.universe()), &env);
        assert_eq!(ext.probe_count(), 0);
        assert_eq!(ext.families(ProcessId(0)).len(), 1);
    }

    #[test]
    fn probe_count_matches_cpaths() {
        let gs = topology::ring(3, 2);
        let env = Environment::wait_free(gs.universe());
        let ext = GammaExtraction::new(&gs, FailurePattern::all_correct(gs.universe()), &env);
        // one family, one cycle class, 3 rotations × 2 directions
        assert_eq!(ext.probe_count(), 6);
    }
}
