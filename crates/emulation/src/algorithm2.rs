//! Algorithm 2 — emulating `Σ_{∩_{g∈G} g}` from atomic multicast (§5.1).
//!
//! For every group `g ∈ G` (with `|G| ≤ 2`, intersecting) and every subset
//! `x ⊆ g`, the extraction runs an instance `A_{g,x}` of the multicast
//! black box in which only the processes of `x` participate, each
//! multicasting its identity to `g`. The subsets whose instance delivers
//! form `Q_g`, the *responsive* subsets; the emulated quorum at a process of
//! `∩_g g` is `(∪_g qr_g) ∩ (∩_g g)` where `qr_g` is the most responsive
//! subset by the ranking function of Bonnet & Raynal: the rank of a process
//! grows while it is alive, and the rank of a set is the minimum over its
//! members — so a set ranks ever higher iff all its members are correct.

use crate::blackbox::BlackBox;
use gam_groups::{GroupId, GroupSystem};
use gam_kernel::{FailurePattern, ProcessId, ProcessSet, Time};

/// The Σ extraction of Algorithm 2.
#[derive(Debug)]
pub struct SigmaExtraction {
    pattern: FailurePattern,
    groups: Vec<GroupId>,
    members: Vec<ProcessSet>,
    /// `A_{g,x}` instances: (group index in `groups`, subset, box).
    instances: Vec<(usize, ProcessSet, BlackBox)>,
    now: Time,
}

impl SigmaExtraction {
    /// Builds the extraction for `G = groups` (one group, or two
    /// intersecting groups).
    ///
    /// # Panics
    ///
    /// Panics if `groups` is empty, has more than two elements, lists
    /// non-intersecting groups, or a group has more than 16 members (the
    /// subset enumeration is exponential).
    pub fn new(system: &GroupSystem, pattern: FailurePattern, groups: &[GroupId]) -> Self {
        assert!(
            (1..=2).contains(&groups.len()),
            "G is one group or two intersecting groups"
        );
        if groups.len() == 2 {
            assert!(
                system.intersecting(groups[0], groups[1]),
                "the two groups must intersect"
            );
        }
        let members: Vec<ProcessSet> = groups.iter().map(|g| system.members(*g)).collect();
        let mut instances = Vec::new();
        for (gi, g) in groups.iter().enumerate() {
            let m: Vec<ProcessId> = members[gi].iter().collect();
            assert!(m.len() <= 16, "subset enumeration caps at 16 members");
            for mask in 1u32..(1u32 << m.len()) {
                let x: ProcessSet = m
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, p)| *p)
                    .collect();
                let mut bb = BlackBox::new(system, pattern.clone(), x);
                // lines 5–7: every p ∈ x multicasts its identity to g.
                for p in x {
                    bb.multicast(p, *g, Time::ZERO);
                }
                instances.push((gi, x, bb));
            }
        }
        SigmaExtraction {
            pattern,
            groups: groups.to_vec(),
            members,
            instances,
            now: Time::ZERO,
        }
    }

    /// `∩_{g∈G} g`.
    pub fn scope(&self) -> ProcessSet {
        self.members
            .iter()
            .copied()
            .reduce(|a, b| a & b)
            .expect("non-empty G")
    }

    /// Advances every instance to time `now`.
    pub fn advance(&mut self, now: Time) {
        self.now = self.now.max(now);
        for (_, _, bb) in &mut self.instances {
            bb.advance(now);
        }
    }

    /// The rank of a process at `t`: its count of "alive" messages — it
    /// grows forever iff the process is correct.
    fn rank_of(&self, p: ProcessId, t: Time) -> u64 {
        match self.pattern.crash_time(p) {
            Some(c) if c <= t => c.0,
            _ => t.0,
        }
    }

    /// The rank of a set: the lowest rank among its members.
    fn rank(&self, x: ProcessSet, t: Time) -> u64 {
        x.iter().map(|p| self.rank_of(p, t)).min().unwrap_or(0)
    }

    /// `Q_g` at the current time: `{g} ∪ {x : A_{g,x} delivered}` (line 3 +
    /// line 9).
    fn responsive(&self, gi: usize, t: Time) -> Vec<ProcessSet> {
        let mut q = vec![self.members[gi]];
        for (i, x, bb) in &self.instances {
            if *i == gi && bb.any_delivered(t) && !q.contains(x) {
                q.push(*x);
            }
        }
        q
    }

    /// The emulated `Σ_{∩g}` output at `(p, t)` (lines 10–15): `⊥` outside
    /// `∩_g g`, otherwise `(∪_g qr_g) ∩ (∩_g g)`.
    pub fn quorum(&self, p: ProcessId, t: Time) -> Option<ProcessSet> {
        if !self.scope().contains(p) {
            return None;
        }
        let mut union = ProcessSet::EMPTY;
        for gi in 0..self.groups.len() {
            // line 14: qr_g ← choose argmax rank(y); ties break towards the
            // largest set, then lexicographically — deterministic.
            let qr = self
                .responsive(gi, t)
                .into_iter()
                .max_by_key(|x| (self.rank(*x, t), x.len(), *x))
                .expect("Q_g contains g");
            union |= qr;
        }
        Some(union & self.scope())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gam_detectors::validate::validate_sigma;
    use gam_groups::topology;

    fn drive(ext: &mut SigmaExtraction, horizon: u64) {
        for t in 0..=horizon {
            ext.advance(Time(t));
        }
    }

    #[test]
    fn emulates_sigma_on_two_overlapping_groups_all_correct() {
        let gs = topology::two_overlapping(3, 2); // g∩h = {p2,p3}
        let pattern = FailurePattern::all_correct(gs.universe());
        let mut ext = SigmaExtraction::new(&gs, pattern.clone(), &[GroupId(0), GroupId(1)]);
        drive(&mut ext, 60);
        validate_sigma(
            |p, t| ext.quorum(p, t),
            &pattern,
            ext.scope(),
            Time(30),
            Time(60),
        )
        .unwrap();
    }

    #[test]
    fn emulates_sigma_under_crashes() {
        let gs = topology::two_overlapping(3, 2);
        // one member of each side and one of the intersection crash
        let pattern = FailurePattern::from_crashes(
            gs.universe(),
            [(ProcessId(0), Time(5)), (ProcessId(2), Time(9))],
        );
        let mut ext = SigmaExtraction::new(&gs, pattern.clone(), &[GroupId(0), GroupId(1)]);
        drive(&mut ext, 80);
        validate_sigma(
            |p, t| ext.quorum(p, t),
            &pattern,
            ext.scope(),
            Time(40),
            Time(80),
        )
        .unwrap();
    }

    #[test]
    fn eventually_returns_exactly_the_correct_intersection() {
        let gs = topology::two_overlapping(3, 2); // g∩h = {p1,p2}
        let pattern = FailurePattern::from_crashes(gs.universe(), [(ProcessId(2), Time(4))]);
        let mut ext = SigmaExtraction::new(&gs, pattern.clone(), &[GroupId(0), GroupId(1)]);
        drive(&mut ext, 100);
        // p1 is the only correct process of the intersection.
        let q = ext.quorum(ProcessId(1), Time(100)).unwrap();
        assert_eq!(q, ProcessSet::from_iter([1u32]));
    }

    #[test]
    fn single_group_emulates_sigma_g() {
        let gs = topology::single_group(4);
        let pattern = FailurePattern::from_crashes(gs.universe(), [(ProcessId(1), Time(6))]);
        let mut ext = SigmaExtraction::new(&gs, pattern.clone(), &[GroupId(0)]);
        drive(&mut ext, 80);
        validate_sigma(
            |p, t| ext.quorum(p, t),
            &pattern,
            gs.members(GroupId(0)),
            Time(40),
            Time(80),
        )
        .unwrap();
    }

    #[test]
    fn bot_outside_the_intersection() {
        let gs = topology::two_overlapping(3, 1);
        let pattern = FailurePattern::all_correct(gs.universe());
        let ext = SigmaExtraction::new(&gs, pattern, &[GroupId(0), GroupId(1)]);
        assert_eq!(ext.quorum(ProcessId(0), Time(0)), None); // p0 ∈ g only
        assert!(ext.quorum(ProcessId(2), Time(0)).is_some()); // p2 = g∩h
    }

    #[test]
    #[should_panic(expected = "must intersect")]
    fn rejects_disjoint_groups() {
        let gs = topology::disjoint(2, 2);
        SigmaExtraction::new(
            &gs,
            FailurePattern::all_correct(gs.universe()),
            &[GroupId(0), GroupId(1)],
        );
    }
}
