//! # gam-emulation — the necessity side
//!
//! The §5/§6 reductions that extract the constituents of `μ` from an
//! arbitrary algorithm `A` solving (a variation of) genuine atomic
//! multicast:
//!
//! - [`SigmaExtraction`] — Algorithm 2: `Σ_{g∩h}` via responsive subsets and
//!   the Bonnet–Raynal ranking function;
//! - [`GammaExtraction`] — Algorithm 3: `γ` via closed-path probes around
//!   each cyclic family;
//! - [`IndicatorExtraction`] — Algorithm 4: `1^{g∩h}` from *strict* atomic
//!   multicast;
//! - `algorithm5` — the CHT-style simulation forest extracting `Ω_{g∩h}`
//!   from a *strongly genuine* algorithm.
//!
//! The black box `A` is modelled by [`BlackBox`]; see its docs and DESIGN.md
//! for the substitution argument.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod algorithm2;
mod algorithm3;
mod algorithm4;
pub mod algorithm5;
mod blackbox;

pub use algorithm2::SigmaExtraction;
pub use algorithm3::GammaExtraction;
pub use algorithm4::IndicatorExtraction;
pub use algorithm5::{
    FirstClaimWins, Gadget, GadgetKind, LeaderDefers, OmegaExtraction, SimConfig, SimProcess,
    SimulationTree, Tag, Valency,
};
pub use blackbox::BlackBox;
