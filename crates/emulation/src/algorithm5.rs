//! Algorithm 5 — emulating `Ω_{g∩h}` from a strongly genuine algorithm
//! (§6.2, Appendix B): the CHT simulation-forest construction.
//!
//! Each process samples the underlying failure detector `D` into a sampling
//! DAG `G`; every path of `G` induces schedules of the black-box algorithm
//! `A` that are *simulated locally* from the initial configurations `ℑ` in
//! which each process of `g ∩ h` multicasts a single message to either `g`
//! or `h`. Schedules are tagged by which group's message is delivered first
//! (`g`-valent / `h`-valent / bivalent); the extraction then finds either a
//! *univalent critical* pair of adjacent configurations — whose connecting
//! process must be correct (Proposition 71) — or a *decision gadget* (a fork
//! or a hook, Figure 5) inside a bivalent tree, whose deciding process must
//! be correct and in `g ∩ h` (Proposition 72).
//!
//! The simulation forest is explored to a bounded depth (the paper's trees
//! are unbounded; the extraction stabilises on finite prefixes, which is
//! what we materialise), and leaves are closed by a fair round-robin
//! continuation so that every explored schedule obtains its eventual tag
//! (Proposition 67 guarantees such an extension exists).

use gam_kernel::{FailurePattern, ProcessId, ProcessSet, Time};
use std::collections::VecDeque;
use std::fmt;

/// Which group's message is delivered first in a simulated run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tag {
    /// A message addressed to `g` was delivered first.
    G,
    /// A message addressed to `h` was delivered first.
    H,
}

impl Tag {
    /// The other tag.
    pub fn flip(self) -> Tag {
        match self {
            Tag::G => Tag::H,
            Tag::H => Tag::G,
        }
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tag::G => write!(f, "g"),
            Tag::H => write!(f, "h"),
        }
    }
}

/// The valency of a schedule: the set of tags reachable from it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Valency {
    /// Only `g`-tagged runs are reachable.
    GValent,
    /// Only `h`-tagged runs are reachable.
    HValent,
    /// Both.
    Bivalent,
}

impl Valency {
    fn from_tags(g: bool, h: bool) -> Option<Valency> {
        match (g, h) {
            (true, true) => Some(Valency::Bivalent),
            (true, false) => Some(Valency::GValent),
            (false, true) => Some(Valency::HValent),
            (false, false) => None,
        }
    }

    /// The univalent valency for a tag.
    pub fn of(tag: Tag) -> Valency {
        match tag {
            Tag::G => Valency::GValent,
            Tag::H => Valency::HValent,
        }
    }
}

/// A deterministic process of the simulated algorithm `A`.
///
/// The simulation applies steps `(p, m, d)` exactly as in the model: receive
/// one message (or `⊥`), read one failure-detector sample, transition, send.
pub trait SimProcess: Clone {
    /// Protocol messages.
    type Msg: Clone + fmt::Debug;
    /// Failure-detector sample type.
    type Fd: Clone + fmt::Debug;

    /// One atomic step; returns messages to send and the tag of a delivery
    /// performed during the step, if any.
    fn step(
        &mut self,
        me: ProcessId,
        input: Option<(ProcessId, Self::Msg)>,
        fd: &Self::Fd,
    ) -> (Vec<(ProcessSet, Self::Msg)>, Option<Tag>);
}

/// A configuration of the simulated system: process states plus the message
/// buffer, plus the first delivery observed (which fixes the run's tag).
#[derive(Debug, Clone)]
pub struct SimConfig<P: SimProcess> {
    procs: Vec<P>,
    buffers: Vec<VecDeque<(ProcessId, P::Msg)>>,
    /// The first delivery's tag, once some process delivers.
    pub first_delivery: Option<Tag>,
}

impl<P: SimProcess> SimConfig<P> {
    /// Creates the configuration from initial process states.
    pub fn new(procs: Vec<P>) -> Self {
        let n = procs.len();
        SimConfig {
            procs,
            buffers: (0..n).map(|_| VecDeque::new()).collect(),
            first_delivery: None,
        }
    }

    /// Number of messages pending for `p`.
    pub fn pending(&self, p: ProcessId) -> usize {
        self.buffers[p.index()].len()
    }

    /// Applies the step `(p, m, d)`; `msg_index` selects which pending
    /// message is received (`None` = the null message).
    pub fn apply(&mut self, p: ProcessId, msg_index: Option<usize>, fd: &P::Fd) {
        let input = msg_index.map(|i| {
            self.buffers[p.index()]
                .remove(i)
                .expect("message index in range")
        });
        let (sends, delivered) = self.procs[p.index()].step(p, input, fd);
        for (dst, msg) in sends {
            for q in dst {
                self.buffers[q.index()].push_back((p, msg.clone()));
            }
        }
        if self.first_delivery.is_none() {
            if let Some(tag) = delivered {
                self.first_delivery = Some(tag);
            }
        }
    }
}

/// One sample of the sampling DAG `G`: process, detector value, sequence
/// number, and the real time at which it was taken (the process is alive at
/// that time — crashed processes contribute no samples).
#[derive(Debug, Clone)]
pub struct Sample<Fd> {
    /// The sampling process.
    pub p: ProcessId,
    /// The detector value `D(p, t)`.
    pub d: Fd,
    /// Per-process sample counter `k`.
    pub k: u64,
}

/// Builds the sampling list (a maximal path of the collaborative sampling
/// DAG) by querying `detector` round-robin at the live processes of `scope`
/// over `0..horizon`.
pub fn sample_dag<Fd>(
    scope: ProcessSet,
    pattern: &FailurePattern,
    horizon: u64,
    mut detector: impl FnMut(ProcessId, Time) -> Fd,
) -> Vec<Sample<Fd>> {
    let mut out = Vec::new();
    let mut counters = std::collections::BTreeMap::new();
    for t in 0..horizon {
        for p in scope {
            if pattern.is_crashed(p, Time(t)) {
                continue;
            }
            let k = counters.entry(p).or_insert(0u64);
            *k += 1;
            out.push(Sample {
                p,
                d: detector(p, Time(t)),
                k: *k,
            });
        }
    }
    out
}

/// The shape of a decision gadget (Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GadgetKind {
    /// Same process, same message, two detector samples with opposite
    /// valencies.
    Fork,
    /// The valency split goes through an intermediate step of another
    /// process.
    Hook,
}

/// A located decision gadget: its deciding process and shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gadget {
    /// The process whose step fixes the valency — correct and in `g∩h` by
    /// Proposition 72.
    pub decider: ProcessId,
    /// Fork or hook.
    pub kind: GadgetKind,
}

/// One node of a simulation tree: a schedule, the configuration it leads
/// to, and its (eventual) tag computed by fair extension.
#[derive(Debug, Clone)]
pub struct Node {
    /// Indices into the simulation tree's node arena; `steps[i]` is the
    /// `(sample index, message index)` taken at depth `i`.
    pub schedule: Vec<(usize, Option<usize>)>,
    /// The eventual tag of the fair continuation of this schedule.
    pub tag: Tag,
    /// Children node ids.
    pub children: Vec<usize>,
    /// Reachable tags within the explored tree (computed bottom-up).
    pub reach_g: bool,
    /// See [`Node::reach_g`].
    pub reach_h: bool,
}

/// The simulation tree `Υ_i` of one initial configuration, explored to a
/// bounded depth.
#[derive(Debug)]
pub struct SimulationTree<P: SimProcess> {
    /// Node arena; node 0 is the root (empty schedule `S_⊥`).
    pub nodes: Vec<Node>,
    initial: SimConfig<P>,
    samples: Vec<Sample<P::Fd>>,
}

impl<P: SimProcess> SimulationTree<P> {
    /// Builds the tree for `initial`, exploring schedules that follow the
    /// sample list (each step consumes the next sample of its process) up to
    /// `depth` steps, closing every node with a fair continuation to get its
    /// tag.
    pub fn build(
        initial: SimConfig<P>,
        samples: Vec<Sample<P::Fd>>,
        depth: usize,
        fair_budget: usize,
    ) -> Self {
        let mut tree = SimulationTree {
            nodes: Vec::new(),
            initial,
            samples,
        };
        let root_tag = tree.fair_tag(&[], fair_budget);
        tree.nodes.push(Node {
            schedule: Vec::new(),
            tag: root_tag,
            children: Vec::new(),
            reach_g: false,
            reach_h: false,
        });
        tree.expand(0, 0, depth, fair_budget);
        tree.compute_reach(0);
        tree
    }

    /// Replays `schedule` from the initial configuration.
    pub fn config_of(&self, schedule: &[(usize, Option<usize>)]) -> SimConfig<P> {
        let mut cfg = self.initial.clone();
        for (si, mi) in schedule {
            let s = &self.samples[*si];
            cfg.apply(s.p, *mi, &s.d);
        }
        cfg
    }

    /// The eventual tag of the fair (round-robin, FIFO) continuation.
    fn fair_tag(&self, schedule: &[(usize, Option<usize>)], fair_budget: usize) -> Tag {
        let mut cfg = self.config_of(schedule);
        if let Some(tag) = cfg.first_delivery {
            return tag;
        }
        // Continue with the remaining samples in order, FIFO reception.
        let consumed: std::collections::BTreeSet<usize> =
            schedule.iter().map(|(si, _)| *si).collect();
        let mut used = 0usize;
        for (si, s) in self.samples.iter().enumerate() {
            if consumed.contains(&si) || used >= fair_budget {
                continue;
            }
            let mi = if cfg.pending(s.p) > 0 { Some(0) } else { None };
            cfg.apply(s.p, mi, &s.d);
            used += 1;
            if let Some(tag) = cfg.first_delivery {
                return tag;
            }
        }
        // A strongly genuine A always delivers under fair scheduling of the
        // live participants; running out of samples means the horizon was
        // too short.
        panic!("fair continuation did not deliver; increase the sampling horizon");
    }

    fn expand(&mut self, node: usize, sample_from: usize, depth: usize, fair_budget: usize) {
        if depth == 0 {
            return;
        }
        let schedule = self.nodes[node].schedule.clone();
        let cfg = self.config_of(&schedule);
        if cfg.first_delivery.is_some() {
            return; // the tag is fixed; no need to branch further
        }
        // Next step: for each process, its next *two* samples after
        // `sample_from` — branching on the message choice (where
        // scheduling-driven valency lives) and on the detector sample
        // (where *fork* gadgets live: the same `(p, m)` step with two
        // different values of `d`).
        let mut next_of: std::collections::BTreeMap<ProcessId, Vec<usize>> = Default::default();
        for (si, s) in self.samples.iter().enumerate().skip(sample_from) {
            let v = next_of.entry(s.p).or_default();
            if v.len() < 2 {
                v.push(si);
            }
        }
        for (p, sis) in next_of {
            let choices: Vec<Option<usize>> = (0..cfg.pending(p))
                .map(Some)
                .chain(std::iter::once(None))
                .collect();
            for si in sis {
                for mi in &choices {
                    let mut sched = schedule.clone();
                    sched.push((si, *mi));
                    let tag = self.fair_tag(&sched, fair_budget);
                    let id = self.nodes.len();
                    self.nodes.push(Node {
                        schedule: sched,
                        tag,
                        children: Vec::new(),
                        reach_g: false,
                        reach_h: false,
                    });
                    self.nodes[node].children.push(id);
                    self.expand(id, si + 1, depth - 1, fair_budget);
                }
            }
        }
    }

    fn compute_reach(&mut self, node: usize) {
        let children = self.nodes[node].children.clone();
        let (mut g, mut h) = match self.nodes[node].tag {
            Tag::G => (true, false),
            Tag::H => (false, true),
        };
        for c in children {
            self.compute_reach(c);
            g |= self.nodes[c].reach_g;
            h |= self.nodes[c].reach_h;
        }
        self.nodes[node].reach_g = g;
        self.nodes[node].reach_h = h;
    }

    /// The valency of a node from the reachable tags.
    pub fn valency(&self, node: usize) -> Valency {
        Valency::from_tags(self.nodes[node].reach_g, self.nodes[node].reach_h)
            .expect("every node has a tag")
    }

    /// Searches the tree for a decision gadget: a bivalent node with a
    /// `g`-valent child and an `h`-valent child. Returns the *deciding
    /// process* — the process whose step fixes the valency.
    pub fn decision_gadget(&self) -> Option<ProcessId> {
        self.decision_gadget_detail().map(|g| g.decider)
    }

    /// As [`SimulationTree::decision_gadget`], also classifying the gadget
    /// as a *fork* or a *hook* (Figure 5). Prefers a fork when both shapes
    /// exist.
    pub fn decision_gadget_detail(&self) -> Option<Gadget> {
        let gadgets = self.decision_gadgets();
        gadgets
            .iter()
            .find(|g| g.kind == GadgetKind::Fork)
            .or_else(|| gadgets.first())
            .copied()
    }

    /// Every decision gadget of the explored tree: for each bivalent node,
    /// every `(g-valent child, h-valent child)` pair, classified as fork or
    /// hook.
    pub fn decision_gadgets(&self) -> Vec<Gadget> {
        let mut out = Vec::new();
        for (id, node) in self.nodes.iter().enumerate() {
            if self.valency(id) != Valency::Bivalent {
                continue;
            }
            let gvs: Vec<usize> = node
                .children
                .iter()
                .copied()
                .filter(|c| self.valency(*c) == Valency::GValent)
                .collect();
            let hvs: Vec<usize> = node
                .children
                .iter()
                .copied()
                .filter(|c| self.valency(*c) == Valency::HValent)
                .collect();
            for a in &gvs {
                for b in &hvs {
                    let (sa, ma) = *self.nodes[*a].schedule.last().expect("child has a step");
                    let (sb, mb) = *self.nodes[*b].schedule.last().expect("child has a step");
                    let (pa, pb) = (self.samples[sa].p, self.samples[sb].p);
                    // A fork: the same process receives the same message
                    // with two different detector samples and the valency
                    // splits.
                    let kind = if pa == pb && ma == mb && sa != sb {
                        GadgetKind::Fork
                    } else {
                        GadgetKind::Hook
                    };
                    out.push(Gadget { decider: pa, kind });
                }
            }
        }
        out
    }
}

/// A minimal strongly-genuine two-group algorithm used to *demonstrate* the
/// extraction: each process of `g∩h` starts with a proposal (a target
/// group); its first step claims it; the first claim received anywhere wins
/// and its message is delivered first. The valency of a configuration is
/// therefore decided by scheduling, exactly the structure CHT exploits.
#[derive(Debug, Clone)]
pub struct FirstClaimWins {
    peers: ProcessSet,
    proposal: Option<Tag>,
    claimed: bool,
    delivered: bool,
}

impl FirstClaimWins {
    /// The initial configuration in which process `i` of the scope proposes
    /// `proposals[i]`.
    pub fn initial(proposals: &[Tag]) -> SimConfig<FirstClaimWins> {
        let peers = ProcessSet::first_n(proposals.len());
        SimConfig::new(
            proposals
                .iter()
                .map(|t| FirstClaimWins {
                    peers,
                    proposal: Some(*t),
                    claimed: false,
                    delivered: false,
                })
                .collect(),
        )
    }
}

impl SimProcess for FirstClaimWins {
    type Msg = Tag;
    type Fd = ();

    fn step(
        &mut self,
        me: ProcessId,
        input: Option<(ProcessId, Tag)>,
        _fd: &(),
    ) -> (Vec<(ProcessSet, Tag)>, Option<Tag>) {
        let mut sends = Vec::new();
        let mut delivered = None;
        if let Some((_, claim)) = input {
            if !self.delivered {
                self.delivered = true;
                delivered = Some(claim);
            }
        } else if !self.claimed {
            if let Some(p) = self.proposal {
                self.claimed = true;
                // broadcast to everyone including self, so that a process
                // running alone still delivers (strong genuineness)
                let _ = me;
                sends.push((self.peers, p));
            }
        }
        (sends, delivered)
    }
}

/// A second demo algorithm whose behaviour depends on the *failure-detector
/// sample*: a process claims its proposal only when the leader hint `d`
/// names itself, and defers otherwise. Two steps of the same process with
/// the same message but different hints can therefore fix opposite
/// valencies — producing the *fork* decision gadgets of Figure 5 (the
/// [`FirstClaimWins`] demo only produces hook-style gadgets, since it
/// ignores `d`).
#[derive(Debug, Clone)]
pub struct LeaderDefers {
    peers: ProcessSet,
    proposal: Option<Tag>,
    claimed: bool,
    delivered: bool,
}

impl LeaderDefers {
    /// The initial configuration in which process `i` proposes
    /// `proposals[i]`.
    pub fn initial(proposals: &[Tag]) -> SimConfig<LeaderDefers> {
        let peers = ProcessSet::first_n(proposals.len());
        SimConfig::new(
            proposals
                .iter()
                .map(|t| LeaderDefers {
                    peers,
                    proposal: Some(*t),
                    claimed: false,
                    delivered: false,
                })
                .collect(),
        )
    }
}

impl SimProcess for LeaderDefers {
    type Msg = Tag;
    /// The leader hint (an `Ω`-style sample).
    type Fd = ProcessId;

    fn step(
        &mut self,
        me: ProcessId,
        input: Option<(ProcessId, Tag)>,
        fd: &ProcessId,
    ) -> (Vec<(ProcessSet, Tag)>, Option<Tag>) {
        let mut sends = Vec::new();
        let mut delivered = None;
        if let Some((_, claim)) = input {
            if !self.delivered {
                self.delivered = true;
                delivered = Some(claim);
            }
        } else if !self.claimed && *fd == me {
            if let Some(p) = self.proposal {
                self.claimed = true;
                sends.push((self.peers, p));
            }
        }
        (sends, delivered)
    }
}

/// The full Ω extraction of Algorithm 5 over the demo algorithm: one
/// simulation tree per initial configuration of `ℑ` (every assignment of
/// `g`/`h` proposals to the processes of the scope), searched for a
/// univalent critical pair of adjacent configurations or a decision gadget.
#[derive(Debug)]
pub struct OmegaExtraction {
    scope: ProcessSet,
    /// (proposal vector, tree) per initial configuration `I_i ∈ ℑ`.
    trees: Vec<(Vec<Tag>, SimulationTree<FirstClaimWins>)>,
}

impl OmegaExtraction {
    /// Builds the forest for the first `n = |scope|` processes.
    ///
    /// # Panics
    ///
    /// Panics if the scope has more than 8 processes (`|ℑ| = 2^n`).
    pub fn new(scope: ProcessSet, pattern: FailurePattern, horizon: u64, depth: usize) -> Self {
        let n = scope.len();
        assert!(n <= 8, "configuration enumeration caps at 8 processes");
        assert_eq!(scope, ProcessSet::first_n(n), "scope must be p0..p(n-1)");
        let mut trees = Vec::new();
        for mask in 0u32..(1u32 << n) {
            let proposals: Vec<Tag> = (0..n)
                .map(|i| if mask & (1 << i) != 0 { Tag::H } else { Tag::G })
                .collect();
            let samples = sample_dag(scope, &pattern, horizon, |_, _| ());
            let tree = SimulationTree::build(
                FirstClaimWins::initial(&proposals),
                samples,
                depth,
                (horizon as usize) * n,
            );
            trees.push((proposals, tree));
        }
        OmegaExtraction { scope, trees }
    }

    /// The `Extract` procedure (lines 36–44): the emulated `Ω_{g∩h}` output
    /// at `p`, `⊥` outside the scope.
    pub fn leader(&self, p: ProcessId) -> Option<ProcessId> {
        if !self.scope.contains(p) {
            return None;
        }
        // Univalent critical pair: adjacent configurations with opposite
        // univalent roots — the connecting process is correct (Prop. 71).
        for (props_i, tree_i) in &self.trees {
            if tree_i.valency(0) != Valency::GValent {
                continue;
            }
            for (props_j, tree_j) in &self.trees {
                if tree_j.valency(0) != Valency::HValent {
                    continue;
                }
                let diff: Vec<usize> = (0..props_i.len())
                    .filter(|k| props_i[*k] != props_j[*k])
                    .collect();
                if diff.len() == 1 {
                    return Some(ProcessId(diff[0] as u32));
                }
            }
        }
        // Bivalent critical index: a decision gadget's deciding process is
        // correct and in the scope (Prop. 72).
        for (_, tree) in &self.trees {
            if tree.valency(0) == Valency::Bivalent {
                if let Some(q) = tree.decision_gadget() {
                    if self.scope.contains(q) {
                        return Some(q);
                    }
                }
            }
        }
        // line 44: fall back to the local process.
        Some(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn initial(proposals: &[Tag]) -> SimConfig<FirstClaimWins> {
        FirstClaimWins::initial(proposals)
    }

    fn samples(scope: ProcessSet, pattern: &FailurePattern, horizon: u64) -> Vec<Sample<()>> {
        sample_dag(scope, pattern, horizon, |_, _| ())
    }

    #[test]
    fn unanimous_configuration_is_univalent() {
        let scope = ProcessSet::first_n(2);
        let pattern = FailurePattern::all_correct(scope);
        let tree = SimulationTree::build(
            initial(&[Tag::G, Tag::G]),
            samples(scope, &pattern, 6),
            3,
            64,
        );
        assert_eq!(tree.valency(0), Valency::GValent);
        assert!(tree.decision_gadget().is_none());
    }

    #[test]
    fn mixed_configuration_is_bivalent_with_a_gadget() {
        let scope = ProcessSet::first_n(2);
        let pattern = FailurePattern::all_correct(scope);
        let tree = SimulationTree::build(
            initial(&[Tag::G, Tag::H]),
            samples(scope, &pattern, 6),
            4,
            64,
        );
        assert_eq!(tree.valency(0), Valency::Bivalent);
        let decider = tree.decision_gadget().expect("gadget exists");
        assert!(scope.contains(decider));
        assert!(pattern.is_correct(decider));
    }

    #[test]
    fn crashed_process_contributes_no_samples_and_cannot_decide() {
        let scope = ProcessSet::first_n(2);
        // p0 crashed from the start: it takes no simulated step, so the
        // mixed configuration is h-univalent (p1's claim always wins) and
        // no gadget is needed.
        let pattern = FailurePattern::from_crashes(scope, [(ProcessId(0), Time(0))]);
        let tree = SimulationTree::build(
            initial(&[Tag::G, Tag::H]),
            samples(scope, &pattern, 6),
            4,
            64,
        );
        assert_eq!(tree.valency(0), Valency::HValent);
    }

    #[test]
    fn three_process_gadget_decider_is_correct() {
        let scope = ProcessSet::first_n(3);
        let pattern = FailurePattern::from_crashes(scope, [(ProcessId(0), Time(0))]);
        let tree = SimulationTree::build(
            initial(&[Tag::G, Tag::G, Tag::H]),
            samples(scope, &pattern, 8),
            4,
            128,
        );
        assert_eq!(tree.valency(0), Valency::Bivalent);
        let decider = tree.decision_gadget().expect("gadget exists");
        assert!(pattern.is_correct(decider), "{decider} must be correct");
    }

    #[test]
    fn tag_flip_and_display() {
        assert_eq!(Tag::G.flip(), Tag::H);
        assert_eq!(Tag::H.flip(), Tag::G);
        assert_eq!(Tag::G.to_string(), "g");
        assert_eq!(Valency::of(Tag::H), Valency::HValent);
    }

    #[test]
    fn leader_defers_produces_a_fork_gadget() {
        // Alternate the leader hint between the two processes: the very
        // first step of p0 either claims (hint = p0) or defers (hint = p1),
        // flipping the run's valency — a *fork* in the sense of Figure 5a.
        let scope = ProcessSet::first_n(2);
        let pattern = FailurePattern::all_correct(scope);
        let samples = sample_dag(scope, &pattern, 8, |p, t| {
            // a rotating (pre-stabilisation) Ω history
            if t.0 % 2 == 0 {
                p
            } else {
                ProcessId(1 - p.0)
            }
        });
        let tree = SimulationTree::build(LeaderDefers::initial(&[Tag::G, Tag::H]), samples, 3, 64);
        assert_eq!(tree.valency(0), Valency::Bivalent);
        let gadget = tree.decision_gadget_detail().expect("gadget exists");
        assert_eq!(gadget.kind, GadgetKind::Fork, "FD-driven split is a fork");
        assert!(scope.contains(gadget.decider));
    }

    #[test]
    fn first_claim_wins_produces_hook_gadgets() {
        let scope = ProcessSet::first_n(2);
        let pattern = FailurePattern::all_correct(scope);
        let tree = SimulationTree::build(
            initial(&[Tag::G, Tag::H]),
            samples(scope, &pattern, 6),
            4,
            64,
        );
        let gadget = tree.decision_gadget_detail().expect("gadget exists");
        assert_eq!(
            gadget.kind,
            GadgetKind::Hook,
            "schedule-driven split is a hook"
        );
    }

    #[test]
    fn omega_extraction_agrees_and_elects_correct_process() {
        let scope = ProcessSet::first_n(2);
        for crashed in [None, Some(0u32), Some(1u32)] {
            let pattern = match crashed {
                None => FailurePattern::all_correct(scope),
                Some(i) => FailurePattern::from_crashes(scope, [(ProcessId(i), Time(0))]),
            };
            let ext = OmegaExtraction::new(scope, pattern.clone(), 8, 4);
            let mut leaders = std::collections::BTreeSet::new();
            for p in scope & pattern.correct() {
                let l = ext.leader(p).expect("in scope");
                assert!(scope.contains(l));
                assert!(
                    pattern.is_correct(l),
                    "crashed={crashed:?}: leader {l} must be correct"
                );
                leaders.insert(l);
            }
            assert!(leaders.len() <= 1, "crashed={crashed:?}: {leaders:?}");
        }
    }

    #[test]
    fn omega_extraction_three_processes() {
        let scope = ProcessSet::first_n(3);
        let pattern = FailurePattern::from_crashes(scope, [(ProcessId(2), Time(0))]);
        let ext = OmegaExtraction::new(scope, pattern.clone(), 10, 3);
        for p in scope & pattern.correct() {
            let l = ext.leader(p).expect("in scope");
            assert!(pattern.is_correct(l), "leader {l} must be correct");
        }
    }

    #[test]
    fn omega_extraction_bot_outside_scope() {
        let scope = ProcessSet::first_n(2);
        let ext = OmegaExtraction::new(scope, FailurePattern::all_correct(scope), 6, 3);
        assert_eq!(ext.leader(ProcessId(5)), None);
    }

    #[test]
    fn config_replay_is_deterministic() {
        let scope = ProcessSet::first_n(2);
        let pattern = FailurePattern::all_correct(scope);
        let tree = SimulationTree::build(
            initial(&[Tag::G, Tag::H]),
            samples(scope, &pattern, 6),
            3,
            64,
        );
        for node in &tree.nodes {
            let a = tree.config_of(&node.schedule);
            let b = tree.config_of(&node.schedule);
            assert_eq!(a.first_delivery, b.first_delivery);
        }
    }
}
