//! Algorithm 4 — emulating the indicator `1^{g∩h}` from *strict* atomic
//! multicast (§6.1).
//!
//! Two instances of the strict algorithm run side by side: `A_g` among the
//! processes of `g \ h` and `A_h` among `h \ g`. Each participant multicasts
//! its identity in its instance and waits for a delivery; since a strict
//! (realistic) algorithm cannot deliver while the processes of `g ∩ h` might
//! still be alive (Proposition 53's gluing argument), a delivery certifies
//! that `g ∩ h` has crashed — the participant then broadcasts `failed` to
//! `g ∪ h`.

use crate::blackbox::BlackBox;
use gam_groups::{GroupId, GroupSystem};
use gam_kernel::{FailurePattern, ProcessId, ProcessSet, Time};

/// The `1^{g∩h}` extraction of Algorithm 4.
#[derive(Debug)]
pub struct IndicatorExtraction {
    monitored: ProcessSet,
    scope: ProcessSet,
    pattern: FailurePattern,
    instance_g: BlackBox,
    instance_h: BlackBox,
    /// The time at which `failed` was first broadcast, if ever.
    failed_at: Option<Time>,
}

impl IndicatorExtraction {
    /// Builds the extraction for the intersecting pair `(g, h)`.
    ///
    /// # Panics
    ///
    /// Panics if the groups do not intersect.
    pub fn new(system: &GroupSystem, pattern: FailurePattern, g: GroupId, h: GroupId) -> Self {
        assert!(system.intersecting(g, h), "{g} and {h} must intersect");
        let (mg, mh) = (system.members(g), system.members(h));
        let mut instance_g = BlackBox::new(system, pattern.clone(), mg - mh);
        let mut instance_h = BlackBox::new(system, pattern.clone(), mh - mg);
        // lines 4–5: every participant multicasts its identity.
        for p in mg - mh {
            instance_g.multicast(p, g, Time::ZERO);
        }
        for p in mh - mg {
            instance_h.multicast(p, h, Time::ZERO);
        }
        IndicatorExtraction {
            monitored: mg & mh,
            scope: mg | mh,
            pattern,
            instance_g,
            instance_h,
            failed_at: None,
        }
    }

    /// The monitored set `g ∩ h`.
    pub fn monitored(&self) -> ProcessSet {
        self.monitored
    }

    /// Advances both instances; a delivery at a live participant raises
    /// `failed` (lines 6–9).
    pub fn advance(&mut self, now: Time) {
        self.instance_g.advance(now);
        self.instance_h.advance(now);
        if self.failed_at.is_none() {
            let crashed = self.pattern.faulty_at(now);
            let live_g = self.instance_g.participants() - crashed;
            let live_h = self.instance_h.participants() - crashed;
            let g_fired = self.instance_g.any_delivered(now) && !live_g.is_empty();
            let h_fired = self.instance_h.any_delivered(now) && !live_h.is_empty();
            if g_fired || h_fired {
                self.failed_at = Some(now);
            }
        }
    }

    /// The emulated `1^{g∩h}(p, t)`: `⊥` outside `g ∪ h`, else whether a
    /// `failed` broadcast had been received by `t`.
    pub fn indicates(&self, p: ProcessId, t: Time) -> Option<bool> {
        if !self.scope.contains(p) {
            return None;
        }
        Some(self.failed_at.is_some_and(|f| f <= t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gam_detectors::validate::validate_indicator;
    use gam_groups::topology;

    fn drive(ext: &mut IndicatorExtraction, horizon: u64) {
        for t in 0..=horizon {
            ext.advance(Time(t));
        }
    }

    #[test]
    fn never_fires_while_intersection_alive() {
        let gs = topology::two_overlapping(3, 1); // g∩h = {p2}
        let pattern = FailurePattern::all_correct(gs.universe());
        let mut ext = IndicatorExtraction::new(&gs, pattern.clone(), GroupId(0), GroupId(1));
        drive(&mut ext, 50);
        for t in 0..=50u64 {
            assert_eq!(ext.indicates(ProcessId(0), Time(t)), Some(false));
        }
    }

    #[test]
    fn fires_after_intersection_crashes() {
        let gs = topology::two_overlapping(3, 2); // g∩h = {p1,p2}
        let pattern = FailurePattern::from_crashes(
            gs.universe(),
            [(ProcessId(1), Time(4)), (ProcessId(2), Time(9))],
        );
        let mut ext = IndicatorExtraction::new(&gs, pattern.clone(), GroupId(0), GroupId(1));
        drive(&mut ext, 60);
        // accurate and complete per the class validator
        validate_indicator(
            |p, t| ext.indicates(p, t),
            &pattern,
            ext.monitored(),
            gs.members(GroupId(0)) | gs.members(GroupId(1)),
            Time(30),
            Time(60),
        )
        .unwrap();
        // not before the last member dies, true after
        assert_eq!(ext.indicates(ProcessId(0), Time(8)), Some(false));
        assert_eq!(ext.indicates(ProcessId(0), Time(60)), Some(true));
    }

    #[test]
    fn validator_passes_in_failure_free_run() {
        let gs = topology::two_overlapping(4, 2);
        let pattern = FailurePattern::all_correct(gs.universe());
        let mut ext = IndicatorExtraction::new(&gs, pattern.clone(), GroupId(0), GroupId(1));
        drive(&mut ext, 40);
        validate_indicator(
            |p, t| ext.indicates(p, t),
            &pattern,
            ext.monitored(),
            gs.members(GroupId(0)) | gs.members(GroupId(1)),
            Time(20),
            Time(40),
        )
        .unwrap();
    }

    #[test]
    fn bot_outside_scope() {
        // add a process outside g∪h
        let gs = GroupSystem::new(
            ProcessSet::first_n(4),
            vec![
                ProcessSet::from_iter([0u32, 1]),
                ProcessSet::from_iter([1u32, 2]),
            ],
        );
        let ext = IndicatorExtraction::new(
            &gs,
            FailurePattern::all_correct(gs.universe()),
            GroupId(0),
            GroupId(1),
        );
        assert_eq!(ext.indicates(ProcessId(3), Time(0)), None);
    }

    #[test]
    #[should_panic(expected = "must intersect")]
    fn rejects_disjoint_pair() {
        let gs = topology::disjoint(2, 2);
        IndicatorExtraction::new(
            &gs,
            FailurePattern::all_correct(gs.universe()),
            GroupId(0),
            GroupId(1),
        );
    }
}
