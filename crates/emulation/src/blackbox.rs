//! A black-box model of an arbitrary genuine atomic multicast algorithm `A`.
//!
//! The necessity proofs of §5 and §6 treat `A` as a black box and only use
//! three of its behaviours:
//!
//! 1. *(Termination)* if every not-crashed process of the destination group
//!    participates, multicast messages get delivered;
//! 2. *(Genuineness)* only processes addressed by some message take steps;
//! 3. *(Conservatism / indistinguishability)* a run in which some processes
//!    of the destination group take no steps is indistinguishable from one
//!    in which they crashed; a **realistic** `A` cannot deliver "around" a
//!    process that might merely be slow without risking an ordering
//!    violation in the glued run (Lemmas 56–57).
//!
//! [`BlackBox`] models exactly this envelope: an instance is created with a
//! *participant set* (the processes the adversarial scheduler runs — line 2
//! of Algorithms 2 and 3), and a message is delivered at the participants
//! once every not-yet-crashed member of its destination group is a
//! participant. This is the most conservative behaviour consistent with the
//! paper's model, and the one its extraction arguments are built on; see
//! DESIGN.md ("Substitutions") for the discussion.

use gam_core::MessageId;
use gam_groups::{GroupId, GroupSystem};
use gam_kernel::{FailurePattern, ProcessId, ProcessSet, Time};

/// One multicast instance of the black-box algorithm `A`, with a restricted
/// participant set.
#[derive(Debug, Clone)]
pub struct BlackBox {
    system: GroupSystem,
    pattern: FailurePattern,
    participants: ProcessSet,
    /// Submitted messages: (id, src, group, submitted-at).
    messages: Vec<(MessageId, ProcessId, GroupId, Time)>,
    /// Delivery time of each message (same order as `messages`).
    delivered_at: Vec<Option<Time>>,
    next_id: u64,
}

impl BlackBox {
    /// Creates an instance over `system` in which only `participants` take
    /// steps.
    pub fn new(system: &GroupSystem, pattern: FailurePattern, participants: ProcessSet) -> Self {
        BlackBox {
            system: system.clone(),
            pattern,
            participants,
            messages: Vec::new(),
            delivered_at: Vec::new(),
            next_id: 0,
        }
    }

    /// The participant set of the instance.
    pub fn participants(&self) -> ProcessSet {
        self.participants
    }

    /// `A.multicast(m)` from `src` to `group` at time `now`. Ignored (and
    /// `None` returned) if the source is not a live participant.
    pub fn multicast(&mut self, src: ProcessId, group: GroupId, now: Time) -> Option<MessageId> {
        if !self.participants.contains(src) || self.pattern.is_crashed(src, now) {
            return None;
        }
        let id = MessageId(self.next_id);
        self.next_id += 1;
        self.messages.push((id, src, group, now));
        self.delivered_at.push(None);
        Some(id)
    }

    /// Advances the instance to time `now`: a pending message is delivered
    /// once every not-crashed member of its destination group is a live
    /// participant (the conservative gate).
    pub fn advance(&mut self, now: Time) {
        let crashed = self.pattern.faulty_at(now);
        for (i, (_, src, group, sent)) in self.messages.iter().enumerate() {
            if self.delivered_at[i].is_some() || *sent > now {
                continue;
            }
            // The source must have survived long enough to launch it — it
            // did (checked at multicast time).
            let _ = src;
            let needed = self.system.members(*group) - crashed;
            if needed.is_empty() {
                continue; // no live destination: nothing to deliver to
            }
            if needed.is_subset(self.participants) {
                self.delivered_at[i] = Some(now);
            }
        }
    }

    /// Whether `m` has been delivered (at the live participants of its
    /// destination group) by time `now`.
    pub fn delivered(&self, m: MessageId, now: Time) -> bool {
        self.messages
            .iter()
            .position(|(id, ..)| *id == m)
            .and_then(|i| self.delivered_at[i])
            .is_some_and(|t| t <= now)
    }

    /// Whether any message of the instance has been delivered by `now`
    /// (the `A_{g,x}.deliver(-)` trigger of Algorithm 2, line 8).
    pub fn any_delivered(&self, now: Time) -> bool {
        self.delivered_at
            .iter()
            .any(|d| d.is_some_and(|t| t <= now))
    }

    /// The payload-source of the first delivered message, if any — the
    /// "identity" Algorithm 2 multicasts.
    pub fn first_delivered_identity(&self, now: Time) -> Option<ProcessId> {
        self.messages
            .iter()
            .zip(&self.delivered_at)
            .filter(|(_, d)| d.is_some_and(|t| t <= now))
            .min_by_key(|(_, d)| d.expect("filtered"))
            .map(|((_, src, _, _), _)| *src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gam_groups::topology;

    #[test]
    fn full_participation_delivers() {
        let gs = topology::two_overlapping(3, 1);
        let mut bb = BlackBox::new(
            &gs,
            FailurePattern::all_correct(gs.universe()),
            gs.members(GroupId(0)),
        );
        let m = bb.multicast(ProcessId(0), GroupId(0), Time(1)).unwrap();
        bb.advance(Time(2));
        assert!(bb.delivered(m, Time(2)));
        assert!(bb.any_delivered(Time(2)));
        assert_eq!(bb.first_delivered_identity(Time(2)), Some(ProcessId(0)));
    }

    #[test]
    fn partial_participation_blocks_until_crash() {
        // g = {p0,p1,p2}; participants {p0,p1}. Delivery blocked while p2 is
        // alive — a realistic A cannot rule out that p2 is merely slow.
        let gs = topology::two_overlapping(3, 1);
        let pattern = FailurePattern::from_crashes(gs.universe(), [(ProcessId(2), Time(10))]);
        let x = ProcessSet::from_iter([0u32, 1]);
        let mut bb = BlackBox::new(&gs, pattern, x);
        let m = bb.multicast(ProcessId(0), GroupId(0), Time(1)).unwrap();
        bb.advance(Time(5));
        assert!(!bb.delivered(m, Time(5)));
        // once p2 crashes, the run is indistinguishable from a crash of p2
        // at start: A must deliver to the remaining members.
        bb.advance(Time(10));
        assert!(bb.delivered(m, Time(10)));
    }

    #[test]
    fn non_participant_source_is_ignored() {
        let gs = topology::two_overlapping(3, 1);
        let mut bb = BlackBox::new(
            &gs,
            FailurePattern::all_correct(gs.universe()),
            ProcessSet::from_iter([1u32]),
        );
        assert!(bb.multicast(ProcessId(0), GroupId(0), Time(1)).is_none());
    }

    #[test]
    fn crashed_source_cannot_multicast() {
        let gs = topology::two_overlapping(3, 1);
        let pattern = FailurePattern::from_crashes(gs.universe(), [(ProcessId(0), Time(0))]);
        let mut bb = BlackBox::new(&gs, pattern, gs.members(GroupId(0)));
        assert!(bb.multicast(ProcessId(0), GroupId(0), Time(1)).is_none());
    }

    #[test]
    fn delivery_time_is_monotone_queryable() {
        let gs = topology::two_overlapping(3, 1);
        let mut bb = BlackBox::new(
            &gs,
            FailurePattern::all_correct(gs.universe()),
            gs.members(GroupId(0)),
        );
        let m = bb.multicast(ProcessId(1), GroupId(0), Time(3)).unwrap();
        bb.advance(Time(4));
        assert!(!bb.delivered(m, Time(2)));
        assert!(bb.delivered(m, Time(4)));
        assert!(bb.delivered(m, Time(9)));
    }
}
