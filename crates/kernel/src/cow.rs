//! Chunked copy-on-write vector storage — the substrate of O(delta)
//! snapshots.
//!
//! A [`CowVec`] stores its elements in fixed-capacity chunks, each behind
//! an [`Arc`]. `Clone` is *seal-and-share*: it bumps one refcount per chunk
//! (O(len / chunk_capacity) pointer copies, no element copies), which is
//! exactly what a snapshot needs. Mutation goes through
//! [`Arc::make_mut`], which copies a chunk only when it is shared — so
//! after a snapshot, continuing execution pays O(touched chunks), and with
//! no snapshot alive (refcount 1 everywhere) the hot loop runs on the
//! cheap uncontended path.
//!
//! The element-level API mirrors the subset of `Vec` the protocol arenas
//! use: `push`/`pop`/`resize`, `Index`/`IndexMut`, in-order iteration.
//! Logical contents are what they would be in a plain `Vec`; chunking is
//! invisible to every reader, so digest walks over a `CowVec` are
//! byte-identical to the flat-storage walks they replace.
//!
//! Cost accounting for the explorer's snapshot-bytes metric:
//! [`CowVec::shallow_bytes`] is what a `Clone` actually copies (chunk
//! pointers), [`CowVec::deep_bytes`] is what a deep element copy would
//! have copied — the ratio is the explorer's headline saving.

use std::ops::{Index, IndexMut};
use std::sync::Arc;

/// A chunked vector whose `Clone` shares (seals) chunk storage and whose
/// writes copy-on-write only the touched chunk. See the module docs.
#[derive(Debug, Clone)]
pub struct CowVec<T> {
    /// Every chunk except the last holds exactly `1 << shift` elements;
    /// the last holds the remainder. The sum of chunk lengths is `len`.
    chunks: Vec<Arc<Vec<T>>>,
    len: usize,
    /// Chunk capacity is the power of two `1 << shift`.
    shift: u32,
}

impl<T> Default for CowVec<T> {
    /// An empty `CowVec` with the default chunk capacity (32).
    fn default() -> Self {
        CowVec::new(32)
    }
}

impl<T> CowVec<T> {
    /// An empty `CowVec` whose chunks hold `chunk_capacity` elements
    /// (rounded up to a power of two, minimum 2).
    pub fn new(chunk_capacity: usize) -> Self {
        let cap = chunk_capacity.next_power_of_two().max(2);
        CowVec {
            chunks: Vec::new(),
            len: 0,
            shift: cap.trailing_zeros(),
        }
    }

    /// Number of logical elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no elements are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The fixed chunk capacity.
    fn cap(&self) -> usize {
        1usize << self.shift
    }

    /// The element at `i`, or `None` past the end.
    pub fn get(&self, i: usize) -> Option<&T> {
        if i >= self.len {
            return None;
        }
        Some(&self.chunks[i >> self.shift][i & (self.cap() - 1)])
    }

    /// The last element, or `None` when empty.
    pub fn last(&self) -> Option<&T> {
        if self.len == 0 {
            None
        } else {
            self.get(self.len - 1)
        }
    }

    /// In-order iteration over the logical contents.
    pub fn iter(&self) -> impl Iterator<Item = &T> + '_ {
        self.chunks.iter().flat_map(|c| c.iter())
    }

    /// *Heap* bytes a `Clone` of this value copies: the chunk pointer
    /// table — never the elements, and not the inline struct header,
    /// which the owner's own `size_of` already accounts for and which any
    /// snapshot representation must hold either way.
    pub fn shallow_bytes(&self) -> u64 {
        (self.chunks.len() * std::mem::size_of::<Arc<Vec<T>>>()) as u64
    }

    /// Bytes a *deep* element copy would have copied (flat element
    /// payload; callers add per-element heap internals where they exist).
    pub fn deep_bytes(&self) -> u64 {
        (self.len * std::mem::size_of::<T>()) as u64
    }
}

impl<T: Clone> CowVec<T> {
    /// Builds from `contents`, sealing full chunks as it goes.
    pub fn from_vec(chunk_capacity: usize, contents: Vec<T>) -> Self {
        let mut v = CowVec::new(chunk_capacity);
        for item in contents {
            v.push(item);
        }
        v
    }

    /// Appends an element, opening a fresh chunk when the last is full.
    pub fn push(&mut self, value: T) {
        if self.len == self.chunks.len() << self.shift {
            self.chunks.push(Arc::new(Vec::with_capacity(self.cap())));
        }
        let last = self.chunks.last_mut().expect("chunk just ensured");
        Arc::make_mut(last).push(value);
        self.len += 1;
    }

    /// Removes and returns the last element.
    pub fn pop(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        let last = self.chunks.last_mut().expect("non-empty");
        let value = Arc::make_mut(last).pop();
        if last.is_empty() {
            self.chunks.pop();
        }
        self.len -= 1;
        value
    }

    /// Grows (with clones of `value`) or shrinks to `new_len` — the same
    /// contract as `Vec::resize`.
    pub fn resize(&mut self, new_len: usize, value: T) {
        while self.len > new_len {
            self.pop();
        }
        while self.len < new_len {
            self.push(value.clone());
        }
    }

    /// Appends every element of `iter` in order.
    pub fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for item in iter {
            self.push(item);
        }
    }
}

impl<T> Index<usize> for CowVec<T> {
    type Output = T;
    fn index(&self, i: usize) -> &T {
        &self.chunks[i >> self.shift][i & (self.cap() - 1)]
    }
}

impl<T: Clone> IndexMut<usize> for CowVec<T> {
    fn index_mut(&mut self, i: usize) -> &mut T {
        let cap = self.cap();
        &mut Arc::make_mut(&mut self.chunks[i >> self.shift])[i & (cap - 1)]
    }
}

impl<'a, T> IntoIterator for &'a CowVec<T> {
    type Item = &'a T;
    type IntoIter = std::iter::FlatMap<
        std::slice::Iter<'a, Arc<Vec<T>>>,
        std::slice::Iter<'a, T>,
        fn(&'a Arc<Vec<T>>) -> std::slice::Iter<'a, T>,
    >;
    fn into_iter(self) -> Self::IntoIter {
        self.chunks.iter().flat_map(|c| c.iter())
    }
}

impl<T: PartialEq> PartialEq for CowVec<T> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl<T: Eq> Eq for CowVec<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_index_iter_match_vec_semantics() {
        let mut c = CowVec::new(4);
        let mut v = Vec::new();
        for i in 0..37u64 {
            c.push(i * 3);
            v.push(i * 3);
        }
        assert_eq!(c.len(), v.len());
        for i in 0..v.len() {
            assert_eq!(c[i], v[i]);
            assert_eq!(c.get(i), Some(&v[i]));
        }
        assert_eq!(c.get(v.len()), None);
        assert_eq!(c.iter().copied().collect::<Vec<_>>(), v);
        assert_eq!(c.last(), v.last());
    }

    #[test]
    fn clone_shares_and_writes_copy_only_the_touched_chunk() {
        let mut c = CowVec::from_vec(4, (0..16u64).collect());
        let snap = c.clone();
        // Writing through the clone leaves the original untouched…
        c[5] = 999;
        c.push(16);
        assert_eq!(snap[5], 5);
        assert_eq!(snap.len(), 16);
        assert_eq!(c[5], 999);
        assert_eq!(c.len(), 17);
        // …and restoring (= cloning the snapshot back) rewinds exactly.
        c = snap.clone();
        assert_eq!(c.len(), 16);
        assert_eq!(c[5], 5);
    }

    #[test]
    fn resize_grows_and_shrinks_across_chunk_boundaries() {
        let mut c = CowVec::new(4);
        c.resize(11, 7u32);
        assert_eq!(c.len(), 11);
        assert!(c.iter().all(|&x| x == 7));
        c.resize(3, 0);
        assert_eq!(c.len(), 3);
        c.resize(9, 1);
        assert_eq!(
            c.iter().copied().collect::<Vec<_>>(),
            vec![7, 7, 7, 1, 1, 1, 1, 1, 1]
        );
    }

    #[test]
    fn pop_returns_in_reverse_push_order() {
        let mut c = CowVec::from_vec(2, vec![1, 2, 3]);
        assert_eq!(c.pop(), Some(3));
        assert_eq!(c.pop(), Some(2));
        assert_eq!(c.pop(), Some(1));
        assert_eq!(c.pop(), None);
        assert!(c.is_empty());
    }

    #[test]
    fn shallow_bytes_stay_flat_as_contents_grow() {
        let mut c: CowVec<u64> = CowVec::new(32);
        c.resize(4096, 0);
        // 4096 u64s deep vs ~128 chunk pointers shallow.
        assert!(c.deep_bytes() >= 10 * c.shallow_bytes());
    }
}
