//! Process identities and sets of processes.
//!
//! The paper assumes a finite set of processes `P = {p_1, ..., p_n}`. We
//! represent a process by a small integer index ([`ProcessId`]) and a set of
//! processes by a 128-bit bitset ([`ProcessSet`]), which makes the
//! intersection-heavy group machinery (`g ∩ h`, quorum checks, family
//! faultiness) O(1).

use std::fmt;

/// Maximum number of processes supported by [`ProcessSet`].
pub const MAX_PROCESSES: usize = 128;

/// The identity of a process, an index in `0..MAX_PROCESSES`.
///
/// # Examples
///
/// ```
/// use gam_kernel::ProcessId;
/// let p = ProcessId(3);
/// assert_eq!(p.index(), 3);
/// assert_eq!(p.to_string(), "p3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcessId(pub u32);

impl ProcessId {
    /// Returns the index of this process as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u32> for ProcessId {
    fn from(v: u32) -> Self {
        ProcessId(v)
    }
}

impl From<usize> for ProcessId {
    fn from(v: usize) -> Self {
        assert!(v < MAX_PROCESSES, "process index {v} out of range");
        ProcessId(v as u32)
    }
}

/// A set of processes, represented as a 128-bit bitset.
///
/// Implements the set algebra used throughout the paper: union (`|`),
/// intersection (`&`), difference (`-`), symmetric difference (`^`) and the
/// subset/superset predicates.
///
/// # Examples
///
/// ```
/// use gam_kernel::{ProcessId, ProcessSet};
/// let g: ProcessSet = [0u32, 1, 2].into_iter().collect();
/// let h: ProcessSet = [2u32, 3].into_iter().collect();
/// assert_eq!(g & h, ProcessSet::from_iter([2u32]));
/// assert!(g.contains(ProcessId(1)));
/// assert_eq!((g | h).len(), 4);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcessSet(pub u128);

impl ProcessSet {
    /// The empty set.
    pub const EMPTY: ProcessSet = ProcessSet(0);

    /// Creates an empty set.
    pub fn new() -> Self {
        ProcessSet(0)
    }

    /// Creates the set `{p_0, ..., p_{n-1}}` of the first `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_PROCESSES`.
    pub fn first_n(n: usize) -> Self {
        assert!(n <= MAX_PROCESSES, "at most {MAX_PROCESSES} processes");
        if n == MAX_PROCESSES {
            ProcessSet(u128::MAX)
        } else {
            ProcessSet((1u128 << n) - 1)
        }
    }

    /// Creates a singleton set.
    pub fn singleton(p: ProcessId) -> Self {
        ProcessSet(1u128 << p.index())
    }

    /// Returns `true` if the set contains `p`.
    #[inline]
    pub fn contains(self, p: ProcessId) -> bool {
        self.0 & (1u128 << p.index()) != 0
    }

    /// Inserts `p`, returning `true` if it was not already present.
    pub fn insert(&mut self, p: ProcessId) -> bool {
        let had = self.contains(p);
        self.0 |= 1u128 << p.index();
        !had
    }

    /// Removes `p`, returning `true` if it was present.
    pub fn remove(&mut self, p: ProcessId) -> bool {
        let had = self.contains(p);
        self.0 &= !(1u128 << p.index());
        had
    }

    /// Number of processes in the set.
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Returns `true` if the set is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Returns `true` if `self ⊆ other`.
    #[inline]
    pub fn is_subset(self, other: ProcessSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Returns `true` if `self ⊇ other`.
    #[inline]
    pub fn is_superset(self, other: ProcessSet) -> bool {
        other.is_subset(self)
    }

    /// Returns `true` if the two sets intersect (`self ∩ other ≠ ∅`).
    #[inline]
    pub fn intersects(self, other: ProcessSet) -> bool {
        self.0 & other.0 != 0
    }

    /// The minimum process in the set, if any.
    pub fn min(self) -> Option<ProcessId> {
        if self.is_empty() {
            None
        } else {
            Some(ProcessId(self.0.trailing_zeros()))
        }
    }

    /// The maximum process in the set, if any.
    pub fn max(self) -> Option<ProcessId> {
        if self.is_empty() {
            None
        } else {
            Some(ProcessId(127 - self.0.leading_zeros()))
        }
    }

    /// Iterates over the processes in ascending order.
    pub fn iter(self) -> Iter {
        Iter(self.0)
    }
}

impl fmt::Debug for ProcessSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for ProcessSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Iterator over the processes of a [`ProcessSet`] in ascending order.
#[derive(Debug, Clone)]
pub struct Iter(u128);

impl Iterator for Iter {
    type Item = ProcessId;

    fn next(&mut self) -> Option<ProcessId> {
        if self.0 == 0 {
            None
        } else {
            let idx = self.0.trailing_zeros();
            self.0 &= self.0 - 1;
            Some(ProcessId(idx))
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Iter {}

impl IntoIterator for ProcessSet {
    type Item = ProcessId;
    type IntoIter = Iter;

    fn into_iter(self) -> Iter {
        self.iter()
    }
}

impl FromIterator<ProcessId> for ProcessSet {
    fn from_iter<I: IntoIterator<Item = ProcessId>>(iter: I) -> Self {
        let mut s = ProcessSet::new();
        for p in iter {
            s.insert(p);
        }
        s
    }
}

impl FromIterator<u32> for ProcessSet {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        iter.into_iter().map(ProcessId).collect()
    }
}

impl FromIterator<usize> for ProcessSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        iter.into_iter().map(ProcessId::from).collect()
    }
}

impl Extend<ProcessId> for ProcessSet {
    fn extend<I: IntoIterator<Item = ProcessId>>(&mut self, iter: I) {
        for p in iter {
            self.insert(p);
        }
    }
}

impl std::ops::BitOr for ProcessSet {
    type Output = ProcessSet;
    fn bitor(self, rhs: ProcessSet) -> ProcessSet {
        ProcessSet(self.0 | rhs.0)
    }
}

impl std::ops::BitOrAssign for ProcessSet {
    fn bitor_assign(&mut self, rhs: ProcessSet) {
        self.0 |= rhs.0;
    }
}

impl std::ops::BitAnd for ProcessSet {
    type Output = ProcessSet;
    fn bitand(self, rhs: ProcessSet) -> ProcessSet {
        ProcessSet(self.0 & rhs.0)
    }
}

impl std::ops::BitAndAssign for ProcessSet {
    fn bitand_assign(&mut self, rhs: ProcessSet) {
        self.0 &= rhs.0;
    }
}

impl std::ops::BitXor for ProcessSet {
    type Output = ProcessSet;
    fn bitxor(self, rhs: ProcessSet) -> ProcessSet {
        ProcessSet(self.0 ^ rhs.0)
    }
}

impl std::ops::Sub for ProcessSet {
    type Output = ProcessSet;
    fn sub(self, rhs: ProcessSet) -> ProcessSet {
        ProcessSet(self.0 & !rhs.0)
    }
}

impl std::ops::SubAssign for ProcessSet {
    fn sub_assign(&mut self, rhs: ProcessSet) {
        self.0 &= !rhs.0;
    }
}

impl From<ProcessId> for ProcessSet {
    fn from(p: ProcessId) -> Self {
        ProcessSet::singleton(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_contains_only_itself() {
        let s = ProcessSet::singleton(ProcessId(5));
        assert!(s.contains(ProcessId(5)));
        assert!(!s.contains(ProcessId(4)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn first_n_has_n_elements() {
        for n in [0usize, 1, 5, 64, 127, 128] {
            let s = ProcessSet::first_n(n);
            assert_eq!(s.len(), n);
            if n > 0 {
                assert!(s.contains(ProcessId(0)));
                assert!(s.contains(ProcessId((n - 1) as u32)));
            }
            if n < MAX_PROCESSES {
                assert!(!s.contains(ProcessId(n as u32)));
            }
        }
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn first_n_rejects_oversize() {
        let _ = ProcessSet::first_n(129);
    }

    #[test]
    fn set_algebra() {
        let g: ProcessSet = [0u32, 1, 2].into_iter().collect();
        let h: ProcessSet = [2u32, 3, 4].into_iter().collect();
        assert_eq!(g & h, ProcessSet::from_iter([2u32]));
        assert_eq!(g | h, ProcessSet::first_n(5));
        assert_eq!(g - h, ProcessSet::from_iter([0u32, 1]));
        assert_eq!(g ^ h, ProcessSet::from_iter([0u32, 1, 3, 4]));
        assert!(g.intersects(h));
        assert!(!(g - h).intersects(h));
    }

    #[test]
    fn subset_superset() {
        let g: ProcessSet = [0u32, 1, 2].into_iter().collect();
        let h: ProcessSet = [1u32, 2].into_iter().collect();
        assert!(h.is_subset(g));
        assert!(g.is_superset(h));
        assert!(!g.is_subset(h));
        assert!(ProcessSet::EMPTY.is_subset(h));
    }

    #[test]
    fn iteration_is_ascending() {
        let s: ProcessSet = [9u32, 3, 127, 0].into_iter().collect();
        let v: Vec<u32> = s.iter().map(|p| p.0).collect();
        assert_eq!(v, vec![0, 3, 9, 127]);
        assert_eq!(s.iter().len(), 4);
    }

    #[test]
    fn min_max() {
        let s: ProcessSet = [9u32, 3, 127].into_iter().collect();
        assert_eq!(s.min(), Some(ProcessId(3)));
        assert_eq!(s.max(), Some(ProcessId(127)));
        assert_eq!(ProcessSet::EMPTY.min(), None);
        assert_eq!(ProcessSet::EMPTY.max(), None);
    }

    #[test]
    fn insert_remove() {
        let mut s = ProcessSet::new();
        assert!(s.insert(ProcessId(7)));
        assert!(!s.insert(ProcessId(7)));
        assert!(s.remove(ProcessId(7)));
        assert!(!s.remove(ProcessId(7)));
        assert!(s.is_empty());
    }

    #[test]
    fn display_formats() {
        let s: ProcessSet = [1u32, 2].into_iter().collect();
        assert_eq!(format!("{s}"), "{p1,p2}");
        assert_eq!(format!("{s:?}"), "{p1,p2}");
        assert_eq!(format!("{:?}", ProcessSet::EMPTY), "{}");
    }
}
