//! Process identities and sets of processes.
//!
//! The paper assumes a finite set of processes `P = {p_1, ..., p_n}`. We
//! represent a process by a small integer index ([`ProcessId`]) and a set of
//! processes by a fixed-width bitset ([`ProcessSet`]), which makes the
//! intersection-heavy group machinery (`g ∩ h`, quorum checks, family
//! faultiness) a handful of word operations.

use std::fmt;

/// Number of 64-bit words backing a [`ProcessSet`].
const WORDS: usize = 8;

/// Maximum number of processes supported by [`ProcessSet`].
pub const MAX_PROCESSES: usize = WORDS * 64;

/// The identity of a process, an index in `0..MAX_PROCESSES`.
///
/// # Examples
///
/// ```
/// use gam_kernel::ProcessId;
/// let p = ProcessId(3);
/// assert_eq!(p.index(), 3);
/// assert_eq!(p.to_string(), "p3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcessId(pub u32);

impl ProcessId {
    /// Returns the index of this process as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u32> for ProcessId {
    fn from(v: u32) -> Self {
        ProcessId(v)
    }
}

impl From<usize> for ProcessId {
    fn from(v: usize) -> Self {
        assert!(v < MAX_PROCESSES, "process index {v} out of range");
        ProcessId(v as u32)
    }
}

/// A set of processes, represented as a 512-bit bitset.
///
/// Implements the set algebra used throughout the paper: union (`|`),
/// intersection (`&`), difference (`-`), symmetric difference (`^`) and the
/// subset/superset predicates. The total order compares sets as the numbers
/// their bit patterns encode (word 0 holds the lowest process indices), so
/// ordered collections keyed by sets iterate deterministically regardless of
/// the backing width.
///
/// # Examples
///
/// ```
/// use gam_kernel::{ProcessId, ProcessSet};
/// let g: ProcessSet = [0u32, 1, 2].into_iter().collect();
/// let h: ProcessSet = [2u32, 3].into_iter().collect();
/// assert_eq!(g & h, ProcessSet::from_iter([2u32]));
/// assert!(g.contains(ProcessId(1)));
/// assert_eq!((g | h).len(), 4);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ProcessSet([u64; WORDS]);

impl ProcessSet {
    /// The empty set.
    pub const EMPTY: ProcessSet = ProcessSet([0; WORDS]);

    /// Creates an empty set.
    pub fn new() -> Self {
        ProcessSet::EMPTY
    }

    /// Creates the set `{p_0, ..., p_{n-1}}` of the first `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_PROCESSES`.
    pub fn first_n(n: usize) -> Self {
        assert!(n <= MAX_PROCESSES, "at most {MAX_PROCESSES} processes");
        let mut words = [0u64; WORDS];
        let (full, rest) = (n / 64, n % 64);
        words[..full].fill(u64::MAX);
        if rest > 0 {
            words[full] = (1u64 << rest) - 1;
        }
        ProcessSet(words)
    }

    /// Creates a singleton set.
    pub fn singleton(p: ProcessId) -> Self {
        let mut s = ProcessSet::EMPTY;
        s.insert(p);
        s
    }

    /// Returns `true` if the set contains `p`.
    #[inline]
    pub fn contains(self, p: ProcessId) -> bool {
        self.0[p.index() / 64] & (1u64 << (p.index() % 64)) != 0
    }

    /// Inserts `p`, returning `true` if it was not already present.
    pub fn insert(&mut self, p: ProcessId) -> bool {
        let had = self.contains(p);
        self.0[p.index() / 64] |= 1u64 << (p.index() % 64);
        !had
    }

    /// Removes `p`, returning `true` if it was present.
    pub fn remove(&mut self, p: ProcessId) -> bool {
        let had = self.contains(p);
        self.0[p.index() / 64] &= !(1u64 << (p.index() % 64));
        had
    }

    /// Number of processes in the set.
    #[inline]
    pub fn len(self) -> usize {
        self.0.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if the set is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == [0; WORDS]
    }

    /// Returns `true` if `self ⊆ other`.
    #[inline]
    pub fn is_subset(self, other: ProcessSet) -> bool {
        (0..WORDS).all(|i| self.0[i] & !other.0[i] == 0)
    }

    /// Returns `true` if `self ⊇ other`.
    #[inline]
    pub fn is_superset(self, other: ProcessSet) -> bool {
        other.is_subset(self)
    }

    /// Returns `true` if the two sets intersect (`self ∩ other ≠ ∅`).
    #[inline]
    pub fn intersects(self, other: ProcessSet) -> bool {
        (0..WORDS).any(|i| self.0[i] & other.0[i] != 0)
    }

    /// The minimum process in the set, if any.
    pub fn min(self) -> Option<ProcessId> {
        self.0
            .iter()
            .enumerate()
            .find(|(_, w)| **w != 0)
            .map(|(i, w)| ProcessId((i * 64) as u32 + w.trailing_zeros()))
    }

    /// The maximum process in the set, if any.
    pub fn max(self) -> Option<ProcessId> {
        self.0
            .iter()
            .enumerate()
            .rev()
            .find(|(_, w)| **w != 0)
            .map(|(i, w)| ProcessId((i * 64) as u32 + 63 - w.leading_zeros()))
    }

    /// Iterates over the processes in ascending order.
    pub fn iter(self) -> Iter {
        Iter {
            words: self.0,
            word: 0,
        }
    }
}

impl PartialOrd for ProcessSet {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ProcessSet {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Numeric order of the encoded bit pattern: high words first.
        self.0.iter().rev().cmp(other.0.iter().rev())
    }
}

impl fmt::Debug for ProcessSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for ProcessSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Iterator over the processes of a [`ProcessSet`] in ascending order.
#[derive(Debug, Clone)]
pub struct Iter {
    words: [u64; WORDS],
    word: usize,
}

impl Iterator for Iter {
    type Item = ProcessId;

    fn next(&mut self) -> Option<ProcessId> {
        while self.word < WORDS {
            let w = self.words[self.word];
            if w == 0 {
                self.word += 1;
                continue;
            }
            let idx = w.trailing_zeros();
            self.words[self.word] = w & (w - 1);
            return Some(ProcessId((self.word * 64) as u32 + idx));
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n: usize = self.words[self.word.min(WORDS)..]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum();
        (n, Some(n))
    }
}

impl ExactSizeIterator for Iter {}

impl IntoIterator for ProcessSet {
    type Item = ProcessId;
    type IntoIter = Iter;

    fn into_iter(self) -> Iter {
        self.iter()
    }
}

impl FromIterator<ProcessId> for ProcessSet {
    fn from_iter<I: IntoIterator<Item = ProcessId>>(iter: I) -> Self {
        let mut s = ProcessSet::new();
        for p in iter {
            s.insert(p);
        }
        s
    }
}

impl FromIterator<u32> for ProcessSet {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        iter.into_iter().map(ProcessId).collect()
    }
}

impl FromIterator<usize> for ProcessSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        iter.into_iter().map(ProcessId::from).collect()
    }
}

impl Extend<ProcessId> for ProcessSet {
    fn extend<I: IntoIterator<Item = ProcessId>>(&mut self, iter: I) {
        for p in iter {
            self.insert(p);
        }
    }
}

impl std::ops::BitOr for ProcessSet {
    type Output = ProcessSet;
    fn bitor(mut self, rhs: ProcessSet) -> ProcessSet {
        for i in 0..WORDS {
            self.0[i] |= rhs.0[i];
        }
        self
    }
}

impl std::ops::BitOrAssign for ProcessSet {
    fn bitor_assign(&mut self, rhs: ProcessSet) {
        *self = *self | rhs;
    }
}

impl std::ops::BitAnd for ProcessSet {
    type Output = ProcessSet;
    fn bitand(mut self, rhs: ProcessSet) -> ProcessSet {
        for i in 0..WORDS {
            self.0[i] &= rhs.0[i];
        }
        self
    }
}

impl std::ops::BitAndAssign for ProcessSet {
    fn bitand_assign(&mut self, rhs: ProcessSet) {
        *self = *self & rhs;
    }
}

impl std::ops::BitXor for ProcessSet {
    type Output = ProcessSet;
    fn bitxor(mut self, rhs: ProcessSet) -> ProcessSet {
        for i in 0..WORDS {
            self.0[i] ^= rhs.0[i];
        }
        self
    }
}

impl std::ops::Sub for ProcessSet {
    type Output = ProcessSet;
    fn sub(mut self, rhs: ProcessSet) -> ProcessSet {
        for i in 0..WORDS {
            self.0[i] &= !rhs.0[i];
        }
        self
    }
}

impl std::ops::SubAssign for ProcessSet {
    fn sub_assign(&mut self, rhs: ProcessSet) {
        *self = *self - rhs;
    }
}

impl From<ProcessId> for ProcessSet {
    fn from(p: ProcessId) -> Self {
        ProcessSet::singleton(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_contains_only_itself() {
        let s = ProcessSet::singleton(ProcessId(5));
        assert!(s.contains(ProcessId(5)));
        assert!(!s.contains(ProcessId(4)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn first_n_has_n_elements() {
        for n in [0usize, 1, 5, 64, 127, 128, 200, 511, 512] {
            let s = ProcessSet::first_n(n);
            assert_eq!(s.len(), n);
            if n > 0 {
                assert!(s.contains(ProcessId(0)));
                assert!(s.contains(ProcessId((n - 1) as u32)));
            }
            if n < MAX_PROCESSES {
                assert!(!s.contains(ProcessId(n as u32)));
            }
        }
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn first_n_rejects_oversize() {
        let _ = ProcessSet::first_n(MAX_PROCESSES + 1);
    }

    #[test]
    fn set_algebra() {
        let g: ProcessSet = [0u32, 1, 2].into_iter().collect();
        let h: ProcessSet = [2u32, 3, 4].into_iter().collect();
        assert_eq!(g & h, ProcessSet::from_iter([2u32]));
        assert_eq!(g | h, ProcessSet::first_n(5));
        assert_eq!(g - h, ProcessSet::from_iter([0u32, 1]));
        assert_eq!(g ^ h, ProcessSet::from_iter([0u32, 1, 3, 4]));
        assert!(g.intersects(h));
        assert!(!(g - h).intersects(h));
    }

    #[test]
    fn set_algebra_across_words() {
        let g: ProcessSet = [0u32, 70, 300, 511].into_iter().collect();
        let h: ProcessSet = [70u32, 300].into_iter().collect();
        assert_eq!(g & h, h);
        assert_eq!((g - h).len(), 2);
        assert_eq!((g | h).len(), 4);
        assert!(h.is_subset(g));
    }

    #[test]
    fn order_matches_numeric_encoding() {
        // Numeric bit-pattern order: {p64} > {p0..p63}, and within a word
        // the usual integer order.
        let low = ProcessSet::first_n(64);
        let high = ProcessSet::singleton(ProcessId(64));
        assert!(low < high);
        assert!(ProcessSet::singleton(ProcessId(1)) > ProcessSet::singleton(ProcessId(0)));
        assert!(ProcessSet::EMPTY < ProcessSet::singleton(ProcessId(0)));
    }

    #[test]
    fn subset_superset() {
        let g: ProcessSet = [0u32, 1, 2].into_iter().collect();
        let h: ProcessSet = [1u32, 2].into_iter().collect();
        assert!(h.is_subset(g));
        assert!(g.is_superset(h));
        assert!(!g.is_subset(h));
        assert!(ProcessSet::EMPTY.is_subset(h));
    }

    #[test]
    fn iteration_is_ascending() {
        let s: ProcessSet = [9u32, 3, 127, 0, 400].into_iter().collect();
        let v: Vec<u32> = s.iter().map(|p| p.0).collect();
        assert_eq!(v, vec![0, 3, 9, 127, 400]);
        assert_eq!(s.iter().len(), 5);
    }

    #[test]
    fn min_max() {
        let s: ProcessSet = [9u32, 3, 127, 509].into_iter().collect();
        assert_eq!(s.min(), Some(ProcessId(3)));
        assert_eq!(s.max(), Some(ProcessId(509)));
        assert_eq!(ProcessSet::EMPTY.min(), None);
        assert_eq!(ProcessSet::EMPTY.max(), None);
    }

    #[test]
    fn insert_remove() {
        let mut s = ProcessSet::new();
        assert!(s.insert(ProcessId(7)));
        assert!(!s.insert(ProcessId(7)));
        assert!(s.remove(ProcessId(7)));
        assert!(!s.remove(ProcessId(7)));
        assert!(s.is_empty());
    }

    #[test]
    fn display_formats() {
        let s: ProcessSet = [1u32, 2].into_iter().collect();
        assert_eq!(format!("{s}"), "{p1,p2}");
        assert_eq!(format!("{s:?}"), "{p1,p2}");
        assert_eq!(format!("{:?}", ProcessSet::EMPTY), "{}");
    }
}
