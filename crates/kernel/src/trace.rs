//! Run traces and per-process accounting.
//!
//! A run of an algorithm is a tuple `(F, H, I, S, T)`. The simulator records
//! the schedule `S` (who stepped, at which time, receiving what) and the
//! observable events emitted along the way, together with the per-process
//! step and message counters that the *minimality* (genuineness) property
//! quantifies over.

use crate::cow::CowVec;
use crate::message::MsgId;
use crate::process::{ProcessId, ProcessSet};
use crate::time::Time;

/// Chunk capacity of the sealed step/event logs: big enough that the
/// pointer table stays tiny, small enough that a post-snapshot append
/// copies little.
const LOG_CHUNK: usize = 64;

/// One recorded step of the schedule `S`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepRecord {
    /// When the step was taken (`T[i]`).
    pub time: Time,
    /// The stepping process.
    pub pid: ProcessId,
    /// The received message, or `None` for the null message `m_⊥`.
    pub received: Option<MsgId>,
}

/// An observable event emitted by a process at a given time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent<E> {
    /// When the event was emitted.
    pub time: Time,
    /// The emitting process.
    pub pid: ProcessId,
    /// The protocol-level event (e.g. a delivery).
    pub event: E,
}

/// The full record of a run: schedule, events and counters.
///
/// The step and event logs are append-only, so they live in sealed
/// [`CowVec`] chunks: cloning a `Trace` (as the DFS explorer's kernel
/// snapshots do) shares every sealed chunk and copies only the chunk
/// pointer table — O(len / chunk) instead of O(len).
#[derive(Debug, Clone)]
pub struct Trace<E> {
    steps: CowVec<StepRecord>,
    events: CowVec<TraceEvent<E>>,
    steps_per_process: Vec<u64>,
    sends_per_process: Vec<u64>,
    receives_per_process: Vec<u64>,
    record_schedule: bool,
}

impl<E> Trace<E> {
    /// Creates an empty trace for `n` processes.
    ///
    /// When `record_schedule` is false, individual [`StepRecord`]s are not
    /// retained (the counters still are), which keeps long runs cheap.
    pub fn new(n: usize, record_schedule: bool) -> Self {
        Trace {
            steps: CowVec::new(LOG_CHUNK),
            events: CowVec::new(LOG_CHUNK),
            steps_per_process: vec![0; n],
            sends_per_process: vec![0; n],
            receives_per_process: vec![0; n],
            record_schedule,
        }
    }

    pub(crate) fn record_step(&mut self, time: Time, pid: ProcessId, received: Option<MsgId>) {
        self.steps_per_process[pid.index()] += 1;
        if received.is_some() {
            self.receives_per_process[pid.index()] += 1;
        }
        if self.record_schedule {
            self.steps.push(StepRecord {
                time,
                pid,
                received,
            });
        }
    }

    pub(crate) fn record_send(&mut self, pid: ProcessId) {
        self.sends_per_process[pid.index()] += 1;
    }

    pub(crate) fn record_event(&mut self, time: Time, pid: ProcessId, event: E)
    where
        E: Clone,
    {
        self.events.push(TraceEvent { time, pid, event });
    }

    /// The recorded schedule (empty unless schedule recording was enabled).
    pub fn steps(&self) -> &CowVec<StepRecord> {
        &self.steps
    }

    /// All events emitted during the run, in emission order.
    pub fn events(&self) -> &CowVec<TraceEvent<E>> {
        &self.events
    }

    /// Events emitted by a given process, in order.
    pub fn events_of(&self, p: ProcessId) -> impl Iterator<Item = &TraceEvent<E>> {
        self.events.iter().filter(move |e| e.pid == p)
    }

    /// Number of steps taken by `p`.
    pub fn steps_of(&self, p: ProcessId) -> u64 {
        self.steps_per_process[p.index()]
    }

    /// Number of send operations performed by `p`.
    pub fn sends_of(&self, p: ProcessId) -> u64 {
        self.sends_per_process[p.index()]
    }

    /// Number of non-null messages received by `p`.
    pub fn receives_of(&self, p: ProcessId) -> u64 {
        self.receives_per_process[p.index()]
    }

    /// Returns `true` if `p` sent or received a (non-null) message — the
    /// activity that the minimality property of genuine atomic multicast
    /// forbids for non-addressed processes.
    pub fn communicated(&self, p: ProcessId) -> bool {
        self.sends_of(p) > 0 || self.receives_of(p) > 0
    }

    /// The set of processes that communicated during the run.
    pub fn communicating_processes(&self, universe: ProcessSet) -> ProcessSet {
        universe.iter().filter(|p| self.communicated(*p)).collect()
    }

    /// Total number of steps across all processes.
    pub fn total_steps(&self) -> u64 {
        self.steps_per_process.iter().sum()
    }

    /// Total number of send operations across all processes.
    pub fn total_sends(&self) -> u64 {
        self.sends_per_process.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut t: Trace<&'static str> = Trace::new(3, true);
        t.record_step(Time(1), ProcessId(0), None);
        t.record_step(Time(2), ProcessId(0), Some(MsgId(9)));
        t.record_send(ProcessId(0));
        t.record_event(Time(2), ProcessId(0), "deliver");
        assert_eq!(t.steps_of(ProcessId(0)), 2);
        assert_eq!(t.receives_of(ProcessId(0)), 1);
        assert_eq!(t.sends_of(ProcessId(0)), 1);
        assert!(t.communicated(ProcessId(0)));
        assert!(!t.communicated(ProcessId(1)));
        assert_eq!(t.total_steps(), 2);
        assert_eq!(t.steps().len(), 2);
        assert_eq!(t.events().len(), 1);
        assert_eq!(
            t.communicating_processes(ProcessSet::first_n(3)),
            ProcessSet::singleton(ProcessId(0))
        );
    }

    #[test]
    fn schedule_recording_can_be_disabled() {
        let mut t: Trace<()> = Trace::new(1, false);
        t.record_step(Time(1), ProcessId(0), None);
        assert!(t.steps().is_empty());
        assert_eq!(t.steps_of(ProcessId(0)), 1);
    }

    #[test]
    fn events_of_filters_by_process() {
        let mut t: Trace<u32> = Trace::new(2, false);
        t.record_event(Time(1), ProcessId(0), 1);
        t.record_event(Time(2), ProcessId(1), 2);
        t.record_event(Time(3), ProcessId(0), 3);
        let of0: Vec<u32> = t.events_of(ProcessId(0)).map(|e| e.event).collect();
        assert_eq!(of0, vec![1, 3]);
    }
}
