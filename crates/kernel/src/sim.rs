//! The deterministic discrete-event simulator.
//!
//! A [`Simulator`] drives one [`Automaton`](crate::Automaton) per process
//! against a [`FailurePattern`] and a failure-detector [`History`], recording
//! a [`Trace`]. Steps are scheduled by a [`Scheduler`] policy; crashes are
//! injected exactly at the times the pattern dictates; fairness (every
//! message addressed to a live process is eventually received) is guaranteed
//! by the built-in policies.
//!
//! Low-level control ([`Simulator::step_process`], [`Simulator::run_only`])
//! exposes the adversarial scheduling the necessity proofs of the paper
//! quantify over: running only a chosen subset of processes, choosing which
//! pending message a step receives, or forcing null-message steps.

use crate::automaton::{Automaton, History, StepCtx};
use crate::failure::FailurePattern;
use crate::message::{Envelope, MessageBuffer, MsgId};
use crate::process::{ProcessId, ProcessSet};
use crate::schedule::ScheduleSource;
use crate::time::Time;
use crate::trace::Trace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How the next step is chosen when running the simulator in a loop.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Scheduler {
    /// Cycle over processes in index order; each scheduled process receives
    /// its oldest pending message (FIFO), or takes a null step if it is
    /// active. Deterministic and fair.
    #[default]
    RoundRobin,
    /// Pick a random eligible process; it receives a uniformly random pending
    /// message, or (with probability `null_prob`) takes a null step. Fair
    /// with probability 1. Seeded — runs are replayable.
    Random {
        /// Probability that a step of an active process receives the null
        /// message even though messages are pending.
        null_prob: f64,
    },
}

/// Which message a manually scheduled step receives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Receive {
    /// The oldest pending message, or null if none.
    Oldest,
    /// The `k`-th oldest pending message (panics if out of range).
    Nth(usize),
    /// The null message `m_⊥`, regardless of pending messages.
    Null,
}

/// Why a run loop stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// No live process had a pending message or wanted a null step.
    Quiescent,
    /// The step budget was exhausted before quiescence.
    BudgetExhausted,
    /// The [`ScheduleSource`] declined to pick a step (its schedule or path
    /// was exhausted) while the system was still live.
    Stopped,
}

/// The simulator: automata + buffer + failure pattern + detector history.
///
/// `Clone` deep-copies the entire simulation state (automata, in-flight
/// messages, trace, scheduler cursor and RNG), so a clone restarted from a
/// checkpoint replays bit-for-bit — the [`ScheduleSource`]-driven explorer
/// relies on this for prefix-sharing DFS snapshots.
#[derive(Debug, Clone)]
pub struct Simulator<A: Automaton, H: History<Value = A::Fd>> {
    automata: Vec<A>,
    buffer: MessageBuffer<A::Msg>,
    pattern: FailurePattern,
    history: H,
    now: Time,
    crashed: ProcessSet,
    trace: Trace<A::Event>,
    rng: StdRng,
    rr_cursor: usize,
}

impl<A: Automaton, H: History<Value = A::Fd>> Simulator<A, H> {
    /// Creates a simulator over `automata` (one per process, by index) with
    /// the given failure pattern and detector history.
    ///
    /// # Panics
    ///
    /// Panics if the number of automata differs from the size of the
    /// pattern's universe, or the universe is not `{p_0..p_{n-1}}`.
    pub fn new(automata: Vec<A>, pattern: FailurePattern, history: H) -> Self {
        let n = automata.len();
        assert_eq!(
            pattern.universe(),
            ProcessSet::first_n(n),
            "universe must be the first {n} processes"
        );
        let mut sim = Simulator {
            automata,
            buffer: MessageBuffer::new(n),
            pattern,
            history,
            now: Time::ZERO,
            crashed: ProcessSet::EMPTY,
            trace: Trace::new(n, false),
            rng: StdRng::seed_from_u64(0),
            rr_cursor: 0,
        };
        sim.inject_crashes();
        sim
    }

    /// Seeds the random scheduler (default seed: 0).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rng = StdRng::seed_from_u64(seed);
        self
    }

    /// Enables recording of the full schedule in the trace.
    pub fn with_schedule_recording(mut self) -> Self {
        let n = self.automata.len();
        self.trace = Trace::new(n, true);
        self
    }

    /// The current global time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The set of all processes.
    pub fn universe(&self) -> ProcessSet {
        self.pattern.universe()
    }

    /// The processes alive (not yet crashed) at the current time.
    pub fn alive(&self) -> ProcessSet {
        self.universe() - self.crashed
    }

    /// The failure pattern driving the run.
    pub fn pattern(&self) -> &FailurePattern {
        &self.pattern
    }

    /// The run trace so far.
    pub fn trace(&self) -> &Trace<A::Event> {
        &self.trace
    }

    /// Read access to a process automaton (e.g. to inspect final state).
    pub fn automaton(&self, p: ProcessId) -> &A {
        &self.automata[p.index()]
    }

    /// Mutable access to a process automaton, for injecting protocol-level
    /// requests (e.g. "multicast this message") between steps.
    pub fn automaton_mut(&mut self, p: ProcessId) -> &mut A {
        &mut self.automata[p.index()]
    }

    /// Number of messages currently pending for `p`.
    pub fn pending(&self, p: ProcessId) -> usize {
        self.buffer.pending(p)
    }

    /// Total number of messages sent so far.
    pub fn total_messages(&self) -> u64 {
        self.buffer.total_sent()
    }

    fn inject_crashes(&mut self) {
        let newly = self.pattern.faulty_at(self.now) - self.crashed;
        for p in newly {
            self.crashed.insert(p);
            self.buffer.drop_for(p);
        }
    }

    fn eligible(&self, p: ProcessId) -> bool {
        !self.crashed.contains(p)
            && (self.buffer.pending(p) > 0 || self.automata[p.index()].is_active())
    }

    /// Executes one step of process `p`, receiving per `receive`.
    ///
    /// Returns the id of the received message, if any. Does nothing and
    /// returns `None` if `p` has already crashed.
    ///
    /// # Panics
    ///
    /// Panics if `Receive::Nth(k)` is out of range.
    pub fn step_process(&mut self, p: ProcessId, receive: Receive) -> Option<MsgId> {
        self.now = self.now.next();
        self.inject_crashes();
        if self.crashed.contains(p) {
            return None;
        }
        let input: Option<Envelope<A::Msg>> = match receive {
            Receive::Null => None,
            Receive::Oldest => self.buffer.receive_oldest(p),
            Receive::Nth(k) => Some(
                self.buffer
                    .receive_nth(p, k)
                    .expect("Receive::Nth out of range"),
            ),
        };
        let received_id = input.as_ref().map(|e| e.id);
        let fd = self.history.sample(p, self.now);
        let mut ctx = StepCtx::new(p, self.now);
        self.automata[p.index()].step(&mut ctx, input, &fd);
        self.trace.record_step(self.now, p, received_id);
        for event in ctx.events.drain(..) {
            self.trace.record_event(self.now, p, event);
        }
        for (dst, payload) in ctx.sends.drain(..) {
            self.trace.record_send(p);
            // Copies addressed to already-crashed processes are dead letters.
            let live_dst = dst - self.crashed;
            self.buffer.send(p, live_dst, self.now, payload);
        }
        received_id
    }

    /// Runs under `scheduler` until quiescence or `max_steps` elapsed,
    /// considering every process schedulable.
    pub fn run(&mut self, scheduler: Scheduler, max_steps: u64) -> RunOutcome {
        self.run_only(self.universe(), scheduler, max_steps)
    }

    /// Runs under `scheduler`, scheduling **only** the processes of `set`
    /// (the others take no step — the adversarial schedules of §5).
    pub fn run_only(
        &mut self,
        set: ProcessSet,
        scheduler: Scheduler,
        max_steps: u64,
    ) -> RunOutcome {
        let mut taken = 0u64;
        loop {
            if taken >= max_steps {
                return RunOutcome::BudgetExhausted;
            }
            let Some((p, receive)) = self.pick(set, scheduler) else {
                return RunOutcome::Quiescent;
            };
            self.step_process(p, receive);
            taken += 1;
        }
    }

    /// Runs until `pred` holds over the simulator, quiescence, or budget
    /// exhaustion. Returns `true` iff `pred` held.
    pub fn run_until<F>(
        &mut self,
        set: ProcessSet,
        scheduler: Scheduler,
        max_steps: u64,
        mut pred: F,
    ) -> bool
    where
        F: FnMut(&Self) -> bool,
    {
        let mut taken = 0u64;
        loop {
            if pred(self) {
                return true;
            }
            if taken >= max_steps {
                return false;
            }
            let Some((p, receive)) = self.pick(set, scheduler) else {
                return pred(self);
            };
            self.step_process(p, receive);
            taken += 1;
        }
    }

    fn pick(&mut self, set: ProcessSet, scheduler: Scheduler) -> Option<(ProcessId, Receive)> {
        // Crash injection may lag behind `now` if no step occurred; the next
        // step will inject. Eligibility is computed over current knowledge.
        let candidates: Vec<ProcessId> = set.iter().filter(|p| self.eligible(*p)).collect();
        if candidates.is_empty() {
            return None;
        }
        match scheduler {
            Scheduler::RoundRobin => {
                // Advance the cursor to the next eligible process.
                let n = self.automata.len();
                for off in 0..n {
                    let idx = (self.rr_cursor + off) % n;
                    let p = ProcessId(idx as u32);
                    if set.contains(p) && self.eligible(p) {
                        self.rr_cursor = (idx + 1) % n;
                        return Some((p, Receive::Oldest));
                    }
                }
                None
            }
            Scheduler::Random { null_prob } => {
                let p = candidates[self.rng.gen_range(0..candidates.len())];
                let pending = self.buffer.pending(p);
                let receive = if pending == 0
                    || (self.automata[p.index()].is_active() && self.rng.gen_bool(null_prob))
                {
                    Receive::Null
                } else {
                    Receive::Nth(self.rng.gen_range(0..pending))
                };
                Some((p, receive))
            }
        }
    }

    /// Replays a fixed schedule: executes each `(process, receive)` step in
    /// order. Crashed processes silently skip their steps (as in the
    /// model). The necessity arguments of §5 construct runs step-by-step;
    /// this is their programmatic form.
    pub fn run_schedule(&mut self, schedule: &[(ProcessId, Receive)]) {
        for (p, receive) in schedule {
            self.step_process(*p, *receive);
        }
    }

    /// The current choice space over `set`: each eligible process paired
    /// with its option arity, in ascending process order. Process `p` with
    /// `k` pending messages offers choices `0..k` (receive the `c`-th
    /// oldest) plus, when it is active, choice `k` (the null message).
    pub fn options_in(&self, set: ProcessSet) -> Vec<(ProcessId, usize)> {
        let mut out = Vec::new();
        self.options_into(set, &mut out);
        out
    }

    /// [`Simulator::options_in`], writing into a caller-provided buffer —
    /// the allocation-free form the hot step loop of `gam-engine` uses.
    pub fn options_into(&self, set: ProcessSet, out: &mut Vec<(ProcessId, usize)>) {
        out.clear();
        for p in set {
            if self.eligible(p) {
                let pending = self.buffer.pending(p);
                let null = usize::from(self.automata[p.index()].is_active());
                out.push((p, pending + null));
            }
        }
    }

    /// Returns `true` if no process of `set` is eligible to step: nothing is
    /// pending for any live process of `set` and none is active. For the
    /// message-passing substrate an empty choice space *is* quiescence — no
    /// step will ever become enabled again without outside intervention.
    pub fn is_quiescent_in(&self, set: ProcessSet) -> bool {
        set.iter().all(|p| !self.eligible(p))
    }

    /// The current choice space over the full universe
    /// (see [`Simulator::options_in`]).
    pub fn options(&self) -> Vec<(ProcessId, usize)> {
        self.options_in(self.universe())
    }

    /// Executes one step of `p` taking sub-choice `choice` of its current
    /// option space: `choice < pending` receives the `choice`-th oldest
    /// pending message, `choice >= pending` takes a null step.
    pub fn step_choice(&mut self, p: ProcessId, choice: usize) -> Option<MsgId> {
        let receive = if choice < self.buffer.pending(p) {
            Receive::Nth(choice)
        } else {
            Receive::Null
        };
        self.step_process(p, receive)
    }

    /// Runs with every scheduling decision delegated to `source`,
    /// scheduling only processes of `set`, until quiescence, budget
    /// exhaustion, or the source stopping.
    pub fn run_with_source<S: ScheduleSource>(
        &mut self,
        set: ProcessSet,
        source: &mut S,
        max_steps: u64,
    ) -> RunOutcome {
        let mut taken = 0u64;
        loop {
            if taken >= max_steps {
                return RunOutcome::BudgetExhausted;
            }
            let options = self.options_in(set);
            if options.is_empty() {
                return RunOutcome::Quiescent;
            }
            let Some((idx, choice)) = source.next_choice(&options) else {
                return RunOutcome::Stopped;
            };
            self.step_choice(options[idx].0, choice);
            taken += 1;
        }
    }

    /// Consumes the simulator, returning the trace.
    pub fn into_trace(self) -> Trace<A::Event> {
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::NoDetector;

    /// A ping automaton: process 0 starts by flooding a token; every process
    /// that first receives the token forwards it to everyone and delivers.
    #[derive(Debug)]
    struct Flood {
        start: bool,
        seen: bool,
        everyone: ProcessSet,
    }

    impl Automaton for Flood {
        type Msg = u8;
        type Fd = ();
        type Event = &'static str;

        fn step(
            &mut self,
            ctx: &mut StepCtx<u8, &'static str>,
            input: Option<Envelope<u8>>,
            _fd: &(),
        ) {
            if self.start {
                self.start = false;
                self.seen = true;
                ctx.send(self.everyone, 1);
                ctx.emit("got");
            } else if input.is_some() && !self.seen {
                self.seen = true;
                ctx.send(self.everyone, 1);
                ctx.emit("got");
            }
        }

        fn is_active(&self) -> bool {
            self.start
        }
    }

    fn flood_system(n: usize, starter: usize) -> Vec<Flood> {
        let everyone = ProcessSet::first_n(n);
        (0..n)
            .map(|i| Flood {
                start: i == starter,
                seen: false,
                everyone,
            })
            .collect()
    }

    #[test]
    fn simulator_is_send_for_threaded_exploration() {
        // The parallel explorer moves whole simulators onto worker threads;
        // a non-Send field sneaking into the state (Rc, raw pointers, …)
        // must fail here rather than in gam-explore's build.
        fn assert_send<T: Send>(_: &T) {}
        let pattern = FailurePattern::all_correct(ProcessSet::first_n(3));
        let sim = Simulator::new(flood_system(3, 0), pattern, NoDetector);
        assert_send(&sim);
    }

    #[test]
    fn round_robin_floods_everyone() {
        let n = 5;
        let pattern = FailurePattern::all_correct(ProcessSet::first_n(n));
        let mut sim = Simulator::new(flood_system(n, 0), pattern, NoDetector);
        let outcome = sim.run(Scheduler::RoundRobin, 10_000);
        assert_eq!(outcome, RunOutcome::Quiescent);
        for p in ProcessSet::first_n(n) {
            assert_eq!(sim.trace().events_of(p).count(), 1, "{p} delivered once");
        }
    }

    #[test]
    fn random_scheduler_is_fair_and_replayable() {
        let n = 6;
        let pattern = FailurePattern::all_correct(ProcessSet::first_n(n));
        let run = |seed| {
            let mut sim =
                Simulator::new(flood_system(n, 2), pattern.clone(), NoDetector).with_seed(seed);
            let outcome = sim.run(Scheduler::Random { null_prob: 0.1 }, 100_000);
            assert_eq!(outcome, RunOutcome::Quiescent);
            sim.trace().total_steps()
        };
        assert_eq!(run(42), run(42), "same seed, same run");
        for p in ProcessSet::first_n(n) {
            // all processes deliver under the random scheduler too
            let mut sim =
                Simulator::new(flood_system(n, 2), pattern.clone(), NoDetector).with_seed(7);
            sim.run(Scheduler::Random { null_prob: 0.2 }, 100_000);
            assert_eq!(sim.trace().events_of(p).count(), 1);
        }
    }

    #[test]
    fn crashed_process_takes_no_step_and_receives_nothing() {
        let n = 3;
        let pattern = FailurePattern::from_crashes(
            ProcessSet::first_n(n),
            [(ProcessId(2), Time(0))], // p2 is initially dead
        );
        let mut sim = Simulator::new(flood_system(n, 0), pattern, NoDetector);
        sim.run(Scheduler::RoundRobin, 10_000);
        assert_eq!(sim.trace().steps_of(ProcessId(2)), 0);
        assert_eq!(sim.trace().events_of(ProcessId(2)).count(), 0);
        // the others still deliver
        assert_eq!(sim.trace().events_of(ProcessId(0)).count(), 1);
        assert_eq!(sim.trace().events_of(ProcessId(1)).count(), 1);
    }

    #[test]
    fn run_only_restricts_steps_to_subset() {
        let n = 4;
        let pattern = FailurePattern::all_correct(ProcessSet::first_n(n));
        let mut sim = Simulator::new(flood_system(n, 0), pattern, NoDetector);
        let subset = ProcessSet::from_iter([0u32, 1]);
        sim.run_only(subset, Scheduler::RoundRobin, 10_000);
        assert!(sim.trace().steps_of(ProcessId(2)) == 0);
        assert!(sim.trace().steps_of(ProcessId(3)) == 0);
        // p0 and p1 delivered; p2, p3 have the token pending but never step
        assert_eq!(sim.trace().events_of(ProcessId(0)).count(), 1);
        assert_eq!(sim.trace().events_of(ProcessId(1)).count(), 1);
        assert!(sim.pending(ProcessId(2)) > 0);
    }

    #[test]
    fn manual_stepping_and_receive_choices() {
        let n = 2;
        let pattern = FailurePattern::all_correct(ProcessSet::first_n(n));
        let mut sim =
            Simulator::new(flood_system(n, 0), pattern, NoDetector).with_schedule_recording();
        // p0 spontaneous step sends to everyone
        let got = sim.step_process(ProcessId(0), Receive::Null);
        assert_eq!(got, None);
        assert_eq!(sim.pending(ProcessId(1)), 1);
        // p1 receives the oldest message
        let got = sim.step_process(ProcessId(1), Receive::Oldest);
        assert!(got.is_some());
        assert_eq!(sim.trace().steps().len(), 2);
    }

    #[test]
    fn run_schedule_replays_exactly() {
        let n = 3;
        let pattern = FailurePattern::all_correct(ProcessSet::first_n(n));
        let mut sim =
            Simulator::new(flood_system(n, 0), pattern, NoDetector).with_schedule_recording();
        sim.run_schedule(&[
            (ProcessId(0), Receive::Null),   // p0 floods
            (ProcessId(1), Receive::Oldest), // p1 receives, refloods
            (ProcessId(2), Receive::Oldest), // p2 receives
        ]);
        assert_eq!(sim.trace().steps().len(), 3);
        assert_eq!(sim.trace().events().len(), 3);
        // crashed processes skip scheduled steps
        let pattern =
            FailurePattern::from_crashes(ProcessSet::first_n(n), [(ProcessId(1), Time(0))]);
        let mut sim = Simulator::new(flood_system(n, 0), pattern, NoDetector);
        sim.run_schedule(&[(ProcessId(1), Receive::Null)]);
        assert_eq!(sim.trace().steps_of(ProcessId(1)), 0);
    }

    #[test]
    fn run_until_predicate() {
        let n = 4;
        let pattern = FailurePattern::all_correct(ProcessSet::first_n(n));
        let mut sim = Simulator::new(flood_system(n, 0), pattern, NoDetector);
        let ok = sim.run_until(ProcessSet::first_n(n), Scheduler::RoundRobin, 10_000, |s| {
            s.trace().events().len() >= 2
        });
        assert!(ok);
        assert!(sim.trace().events().len() >= 2);
    }

    #[test]
    fn mid_run_crash_silences_process() {
        let n = 3;
        // p1 crashes at time 1: before it can ever step.
        let pattern =
            FailurePattern::from_crashes(ProcessSet::first_n(n), [(ProcessId(1), Time(1))]);
        let mut sim = Simulator::new(flood_system(n, 0), pattern, NoDetector);
        sim.run(Scheduler::RoundRobin, 10_000);
        assert_eq!(sim.trace().steps_of(ProcessId(1)), 0);
        assert_eq!(sim.trace().events_of(ProcessId(2)).count(), 1);
    }
}
