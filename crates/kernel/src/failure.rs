//! Failure patterns and environments.
//!
//! A failure pattern is a function `F : ℕ → 2^P` telling which processes have
//! crashed by each time, with `F(t) ⊆ F(t+1)` (crashes are permanent). An
//! environment `𝔈` is a set of failure patterns; it captures the number and
//! timing of failures that can occur.

use crate::process::{ProcessId, ProcessSet};
use crate::time::Time;
use std::collections::BTreeMap;
use std::fmt;

/// A failure pattern: for each process, the time at which it crashes (if it
/// ever does).
///
/// Supports the queries the paper uses: `F(t)` ([`FailurePattern::faulty_at`]),
/// `Faulty(F)` ([`FailurePattern::faulty`]) and `Correct(F)`
/// ([`FailurePattern::correct`]).
///
/// # Examples
///
/// ```
/// use gam_kernel::{FailurePattern, ProcessId, ProcessSet, Time};
/// let mut f = FailurePattern::all_correct(ProcessSet::first_n(3));
/// f.crash(ProcessId(1), Time(5));
/// assert!(f.faulty_at(Time(4)).is_empty());
/// assert!(f.faulty_at(Time(5)).contains(ProcessId(1)));
/// assert_eq!(f.correct(), ProcessSet::from_iter([0u32, 2]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailurePattern {
    universe: ProcessSet,
    crash_times: BTreeMap<ProcessId, Time>,
}

impl FailurePattern {
    /// The pattern over `universe` in which no process ever crashes.
    pub fn all_correct(universe: ProcessSet) -> Self {
        FailurePattern {
            universe,
            crash_times: BTreeMap::new(),
        }
    }

    /// Builds a pattern from `(process, crash time)` pairs over `universe`.
    ///
    /// # Panics
    ///
    /// Panics if a crashing process is outside `universe`.
    pub fn from_crashes<I>(universe: ProcessSet, crashes: I) -> Self
    where
        I: IntoIterator<Item = (ProcessId, Time)>,
    {
        let mut f = Self::all_correct(universe);
        for (p, t) in crashes {
            f.crash(p, t);
        }
        f
    }

    /// Schedules `p` to crash at time `t` (it takes no step at `t` or later).
    ///
    /// If `p` was already scheduled to crash, the earlier time wins — crashes
    /// are permanent.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside the universe of the pattern.
    pub fn crash(&mut self, p: ProcessId, t: Time) -> &mut Self {
        assert!(
            self.universe.contains(p),
            "{p} is not in the universe {:?}",
            self.universe
        );
        let entry = self.crash_times.entry(p).or_insert(t);
        if t < *entry {
            *entry = t;
        }
        self
    }

    /// The set of all processes of the system.
    pub fn universe(&self) -> ProcessSet {
        self.universe
    }

    /// `F(t)`: the processes that have crashed by time `t` (inclusive).
    pub fn faulty_at(&self, t: Time) -> ProcessSet {
        self.crash_times
            .iter()
            .filter(|(_, ct)| **ct <= t)
            .map(|(p, _)| *p)
            .collect()
    }

    /// `Faulty(F) = ∪_t F(t)`: the processes that eventually crash.
    pub fn faulty(&self) -> ProcessSet {
        self.crash_times.keys().copied().collect()
    }

    /// `Correct(F) = P \ Faulty(F)`.
    pub fn correct(&self) -> ProcessSet {
        self.universe - self.faulty()
    }

    /// Returns `true` if `p` never crashes.
    pub fn is_correct(&self, p: ProcessId) -> bool {
        self.universe.contains(p) && !self.crash_times.contains_key(&p)
    }

    /// Returns `true` if `p` has crashed by time `t`.
    pub fn is_crashed(&self, p: ProcessId, t: Time) -> bool {
        self.crash_times.get(&p).is_some_and(|ct| *ct <= t)
    }

    /// The crash time of `p`, if it ever crashes.
    pub fn crash_time(&self, p: ProcessId) -> Option<Time> {
        self.crash_times.get(&p).copied()
    }

    /// Returns `true` if every process of `set` eventually crashes
    /// (the paper writes "`set` is faulty").
    pub fn set_faulty(&self, set: ProcessSet) -> bool {
        set.is_subset(self.faulty())
    }

    /// Returns `true` if every process of `set` has crashed by time `t`
    /// ("`set` is faulty at `t`").
    pub fn set_faulty_at(&self, set: ProcessSet, t: Time) -> bool {
        set.is_subset(self.faulty_at(t))
    }

    /// The earliest time at which all of `set` has crashed, if ever.
    pub fn set_crash_time(&self, set: ProcessSet) -> Option<Time> {
        set.iter()
            .map(|p| self.crash_time(p))
            .collect::<Option<Vec<_>>>()
            .map(|v| v.into_iter().max().unwrap_or(Time::ZERO))
    }

    /// `F ∩ P`: the pattern restricted to the processes in `p_set`, used to
    /// define set-restricted failure detectors `D_P` (§3).
    pub fn restrict(&self, p_set: ProcessSet) -> FailurePattern {
        FailurePattern {
            universe: self.universe & p_set,
            crash_times: self
                .crash_times
                .iter()
                .filter(|(p, _)| p_set.contains(**p))
                .map(|(p, t)| (*p, *t))
                .collect(),
        }
    }

    /// The §5.2 closure: the variant `F'` of `self` identical before `t` with
    /// `set` additionally crashed from `t` on. The environments we target
    /// satisfy that if a process may fail, it may fail at any time; this
    /// constructs the corresponding pattern.
    pub fn with_crash_from(&self, set: ProcessSet, t: Time) -> FailurePattern {
        let mut f = self.clone();
        for p in set {
            f.crash(p, t);
        }
        f
    }
}

impl fmt::Display for FailurePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F[")?;
        for (i, (p, t)) in self.crash_times.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}@{t}")?;
        }
        write!(f, "]")
    }
}

/// An environment `𝔈`: which failure patterns may occur.
///
/// We describe environments intensionally by (i) the universe, (ii) the set of
/// failure-prone processes, and (iii) an optional bound on the number of
/// simultaneous failures. This covers every environment used in the paper:
/// the wait-free environment `𝔈*` (everyone failure-prone, no bound), majority
/// environments, and environments where specific intersections are reliable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Environment {
    universe: ProcessSet,
    failure_prone: ProcessSet,
    max_failures: Option<usize>,
}

impl Environment {
    /// The wait-free environment `𝔈*` over `universe`: any subset of processes
    /// may crash at any time.
    pub fn wait_free(universe: ProcessSet) -> Self {
        Environment {
            universe,
            failure_prone: universe,
            max_failures: None,
        }
    }

    /// An environment where only `failure_prone ⊆ universe` may crash.
    ///
    /// # Panics
    ///
    /// Panics if `failure_prone ⊄ universe`.
    pub fn with_failure_prone(universe: ProcessSet, failure_prone: ProcessSet) -> Self {
        assert!(failure_prone.is_subset(universe));
        Environment {
            universe,
            failure_prone,
            max_failures: None,
        }
    }

    /// Restricts the environment to patterns with at most `k` failures.
    pub fn with_max_failures(mut self, k: usize) -> Self {
        self.max_failures = Some(k);
        self
    }

    /// The set of all processes.
    pub fn universe(&self) -> ProcessSet {
        self.universe
    }

    /// The failure-prone processes of the environment.
    pub fn failure_prone_set(&self) -> ProcessSet {
        self.failure_prone
    }

    /// Returns `true` if `p` is failure-prone in the environment
    /// (for some pattern `F ∈ 𝔈`, `p ∈ Faulty(F)`).
    pub fn is_failure_prone(&self, p: ProcessId) -> bool {
        self.failure_prone.contains(p) && self.max_failures != Some(0)
    }

    /// Returns `true` if all of `set` may crash in a single pattern of the
    /// environment ("`set` is failure-prone", §5.2).
    pub fn set_failure_prone(&self, set: ProcessSet) -> bool {
        set.is_subset(self.failure_prone) && self.max_failures.is_none_or(|k| set.len() <= k)
    }

    /// Environment membership: `F ∈ 𝔈`.
    pub fn contains(&self, f: &FailurePattern) -> bool {
        f.universe() == self.universe
            && f.faulty().is_subset(self.failure_prone)
            && self.max_failures.is_none_or(|k| f.faulty().len() <= k)
    }

    /// Enumerates representative patterns of the environment up to `max_set`
    /// crashed processes, each crashing at time `crash_at`. This provides the
    /// finite pattern suites the experiments sweep over.
    pub fn enumerate_patterns(&self, max_set: usize, crash_at: Time) -> Vec<FailurePattern> {
        let prone: Vec<ProcessId> = self.failure_prone.iter().collect();
        let cap = self.max_failures.unwrap_or(usize::MAX).min(max_set);
        let mut out = vec![FailurePattern::all_correct(self.universe)];
        // Enumerate subsets of failure-prone processes of size <= cap.
        let n = prone.len();
        for mask in 1u64..(1u64 << n.min(20)) {
            if (mask.count_ones() as usize) > cap {
                continue;
            }
            let mut f = FailurePattern::all_correct(self.universe);
            for (i, p) in prone.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    f.crash(*p, crash_at);
                }
            }
            out.push(f);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn universe() -> ProcessSet {
        ProcessSet::first_n(5)
    }

    #[test]
    fn crashes_are_monotone() {
        let mut f = FailurePattern::all_correct(universe());
        f.crash(ProcessId(2), Time(10));
        f.crash(ProcessId(2), Time(3)); // earlier wins
        assert_eq!(f.crash_time(ProcessId(2)), Some(Time(3)));
        f.crash(ProcessId(2), Time(99)); // later ignored
        assert_eq!(f.crash_time(ProcessId(2)), Some(Time(3)));
        // F(t) ⊆ F(t+1)
        for t in 0..20u64 {
            assert!(f.faulty_at(Time(t)).is_subset(f.faulty_at(Time(t + 1))));
        }
    }

    #[test]
    fn faulty_correct_partition() {
        let f = FailurePattern::from_crashes(
            universe(),
            [(ProcessId(0), Time(1)), (ProcessId(4), Time(7))],
        );
        assert_eq!(f.faulty(), ProcessSet::from_iter([0u32, 4]));
        assert_eq!(f.correct(), ProcessSet::from_iter([1u32, 2, 3]));
        assert_eq!(f.faulty() | f.correct(), universe());
        assert!(!f.faulty().intersects(f.correct()));
    }

    #[test]
    fn set_faulty_at_needs_all_members() {
        let f = FailurePattern::from_crashes(
            universe(),
            [(ProcessId(0), Time(1)), (ProcessId(1), Time(5))],
        );
        let s = ProcessSet::from_iter([0u32, 1]);
        assert!(!f.set_faulty_at(s, Time(4)));
        assert!(f.set_faulty_at(s, Time(5)));
        assert_eq!(f.set_crash_time(s), Some(Time(5)));
        assert_eq!(f.set_crash_time(ProcessSet::from_iter([0u32, 2])), None);
    }

    #[test]
    fn restrict_projects_pattern() {
        let f = FailurePattern::from_crashes(
            universe(),
            [(ProcessId(0), Time(1)), (ProcessId(3), Time(2))],
        );
        let r = f.restrict(ProcessSet::from_iter([0u32, 1]));
        assert_eq!(r.universe(), ProcessSet::from_iter([0u32, 1]));
        assert_eq!(r.faulty(), ProcessSet::from_iter([0u32]));
    }

    #[test]
    fn with_crash_from_preserves_prefix() {
        let f = FailurePattern::all_correct(universe());
        let g = f.with_crash_from(ProcessSet::from_iter([2u32]), Time(9));
        assert!(g.faulty_at(Time(8)).is_empty());
        assert!(g.faulty_at(Time(9)).contains(ProcessId(2)));
    }

    #[test]
    fn environment_membership() {
        let env = Environment::with_failure_prone(universe(), ProcessSet::from_iter([0u32, 1]))
            .with_max_failures(1);
        let ok = FailurePattern::from_crashes(universe(), [(ProcessId(0), Time(1))]);
        let too_many = FailurePattern::from_crashes(
            universe(),
            [(ProcessId(0), Time(1)), (ProcessId(1), Time(1))],
        );
        let not_prone = FailurePattern::from_crashes(universe(), [(ProcessId(3), Time(1))]);
        assert!(env.contains(&ok));
        assert!(!env.contains(&too_many));
        assert!(!env.contains(&not_prone));
        assert!(env.set_failure_prone(ProcessSet::from_iter([0u32])));
        assert!(!env.set_failure_prone(ProcessSet::from_iter([0u32, 1])));
    }

    #[test]
    fn enumerate_patterns_respects_bounds() {
        let env = Environment::wait_free(ProcessSet::first_n(3)).with_max_failures(2);
        let pats = env.enumerate_patterns(2, Time(5));
        // empty set + 3 singletons + 3 pairs
        assert_eq!(pats.len(), 7);
        assert!(pats.iter().all(|f| env.contains(f)));
    }

    #[test]
    fn wait_free_everyone_prone() {
        let env = Environment::wait_free(universe());
        assert!(env.is_failure_prone(ProcessId(4)));
        assert!(env.set_failure_prone(universe()));
    }
}
