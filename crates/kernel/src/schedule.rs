//! Pluggable schedule sources: record, replay and enumerate scheduling
//! choices.
//!
//! The paper's claims are universally quantified over schedules ("for every
//! fair run..."), and its necessity arguments (§5) are schedule-perturbation
//! constructions. A [`ScheduleSource`] reifies the adversary: at every step
//! it is shown the current *choice space* — the eligible processes and how
//! many distinct receive/action options each has — and picks one option.
//! Both the message-passing [`Simulator`](crate::Simulator) and the
//! shared-memory runtime of `gam-core` consult a source through the same
//! interface, so one explorer, one recorded schedule format and one shrinker
//! serve both levels.
//!
//! The choice space at a step is a slice of `(ProcessId, usize)` pairs in
//! ascending process order: process `p` with arity `k` offers sub-choices
//! `0..k`. What a sub-choice *means* is decided by the driver: the simulator
//! maps `c < pending` to [`Receive::Nth(c)`](crate::Receive) and
//! `c == pending` to the null message; the runtime maps `c` to its `c`-th
//! enabled action in the deterministic action order. Sub-choice `0` is
//! always the driver's "default" option (oldest message / least action), so
//! collapsing a schedule entry to `0` moves it toward the round-robin
//! schedule — the normalisation the shrinker exploits.

use crate::process::ProcessId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One recorded scheduling decision: which process stepped and which of its
/// options it took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChoiceStep {
    /// The stepping process.
    pub pid: ProcessId,
    /// The index of the taken option in the process's option list.
    pub choice: usize,
}

/// A scheduling policy consulted once per step.
pub trait ScheduleSource {
    /// Picks from `options` (non-empty, ascending process order; each entry
    /// is an eligible process and its positive option arity). Returns the
    /// index into `options` plus the sub-choice, or `None` to stop the run
    /// (the driver reports [`RunOutcome::Stopped`](crate::RunOutcome)).
    fn next_choice(&mut self, options: &[(ProcessId, usize)]) -> Option<(usize, usize)>;
}

impl<S: ScheduleSource + ?Sized> ScheduleSource for &mut S {
    fn next_choice(&mut self, options: &[(ProcessId, usize)]) -> Option<(usize, usize)> {
        (**self).next_choice(options)
    }
}

/// Round-robin over processes, always taking sub-choice `0` (the driver's
/// default option). Deterministic and fair — the canonical tail used to
/// complete an explored prefix to quiescence.
#[derive(Debug, Clone, Copy, Default)]
pub struct RotatingSource {
    cursor: u32,
}

impl ScheduleSource for RotatingSource {
    fn next_choice(&mut self, options: &[(ProcessId, usize)]) -> Option<(usize, usize)> {
        let idx = options
            .iter()
            .position(|(p, _)| p.0 >= self.cursor)
            .unwrap_or(0);
        self.cursor = options[idx].0 .0 + 1;
        Some((idx, 0))
    }
}

/// Uniformly random choices: a process uniformly among the eligible, then a
/// sub-choice uniformly among its options. Seeded and replayable.
#[derive(Debug, Clone)]
pub struct RandomSource {
    rng: StdRng,
}

impl RandomSource {
    /// A source seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        RandomSource {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl ScheduleSource for RandomSource {
    fn next_choice(&mut self, options: &[(ProcessId, usize)]) -> Option<(usize, usize)> {
        let idx = self.rng.gen_range(0..options.len());
        let (_, arity) = options[idx];
        Some((idx, self.rng.gen_range(0..arity)))
    }
}

/// Replays a recorded schedule step by step, tolerantly: entries whose
/// process is no longer eligible are skipped (mirroring how crashed
/// processes silently skip scheduled steps), and out-of-range sub-choices
/// are clamped to the current arity. On a faithful replay of a
/// deterministic run neither fallback fires; the tolerance is what lets the
/// shrinker mutate schedules without re-deriving them.
#[derive(Debug, Clone)]
pub struct ReplaySource {
    steps: Vec<ChoiceStep>,
    cursor: usize,
}

impl ReplaySource {
    /// A source replaying `steps` in order, then stopping.
    pub fn new(steps: Vec<ChoiceStep>) -> Self {
        ReplaySource { steps, cursor: 0 }
    }

    /// Number of entries not yet consumed.
    pub fn remaining(&self) -> usize {
        self.steps.len() - self.cursor
    }
}

impl ScheduleSource for ReplaySource {
    fn next_choice(&mut self, options: &[(ProcessId, usize)]) -> Option<(usize, usize)> {
        while self.cursor < self.steps.len() {
            let step = self.steps[self.cursor];
            self.cursor += 1;
            if let Some(idx) = options.iter().position(|(p, _)| *p == step.pid) {
                let arity = options[idx].1;
                return Some((idx, step.choice.min(arity - 1)));
            }
        }
        None
    }
}

/// Wraps a source, recording every `(process, sub-choice)` it emits. The
/// record replays through [`ReplaySource`] to the identical run.
#[derive(Debug)]
pub struct RecordingSource<S> {
    inner: S,
    log: Vec<ChoiceStep>,
}

impl<S: ScheduleSource> RecordingSource<S> {
    /// Records the choices of `inner`.
    pub fn new(inner: S) -> Self {
        RecordingSource {
            inner,
            log: Vec::new(),
        }
    }

    /// The choices recorded so far.
    pub fn log(&self) -> &[ChoiceStep] {
        &self.log
    }

    /// Consumes the wrapper, returning the recorded schedule.
    pub fn into_log(self) -> Vec<ChoiceStep> {
        self.log
    }
}

impl<S: ScheduleSource> ScheduleSource for RecordingSource<S> {
    fn next_choice(&mut self, options: &[(ProcessId, usize)]) -> Option<(usize, usize)> {
        let (idx, choice) = self.inner.next_choice(options)?;
        self.log.push(ChoiceStep {
            pid: options[idx].0,
            choice,
        });
        Some((idx, choice))
    }
}

/// Like [`RecordingSource`], but appending into a caller-owned log buffer —
/// the allocation-free form the exhaustive explorer's per-run loop uses
/// (clear the buffer, run, read it back; no `Vec` is created per run).
#[derive(Debug)]
pub struct RecordInto<'a, S> {
    inner: S,
    log: &'a mut Vec<ChoiceStep>,
}

impl<'a, S: ScheduleSource> RecordInto<'a, S> {
    /// Records the choices of `inner` by appending to `log` (which is *not*
    /// cleared — the caller owns its lifecycle).
    pub fn new(inner: S, log: &'a mut Vec<ChoiceStep>) -> Self {
        RecordInto { inner, log }
    }
}

impl<S: ScheduleSource> ScheduleSource for RecordInto<'_, S> {
    fn next_choice(&mut self, options: &[(ProcessId, usize)]) -> Option<(usize, usize)> {
        let (idx, choice) = self.inner.next_choice(options)?;
        self.log.push(ChoiceStep {
            pid: options[idx].0,
            choice,
        });
        Some((idx, choice))
    }
}

/// Follows a prescribed *path* through the choice tree, recording the
/// branching factor met at every depth — the cursor of the bounded
/// exhaustive explorer.
///
/// At depth `d` the flat choice space is `0..Σ arity_i`; the source takes
/// flat index `path[d]` (or stops if the path is exhausted). After the run,
/// [`PathSource::branching`] tells the explorer how wide each visited level
/// was, which is exactly what it needs to advance the path
/// odometer-style and enumerate every schedule of bounded depth.
#[derive(Debug, Clone)]
pub struct PathSource {
    path: Vec<usize>,
    cursor: usize,
    branching: Vec<usize>,
}

impl PathSource {
    /// A source following `path` (flat choice indices, one per depth).
    pub fn new(path: Vec<usize>) -> Self {
        PathSource {
            path,
            cursor: 0,
            branching: Vec::new(),
        }
    }

    /// Rewinds the source onto a new `path` without reallocating: the path
    /// buffer is overwritten in place, the cursor returns to depth 0 and the
    /// recorded branching factors are cleared. Equivalent to (but cheaper
    /// than) constructing `PathSource::new(path.to_vec())` — the exhaustive
    /// explorer calls this once per enumerated run.
    pub fn reset_to(&mut self, path: &[usize]) {
        self.path.clear();
        self.path.extend_from_slice(path);
        self.cursor = 0;
        self.branching.clear();
    }

    /// The branching factor (total flat options) met at each visited depth.
    pub fn branching(&self) -> &[usize] {
        &self.branching
    }

    /// Depths actually consumed (< path length when the run ended early).
    pub fn depth_reached(&self) -> usize {
        self.cursor
    }
}

impl ScheduleSource for PathSource {
    fn next_choice(&mut self, options: &[(ProcessId, usize)]) -> Option<(usize, usize)> {
        if self.cursor >= self.path.len() {
            return None;
        }
        let total: usize = options.iter().map(|(_, a)| a).sum();
        self.branching.push(total);
        let mut flat = self.path[self.cursor].min(total - 1);
        self.cursor += 1;
        for (idx, (_, arity)) in options.iter().enumerate() {
            if flat < *arity {
                return Some((idx, flat));
            }
            flat -= arity;
        }
        unreachable!("flat index clamped below total arity")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(v: &[(u32, usize)]) -> Vec<(ProcessId, usize)> {
        v.iter().map(|(p, a)| (ProcessId(*p), *a)).collect()
    }

    #[test]
    fn rotating_cycles_fairly() {
        let mut s = RotatingSource::default();
        let o = opts(&[(0, 1), (1, 2), (2, 1)]);
        assert_eq!(s.next_choice(&o), Some((0, 0)));
        assert_eq!(s.next_choice(&o), Some((1, 0)));
        assert_eq!(s.next_choice(&o), Some((2, 0)));
        assert_eq!(s.next_choice(&o), Some((0, 0)), "wraps around");
        // with a hole, the cursor lands on the next eligible process
        let o2 = opts(&[(0, 1), (2, 1)]);
        assert_eq!(s.next_choice(&o2), Some((1, 0)), "skips ineligible p1");
        assert_eq!(s.next_choice(&o2), Some((0, 0)), "wraps past the hole");
    }

    #[test]
    fn random_is_seed_deterministic_and_in_range() {
        let o = opts(&[(0, 3), (4, 1), (7, 2)]);
        let run = |seed| {
            let mut s = RandomSource::new(seed);
            (0..50)
                .map(|_| s.next_choice(&o).unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
        for (idx, c) in run(3) {
            assert!(idx < o.len());
            assert!(c < o[idx].1);
        }
    }

    #[test]
    fn replay_skips_missing_and_clamps() {
        let steps = vec![
            ChoiceStep {
                pid: ProcessId(1),
                choice: 1,
            },
            ChoiceStep {
                pid: ProcessId(9),
                choice: 0,
            }, // never eligible
            ChoiceStep {
                pid: ProcessId(0),
                choice: 5,
            }, // clamped to 0
        ];
        let mut s = ReplaySource::new(steps);
        let o = opts(&[(0, 1), (1, 2)]);
        assert_eq!(s.next_choice(&o), Some((1, 1)));
        assert_eq!(s.next_choice(&o), Some((0, 0)), "skips p9, clamps p0");
        assert_eq!(s.next_choice(&o), None, "exhausted");
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn recording_round_trips_through_replay() {
        let o = opts(&[(0, 2), (3, 1)]);
        let mut rec = RecordingSource::new(RandomSource::new(11));
        let picked: Vec<_> = (0..20).map(|_| rec.next_choice(&o).unwrap()).collect();
        let mut rep = ReplaySource::new(rec.into_log());
        let replayed: Vec<_> = (0..20).map(|_| rep.next_choice(&o).unwrap()).collect();
        assert_eq!(picked, replayed);
    }

    #[test]
    fn record_into_appends_to_caller_buffer() {
        let o = opts(&[(0, 2), (3, 1)]);
        let mut log = Vec::new();
        let picked: Vec<_> = {
            let mut rec = RecordInto::new(RandomSource::new(11), &mut log);
            (0..20).map(|_| rec.next_choice(&o).unwrap()).collect()
        };
        // byte-for-byte the same record an owning RecordingSource produces
        let mut owning = RecordingSource::new(RandomSource::new(11));
        for _ in 0..20 {
            owning.next_choice(&o).unwrap();
        }
        assert_eq!(log, owning.into_log());
        let mut rep = ReplaySource::new(log);
        let replayed: Vec<_> = (0..20).map(|_| rep.next_choice(&o).unwrap()).collect();
        assert_eq!(picked, replayed);
    }

    #[test]
    fn path_source_reset_to_matches_fresh_construction() {
        let o = opts(&[(0, 2), (1, 3)]);
        let mut reused = PathSource::new(vec![9, 9, 9]);
        let _ = reused.next_choice(&o);
        let _ = reused.next_choice(&o);
        reused.reset_to(&[0, 1, 2, 4, 99]);
        let mut fresh = PathSource::new(vec![0, 1, 2, 4, 99]);
        for _ in 0..6 {
            assert_eq!(reused.next_choice(&o), fresh.next_choice(&o));
        }
        assert_eq!(reused.branching(), fresh.branching());
        assert_eq!(reused.depth_reached(), fresh.depth_reached());
    }

    #[test]
    fn path_source_decodes_flat_indices() {
        let o = opts(&[(0, 2), (1, 3)]);
        let mut s = PathSource::new(vec![0, 1, 2, 4, 99]);
        assert_eq!(s.next_choice(&o), Some((0, 0)));
        assert_eq!(s.next_choice(&o), Some((0, 1)));
        assert_eq!(s.next_choice(&o), Some((1, 0)));
        assert_eq!(s.next_choice(&o), Some((1, 2)));
        assert_eq!(
            s.next_choice(&o),
            Some((1, 2)),
            "clamped to last flat option"
        );
        assert_eq!(s.next_choice(&o), None, "path exhausted");
        assert_eq!(s.branching(), &[5, 5, 5, 5, 5]);
        assert_eq!(s.depth_reached(), 5);
    }
}
