//! The global clock.
//!
//! The paper assumes a global time model where `ℕ` is the range of the global
//! clock and processes cannot read it. In the simulator, [`Time`] advances by
//! one at each step of any process, which yields a total order on steps — the
//! timing `T` of a run.

use std::fmt;

/// A point of the discrete global clock.
///
/// # Examples
///
/// ```
/// use gam_kernel::Time;
/// let t = Time(10);
/// assert!(t < t.next());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

impl Time {
    /// Time zero, before any step is taken.
    pub const ZERO: Time = Time(0);

    /// The instant after `self`.
    #[inline]
    pub fn next(self) -> Time {
        Time(self.0 + 1)
    }

    /// Saturating subtraction of a number of ticks.
    pub fn saturating_sub(self, ticks: u64) -> Time {
        Time(self.0.saturating_sub(ticks))
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl From<u64> for Time {
    fn from(v: u64) -> Self {
        Time(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_next() {
        assert!(Time::ZERO < Time(1));
        assert_eq!(Time(4).next(), Time(5));
        assert_eq!(Time(4).saturating_sub(10), Time::ZERO);
        assert_eq!(Time(10).saturating_sub(4), Time(6));
    }

    #[test]
    fn display() {
        assert_eq!(Time(3).to_string(), "t3");
    }
}
