//! Process automata and failure-detector histories.
//!
//! An algorithm `A` is a family of deterministic automata, one per process.
//! At each step a process (1) retrieves a message (or the null message) from
//! the buffer, (2) queries its local failure detector module, (3) changes its
//! local state, and (4) sends messages. The [`Automaton`] trait captures
//! exactly this step structure; the [`History`] trait captures `H(p, t)`, the
//! local failure-detector output at process `p` and time `t`.

use crate::message::Envelope;
use crate::process::{ProcessId, ProcessSet};
use crate::time::Time;
use std::fmt;

/// A failure-detector history `H : P × ℕ → range(D)`.
///
/// Implementations are the oracles of `gam-detectors`; the simulator samples
/// the history at each step, matching the model of Appendix A.
pub trait History {
    /// The range of the failure detector.
    type Value: Clone + fmt::Debug;

    /// Returns `H(p, t)`.
    fn sample(&self, p: ProcessId, t: Time) -> Self::Value;
}

/// The trivial history of the "null" failure detector, which carries no
/// information. Useful for purely asynchronous protocols.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoDetector;

impl History for NoDetector {
    type Value = ();

    fn sample(&self, _p: ProcessId, _t: Time) {}
}

impl<H: History + ?Sized> History for &H {
    type Value = H::Value;
    fn sample(&self, p: ProcessId, t: Time) -> Self::Value {
        (**self).sample(p, t)
    }
}

impl<H: History + ?Sized> History for Box<H> {
    type Value = H::Value;
    fn sample(&self, p: ProcessId, t: Time) -> Self::Value {
        (**self).sample(p, t)
    }
}

impl<H: History + ?Sized> History for std::rc::Rc<H> {
    type Value = H::Value;
    fn sample(&self, p: ProcessId, t: Time) -> Self::Value {
        (**self).sample(p, t)
    }
}

impl<H: History + ?Sized> History for std::sync::Arc<H> {
    type Value = H::Value;
    fn sample(&self, p: ProcessId, t: Time) -> Self::Value {
        (**self).sample(p, t)
    }
}

/// The effects a step may produce: outgoing messages and observable events.
///
/// A [`StepCtx`] is handed to [`Automaton::step`]; the automaton calls
/// [`StepCtx::send`] to add messages to the buffer and [`StepCtx::emit`] to
/// expose an observable event (e.g., the delivery of a multicast message) to
/// the run trace.
#[derive(Debug)]
pub struct StepCtx<M, E> {
    me: ProcessId,
    now: Time,
    pub(crate) sends: Vec<(ProcessSet, M)>,
    pub(crate) events: Vec<E>,
}

impl<M, E> StepCtx<M, E> {
    pub(crate) fn new(me: ProcessId, now: Time) -> Self {
        StepCtx {
            me,
            now,
            sends: Vec::new(),
            events: Vec::new(),
        }
    }

    /// Creates a detached context for driving a *sub-automaton* from within
    /// another automaton's step (protocol composition): run the inner
    /// automaton against the detached context, then drain its effects with
    /// [`StepCtx::take_sends`] / [`StepCtx::take_events`] and translate them
    /// into the outer protocol.
    pub fn detached(me: ProcessId, now: Time) -> Self {
        StepCtx::new(me, now)
    }

    /// Drains the messages sent into this context.
    pub fn take_sends(&mut self) -> Vec<(ProcessSet, M)> {
        std::mem::take(&mut self.sends)
    }

    /// Drains the events emitted into this context.
    pub fn take_events(&mut self) -> Vec<E> {
        std::mem::take(&mut self.events)
    }

    /// The identity of the stepping process.
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// The current global time. (Processes cannot read the global clock in
    /// the model; protocol code must not branch on this value. It is exposed
    /// for trace annotations only.)
    pub fn now(&self) -> Time {
        self.now
    }

    /// Sends `payload` to every process of `dst` (possibly including self).
    pub fn send(&mut self, dst: ProcessSet, payload: M) {
        self.sends.push((dst, payload));
    }

    /// Sends `payload` to a single process.
    pub fn send_to(&mut self, dst: ProcessId, payload: M) {
        self.send(ProcessSet::singleton(dst), payload);
    }

    /// Emits an observable event into the run trace.
    pub fn emit(&mut self, event: E) {
        self.events.push(event);
    }
}

/// A deterministic process automaton.
///
/// # Examples
///
/// A process that echoes every received payload back to its sender:
///
/// ```
/// use gam_kernel::{Automaton, StepCtx, Envelope};
///
/// struct Echo;
/// impl Automaton for Echo {
///     type Msg = u64;
///     type Fd = ();
///     type Event = u64;
///     fn step(
///         &mut self,
///         ctx: &mut StepCtx<u64, u64>,
///         input: Option<Envelope<u64>>,
///         _fd: &(),
///     ) {
///         if let Some(env) = input {
///             ctx.emit(env.payload);
///             ctx.send_to(env.src, env.payload + 1);
///         }
///     }
/// }
/// ```
pub trait Automaton {
    /// The protocol message type.
    type Msg: Clone + fmt::Debug;
    /// The failure-detector output type the automaton consumes.
    type Fd: Clone + fmt::Debug;
    /// The observable event type (e.g. deliveries).
    type Event: Clone + fmt::Debug;

    /// Executes one atomic step: `input` is the received message (or `None`
    /// for the null message `m_⊥`) and `fd` the failure-detector sample.
    fn step(
        &mut self,
        ctx: &mut StepCtx<Self::Msg, Self::Event>,
        input: Option<Envelope<Self::Msg>>,
        fd: &Self::Fd,
    );

    /// Whether the automaton has useful work to do *without* receiving a
    /// message. The simulator uses this (together with buffer emptiness) to
    /// detect quiescence; it keeps scheduling null-message steps while any
    /// alive automaton is active.
    ///
    /// Defaults to `false`: most protocols are message-driven.
    fn is_active(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_detector_samples_unit() {
        NoDetector.sample(ProcessId(0), Time(3));
    }

    #[test]
    fn ctx_collects_sends_and_events() {
        let mut ctx: StepCtx<u32, &'static str> = StepCtx::new(ProcessId(1), Time(4));
        assert_eq!(ctx.me(), ProcessId(1));
        assert_eq!(ctx.now(), Time(4));
        ctx.send(ProcessSet::first_n(2), 10);
        ctx.send_to(ProcessId(3), 20);
        ctx.emit("delivered");
        assert_eq!(ctx.sends.len(), 2);
        assert_eq!(ctx.sends[1].0, ProcessSet::singleton(ProcessId(3)));
        assert_eq!(ctx.events, vec!["delivered"]);
    }

    #[test]
    fn history_through_smart_pointers() {
        fn total<H: History>(h: H, p: ProcessId) -> H::Value {
            h.sample(p, Time(0))
        }
        total(NoDetector, ProcessId(0));
        total(&NoDetector, ProcessId(0));
        total(Box::new(NoDetector), ProcessId(0));
        total(std::sync::Arc::new(NoDetector), ProcessId(0));
    }
}
