//! Messages and the message buffer.
//!
//! Processes communicate by messages with a sender `src(m)`, a destination
//! set `dst(m)` and a payload. The message buffer `BUFF` holds all messages
//! sent but not yet received; a process attempting to receive either removes
//! a message addressed to it or obtains the null message.

use crate::process::{ProcessId, ProcessSet};
use crate::time::Time;
use std::collections::VecDeque;
use std::fmt;

/// A unique identifier assigned by the simulator to each sent message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MsgId(pub u64);

impl fmt::Display for MsgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// A message in transit: identity, sender, destination set, payload and the
/// time at which it was sent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Simulator-assigned unique id.
    pub id: MsgId,
    /// The sender `src(m)`.
    pub src: ProcessId,
    /// The destination group `dst(m)`.
    pub dst: ProcessSet,
    /// The time at which the message was sent.
    pub sent_at: Time,
    /// The protocol-level payload.
    pub payload: M,
}

/// The message buffer `BUFF`, a mapping from processes to the messages in
/// transit addressed to them.
///
/// Sending a message to a destination set enqueues one copy per recipient
/// (all sharing the same [`MsgId`]). Receiving removes one copy from the
/// recipient's queue; the choice of *which* copy is made by the scheduler.
#[derive(Debug, Clone)]
pub struct MessageBuffer<M> {
    queues: Vec<VecDeque<Envelope<M>>>,
    next_id: u64,
    total_sent: u64,
}

impl<M: Clone> MessageBuffer<M> {
    /// Creates an empty buffer for `n` processes.
    pub fn new(n: usize) -> Self {
        MessageBuffer {
            queues: (0..n).map(|_| VecDeque::new()).collect(),
            next_id: 0,
            total_sent: 0,
        }
    }

    /// Number of processes the buffer serves.
    pub fn num_processes(&self) -> usize {
        self.queues.len()
    }

    /// Total number of messages ever sent through the buffer.
    pub fn total_sent(&self) -> u64 {
        self.total_sent
    }

    /// Sends `payload` from `src` to every process of `dst`, returning the
    /// assigned message id.
    ///
    /// # Panics
    ///
    /// Panics if a destination index is out of range.
    pub fn send(&mut self, src: ProcessId, dst: ProcessSet, sent_at: Time, payload: M) -> MsgId {
        let id = MsgId(self.next_id);
        self.next_id += 1;
        self.total_sent += 1;
        for p in dst {
            let env = Envelope {
                id,
                src,
                dst,
                sent_at,
                payload: payload.clone(),
            };
            self.queues[p.index()].push_back(env);
        }
        id
    }

    /// Number of messages currently pending for `p`.
    pub fn pending(&self, p: ProcessId) -> usize {
        self.queues[p.index()].len()
    }

    /// Returns `true` if no message is pending for any process of `set`.
    pub fn quiescent_for(&self, set: ProcessSet) -> bool {
        set.iter().all(|p| self.pending(p) == 0)
    }

    /// Removes and returns the oldest message pending for `p`, if any.
    pub fn receive_oldest(&mut self, p: ProcessId) -> Option<Envelope<M>> {
        self.queues[p.index()].pop_front()
    }

    /// Removes and returns the `k`-th oldest pending message for `p`.
    pub fn receive_nth(&mut self, p: ProcessId, k: usize) -> Option<Envelope<M>> {
        self.queues[p.index()].remove(k)
    }

    /// Peeks at the pending messages of `p` (oldest first) without removing.
    pub fn peek(&self, p: ProcessId) -> impl Iterator<Item = &Envelope<M>> {
        self.queues[p.index()].iter()
    }

    /// Discards every message pending for `p` (used when `p` crashes — a
    /// crashed process takes no further step, so its copies are dead).
    pub fn drop_for(&mut self, p: ProcessId) {
        self.queues[p.index()].clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_fans_out_to_all_recipients() {
        let mut buf: MessageBuffer<&'static str> = MessageBuffer::new(4);
        let dst = ProcessSet::from_iter([1u32, 3]);
        let id = buf.send(ProcessId(0), dst, Time(1), "hello");
        assert_eq!(buf.pending(ProcessId(1)), 1);
        assert_eq!(buf.pending(ProcessId(3)), 1);
        assert_eq!(buf.pending(ProcessId(0)), 0);
        let e = buf.receive_oldest(ProcessId(1)).unwrap();
        assert_eq!(e.id, id);
        assert_eq!(e.src, ProcessId(0));
        assert_eq!(e.dst, dst);
        assert_eq!(e.payload, "hello");
    }

    #[test]
    fn fifo_order_per_recipient() {
        let mut buf: MessageBuffer<u32> = MessageBuffer::new(2);
        for i in 0..5 {
            buf.send(
                ProcessId(0),
                ProcessSet::singleton(ProcessId(1)),
                Time(i),
                i as u32,
            );
        }
        let mut got = Vec::new();
        while let Some(e) = buf.receive_oldest(ProcessId(1)) {
            got.push(e.payload);
        }
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn receive_nth_removes_specific_message() {
        let mut buf: MessageBuffer<u32> = MessageBuffer::new(1);
        for i in 0..3 {
            buf.send(
                ProcessId(0),
                ProcessSet::singleton(ProcessId(0)),
                Time(0),
                i,
            );
        }
        let e = buf.receive_nth(ProcessId(0), 1).unwrap();
        assert_eq!(e.payload, 1);
        assert_eq!(buf.pending(ProcessId(0)), 2);
        assert!(buf.receive_nth(ProcessId(0), 5).is_none());
    }

    #[test]
    fn quiescence_and_drop() {
        let mut buf: MessageBuffer<u32> = MessageBuffer::new(3);
        let all = ProcessSet::first_n(3);
        assert!(buf.quiescent_for(all));
        buf.send(ProcessId(0), all, Time(0), 7);
        assert!(!buf.quiescent_for(all));
        for p in all {
            buf.drop_for(p);
        }
        assert!(buf.quiescent_for(all));
        assert_eq!(buf.total_sent(), 1);
    }
}
