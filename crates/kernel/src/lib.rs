//! # gam-kernel — the asynchronous model with failure detectors
//!
//! This crate implements the computational model of Chandra–Toueg unreliable
//! failure detectors (Appendix A of the paper): asynchronous processes that
//! communicate through a message buffer, crash according to a *failure
//! pattern*, and query a local *failure-detector history* at every step. A
//! deterministic, seeded discrete-event [`Simulator`] drives process
//! [`Automaton`]s, injects crashes, and records [`Trace`]s, including the
//! adversarial scheduling controls (subset-only runs, message selection) that
//! the paper's necessity arguments quantify over.
//!
//! ## Quickstart
//!
//! ```
//! use gam_kernel::*;
//!
//! // A one-shot echo server.
//! #[derive(Default)]
//! struct Echo;
//! impl Automaton for Echo {
//!     type Msg = &'static str;
//!     type Fd = ();
//!     type Event = &'static str;
//!     fn step(
//!         &mut self,
//!         ctx: &mut StepCtx<&'static str, &'static str>,
//!         input: Option<Envelope<&'static str>>,
//!         _fd: &(),
//!     ) {
//!         if let Some(env) = input {
//!             ctx.emit(env.payload);
//!         }
//!     }
//! }
//!
//! let universe = ProcessSet::first_n(2);
//! let pattern = FailurePattern::all_correct(universe);
//! let mut sim = Simulator::new(vec![Echo, Echo], pattern, NoDetector);
//! # let _ = &mut sim;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod automaton;
pub mod cow;
mod failure;
mod message;
mod process;
pub mod schedule;
mod sim;
mod time;
mod trace;

pub use automaton::{Automaton, History, NoDetector, StepCtx};
pub use cow::CowVec;
pub use failure::{Environment, FailurePattern};
pub use message::{Envelope, MessageBuffer, MsgId};
pub use process::{Iter as ProcessSetIter, ProcessId, ProcessSet, MAX_PROCESSES};
pub use schedule::{
    ChoiceStep, PathSource, RandomSource, RecordingSource, ReplaySource, RotatingSource,
    ScheduleSource,
};
pub use sim::{Receive, RunOutcome, Scheduler, Simulator};
pub use time::Time;
pub use trace::{StepRecord, Trace, TraceEvent};
