//! The sharded parallel sustained-load driver.
//!
//! [`run_sustained_par`] partitions the group system into shards — the
//! connected components of the group-conflict graph
//! ([`crate::shard_partition`]) — runs each shard's projection of the
//! sequential round-robin on a worker thread over a private `Runtime`
//! clone (cheap: the state lives in copy-on-write columns), then commits
//! the recordings through `gam-core`'s deterministic merge. The final
//! state is **byte-identical** to [`Runtime::run_sustained`] on the same
//! scenario: the full `fold_state` walk, every delivery timestamp, the
//! state digest. See `gam-core`'s `shard` module docs for the projection
//! argument.
//!
//! Scenarios the projection argument does not cover — crashes, the strict
//! variant, mid-run state — fall back to the sequential driver, as do
//! single-shard systems and `threads <= 1`.
//!
//! ## Failure semantics
//!
//! On a `false` return (budget exhaustion, or a shard stuck with
//! obligations) the sequential driver leaves partial progress behind;
//! the parallel driver instead discards the worker clones and leaves the
//! base runtime **untouched**. The boolean outcome always agrees: under a
//! par-eligible scenario the sequential run fires a schedule-independent
//! action multiset, so it quiesces within `max_actions` iff the shards'
//! total fired count stays under it.

use crate::independence::shard_partition;
use gam_core::{Runtime, ShardRun, ShardSpec};
use gam_kernel::{ProcessId, ProcessSet};
use std::sync::atomic::{AtomicU64, Ordering};

/// Builds the shard specs of `system` for a run scheduling `set`: one
/// spec per connected group component, carrying the component's groups,
/// all their members, and the scheduled subset. Components whose member
/// processes are all outside `set` are still returned (with empty
/// `pids`) so callers can report shard counts; the driver skips them.
pub fn shard_specs(rt: &Runtime, set: ProcessSet) -> Vec<ShardSpec> {
    let system = rt.system();
    shard_partition(system)
        .into_iter()
        .map(|groups| {
            let mut members = ProcessSet::new();
            for &g in &groups {
                members |= system.members(g);
            }
            let procs: Vec<ProcessId> = members.iter().collect();
            let pids: Vec<ProcessId> = (members & set).iter().collect();
            ShardSpec {
                groups,
                procs,
                pids,
            }
        })
        .collect()
}

/// Runs `rt` to quiescence of `set` (or budget exhaustion) like
/// [`Runtime::run_sustained`], but with up to `threads` workers serving
/// disjoint group shards in parallel. Returns `true` on quiescence.
///
/// The committed state — delivery sequences with timestamps, pair orders,
/// unit arena, clock, round-robin cursor — is byte-identical to the
/// sequential driver's. On `false` the base runtime is left untouched
/// (the sequential driver would leave partial progress; see the module
/// docs).
pub fn run_sustained_par(
    rt: &mut Runtime,
    set: ProcessSet,
    max_actions: u64,
    threads: usize,
) -> bool {
    if threads <= 1 || !rt.par_eligible() {
        return rt.run_sustained(set, max_actions);
    }
    let live: Vec<ShardSpec> = shard_specs(rt, set)
        .into_iter()
        .filter(|s| !s.pids.is_empty())
        .collect();
    if live.len() <= 1 {
        return rt.run_sustained(set, max_actions);
    }
    let workers = threads.min(live.len());
    // Shared budget: one unit per fired action across all shards, the same
    // count the sequential driver caps. Overshoot past the cap only aborts
    // (the result is discarded), so no worker ever commits beyond it.
    let fired = AtomicU64::new(0);
    let results: Vec<(Runtime, Vec<ShardRun>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let mut clone = rt.clone();
                let mine: Vec<&ShardSpec> = live
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % workers == w)
                    .map(|(_, s)| s)
                    .collect();
                let fired = &fired;
                scope.spawn(move || {
                    let mut runs = Vec::with_capacity(mine.len());
                    let mut aborted = false;
                    for spec in mine {
                        if aborted {
                            // Keep run/spec alignment; a default run is
                            // `quiesced: false`, which forces the discard.
                            runs.push(ShardRun::default());
                            continue;
                        }
                        let run = clone.run_shard_record(&spec.pids, || {
                            // gam-lint: allow(A001, reason = "monotonic budget counter: fetch_add totals are exact under any ordering, nothing is published through it, and on the success path the committed total equals the schedule-independent fired count re-derived from the joined recordings")
                            fired.fetch_add(1, Ordering::Relaxed) < max_actions
                        });
                        aborted = !run.quiesced;
                        runs.push(run);
                    }
                    (clone, runs)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect()
    });
    // Re-derive the outcome from the joined recordings alone (not the
    // atomic), so the commit decision is schedule-deterministic.
    let total: u64 = results
        .iter()
        .flat_map(|(_, runs)| runs)
        .map(|r| r.fired_slots.len() as u64)
        .sum();
    let quiesced = results
        .iter()
        .flat_map(|(_, runs)| runs)
        .all(|r| r.quiesced);
    if !quiesced || total >= max_actions {
        return false;
    }
    let mut parts: Vec<(&Runtime, &ShardSpec, &ShardRun)> = Vec::with_capacity(live.len());
    for (w, (clone, runs)) in results.iter().enumerate() {
        for (j, run) in runs.iter().enumerate() {
            parts.push((clone, &live[w + j * workers], run));
        }
    }
    rt.commit_merge(&parts);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use gam_core::{RuntimeConfig, Variant};
    use gam_groups::{topology, GroupId};
    use gam_kernel::{FailurePattern, ProcessId, Time};

    fn fold(rt: &Runtime) -> Vec<u64> {
        let mut v = Vec::new();
        rt.fold_state(&mut |w| v.push(w));
        v
    }

    fn loaded(batch: u32) -> Runtime {
        let gs = topology::disjoint(4, 3);
        let mut rt = Runtime::new(
            &gs,
            FailurePattern::all_correct(gs.universe()),
            RuntimeConfig {
                batch_max: batch,
                ..Default::default()
            },
        );
        for g in 0..4u32 {
            let src = gs.members(GroupId(g)).min().unwrap();
            for i in 0..5u64 {
                rt.multicast(src, GroupId(g), u64::from(g) * 100 + i);
            }
        }
        rt
    }

    #[test]
    fn parallel_run_is_byte_identical_to_sequential() {
        for batch in [1u32, 4] {
            for threads in [2usize, 3, 8] {
                let base = loaded(batch);
                let mut seq = base.clone();
                let mut par = base.clone();
                let set = seq.system().universe();
                assert!(seq.run_sustained(set, 100_000));
                assert!(run_sustained_par(&mut par, set, 100_000, threads));
                assert_eq!(fold(&seq), fold(&par), "batch={batch} threads={threads}");
            }
        }
    }

    #[test]
    fn budget_exhaustion_agrees_and_leaves_base_untouched() {
        let base = loaded(1);
        let mut seq = base.clone();
        let mut par = base.clone();
        let set = base.system().universe();
        let before = fold(&par);
        assert!(!seq.run_sustained(set, 10));
        assert!(!run_sustained_par(&mut par, set, 10, 4));
        assert_eq!(fold(&par), before, "failed parallel run discards state");
        // Exact-budget quiescence also returns false in both drivers: the
        // sequential loop checks the cap before discovering quiescence.
        let mut probe = base.clone();
        assert!(probe.run_sustained(set, 100_000));
        let exact = probe.report(true).actions_of.iter().sum::<u64>();
        let mut seq2 = base.clone();
        let mut par2 = base.clone();
        assert!(!seq2.run_sustained(set, exact));
        assert!(!run_sustained_par(&mut par2, set, exact, 4));
        assert!(run_sustained_par(&mut base.clone(), set, exact + 1, 4));
    }

    #[test]
    fn ineligible_scenarios_fall_back_to_sequential() {
        // Strict variant: the fallback still runs and matches.
        let gs = topology::disjoint(2, 3);
        let mk = || {
            let mut rt = Runtime::new(
                &gs,
                FailurePattern::all_correct(gs.universe()),
                RuntimeConfig {
                    variant: Variant::Strict,
                    ..Default::default()
                },
            );
            rt.multicast(ProcessId(0), GroupId(0), 1);
            rt.multicast(ProcessId(3), GroupId(1), 2);
            rt
        };
        let mut seq = mk();
        let mut par = mk();
        let set = gs.universe();
        let a = seq.run_sustained(set, 100_000);
        let b = run_sustained_par(&mut par, set, 100_000, 4);
        assert_eq!(a, b);
        assert_eq!(fold(&seq), fold(&par));
        // Crashy pattern likewise.
        let crashy = |threads: usize| {
            let mut rt = Runtime::new(
                &gs,
                FailurePattern::from_crashes(gs.universe(), [(ProcessId(1), Time(4))]),
                RuntimeConfig::default(),
            );
            rt.multicast(ProcessId(0), GroupId(0), 1);
            let q = run_sustained_par(&mut rt, gs.universe(), 100_000, threads);
            (q, fold(&rt))
        };
        assert_eq!(crashy(1), crashy(4));
    }

    #[test]
    fn scheduled_subsets_restrict_the_shards() {
        // Schedule only the members of group 0: the other shards stay
        // idle, exactly as under the sequential driver.
        let base = loaded(2);
        let gs = base.system().clone();
        let set = gs.members(GroupId(0));
        let mut seq = base.clone();
        let mut par = base.clone();
        let a = seq.run_sustained(set, 100_000);
        let b = run_sustained_par(&mut par, set, 100_000, 4);
        assert_eq!(a, b);
        assert_eq!(fold(&seq), fold(&par));
        let specs = shard_specs(&base, set);
        assert_eq!(specs.len(), 4);
        assert_eq!(specs.iter().filter(|s| !s.pids.is_empty()).count(), 1);
    }
}
