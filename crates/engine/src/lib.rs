//! # gam-engine — one stepping interface over both execution substrates
//!
//! The reproduction executes the paper at two levels: **Level A**
//! (`gam_core::Runtime`, Algorithm 1 over linearizable shared objects,
//! where a scheduling choice fires an enabled guarded action) and **Level
//! B** (`gam_kernel::Simulator`, automata over an asynchronous
//! message-passing network, where a choice picks which pending message a
//! process receives). Both claims are quantified over the same adversary —
//! the schedule — and before this crate every consumer (explorer, replay,
//! bench bins, spec plumbing) carried one driver loop per substrate.
//!
//! `gam-engine` is the seam that removes the duplication:
//!
//! - [`Executor`] — the substrate interface: `enabled_actions` /
//!   `step` / `state_digest` / `is_quiescent` / `idle_tick`, implemented by
//!   [`RuntimeExecutor`] (Level A) and [`KernelExecutor`] (Level B);
//! - [`run_with_source`], [`run_fair`], [`run_recorded`], [`replay`] — the
//!   *single* driver loop every [`ScheduleSource`] now flows through;
//! - [`digest`] — the one shared, incremental run-hash implementation;
//! - [`TraceEvent`] / [`Observer`] — the trace bus publishing steps,
//!   message traffic, FD queries, deliveries, crashes and idle ticks in a
//!   substrate-independent shape.
//!
//! ## Adding a new substrate
//!
//! Implement [`Executor`] for a wrapper over your machine: enumerate the
//! eligible processes with positive option arity (ascending process order,
//! sub-choice `0` = your deterministic default move), execute a
//! [`ChoiceStep`], fold each step into a [`digest::Digest`], and define
//! quiescence. Everything else — fair driving, random swarms, recorded
//! replay, shrinking, bench harnesses — works unchanged.
//!
//! [`ScheduleSource`]: gam_kernel::ScheduleSource
//! [`ChoiceStep`]: gam_kernel::schedule::ChoiceStep

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod digest;
mod event;
mod exec;
pub mod independence;
mod kernel;
mod runtime;
mod sustained;
mod visited;

pub use event::{EventCounts, EventLog, Observer, TraceEvent};
pub use exec::{
    replay, run_fair, run_recorded, run_with_source, run_with_source_counted, Executor, PrefixTail,
    SnapshotExec,
};
pub use independence::{actions_commute, groups_conflict, shard_partition};
pub use kernel::{KernelExecutor, KernelSnapshot};
pub use runtime::{RuntimeExecutor, RuntimeSnapshot};
pub use sustained::{run_sustained_par, shard_specs};
pub use visited::VisitedSet;

// Parallel explorers move one executor per worker across thread boundaries,
// and the parallel DFS additionally holds per-worker stacks of snapshots;
// pin those capabilities down at compile time for both substrates.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<RuntimeExecutor>();
    assert_send::<
        KernelExecutor<gam_core::distributed::DistProcess, gam_core::distributed::MuHistory>,
    >();
    assert_send::<RuntimeSnapshot>();
    assert_send::<
        KernelSnapshot<gam_core::distributed::DistProcess, gam_core::distributed::MuHistory>,
    >();
};

#[cfg(test)]
mod tests {
    use super::*;
    use gam_core::distributed::{DistProcess, MuHistory};
    use gam_core::{MessageId, Runtime, RuntimeConfig};

    #[test]
    fn runtime_executor_matches_native_loop() {
        use gam_groups::{topology, GroupId};
        use gam_kernel::{FailurePattern, ProcessId, RunOutcome};

        let gs = topology::two_overlapping(3, 1);
        let build = || {
            let mut rt = Runtime::new(
                &gs,
                FailurePattern::all_correct(gs.universe()),
                RuntimeConfig::default(),
            );
            rt.multicast(ProcessId(0), GroupId(0), 7);
            rt.multicast(ProcessId(4), GroupId(1), 8);
            rt
        };
        // Native source-driven loop and the engine driver must agree step
        // for step: same outcome, same report.
        let mut native = build();
        let mut src = gam_kernel::schedule::RandomSource::new(5);
        let out = native.run_with_source(gs.universe(), &mut src, 100_000);
        assert_eq!(out, RunOutcome::Quiescent);

        let mut exec = RuntimeExecutor::new(build());
        let mut src = gam_kernel::schedule::RandomSource::new(5);
        let out2 = run_with_source(&mut exec, &mut src, 100_000);
        assert_eq!(out2, RunOutcome::Quiescent);
        let (a, b) = (native.report(true), exec.report(true));
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.actions_of, b.actions_of);
        assert_eq!(digest::trace_hash(&a), digest::trace_hash(&b));
    }

    #[test]
    fn recorded_engine_run_replays_to_same_digest() {
        use gam_groups::{topology, GroupId};
        use gam_kernel::{FailurePattern, RunOutcome};

        let gs = topology::ring(3, 2);
        let build = || {
            let mut rt = Runtime::new(
                &gs,
                FailurePattern::all_correct(gs.universe()),
                RuntimeConfig::default(),
            );
            for g in 0..3u32 {
                let src = gs.members(GroupId(g)).min().unwrap();
                rt.multicast(src, GroupId(g), u64::from(g));
            }
            rt
        };
        let mut exec = RuntimeExecutor::new(build());
        let (out, schedule) = run_recorded(
            &mut exec,
            gam_kernel::schedule::RandomSource::new(13),
            200_000,
        );
        assert_eq!(out, RunOutcome::Quiescent);
        assert!(!schedule.is_empty());

        let mut again = RuntimeExecutor::new(build());
        let out2 = replay(&mut again, &schedule, 200_000);
        assert_eq!(out2, RunOutcome::Quiescent);
        assert_eq!(again.state_digest(), exec.state_digest());
    }

    #[test]
    fn kernel_snapshot_restore_replays_bit_for_bit() {
        use gam_groups::{topology, GroupId};
        use gam_kernel::{FailurePattern, ProcessId, RunOutcome};

        let gs = topology::two_overlapping(3, 1);
        let pattern = FailurePattern::all_correct(gs.universe());
        let autos: Vec<DistProcess> = gs
            .universe()
            .iter()
            .map(|p| DistProcess::new(p, &gs))
            .collect();
        let mu =
            gam_detectors::MuOracle::new(&gs, pattern.clone(), gam_detectors::MuConfig::default());
        let mut sim = gam_kernel::Simulator::new(autos, pattern, MuHistory::new(mu));
        sim.automaton_mut(ProcessId(0))
            .multicast(MessageId(0), GroupId(0));
        let mut exec = KernelExecutor::new(sim);

        // Advance partway, checkpoint, and note where we stand.
        let mut src = gam_kernel::schedule::RandomSource::new(3);
        let out = run_with_source(&mut exec, &mut src, 40);
        assert_eq!(out, RunOutcome::BudgetExhausted);
        let snap = exec.snapshot();
        let at_snap = exec.state_digest();

        // Continue to quiescence, diverge after a restore, then replay the
        // original continuation — digests must match exactly.
        let finish = |exec: &mut KernelExecutor<DistProcess, MuHistory>, seed: u64| {
            let mut src = gam_kernel::schedule::RandomSource::new(seed);
            assert_eq!(
                run_with_source(exec, &mut src, 2_000_000),
                RunOutcome::Quiescent
            );
            exec.state_digest()
        };
        let first = finish(&mut exec, 7);
        exec.restore(&snap);
        assert_eq!(exec.state_digest(), at_snap, "restore lands on checkpoint");
        let other = finish(&mut exec, 8);
        assert_ne!(first, other, "different continuations must diverge");
        exec.restore(&snap);
        assert_eq!(finish(&mut exec, 7), first, "replayed continuation agrees");
    }

    #[test]
    fn observer_sees_deliveries_on_both_substrates() {
        use gam_groups::{topology, GroupId};
        use gam_kernel::{FailurePattern, ProcessId, RunOutcome};
        use std::sync::{Arc, Mutex};

        let gs = topology::single_group(3);
        // Level A
        let mut rt = Runtime::new(
            &gs,
            FailurePattern::all_correct(gs.universe()),
            RuntimeConfig::default(),
        );
        rt.multicast(ProcessId(0), GroupId(0), 1);
        let mut exec = RuntimeExecutor::new(rt);
        let log = Arc::new(Mutex::new(EventLog::new()));
        exec.attach(Box::new(Arc::clone(&log)));
        let counts = Arc::new(Mutex::new(EventCounts::default()));
        exec.attach(Box::new(Arc::clone(&counts)));
        assert_eq!(run_fair(&mut exec, 100_000), RunOutcome::Quiescent);
        for p in gs.universe() {
            assert_eq!(
                log.lock().unwrap().delivered_by(p),
                vec![MessageId(0)],
                "{p}"
            );
        }
        assert_eq!(counts.lock().unwrap().deliveries, 3);
        assert!(counts.lock().unwrap().steps > 0);

        // Level B: same topology through the kernel executor.
        let pattern = FailurePattern::all_correct(gs.universe());
        let autos: Vec<DistProcess> = gs
            .universe()
            .iter()
            .map(|p| DistProcess::new(p, &gs))
            .collect();
        let mu =
            gam_detectors::MuOracle::new(&gs, pattern.clone(), gam_detectors::MuConfig::default());
        let mut sim = gam_kernel::Simulator::new(autos, pattern, MuHistory::new(mu));
        sim.automaton_mut(ProcessId(0))
            .multicast(MessageId(0), GroupId(0));
        let mut kexec = KernelExecutor::new(sim).with_delivery_msg(|e| Some(e.msg));
        let klog = Arc::new(Mutex::new(EventLog::new()));
        kexec.attach(Box::new(Arc::clone(&klog)));
        assert_eq!(run_fair(&mut kexec, 2_000_000), RunOutcome::Quiescent);
        for p in gs.universe() {
            assert_eq!(
                klog.lock().unwrap().delivered_by(p),
                vec![MessageId(0)],
                "{p}"
            );
        }
    }
}
