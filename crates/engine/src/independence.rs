//! The independence relation of genuine atomic multicast — the single
//! source of truth the explorer's partial-order reduction and the sharded
//! serving driver both build on.
//!
//! Two enabled actions *commute* when firing them in either order yields
//! behaviorally equivalent states — equal delivery sequences, equal spec
//! verdicts under every deterministic continuation. `gam-explore`'s sleep
//! sets prune one of each commuting sibling pair; the parallel sustained
//! driver ([`crate::run_sustained_par`]) runs whole closed families of
//! mutually conflicting groups on separate workers. Both are sound for the
//! same reason, stated once here.
//!
//! ## Why genuineness makes this a local test
//!
//! Algorithm 1 is *genuine*: an action of process `p` about a unit of
//! group `g` reads and writes only state indexed by the pairs `{g, h}`
//! for `h ∈ 𝒢(p)` (the `per_gp` views of `gam_core`'s arena), the unit's
//! own cells, and `p`'s own per-process rows. Two actions therefore touch
//! disjoint shared state iff their groups differ and neither process is a
//! member of the other action's group — a constant-time membership test,
//! no state inspection needed.
//!
//! Three refinements keep the relation sound:
//!
//! - **Deliveries never commute.** `Deliver` records the wall-clock
//!   delivery time (every fired action ticks the shared clock), so
//!   swapping a delivery across *any* action changes the recorded
//!   timestamps of the report.
//! - **Same process never commutes.** Both actions bump `p`'s action
//!   counter, consume the same per-process cursors, and their relative
//!   order is the process's local program order.
//! - **Crash-free patterns only** (`gam_explore::por_applicable`): with no
//!   crashes the detector guards are time-invariant (the `γ` timelines are
//!   constant, the `1^{g∩h}` indicators never fire, liveness is
//!   universal), so commuting a pair of actions cannot move a guard
//!   across a detector transition. Patterns with crashes disable pruning
//!   entirely rather than approximate.
//!
//! Unit-id allocation order (two `Inject`s) is *not* preserved by a swap:
//! the states differ by a unit-id permutation, so their fingerprints
//! differ while their behavior (reports carry no unit ids, action
//! enumeration sorts by representative message) is identical. This is
//! precisely the redundancy the fingerprint dedup cannot see and POR can.
//!
//! ## From commutation to shards
//!
//! [`shard_partition`] closes the pairwise conflict test transitively:
//! two groups conflict when they intersect (mutual membership of the
//! shared processes couples their pair views), so the connected components
//! of the intersection graph are the finest partition of `𝒢` such that
//! *no* pair of non-`Deliver` actions ever conflicts across parts — and
//! because a process's groups all lie in one component, `Deliver`'s
//! same-process and same-group conflicts are intra-component too. The only
//! cross-component coupling left is the shared clock (`Deliver`
//! timestamps) and unit-id allocation order, exactly the two globals the
//! parallel driver's deterministic commit merge re-sequences.

use gam_core::{ActionDesc, ActionKind};
use gam_groups::{GroupId, GroupSystem};

/// True when `a` and `b` commute: distinct processes, neither a
/// delivery, distinct groups, and neither process a member of the other
/// action's group — which makes their touched pair sets
/// `{{gₐ, h} : h ∈ 𝒢(pₐ)}` and `{{g_b, h} : h ∈ 𝒢(p_b)}` disjoint.
pub fn actions_commute(system: &GroupSystem, a: &ActionDesc, b: &ActionDesc) -> bool {
    a.pid != b.pid
        && a.kind != ActionKind::Deliver
        && b.kind != ActionKind::Deliver
        && a.group != b.group
        && !(system.members(b.group).contains(a.pid) && system.members(a.group).contains(b.pid))
}

/// True when some pair of actions on `g` and `h` can fail to commute
/// (beyond the global clock): the groups coincide or intersect. Distinct
/// disjoint groups can still conflict through [`actions_commute`]'s mutual
/// membership test only if a process belongs to both — i.e. only if they
/// intersect — so this is the coarsest group-level over-approximation of
/// the action-level relation.
pub fn groups_conflict(system: &GroupSystem, g: GroupId, h: GroupId) -> bool {
    g == h || system.intersecting(g, h)
}

/// Partitions `𝒢` into shards: the connected components of the
/// [`groups_conflict`] graph, each a maximal closed family of groups whose
/// actions may interfere. Shards are returned in ascending order of their
/// minimum group id, groups ascending within a shard — a canonical order,
/// so every caller (driver, bench, tests) agrees on shard indices.
///
/// Actions on groups of different shards always commute (no shared pair
/// views, no mutual membership), and every process's group set `𝒢(p)`
/// lies inside a single shard (membership in two groups makes them
/// intersect). The shared clock and unit-id allocation order are the only
/// globals crossing shards; see [`crate::run_sustained_par`].
pub fn shard_partition(system: &GroupSystem) -> Vec<Vec<GroupId>> {
    system
        .components()
        .into_iter()
        .map(|comp| comp.iter().collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gam_core::MessageId;
    use gam_groups::topology;
    use gam_kernel::ProcessId;

    fn desc(pid: u32, kind: ActionKind, group: u32, rep: u64) -> ActionDesc {
        ActionDesc {
            pid: ProcessId(pid),
            kind,
            group: GroupId(group),
            rep: MessageId(rep),
            aux: 0,
        }
    }

    #[test]
    fn disjoint_groups_commute_and_shared_state_does_not() {
        // fig1: g1 = {p1, p2}, g2 = {p2, p3}, g3 = {p3, p4}, g4 = {p4, p1}.
        let gs = topology::fig1();
        let a = desc(0, ActionKind::Pending, 0, 0); // p1 on g1
        let far = desc(2, ActionKind::Pending, 2, 2); // p3 on g3
        assert!(actions_commute(&gs, &a, &far));
        assert!(actions_commute(&gs, &far, &a), "relation is symmetric");
        // Same group never commutes.
        let same_group = desc(1, ActionKind::Commit, 0, 0); // p2 on g1
        assert!(!actions_commute(&gs, &a, &same_group));
        // p2 on g1 touches the pair views {g1,g1} and {g1,g2}; p1 on g2
        // touches {g2,g1} and {g2,g4} — they share {g1,g2}, because each
        // process is a member of the *other* action's group.
        let left = desc(1, ActionKind::Pending, 0, 0); // p2 on g1
        let right = desc(0, ActionKind::Pending, 1, 1); // p1 on g2
        assert!(
            !actions_commute(&gs, &left, &right),
            "mutual membership shares the {{g1,g2}} pair views"
        );
        // One-sided membership is not enough: p1 ∉ g2, so p1-on-g1 and
        // p2-on-g2 touch disjoint pair views even though p2 ∈ g1.
        let one_sided = desc(1, ActionKind::Pending, 1, 1); // p2 on g2
        assert!(actions_commute(&gs, &a, &one_sided));
    }

    #[test]
    fn deliveries_and_same_process_never_commute() {
        let gs = topology::disjoint(2, 2);
        let a = desc(0, ActionKind::Deliver, 0, 0);
        let b = desc(2, ActionKind::Pending, 1, 1);
        assert!(!actions_commute(&gs, &a, &b), "deliver is time-stamped");
        assert!(!actions_commute(&gs, &b, &a));
        let c = desc(0, ActionKind::Pending, 0, 0);
        let d = desc(0, ActionKind::Commit, 0, 0);
        assert!(!actions_commute(&gs, &c, &d), "same process");
        let e = desc(2, ActionKind::Commit, 1, 1);
        assert!(actions_commute(&gs, &c, &e), "disjoint groups commute");
    }

    #[test]
    fn shards_are_the_transitive_closure_of_group_conflicts() {
        // disjoint(3, 2): three singleton shards, ascending.
        let gs = topology::disjoint(3, 2);
        let shards = shard_partition(&gs);
        assert_eq!(
            shards,
            vec![vec![GroupId(0)], vec![GroupId(1)], vec![GroupId(2)]]
        );
        for s in &shards {
            for t in &shards {
                if s != t {
                    assert!(!groups_conflict(&gs, s[0], t[0]));
                }
            }
        }
        // fig1's ring of overlaps is one shard.
        let fig1 = topology::fig1();
        assert_eq!(shard_partition(&fig1).len(), 1);
        // chain(2, 2) ∪-style coupling: adjacent chain groups share a joint
        // process, so a whole chain is one shard.
        let chain = topology::chain(3, 3);
        assert_eq!(shard_partition(&chain).len(), 1);
    }

    #[test]
    fn cross_shard_actions_always_commute() {
        let gs = topology::disjoint(3, 3);
        let shards = shard_partition(&gs);
        // Non-Deliver actions of distinct shards commute for any member
        // pids — the guarantee the parallel driver relies on.
        for (si, s) in shards.iter().enumerate() {
            for (ti, t) in shards.iter().enumerate() {
                if si == ti {
                    continue;
                }
                let p = gs.members(s[0]).min().unwrap();
                let q = gs.members(t[0]).min().unwrap();
                let a = desc(p.0, ActionKind::Commit, s[0].0, 0);
                let b = desc(q.0, ActionKind::Pending, t[0].0, 1);
                assert!(actions_commute(&gs, &a, &b));
            }
        }
    }
}
