//! [`Executor`] over the Level-A substrate: the Algorithm 1 shared-object
//! [`Runtime`] of `gam-core`.
//!
//! A scheduling option of process `p` is one of its enabled guarded actions
//! in the deterministic action order (so sub-choice `0` is the action the
//! round-robin scheduler would fire). Unlike the kernel, the runtime's
//! clock may *idle*: guards can become enabled purely by the passage of
//! detector time, so an empty choice space with outstanding delivery
//! obligations advances the clock instead of ending the run.

use crate::digest::Digest;
use crate::event::{Observer, TraceEvent};
use crate::exec::{Executor, SnapshotExec};
use gam_core::{ActionDesc, RunReport, Runtime};
use gam_kernel::schedule::ChoiceStep;
use gam_kernel::{ProcessId, ProcessSet};

/// The Algorithm 1 runtime as an [`Executor`].
pub struct RuntimeExecutor {
    rt: Runtime,
    set: ProcessSet,
    digest: Digest,
    observers: Vec<Box<dyn Observer + Send>>,
    crashed_seen: ProcessSet,
}

impl RuntimeExecutor {
    /// Wraps `rt`, scheduling every process of its universe.
    pub fn new(rt: Runtime) -> Self {
        let set = rt.system().universe();
        RuntimeExecutor::with_set(rt, set)
    }

    /// Wraps `rt`, scheduling **only** the processes of `set` (the
    /// adversarial subset schedules group parallelism and genuineness
    /// quantify over).
    pub fn with_set(rt: Runtime, set: ProcessSet) -> Self {
        RuntimeExecutor {
            rt,
            set,
            digest: Digest::new(),
            observers: Vec::new(),
            crashed_seen: ProcessSet::EMPTY,
        }
    }

    /// Read access to the wrapped runtime.
    pub fn runtime(&self) -> &Runtime {
        &self.rt
    }

    /// Mutable access to the wrapped runtime (e.g. to submit multicasts
    /// between runs).
    pub fn runtime_mut(&mut self) -> &mut Runtime {
        &mut self.rt
    }

    /// Consumes the executor, returning the runtime.
    pub fn into_runtime(self) -> Runtime {
        self.rt
    }

    /// The report of the run so far (see [`Runtime::report`]).
    pub fn report(&self, quiescent: bool) -> RunReport {
        self.rt.report(quiescent)
    }

    /// Describes the current choice space in flat digit order (see
    /// [`Runtime::describe_enabled`]) — the explorer's independence
    /// relation consumes these descriptors.
    pub fn describe_enabled(&self, out: &mut Vec<ActionDesc>) {
        self.rt.describe_enabled(self.set, out);
    }

    fn publish(&mut self, ev: &TraceEvent) {
        for obs in &mut self.observers {
            obs.on_event(ev);
        }
    }

    fn publish_crashes(&mut self) {
        let now = self.rt.now();
        let crashed = self.rt.pattern().faulty_at(now);
        for p in crashed - self.crashed_seen {
            self.crashed_seen.insert(p);
            self.publish(&TraceEvent::Crash { time: now, pid: p });
        }
    }
}

/// A [`RuntimeExecutor`] checkpoint: the full Algorithm 1 runtime (logs,
/// oracles, scheduler, clock, RNG) plus the executor's history digest and
/// crash-publication cursor. The scheduled process set is configuration,
/// not state, and the observer list deliberately stays out (see
/// [`SnapshotExec`]).
#[derive(Debug, Clone)]
pub struct RuntimeSnapshot {
    rt: Runtime,
    digest: Digest,
    crashed_seen: ProcessSet,
}

impl SnapshotExec for RuntimeExecutor {
    type Snapshot = RuntimeSnapshot;

    fn snapshot(&self) -> RuntimeSnapshot {
        RuntimeSnapshot {
            rt: self.rt.clone(),
            digest: self.digest,
            crashed_seen: self.crashed_seen,
        }
    }

    fn restore(&mut self, snap: &RuntimeSnapshot) {
        self.rt = snap.rt.clone();
        self.digest = snap.digest;
        self.crashed_seen = snap.crashed_seen;
    }

    fn snapshot_cost(&self) -> (u64, u64) {
        self.rt.snapshot_cost_bytes()
    }
}

impl Executor for RuntimeExecutor {
    fn enabled_actions(&mut self, out: &mut Vec<(ProcessId, usize)>) {
        self.rt.options_into(self.set, out);
    }

    fn step(&mut self, action: ChoiceStep) {
        let fired = self.rt.fire_enabled(action.pid, action.choice);
        let now = self.rt.now();
        self.digest.push(now.0);
        self.digest.push(u64::from(action.pid.0));
        self.digest
            .push(fired.delivered.map_or(u64::from(fired.fired), |m| m.0 + 2));
        // Batched units fold their width as an extra word; unbatched runs
        // (count ≤ 1) keep the historical three-word stream byte-identical,
        // so existing `.repro` fixtures and cross-substrate digests replay
        // unchanged when batching is off.
        if fired.delivered_count > 1 {
            self.digest.push(u64::from(fired.delivered_count));
        }
        if self.observers.is_empty() {
            return;
        }
        self.publish(&TraceEvent::Step {
            time: now,
            pid: action.pid,
            choice: action.choice,
        });
        self.publish_crashes();
        if let Some(msg) = fired.delivered {
            self.publish(&TraceEvent::Deliver {
                time: now,
                pid: action.pid,
                msg: Some(msg),
            });
        }
    }

    fn state_digest(&self) -> u64 {
        self.digest.value()
    }

    fn state_fingerprint(&self) -> u64 {
        // A real state walk (unlike the history-digest default): folds the
        // runtime's evolving state via [`Runtime::fold_state`], so schedules
        // that *converge* — different interleavings reaching the same
        // machine — collide here and the explorer's dedup can prune them.
        let mut d = Digest::new();
        self.rt.fold_state(&mut |w| d.push(w));
        d.value()
    }

    fn is_quiescent(&self) -> bool {
        self.rt.is_quiescent_in(self.set)
    }

    fn idle_tick(&mut self) -> bool {
        self.rt.idle_tick();
        let now = self.rt.now();
        // Sentinel keeps the word stream prefix-free: a step folds
        // (time, pid, effect), an idle folds (MAX, time).
        self.digest.push(u64::MAX);
        self.digest.push(now.0);
        if !self.observers.is_empty() {
            self.publish(&TraceEvent::Idle { time: now });
            self.publish_crashes();
        }
        true
    }

    fn attach(&mut self, observer: Box<dyn Observer + Send>) {
        self.observers.push(observer);
    }
}
