//! A fixed-capacity, open-addressing visited-set over 64-bit fingerprints.
//!
//! The parallel explorer prunes the fair-tail completion of any enumerated
//! prefix whose post-prefix [`state_fingerprint`] was already seen: equal
//! fingerprints mean equal substrate states, and the tail is a deterministic
//! function of that state, so re-running it can only reproduce a verdict
//! already recorded. The set backing that decision must be cheap (one probe
//! per prefix, on the hot path), allocation-stable (a worker reuses one
//! table across all its work items) and *deterministic* (its answers are a
//! pure function of the insertion sequence — never of timing), which rules
//! out both growable hash maps (rehash points depend on capacity history)
//! and anything concurrently shared (probe outcomes would race).
//!
//! Hence this little table: linear probing over a power-of-two slot array,
//! a bounded probe window, and a deliberate *no-growth* policy — when the
//! window is full the oldest candidate slot is overwritten. Forgetting a
//! fingerprint is always sound (a future duplicate is simply re-explored);
//! remembering a wrong one never happens.
//!
//! [`state_fingerprint`]: crate::Executor::state_fingerprint

/// Slot value marking an empty cell; real keys equal to it are remapped.
const EMPTY: u64 = 0;
/// Stand-in for a genuine key of `0` (an arbitrary odd constant).
const ZERO_KEY: u64 = 0x9e37_79b9_7f4a_7c15;
/// How many consecutive slots an insert probes before evicting.
const PROBE_WINDOW: usize = 32;

/// A fixed-capacity set of `u64` fingerprints with open addressing.
///
/// # Examples
///
/// ```
/// use gam_engine::VisitedSet;
///
/// let mut seen = VisitedSet::with_capacity(64);
/// assert!(seen.insert(7));  // newly inserted
/// assert!(!seen.insert(7)); // already visited
/// assert_eq!(seen.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct VisitedSet {
    slots: Vec<u64>,
    mask: usize,
    len: usize,
    evictions: u64,
}

impl VisitedSet {
    /// A set with room for `capacity` fingerprints, rounded up to the next
    /// power of two (minimum 16). The table never grows.
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.clamp(16, 1 << 28).next_power_of_two();
        VisitedSet {
            slots: vec![EMPTY; cap],
            mask: cap - 1,
            len: 0,
            evictions: 0,
        }
    }

    /// Fingerprints currently stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set stores nothing.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total slots of the table.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// How many stored fingerprints were overwritten because their probe
    /// window filled up (each one a potential future dedup hit forgone).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Empties the set, keeping the allocation.
    pub fn clear(&mut self) {
        self.slots.fill(EMPTY);
        self.len = 0;
        self.evictions = 0;
    }

    /// Whether `key` is in the set.
    pub fn contains(&self, key: u64) -> bool {
        let key = if key == EMPTY { ZERO_KEY } else { key };
        let home = ((key ^ (key >> 32)) as usize) & self.mask;
        for i in 0..PROBE_WINDOW.min(self.slots.len()) {
            match self.slots[(home + i) & self.mask] {
                EMPTY => return false,
                k if k == key => return true,
                _ => {}
            }
        }
        false
    }

    /// Inserts `key`. Returns `true` if the key was **not** present (it is
    /// now), `false` if it was already in the set — i.e. `false` is a dedup
    /// hit. When the key's probe window holds neither the key nor a free
    /// slot, the window's first slot is overwritten (see module docs).
    pub fn insert(&mut self, key: u64) -> bool {
        let key = if key == EMPTY { ZERO_KEY } else { key };
        // The fingerprints are FNV-1a values — well mixed, but fold the high
        // half down so the table index sees all 64 bits.
        let home = ((key ^ (key >> 32)) as usize) & self.mask;
        for i in 0..PROBE_WINDOW.min(self.slots.len()) {
            let at = (home + i) & self.mask;
            match self.slots[at] {
                EMPTY => {
                    self.slots[at] = key;
                    self.len += 1;
                    return true;
                }
                k if k == key => return false,
                _ => {}
            }
        }
        self.slots[home] = key;
        self.evictions += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_reports_new_vs_seen() {
        let mut s = VisitedSet::with_capacity(100);
        assert_eq!(s.capacity(), 128, "rounded to a power of two");
        assert!(s.is_empty());
        assert!(s.insert(42));
        assert!(!s.insert(42));
        assert!(s.insert(43));
        assert_eq!(s.len(), 2);
        assert_eq!(s.evictions(), 0);
    }

    #[test]
    fn zero_key_is_a_real_member() {
        let mut s = VisitedSet::with_capacity(16);
        assert!(s.insert(0));
        assert!(!s.insert(0));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn clear_keeps_capacity_and_forgets_members() {
        let mut s = VisitedSet::with_capacity(16);
        for k in 1..=10u64 {
            s.insert(k);
        }
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.capacity(), 16);
        assert!(s.insert(3), "cleared keys are new again");
    }

    #[test]
    fn saturated_window_evicts_instead_of_growing() {
        // Capacity 16 < PROBE_WINDOW: every window wraps the whole table, so
        // the 17th distinct key must evict rather than error or grow.
        let mut s = VisitedSet::with_capacity(16);
        let mut fresh = 0;
        for k in 1..=40u64 {
            if s.insert(k.wrapping_mul(0x2545_f491_4f6c_dd1d)) {
                fresh += 1;
            }
        }
        assert_eq!(fresh, 40, "all keys distinct, none rejected");
        assert_eq!(s.capacity(), 16, "never grows");
        assert!(s.evictions() > 0);
        assert!(s.len() <= s.capacity());
    }

    #[test]
    fn deterministic_for_a_given_insertion_sequence() {
        let seq: Vec<u64> = (0..500).map(|i| i * i + 1).collect();
        let run = || {
            let mut s = VisitedSet::with_capacity(64);
            let hits: Vec<bool> = seq.iter().map(|k| s.insert(*k)).collect();
            (hits, s.len(), s.evictions())
        };
        assert_eq!(run(), run());
    }
}
