//! Order-sensitive run digests — the one shared hash implementation.
//!
//! Determinism claims ("same seed ⇒ same run", "a `Repro` replays
//! byte-identically") are checked by comparing a 64-bit digest of the
//! observable run outcome. Both substrates fold their digests through the
//! same [`Digest`] accumulator, so a runtime-level hash and a kernel-level
//! hash disagree only when the runs genuinely differ — never because two
//! copies of the hash function drifted apart (the pre-engine layout kept a
//! second copy in `gam-explore`).
//!
//! [`Digest`] is *incremental*: an executor folds each step in as it
//! happens, so `state_digest()` is O(1) to read at any point of a run
//! instead of requiring a full end-of-run rehash of a recorded schedule.

use gam_core::RunReport;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental 64-bit FNV-1a accumulator over a word stream.
///
/// Folding words one at a time yields exactly the same value as hashing
/// the whole stream at once with [`fnv1a`], so post-hoc digests and
/// incrementally-maintained ones are interchangeable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Digest {
    h: u64,
}

impl Default for Digest {
    fn default() -> Self {
        Digest::new()
    }
}

impl Digest {
    /// An empty digest (the FNV-1a offset basis).
    pub const fn new() -> Self {
        Digest { h: FNV_OFFSET }
    }

    /// Resumes accumulation from a previously read digest value — used to
    /// extend an executor's incremental `state_digest()` with end-of-run
    /// summary words (outcome, final delivery sequences).
    pub const fn resume(h: u64) -> Self {
        Digest { h }
    }

    /// Folds one word into the digest.
    pub fn push(&mut self, w: u64) {
        let mut h = self.h;
        for byte in w.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.h = h;
    }

    /// Folds a stream of words into the digest.
    pub fn push_all(&mut self, words: impl IntoIterator<Item = u64>) {
        for w in words {
            self.push(w);
        }
    }

    /// The current digest value.
    pub const fn value(&self) -> u64 {
        self.h
    }
}

/// 64-bit FNV-1a over a word stream.
pub fn fnv1a(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut d = Digest::new();
    d.push_all(words);
    d.value()
}

/// Derives an independent seed stream from `(seed, tag)` — the splitmix64
/// finalizer over their combination.
///
/// The scenario generator draws its topology, crash plan and traffic trace
/// from *separate* RNG streams of one descriptor seed, so that e.g. adding
/// a crash to a descriptor cannot shift which groups its traffic targets.
/// Any consumer needing a family of decorrelated sub-seeds from one
/// recorded seed should derive them here rather than hand-rolling a mixer.
pub fn derive_seed(seed: u64, tag: u64) -> u64 {
    let mut z = seed
        .wrapping_add(tag.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Digest of a [`RunReport`]'s observable outcome.
///
/// Folds in every delivery (process, message, time) **in order**, plus the
/// per-process action counters and the quiescence bit, so any divergence —
/// including one caused by iteration over an unordered map leaking into
/// scheduling — flips it.
pub fn trace_hash(report: &RunReport) -> u64 {
    let mut d = Digest::new();
    d.push(u64::from(report.quiescent));
    d.push(report.delivered.len() as u64);
    for (i, deliveries) in report.delivered.iter().enumerate() {
        d.push(i as u64);
        d.push(report.actions_of[i]);
        for del in deliveries {
            d.push(del.msg.0);
            d.push(del.at.0);
        }
    }
    d.value()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_distinguishes_order() {
        assert_ne!(fnv1a([1, 2]), fnv1a([2, 1]));
        assert_ne!(fnv1a([]), fnv1a([0]));
        assert_eq!(fnv1a([7, 9]), fnv1a([7, 9]));
    }

    #[test]
    fn derive_seed_decorrelates_tags() {
        // Distinct tags (and distinct seeds) give distinct streams, and the
        // derivation is a pure function.
        assert_eq!(derive_seed(17, 0), derive_seed(17, 0));
        assert_ne!(derive_seed(17, 0), derive_seed(17, 1));
        assert_ne!(derive_seed(17, 0), derive_seed(18, 0));
        // seed 0 is not a fixed point (splitmix64 finalizer mixes it away)
        assert_ne!(derive_seed(0, 0), 0);
    }

    #[test]
    fn incremental_equals_batch() {
        let words = [3u64, 1, 4, 1, 5, 9, 2, 6];
        let mut d = Digest::new();
        for w in words {
            d.push(w);
        }
        assert_eq!(d.value(), fnv1a(words));
        // resuming mid-stream is transparent
        let mut a = Digest::new();
        a.push_all([3, 1, 4, 1]);
        let mut b = Digest::resume(a.value());
        b.push_all([5, 9, 2, 6]);
        assert_eq!(b.value(), fnv1a(words));
    }
}
