//! The [`Executor`] interface and the unified schedule drivers.
//!
//! The paper reasons about two very different machines — Algorithm 1 over
//! linearizable shared objects (Level A, `gam_core::Runtime`) and automata
//! over an asynchronous message-passing network (Level B,
//! `gam_kernel::Simulator`) — but quantifies both over the same adversary:
//! *which enabled move happens next*. [`Executor`] is that common shape.
//! Everything downstream of the substrates (the explorer, replay, the bench
//! bins, equivalence checks) is written once against it, and every
//! [`ScheduleSource`] drives either substrate through the same
//! [`run_with_source`] loop.
//!
//! The driver owns exactly one reusable options buffer, consults the source,
//! and forwards the pick; substrate specifics (what a sub-choice means, when
//! the clock may idle) live behind the trait.

use crate::Observer;
use gam_kernel::schedule::{ChoiceStep, RecordingSource, ReplaySource, RotatingSource};
use gam_kernel::{ProcessId, RunOutcome, ScheduleSource};

/// A steppable execution substrate: a state machine exposing its current
/// choice space, accepting scheduling decisions, and reporting quiescence
/// and an incremental run digest.
///
/// Implementations exist for both substrates ([`RuntimeExecutor`] and
/// [`KernelExecutor`]); see the crate docs for how to add a new one.
///
/// Executors over owned substrate state are `Send` (asserted at compile
/// time for both built-in substrates), so parallel explorers can build and
/// drive one executor per worker thread. Observers cross the same boundary,
/// hence the `Send` bound on [`Executor::attach`].
///
/// [`RuntimeExecutor`]: crate::RuntimeExecutor
/// [`KernelExecutor`]: crate::KernelExecutor
pub trait Executor {
    /// Writes the current choice space into `out`: each process eligible to
    /// step, in ascending process order, paired with its positive option
    /// arity. Sub-choice `0` is always the substrate's "default" option
    /// (oldest message / least enabled action), the invariant the shrinker
    /// and the fair tail rely on.
    fn enabled_actions(&mut self, out: &mut Vec<(ProcessId, usize)>);

    /// Executes one scheduling decision. Out-of-range sub-choices clamp to
    /// the last option (replay tolerance); a decision for a process that
    /// crashes at the very tick of its step is consumed without effect.
    fn step(&mut self, action: ChoiceStep);

    /// The incremental digest of the run so far: folds every step taken (and
    /// every substrate-observable effect) in order, so two runs agree on
    /// their digests iff they agree on their observable histories.
    fn state_digest(&self) -> u64;

    /// A digest of the substrate's **current state** (as opposed to
    /// [`Executor::state_digest`], which hashes the *history* that led
    /// there): two executors with equal fingerprints behave identically
    /// under any deterministic continuation, even when they got to that
    /// state along different schedules. This is the key the explorer's
    /// visited-set dedup prunes on — converging prefixes (e.g. two
    /// interleavings of independent actions) collide here but never on the
    /// history digest.
    ///
    /// The default falls back to the history digest, which is always sound
    /// (equal histories ⇒ equal states) but never detects convergence;
    /// substrates that want dedup to bite override it with a real state
    /// walk.
    fn state_fingerprint(&self) -> u64 {
        self.state_digest()
    }

    /// Returns `true` when the run is over: the choice space is empty and no
    /// option can ever become enabled again (for substrates whose guards
    /// wait on time, this includes "no obligations remain").
    fn is_quiescent(&self) -> bool;

    /// Advances the substrate clock without a step, for substrates whose
    /// guards can become enabled by the passage of time alone. Returns
    /// `false` if the substrate has no notion of idling (the message-passing
    /// kernel: an empty choice space there is final).
    fn idle_tick(&mut self) -> bool;

    /// Subscribes `observer` to the substrate's trace bus (see
    /// [`TraceEvent`](crate::TraceEvent)). Executors publish nothing until
    /// the first observer is attached, keeping the hot loop allocation- and
    /// branch-free in the common case. Observers are `Send` so an observed
    /// executor can still move to a worker thread.
    fn attach(&mut self, observer: Box<dyn Observer + Send>);
}

/// Checkpoint/restore extension of [`Executor`] — the capability the
/// prefix-sharing DFS explorer is built on.
///
/// A snapshot captures **everything** that determines future behaviour *and*
/// future digests: the substrate state (logs, oracles, scheduler cursors,
/// clocks, in-flight messages, RNG) plus the executor's own incremental
/// history [`Digest`](crate::digest::Digest). After `restore`, the executor must be
/// bit-for-bit indistinguishable from one that reached the checkpoint
/// fresh: the same `enabled_actions`, and — after any continuation — the
/// same `state_digest` and `state_fingerprint`. That is what lets the DFS
/// engine prove its runs byte-identical to the restart-from-scratch
/// odometer engine.
///
/// Attached observers are *not* part of a snapshot: `restore` rewinds the
/// machine, not the audience. Observed explorations therefore see each
/// shared prefix published once, at first execution.
///
/// Snapshots are `Send` so the parallel DFS can hold them in per-worker
/// stacks (asserted at compile time for both built-in substrates).
pub trait SnapshotExec: Executor {
    /// The checkpoint type — a deep copy of the substrate + digest state.
    type Snapshot: Send;

    /// Captures the current state as a checkpoint.
    fn snapshot(&self) -> Self::Snapshot;

    /// Rewinds to a checkpoint previously taken on this executor (or an
    /// identical twin). Restoring a snapshot from a *different* scenario is
    /// not meaningful and yields an unspecified (but memory-safe) state.
    fn restore(&mut self, snap: &Self::Snapshot);

    /// Analytic cost of taking a snapshot *right now*, in bytes, as
    /// `(copied, deep)`: what [`SnapshotExec::snapshot`] actually copies
    /// versus what a deep per-element copy of the same logical state would
    /// have copied. The explorer sums both at every branch point; their
    /// ratio is the copy-on-write saving the DFS bench gates on.
    /// Substrates without cost accounting report `(0, 0)`.
    fn snapshot_cost(&self) -> (u64, u64) {
        (0, 0)
    }
}

impl<E: Executor + ?Sized> Executor for &mut E {
    fn enabled_actions(&mut self, out: &mut Vec<(ProcessId, usize)>) {
        (**self).enabled_actions(out);
    }
    fn step(&mut self, action: ChoiceStep) {
        (**self).step(action);
    }
    fn state_digest(&self) -> u64 {
        (**self).state_digest()
    }
    fn state_fingerprint(&self) -> u64 {
        (**self).state_fingerprint()
    }
    fn is_quiescent(&self) -> bool {
        (**self).is_quiescent()
    }
    fn idle_tick(&mut self) -> bool {
        (**self).idle_tick()
    }
    fn attach(&mut self, observer: Box<dyn Observer + Send>) {
        (**self).attach(observer);
    }
}

/// Runs `exec` with every scheduling decision delegated to `source`, until
/// quiescence, budget exhaustion, or the source stopping. Idle ticks (on
/// substrates that have them) count toward the budget, exactly as in the
/// substrates' native loops.
pub fn run_with_source<E, S>(exec: &mut E, source: &mut S, max_steps: u64) -> RunOutcome
where
    E: Executor + ?Sized,
    S: ScheduleSource + ?Sized,
{
    run_with_source_counted(exec, source, max_steps).0
}

/// [`run_with_source`], additionally returning how much of `max_steps` the
/// run consumed (scheduled steps plus idle ticks). Resumable: a run driven
/// in two phases — a prefix under one source, then a tail under another with
/// the *remaining* budget — takes exactly the steps of the equivalent
/// single-phase run. The explorer's dedup pruning relies on this to split a
/// run at the end of its enumerated prefix.
pub fn run_with_source_counted<E, S>(
    exec: &mut E,
    source: &mut S,
    max_steps: u64,
) -> (RunOutcome, u64)
where
    E: Executor + ?Sized,
    S: ScheduleSource + ?Sized,
{
    let mut options: Vec<(ProcessId, usize)> = Vec::new();
    let mut taken = 0u64;
    loop {
        if taken >= max_steps {
            return (RunOutcome::BudgetExhausted, taken);
        }
        exec.enabled_actions(&mut options);
        if options.is_empty() {
            if exec.is_quiescent() || !exec.idle_tick() {
                return (RunOutcome::Quiescent, taken);
            }
            taken += 1;
            continue;
        }
        let Some((idx, choice)) = source.next_choice(&options) else {
            return (RunOutcome::Stopped, taken);
        };
        exec.step(ChoiceStep {
            pid: options[idx].0,
            choice,
        });
        taken += 1;
    }
}

/// Runs `exec` under the deterministic fair round-robin policy
/// ([`RotatingSource`]) — the canonical "just run it" driver.
pub fn run_fair<E: Executor + ?Sized>(exec: &mut E, max_steps: u64) -> RunOutcome {
    run_with_source(exec, &mut RotatingSource::default(), max_steps)
}

/// Runs `exec` under `source`, recording every decision taken. Returns the
/// outcome together with the recorded schedule, which [`replay`]s to the
/// identical run.
pub fn run_recorded<E, S>(exec: &mut E, source: S, max_steps: u64) -> (RunOutcome, Vec<ChoiceStep>)
where
    E: Executor + ?Sized,
    S: ScheduleSource,
{
    let mut rec = RecordingSource::new(source);
    let outcome = run_with_source(exec, &mut rec, max_steps);
    (outcome, rec.into_log())
}

/// Replays a recorded `schedule` on `exec`, completing with the fair
/// round-robin tail once the schedule is exhausted — so every replayed
/// prefix extends to a *fair* run whose quiescence is meaningful.
pub fn replay<E: Executor + ?Sized>(
    exec: &mut E,
    schedule: &[ChoiceStep],
    max_steps: u64,
) -> RunOutcome {
    let mut source = PrefixTail::new(ReplaySource::new(schedule.to_vec()));
    run_with_source(exec, &mut source, max_steps)
}

/// A source that plays a prefix and then falls back to the fair
/// deterministic round-robin tail forever — the run-completion policy of
/// the explorer: any enumerated or replayed prefix is extended to a *fair*
/// run, so quiescence (and hence the spec checkers) is meaningful.
#[derive(Debug)]
pub struct PrefixTail<S> {
    prefix: Option<S>,
    tail: RotatingSource,
}

impl<S: ScheduleSource> PrefixTail<S> {
    /// Plays `prefix` until it stops, then the round-robin tail.
    pub fn new(prefix: S) -> Self {
        PrefixTail {
            prefix: Some(prefix),
            tail: RotatingSource::default(),
        }
    }
}

impl<S: ScheduleSource> ScheduleSource for PrefixTail<S> {
    fn next_choice(&mut self, options: &[(ProcessId, usize)]) -> Option<(usize, usize)> {
        if let Some(prefix) = &mut self.prefix {
            if let Some(pick) = prefix.next_choice(options) {
                return Some(pick);
            }
            self.prefix = None;
        }
        self.tail.next_choice(options)
    }
}
