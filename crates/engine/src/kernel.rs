//! [`Executor`] over the Level-B substrate: the message-passing
//! [`Simulator`] of `gam-kernel`.
//!
//! A scheduling option of process `p` with `k` pending messages is one of
//! `0..k` (receive the `c`-th oldest) plus, when the automaton is active,
//! `k` (the null message) — the mapping [`Simulator::step_choice`] defines.
//! The executor folds each step into an incremental [`Digest`] as it
//! happens (time, process, received message), replacing the pre-engine
//! pattern of recording the full schedule in the trace and rehashing it
//! after the run.

use crate::digest::Digest;
use crate::event::{Observer, TraceEvent};
use crate::exec::{Executor, SnapshotExec};
use gam_core::MessageId;
use gam_kernel::schedule::ChoiceStep;
use gam_kernel::{Automaton, History, ProcessId, ProcessSet, Simulator};

/// Extracts the delivered message (if any) from a protocol event, so the
/// trace bus can name it in [`TraceEvent::Deliver`].
pub type DeliveryMsgFn<A> = fn(&<A as Automaton>::Event) -> Option<MessageId>;

/// The kernel simulator as an [`Executor`].
///
/// Generic over the automaton, like the simulator itself; a delivery
/// extractor (see [`KernelExecutor::with_delivery_msg`]) lets the trace bus
/// name the delivered message of a protocol event.
pub struct KernelExecutor<A: Automaton, H: History<Value = A::Fd>> {
    sim: Simulator<A, H>,
    set: ProcessSet,
    digest: Digest,
    observers: Vec<Box<dyn Observer + Send>>,
    delivery_msg: Option<DeliveryMsgFn<A>>,
    events_seen: usize,
    crashed_seen: ProcessSet,
}

impl<A: Automaton, H: History<Value = A::Fd>> KernelExecutor<A, H> {
    /// Wraps `sim`, scheduling every process of its universe.
    pub fn new(sim: Simulator<A, H>) -> Self {
        let set = sim.universe();
        KernelExecutor::with_set(sim, set)
    }

    /// Wraps `sim`, scheduling **only** the processes of `set` (the
    /// adversarial subset schedules of §5).
    pub fn with_set(sim: Simulator<A, H>, set: ProcessSet) -> Self {
        KernelExecutor {
            sim,
            set,
            digest: Digest::new(),
            observers: Vec::new(),
            delivery_msg: None,
            events_seen: 0,
            crashed_seen: ProcessSet::EMPTY,
        }
    }

    /// Registers an extractor naming the delivered message of a protocol
    /// event, so [`TraceEvent::Deliver`] carries a [`MessageId`] instead of
    /// `None`.
    pub fn with_delivery_msg(mut self, f: DeliveryMsgFn<A>) -> Self {
        self.delivery_msg = Some(f);
        self
    }

    /// Read access to the wrapped simulator.
    pub fn sim(&self) -> &Simulator<A, H> {
        &self.sim
    }

    /// Mutable access to the wrapped simulator (e.g. to inject protocol
    /// requests between runs).
    pub fn sim_mut(&mut self) -> &mut Simulator<A, H> {
        &mut self.sim
    }

    /// Consumes the executor, returning the simulator.
    pub fn into_sim(self) -> Simulator<A, H> {
        self.sim
    }

    fn publish(&mut self, ev: &TraceEvent) {
        for obs in &mut self.observers {
            obs.on_event(ev);
        }
    }
}

/// A [`KernelExecutor`] checkpoint: the whole simulator (automata,
/// in-flight messages, trace, RNG, cursors) plus the executor's history
/// digest and publication cursors. Observers and the delivery extractor
/// are configuration and stay out (see [`SnapshotExec`]).
#[derive(Debug, Clone)]
pub struct KernelSnapshot<A: Automaton, H: History<Value = A::Fd>> {
    sim: Simulator<A, H>,
    digest: Digest,
    events_seen: usize,
    crashed_seen: ProcessSet,
}

impl<A, H> SnapshotExec for KernelExecutor<A, H>
where
    A: Automaton + Clone + Send,
    A::Msg: Send,
    // `Sync` rides along with `Send` here: the trace's sealed log chunks
    // are `Arc`-shared between a snapshot and its executor, and an
    // `Arc<Vec<E>>` only crosses threads when `E: Send + Sync`.
    A::Event: Send + Sync,
    H: History<Value = A::Fd> + Clone + Send,
{
    type Snapshot = KernelSnapshot<A, H>;

    fn snapshot(&self) -> KernelSnapshot<A, H> {
        KernelSnapshot {
            sim: self.sim.clone(),
            digest: self.digest,
            events_seen: self.events_seen,
            crashed_seen: self.crashed_seen,
        }
    }

    fn restore(&mut self, snap: &KernelSnapshot<A, H>) {
        self.sim = snap.sim.clone();
        self.digest = snap.digest;
        self.events_seen = snap.events_seen;
        self.crashed_seen = snap.crashed_seen;
    }
}

impl<A: Automaton, H: History<Value = A::Fd>> Executor for KernelExecutor<A, H> {
    fn enabled_actions(&mut self, out: &mut Vec<(ProcessId, usize)>) {
        self.sim.options_into(self.set, out);
    }

    fn step(&mut self, action: ChoiceStep) {
        let sends_before = self.sim.total_messages();
        let received = self.sim.step_choice(action.pid, action.choice);
        let now = self.sim.now();
        // Incremental digest: exactly the words the pre-engine post-hoc
        // rehash folded per recorded step.
        self.digest.push(now.0);
        self.digest.push(u64::from(action.pid.0));
        self.digest.push(received.map_or(0, |m| m.0 + 1));
        if self.observers.is_empty() {
            return;
        }
        let pid = action.pid;
        self.publish(&TraceEvent::Step {
            time: now,
            pid,
            choice: action.choice,
        });
        let newly_crashed = (self.sim.universe() - self.sim.alive()) - self.crashed_seen;
        for p in newly_crashed {
            self.crashed_seen.insert(p);
            self.publish(&TraceEvent::Crash { time: now, pid: p });
        }
        if self.sim.alive().contains(pid) {
            self.publish(&TraceEvent::FdQuery { time: now, pid });
        }
        if let Some(msg) = received {
            self.publish(&TraceEvent::Receive {
                time: now,
                pid,
                msg,
            });
        }
        for _ in sends_before..self.sim.total_messages() {
            self.publish(&TraceEvent::Send { time: now, pid });
        }
        let n_events = self.sim.trace().events().len();
        for i in self.events_seen..n_events {
            let ev = &self.sim.trace().events()[i];
            let deliver = TraceEvent::Deliver {
                time: ev.time,
                pid: ev.pid,
                msg: self.delivery_msg.and_then(|f| f(&ev.event)),
            };
            self.publish(&deliver);
        }
        self.events_seen = n_events;
    }

    fn state_digest(&self) -> u64 {
        self.digest.value()
    }

    fn is_quiescent(&self) -> bool {
        self.sim.is_quiescent_in(self.set)
    }

    fn idle_tick(&mut self) -> bool {
        // The kernel has no time-gated guards: an empty choice space is
        // final, so there is nothing to wait for.
        false
    }

    fn attach(&mut self, observer: Box<dyn Observer + Send>) {
        self.observers.push(observer);
    }
}
