//! The trace bus: structured run events and the [`Observer`] hook.
//!
//! Every [`Executor`](crate::Executor) publishes the observable happenings
//! of a run — steps, message traffic, failure-detector queries, deliveries,
//! crashes, idle ticks — as [`TraceEvent`]s on an observer bus. Consumers
//! (statistics collectors, live trace printers, equivalence checkers)
//! subscribe once and work unchanged against either substrate.
//!
//! Observation is strictly additive: executors skip all event construction
//! when no observer is attached, so the hot step loop pays nothing for the
//! bus it doesn't use.

use gam_core::MessageId;
use gam_kernel::{MsgId, ProcessId, Time};
use std::sync::{Arc, Mutex};

/// One observable happening of a run, published to [`Observer`]s.
///
/// Not every substrate emits every variant: the message-passing kernel
/// emits `Send`/`Receive`/`FdQuery` (its steps move messages and sample the
/// detector), while the shared-memory runtime emits `Idle` (its clock can
/// advance without a step while guards wait on detector time). Both emit
/// `Step`, `Deliver` and `Crash`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A process took a scheduled step (sub-choice `choice` of its options).
    Step {
        /// When the step was taken.
        time: Time,
        /// The stepping process.
        pid: ProcessId,
        /// The sub-choice taken, in the driver's deterministic option order.
        choice: usize,
    },
    /// A send operation (kernel substrate; one event per send, fanning out
    /// to the destination set under a single [`MsgId`]).
    Send {
        /// When the message was sent.
        time: Time,
        /// The sender.
        pid: ProcessId,
    },
    /// A non-null message receipt (kernel substrate).
    Receive {
        /// When the message was received.
        time: Time,
        /// The receiver.
        pid: ProcessId,
        /// The received message.
        msg: MsgId,
    },
    /// A failure-detector sample (kernel substrate: one per step).
    FdQuery {
        /// When the detector was queried.
        time: Time,
        /// The querying process.
        pid: ProcessId,
    },
    /// A protocol-level delivery.
    Deliver {
        /// When the delivery happened.
        time: Time,
        /// The delivering process.
        pid: ProcessId,
        /// The delivered message, when the substrate can name it (the
        /// runtime always can; the generic kernel executor needs a
        /// delivery extractor — see
        /// [`KernelExecutor::with_delivery_msg`](crate::KernelExecutor::with_delivery_msg)).
        msg: Option<MessageId>,
    },
    /// A process crashed.
    Crash {
        /// When the crash took effect.
        time: Time,
        /// The crashed process.
        pid: ProcessId,
    },
    /// The clock advanced without a step (runtime substrate: guards can be
    /// waiting on detector time alone).
    Idle {
        /// The new time.
        time: Time,
    },
}

/// A subscriber on the trace bus.
pub trait Observer {
    /// Called once per published event, in emission order.
    fn on_event(&mut self, ev: &TraceEvent);
}

/// Shared-ownership subscription: attach an `Arc<Mutex<O>>` clone to an
/// executor and keep the other clone to read the results afterwards. The
/// `Arc`/`Mutex` pairing (rather than `Rc`/`RefCell`) keeps the
/// subscription `Send`, so an observed executor can move to a worker
/// thread; the lock is uncontended in the single-executor case, and
/// executors publish nothing at all when no observer is attached.
impl<O: Observer> Observer for Arc<Mutex<O>> {
    fn on_event(&mut self, ev: &TraceEvent) {
        self.lock().expect("observer lock").on_event(ev);
    }
}

/// An observer that retains every event, in order.
#[derive(Debug, Default)]
pub struct EventLog {
    events: Vec<TraceEvent>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> Self {
        EventLog::default()
    }

    /// The events observed so far, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// The delivery sequence of `p`, in delivery order (messages the
    /// substrate could name).
    pub fn delivered_by(&self, p: ProcessId) -> Vec<MessageId> {
        self.events
            .iter()
            .filter_map(|ev| match ev {
                TraceEvent::Deliver { pid, msg, .. } if *pid == p => *msg,
                _ => None,
            })
            .collect()
    }
}

impl Observer for EventLog {
    fn on_event(&mut self, ev: &TraceEvent) {
        self.events.push(*ev);
    }
}

/// An observer that only counts, per event kind.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EventCounts {
    /// Scheduled steps taken.
    pub steps: u64,
    /// Send operations.
    pub sends: u64,
    /// Non-null receipts.
    pub receives: u64,
    /// Failure-detector samples.
    pub fd_queries: u64,
    /// Protocol-level deliveries.
    pub deliveries: u64,
    /// Crashes.
    pub crashes: u64,
    /// Idle clock ticks.
    pub idles: u64,
}

impl Observer for EventCounts {
    fn on_event(&mut self, ev: &TraceEvent) {
        match ev {
            TraceEvent::Step { .. } => self.steps += 1,
            TraceEvent::Send { .. } => self.sends += 1,
            TraceEvent::Receive { .. } => self.receives += 1,
            TraceEvent::FdQuery { .. } => self.fd_queries += 1,
            TraceEvent::Deliver { .. } => self.deliveries += 1,
            TraceEvent::Crash { .. } => self.crashes += 1,
            TraceEvent::Idle { .. } => self.idles += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_tally_by_kind() {
        let mut c = EventCounts::default();
        c.on_event(&TraceEvent::Step {
            time: Time(1),
            pid: ProcessId(0),
            choice: 0,
        });
        c.on_event(&TraceEvent::Deliver {
            time: Time(2),
            pid: ProcessId(0),
            msg: Some(MessageId(3)),
        });
        c.on_event(&TraceEvent::Idle { time: Time(3) });
        assert_eq!((c.steps, c.deliveries, c.idles), (1, 1, 1));
        assert_eq!(c.sends + c.receives + c.fd_queries + c.crashes, 0);
    }

    #[test]
    fn log_extracts_delivery_sequences() {
        let log = Arc::new(Mutex::new(EventLog::new()));
        let mut sub = Arc::clone(&log);
        sub.on_event(&TraceEvent::Deliver {
            time: Time(1),
            pid: ProcessId(1),
            msg: Some(MessageId(0)),
        });
        sub.on_event(&TraceEvent::Deliver {
            time: Time(2),
            pid: ProcessId(1),
            msg: Some(MessageId(1)),
        });
        assert_eq!(
            log.lock().unwrap().delivered_by(ProcessId(1)),
            vec![MessageId(0), MessageId(1)]
        );
        assert!(log.lock().unwrap().delivered_by(ProcessId(0)).is_empty());
    }
}
