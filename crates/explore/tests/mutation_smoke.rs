//! Mutation smoke test: with `--features mutation`, gam-core's
//! `deliver_enabled` deliberately skips the cross-group log ordering
//! constraints (`LOG_{g∩h}`), the sole cross-group order enforcement on
//! topologies with no cyclic families. The explorer must find the resulting
//! ordering violation within a fixed budget and shrink it to a small,
//! deterministically replayable repro.
//!
//! Run with: `cargo test -p gam-explore --features mutation`
#![cfg(feature = "mutation")]

use gam_explore::{explore_swarm, Repro, Scenario, DEFAULT_SHRINK_BUDGET};
use gam_groups::topology;

#[test]
fn explorer_finds_and_shrinks_the_seeded_ordering_bug() {
    // two_overlapping has no cyclic family (γ = ∅ throughout), so the
    // mutated guard is the only thing ordering cross-group deliveries.
    let scenario = Scenario::one_per_group(&topology::two_overlapping(4, 2), 200_000);
    let stats = explore_swarm(&scenario, 0..64, DEFAULT_SHRINK_BUDGET);
    assert!(
        !stats.violations.is_empty(),
        "mutation survived {} swarm seeds",
        stats.runs
    );
    let cx = &stats.violations[0];
    assert_eq!(cx.violation.property, "ordering");

    // The shrunk repro is minimal-ish: no crashes to drop, few schedule
    // entries left, and the shrinker stayed within its run budget.
    let repro = &cx.repro;
    assert!(repro.scenario.crashes.is_empty(), "failure-free scenario");
    assert!(
        repro.schedule.len() <= 64,
        "shrunk schedule still has {} entries",
        repro.schedule.len()
    );
    assert!(cx.shrink_runs <= 800, "shrinker blew its budget");

    // It still violates the same property, deterministically: two replays
    // hash identically, and the text round-trip preserves the verdict.
    assert_eq!(repro.trace_hash(), repro.trace_hash());
    repro
        .verify()
        .expect("shrunk repro still violates ordering");
    let reparsed = Repro::parse(&repro.to_text()).expect("round-trips");
    assert_eq!(reparsed.trace_hash(), repro.trace_hash());
    reparsed
        .verify()
        .expect("parsed repro still violates ordering");
}

#[test]
fn clean_topologies_still_pass_under_mutation_when_no_overlap() {
    // Sanity: the mutation only bites where groups intersect; disjoint
    // groups must stay clean, so a finding above really is the seeded bug.
    let scenario = Scenario::one_per_group(&topology::disjoint(2, 3), 200_000);
    let stats = explore_swarm(&scenario, 0..8, DEFAULT_SHRINK_BUDGET);
    assert!(stats.clean(), "violations: {:?}", stats.violations);
}
