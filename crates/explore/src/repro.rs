//! Self-contained, replayable counterexamples.
//!
//! A [`Repro`] bundles everything a run needs — topology, failure pattern,
//! submissions, variant, budget and the recorded schedule — in a stable
//! line-oriented text format, so a counterexample found by the explorer can
//! be pasted into `tests/fixtures/` and replayed byte-identically by
//! `tests/regressions.rs` forever after.
//!
//! ```text
//! gam-repro v1
//! variant standard
//! processes 6
//! group 0 1 2 3
//! group 2 3 4 5
//! crash 2 40
//! submit 0 0 7
//! seed 17
//! budget 200000
//! property ordering
//! schedule 1:0 2:1 0:0
//! ```
//!
//! `property` names the spec axiom the schedule violates (`-` for a clean
//! run); `schedule` lines (there may be several) hold `pid:choice` pairs
//! and concatenate in order. An optional `batch <width>` line (after
//! `budget`) records a Level-A consensus batching width greater than 1;
//! unbatched repros omit it, so pre-batching fixtures render unchanged.

use crate::trace_hash;
use crate::{PrefixTail, Scenario};
use gam_core::spec::{check_all, check_named};
use gam_core::{RunReport, Variant};
use gam_groups::{GroupId, GroupSystem};
use gam_kernel::schedule::{ChoiceStep, ReplaySource};
use gam_kernel::{ProcessId, ProcessSet, Time};
use std::fmt::Write as _;

/// A replayable run: scenario + schedule + provenance.
#[derive(Debug, Clone)]
pub struct Repro {
    /// The scenario of the run.
    pub scenario: Scenario,
    /// The recorded schedule prefix; the run completes with the fair
    /// round-robin tail.
    pub schedule: Vec<ChoiceStep>,
    /// Provenance: the swarm seed (or 0) that produced the schedule.
    pub seed: u64,
    /// The spec property this schedule violates, if any.
    pub property: Option<String>,
}

impl Repro {
    /// Replays the run: the recorded schedule, then the fair tail, within
    /// the scenario's budget.
    pub fn replay(&self) -> RunReport {
        let mut source = PrefixTail::new(ReplaySource::new(self.schedule.clone()));
        self.scenario.run(&mut source)
    }

    /// Replays and digests the run (see [`trace_hash`]).
    pub fn trace_hash(&self) -> u64 {
        trace_hash(&self.replay())
    }

    /// Replays the run and checks that its verdict matches [`Repro::property`]:
    /// a clean repro must pass `spec::check_all`, a counterexample must
    /// still violate the recorded property. A property outside the
    /// variant's `check_all` set (e.g. global `ordering` recorded against a
    /// pairwise-variant scenario — the solvability-boundary shape) is
    /// re-checked through the targeted `spec::check_named` checker.
    ///
    /// # Errors
    ///
    /// Returns a description of the mismatch.
    pub fn verify(&self) -> Result<RunReport, String> {
        let report = self.replay();
        let verdict = check_all(&report, self.scenario.variant);
        match (&self.property, verdict) {
            (None, Ok(())) => Ok(report),
            (None, Err(v)) => Err(format!("clean repro now violates the spec: {v}")),
            (Some(p), Err(v)) if v.property == p => Ok(report),
            (Some(p), other) => match check_named(&report, p) {
                Some(Err(v)) if v.property == p => Ok(report),
                Some(_) | None => match other {
                    Err(v) => Err(format!("repro expected to violate {p}, but violated: {v}")),
                    Ok(()) => Err(format!("repro no longer violates {p}")),
                },
            },
        }
    }

    /// Serializes to the `gam-repro v1` text format.
    pub fn to_text(&self) -> String {
        let mut out = String::from("gam-repro v1\n");
        let variant = match self.scenario.variant {
            Variant::Standard => "standard",
            Variant::Strict => "strict",
            Variant::Pairwise => "pairwise",
        };
        let _ = writeln!(out, "variant {variant}");
        let _ = writeln!(out, "processes {}", self.scenario.system.universe().len());
        for (_, members) in self.scenario.system.iter() {
            let ids: Vec<String> = members.iter().map(|p| p.0.to_string()).collect();
            let _ = writeln!(out, "group {}", ids.join(" "));
        }
        for (p, t) in &self.scenario.crashes {
            let _ = writeln!(out, "crash {} {}", p.0, t.0);
        }
        for (src, g, payload) in &self.scenario.submissions {
            let _ = writeln!(out, "submit {} {} {}", src.0, g.0, payload);
        }
        let _ = writeln!(out, "seed {}", self.seed);
        let _ = writeln!(out, "budget {}", self.scenario.max_steps);
        // Written only when batching is on: pre-batching fixtures keep
        // rendering (and replaying) byte-identically.
        if self.scenario.batch_max > 1 {
            let _ = writeln!(out, "batch {}", self.scenario.batch_max);
        }
        let _ = writeln!(out, "property {}", self.property.as_deref().unwrap_or("-"));
        // Schedules can be long: chunk them into readable lines.
        for chunk in self.schedule.chunks(16) {
            let pairs: Vec<String> = chunk
                .iter()
                .map(|s| format!("{}:{}", s.pid.0, s.choice))
                .collect();
            let _ = writeln!(out, "schedule {}", pairs.join(" "));
        }
        out
    }

    /// Parses the `gam-repro v1` text format (inverse of [`Repro::to_text`];
    /// blank lines and `#` comments are ignored).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn parse(text: &str) -> Result<Repro, String> {
        let mut lines = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'));
        if lines.next() != Some("gam-repro v1") {
            return Err("missing `gam-repro v1` header".into());
        }
        let mut variant = Variant::Standard;
        let mut processes: Option<usize> = None;
        let mut groups: Vec<ProcessSet> = Vec::new();
        let mut crashes = Vec::new();
        let mut submissions = Vec::new();
        let mut seed = 0u64;
        let mut budget = 100_000u64;
        let mut batch_max = 1u32;
        let mut property = None;
        let mut schedule = Vec::new();
        for line in lines {
            let (key, rest) = line.split_once(' ').unwrap_or((line, ""));
            match key {
                "variant" => {
                    variant = match rest {
                        "standard" => Variant::Standard,
                        "strict" => Variant::Strict,
                        "pairwise" => Variant::Pairwise,
                        other => return Err(format!("unknown variant {other:?}")),
                    }
                }
                "processes" => processes = Some(parse_num(rest)? as usize),
                "group" => {
                    let mut members = ProcessSet::new();
                    for tok in rest.split_whitespace() {
                        members.insert(ProcessId(parse_num(tok)? as u32));
                    }
                    groups.push(members);
                }
                "crash" => {
                    let nums = parse_nums(rest, 2)?;
                    crashes.push((ProcessId(nums[0] as u32), Time(nums[1])));
                }
                "submit" => {
                    let nums = parse_nums(rest, 3)?;
                    submissions.push((ProcessId(nums[0] as u32), GroupId(nums[1] as u32), nums[2]));
                }
                "seed" => seed = parse_num(rest)?,
                "budget" => budget = parse_num(rest)?,
                "batch" => batch_max = parse_num(rest)? as u32,
                "property" => property = (rest != "-").then(|| rest.to_string()),
                "schedule" => {
                    for tok in rest.split_whitespace() {
                        let (pid, choice) = tok
                            .split_once(':')
                            .ok_or_else(|| format!("malformed schedule entry {tok:?}"))?;
                        schedule.push(ChoiceStep {
                            pid: ProcessId(parse_num(pid)? as u32),
                            choice: parse_num(choice)? as usize,
                        });
                    }
                }
                other => return Err(format!("unknown key {other:?}")),
            }
        }
        let n = processes.ok_or("missing `processes` line")?;
        if groups.is_empty() {
            return Err("missing `group` lines".into());
        }
        let system = GroupSystem::new(ProcessSet::first_n(n), groups);
        Ok(Repro {
            scenario: Scenario {
                system,
                crashes,
                submissions,
                variant,
                max_steps: budget,
                batch_max,
            },
            schedule,
            seed,
            property,
        })
    }
}

fn parse_num(tok: &str) -> Result<u64, String> {
    tok.parse()
        .map_err(|_| format!("expected a number, got {tok:?}"))
}

fn parse_nums(rest: &str, want: usize) -> Result<Vec<u64>, String> {
    let nums: Vec<u64> = rest
        .split_whitespace()
        .map(parse_num)
        .collect::<Result<_, _>>()?;
    if nums.len() != want {
        return Err(format!("expected {want} numbers in {rest:?}"));
    }
    Ok(nums)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gam_groups::topology;
    use gam_kernel::schedule::{RandomSource, RecordingSource};

    fn sample() -> Repro {
        let scenario = Scenario {
            system: topology::two_overlapping(3, 1),
            crashes: vec![(ProcessId(4), Time(50))],
            submissions: vec![(ProcessId(0), GroupId(0), 7), (ProcessId(4), GroupId(1), 8)],
            variant: Variant::Standard,
            max_steps: 50_000,
            batch_max: 1,
        };
        let mut source = RecordingSource::new(RandomSource::new(17));
        let _ = scenario.run(&mut source);
        Repro {
            scenario,
            schedule: source.into_log(),
            seed: 17,
            property: None,
        }
    }

    #[test]
    fn text_round_trip_preserves_replay() {
        let repro = sample();
        let text = repro.to_text();
        let parsed = Repro::parse(&text).expect("parses");
        assert_eq!(parsed.schedule, repro.schedule);
        assert_eq!(parsed.seed, repro.seed);
        assert_eq!(parsed.scenario.system, repro.scenario.system);
        assert_eq!(parsed.trace_hash(), repro.trace_hash());
        assert_eq!(parsed.to_text(), text, "serialization is canonical");
    }

    #[test]
    fn replay_is_deterministic() {
        let repro = sample();
        assert_eq!(repro.trace_hash(), repro.trace_hash());
        repro.verify().expect("clean repro verifies");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Repro::parse("not a repro").is_err());
        assert!(Repro::parse("gam-repro v1\nprocesses 2\n").is_err());
        assert!(Repro::parse("gam-repro v1\nvariant bogus\n").is_err());
        assert!(Repro::parse("gam-repro v1\nprocesses 2\ngroup 0 1\nschedule x\n").is_err());
    }
}
