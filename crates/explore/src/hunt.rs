//! The counterexample hunt: descriptors in, shrunk `.repro`/`.scn` pairs
//! out.
//!
//! A hunt takes `gam-scn v1` descriptors (typically fresh seeds over the
//! [`gam_scenarios::corpus`] families), explores each one — a seeded swarm
//! first, then bounded exhaustive enumeration — under the full spec, and on
//! a violation shrinks the failing run with the delta-debugger into a
//! [`Repro`] paired with the descriptor that produced it. The pair is
//! self-contained: the `.scn` line regenerates the scenario, the `.repro`
//! replays the violating schedule, and `Repro::verify` re-checks the
//! recorded property on every CI run thereafter.
//!
//! With [`HuntConfig::ordering_boundary`] set, runs that pass their
//! variant's own checks are additionally checked against **global**
//! `ordering` — the paper's solvability boundary made executable: on
//! cyclic topologies under the pairwise variation, global ordering is the
//! axiom that genuinely fails (arXiv:2208.07650, §6), and this mode makes
//! the hunt surface those runs as first-class counterexamples.

use crate::explorer::found;
use crate::{
    explore_exhaustive_dfs_par, ExploreConfig, Outcome, Repro, Scenario, DEFAULT_SHRINK_BUDGET,
};
use gam_core::spec::{check_all, check_named, SpecViolation};
use gam_core::Variant;
use gam_engine::run_with_source_counted;
use gam_kernel::schedule::{RandomSource, RecordingSource};
use gam_kernel::RunOutcome;
use gam_scenarios::ScnDescriptor;
use std::ops::Range;

/// How hard to explore each descriptor.
#[derive(Debug, Clone)]
pub struct HuntConfig {
    /// Swarm seeds driven through each scenario (recorded, shrinkable).
    pub swarm_seeds: Range<u64>,
    /// Choice depth of the follow-up bounded exhaustive enumeration.
    pub depth: usize,
    /// Run cap of the exhaustive enumeration.
    pub run_cap: u64,
    /// Candidate-run budget of the shrinker, per finding.
    pub shrink_budget: u64,
    /// Also check global `ordering` on runs that pass their own variant —
    /// the solvability-boundary mode (see module docs).
    pub ordering_boundary: bool,
    /// Sleep-set partial-order reduction for the exhaustive phase
    /// (on by default; automatically inert on descriptors with crashes).
    /// The phase runs on the snapshotting DFS engine either way, so the
    /// same run cap covers more distinct behaviors per descriptor.
    pub por: bool,
}

impl Default for HuntConfig {
    fn default() -> Self {
        HuntConfig {
            swarm_seeds: 0..16,
            depth: 2,
            run_cap: 300,
            shrink_budget: DEFAULT_SHRINK_BUDGET,
            ordering_boundary: false,
            por: true,
        }
    }
}

/// One shrunk counterexample, paired with the descriptor that produced it.
#[derive(Debug, Clone)]
pub struct HuntFinding {
    /// The canonical `gam-scn v1` line of the descriptor (the `.scn` side
    /// of the checked-in pair).
    pub descriptor: String,
    /// The shrunk, replayable run (the `.repro` side of the pair).
    pub repro: Repro,
    /// The violated spec property.
    pub property: String,
    /// Whether the shrunk repro re-verifies (`Repro::verify`): a `false`
    /// here is an *unshrunk* finding — the reduction lost the violation —
    /// and fails the smoke gate.
    pub verified: bool,
    /// Candidate runs the shrinker spent.
    pub shrink_runs: u64,
    /// The swarm seed that found it (0 for exhaustive findings).
    pub seed: u64,
}

/// What hunting one descriptor covered and found.
#[derive(Debug, Clone)]
pub struct HuntOutcome {
    /// The hunted descriptor.
    pub descriptor: ScnDescriptor,
    /// Swarm runs executed.
    pub swarm_runs: u64,
    /// Exhaustive runs executed (0 when the swarm already found something).
    pub exhaustive_runs: u64,
    /// Whether the exhaustive phase covered its whole bounded space.
    pub exhausted: bool,
    /// Substrate steps executed across both phases.
    pub steps: u64,
    /// Findings (at most one per phase; exploration stops at the first).
    pub findings: Vec<HuntFinding>,
}

/// A whole hunt: one [`HuntOutcome`] per descriptor.
#[derive(Debug, Clone)]
pub struct HuntReport {
    /// Per-descriptor outcomes, in input order.
    pub outcomes: Vec<HuntOutcome>,
}

impl HuntReport {
    /// All findings across the hunt.
    pub fn findings(&self) -> impl Iterator<Item = &HuntFinding> {
        self.outcomes.iter().flat_map(|o| o.findings.iter())
    }

    /// Number of findings whose shrunk repro failed to re-verify. The
    /// smoke job gates on this being zero: every counterexample the hunt
    /// reports must replay.
    pub fn unshrunk(&self) -> usize {
        self.findings().filter(|f| !f.verified).count()
    }

    /// Total runs executed across all descriptors and phases.
    pub fn total_runs(&self) -> u64 {
        self.outcomes
            .iter()
            .map(|o| o.swarm_runs + o.exhaustive_runs)
            .sum()
    }

    /// Total substrate steps executed.
    pub fn total_steps(&self) -> u64 {
        self.outcomes.iter().map(|o| o.steps).sum()
    }
}

/// The verdict of one run under hunt rules: the variant's own `check_all`,
/// then (in boundary mode) global `ordering` on top.
fn hunt_verdict(
    report: &gam_core::RunReport,
    variant: Variant,
    cfg: &HuntConfig,
) -> Result<(), SpecViolation> {
    check_all(report, variant)?;
    if cfg.ordering_boundary {
        if let Some(verdict) = check_named(report, "ordering") {
            verdict?;
        }
    }
    Ok(())
}

fn finding_from(
    descriptor: &ScnDescriptor,
    scenario: &Scenario,
    schedule: Vec<gam_kernel::ChoiceStep>,
    violation: SpecViolation,
    seed: u64,
    shrink_budget: u64,
) -> HuntFinding {
    let cx = found(scenario, schedule, violation, seed, shrink_budget);
    HuntFinding {
        descriptor: descriptor.render(),
        verified: cx.repro.verify().is_ok(),
        property: cx.violation.property.to_string(),
        repro: cx.repro,
        shrink_runs: cx.shrink_runs,
        seed,
    }
}

/// Hunts one descriptor: swarm phase, then (if nothing was found) bounded
/// exhaustive enumeration. Stops at the first finding of each phase.
pub fn hunt_one(descriptor: &ScnDescriptor, cfg: &HuntConfig) -> HuntOutcome {
    let scenario = Scenario::from_descriptor(descriptor);
    let mut outcome = HuntOutcome {
        descriptor: *descriptor,
        swarm_runs: 0,
        exhaustive_runs: 0,
        exhausted: false,
        steps: 0,
        findings: Vec::new(),
    };
    // Phase 1: recorded seeded swarm, checked under hunt rules.
    for seed in cfg.swarm_seeds.clone() {
        let mut source = RecordingSource::new(RandomSource::new(seed));
        let mut exec = scenario.runtime_executor();
        let (out, consumed) = run_with_source_counted(&mut exec, &mut source, scenario.max_steps);
        outcome.steps += consumed;
        outcome.swarm_runs += 1;
        let report = exec.report(out == RunOutcome::Quiescent);
        if let Err(violation) = hunt_verdict(&report, scenario.variant, cfg) {
            outcome.findings.push(finding_from(
                descriptor,
                &scenario,
                source.into_log(),
                violation,
                seed,
                cfg.shrink_budget,
            ));
            return outcome;
        }
    }
    // Phase 2: bounded exhaustive enumeration under the stock spec (the
    // boundary re-check is swarm-only; the enumerated space is checked by
    // `check_all` inside the explorer). Runs on the snapshotting DFS
    // engine at one thread — deterministic, prefix-shared, and (with
    // `cfg.por`) sleep-set pruned, so the run cap buys more coverage.
    if cfg.run_cap == 0 {
        // Swarm-only hunt (e.g. boundary mode): skip even the frontier
        // probe runs the pool would spend before hitting the zero cap.
        return outcome;
    }
    let explore_cfg = ExploreConfig {
        threads: 1,
        shrink_budget: cfg.shrink_budget,
        dedup_capacity: 0,
        por: cfg.por,
    };
    let stats = explore_exhaustive_dfs_par(&scenario, cfg.depth, cfg.run_cap, &explore_cfg);
    outcome.exhaustive_runs = stats.runs;
    outcome.steps += stats.steps_executed;
    outcome.exhausted = stats.outcome == Outcome::Exhausted;
    for cx in stats.violations {
        outcome.findings.push(HuntFinding {
            descriptor: descriptor.render(),
            verified: cx.repro.verify().is_ok(),
            property: cx.violation.property.to_string(),
            repro: cx.repro,
            shrink_runs: cx.shrink_runs,
            seed: 0,
        });
    }
    outcome
}

/// Hunts every descriptor in order.
pub fn hunt(descriptors: &[ScnDescriptor], cfg: &HuntConfig) -> HuntReport {
    HuntReport {
        outcomes: descriptors.iter().map(|d| hunt_one(d, cfg)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gam_scenarios::{Family, TrafficPlan};

    #[test]
    fn clean_descriptor_hunts_clean() {
        let d = ScnDescriptor::parse("gam-scn v1 family=single(2) budget=20000").unwrap();
        let cfg = HuntConfig {
            swarm_seeds: 0..4,
            depth: 2,
            run_cap: 100,
            ..Default::default()
        };
        let report = hunt(&[d], &cfg);
        assert_eq!(report.findings().count(), 0);
        assert_eq!(report.unshrunk(), 0);
        assert_eq!(report.outcomes[0].swarm_runs, 4);
        assert!(report.outcomes[0].exhaustive_runs > 0);
        assert!(report.total_runs() >= 5);
        assert!(report.total_steps() > 0);
    }

    #[test]
    fn starved_budget_yields_a_verified_shrunk_finding() {
        // A budget this small fails termination on every schedule: the hunt
        // must find it, shrink it, and hand back a pair that re-verifies —
        // the end-to-end proof of the find → shrink → verify pipeline.
        let mut d = ScnDescriptor::new(Family::Two {
            size: 3,
            overlap: 1,
        });
        d.traffic = TrafficPlan::One;
        d.budget = 12;
        let cfg = HuntConfig {
            swarm_seeds: 0..2,
            ..Default::default()
        };
        let outcome = hunt_one(&d, &cfg);
        assert_eq!(outcome.findings.len(), 1);
        let finding = &outcome.findings[0];
        assert_eq!(finding.property, "termination");
        assert!(finding.verified, "shrunk repro re-verifies");
        assert_eq!(finding.descriptor, d.render());
        // the pair is self-contained text
        assert!(finding.repro.to_text().starts_with("gam-repro v1"));
        assert!(finding.descriptor.starts_with("gam-scn v1"));
    }
}
