//! Driving the Level-B (message-passing) deployment through schedule
//! sources.
//!
//! The runtime-level explorer checks Algorithm 1 over linearizable shared
//! objects; this module aims the same [`ScheduleSource`] machinery at the
//! other end of the stack: `gam_core::distributed::DistProcess` automata
//! under the kernel [`Simulator`], where every scheduling choice is *which
//! pending network message a process receives next*. Runs are recorded,
//! replayable and hashed, and terminal states are checked for delivery and
//! pairwise agreement.
//!
//! [`ScheduleSource`]: gam_kernel::schedule::ScheduleSource

use crate::hash::fnv1a;
use crate::PrefixTail;
use gam_core::distributed::{DistProcess, MuHistory};
use gam_core::MessageId;
use gam_detectors::{MuConfig, MuOracle};
use gam_groups::GroupSystem;
use gam_kernel::schedule::{
    ChoiceStep, RandomSource, RecordingSource, ReplaySource, ScheduleSource,
};
use gam_kernel::{FailurePattern, RunOutcome, Simulator};

/// The outcome of one kernel-level run.
#[derive(Debug, Clone)]
pub struct KernelRun {
    /// How the run loop stopped.
    pub outcome: RunOutcome,
    /// The recorded schedule (replay with [`replay_run`]).
    pub schedule: Vec<ChoiceStep>,
    /// Digest of the full run: schedule steps + per-process deliveries.
    pub hash: u64,
    /// The first delivery/agreement violation found, if any.
    pub violation: Option<String>,
}

fn build(system: &GroupSystem) -> Simulator<DistProcess, MuHistory> {
    let pattern = FailurePattern::all_correct(system.universe());
    let autos = system
        .universe()
        .iter()
        .map(|p| DistProcess::new(p, system))
        .collect();
    let mu = MuOracle::new(system, pattern.clone(), MuConfig::default());
    let mut sim = Simulator::new(autos, pattern, MuHistory::new(mu)).with_schedule_recording();
    for (i, (g, members)) in system.iter().enumerate() {
        let src = members.min().expect("non-empty group");
        sim.automaton_mut(src).multicast(MessageId(i as u64), g);
    }
    sim
}

fn digest(sim: &Simulator<DistProcess, MuHistory>, outcome: RunOutcome) -> u64 {
    let mut words = vec![u64::from(outcome == RunOutcome::Quiescent)];
    for step in sim.trace().steps() {
        words.push(step.time.0);
        words.push(u64::from(step.pid.0));
        words.push(step.received.map_or(0, |m| m.0 + 1));
    }
    for p in sim.universe() {
        words.push(u64::from(p.0));
        for m in sim.automaton(p).delivered() {
            words.push(m.0 + 1);
        }
    }
    fnv1a(words)
}

fn check(
    sim: &Simulator<DistProcess, MuHistory>,
    system: &GroupSystem,
    outcome: RunOutcome,
) -> Option<String> {
    // Agreement on shared deliveries, quiescent or not.
    for p in system.universe() {
        for q in system.universe() {
            let (dp, dq) = (sim.automaton(p).delivered(), sim.automaton(q).delivered());
            for (i, m1) in dp.iter().enumerate() {
                for m2 in &dp[i + 1..] {
                    if let (Some(j1), Some(j2)) = (
                        dq.iter().position(|x| x == m1),
                        dq.iter().position(|x| x == m2),
                    ) {
                        if j1 >= j2 {
                            return Some(format!("{p} and {q} disagree on {m1}/{m2}"));
                        }
                    }
                }
            }
        }
    }
    // On quiescence, every group member must hold its group's message.
    if outcome == RunOutcome::Quiescent {
        for (i, (_, members)) in system.iter().enumerate() {
            let m = MessageId(i as u64);
            for p in members {
                if !sim.automaton(p).delivered().contains(&m) {
                    return Some(format!("quiescent but {p} missing {m}"));
                }
            }
        }
    }
    None
}

fn run_with<S: ScheduleSource>(
    system: &GroupSystem,
    mut source: RecordingSource<S>,
    max_steps: u64,
) -> KernelRun {
    let mut sim = build(system);
    let outcome = sim.run_with_source(system.universe(), &mut source, max_steps);
    KernelRun {
        outcome,
        schedule: source.into_log(),
        hash: digest(&sim, outcome),
        violation: check(&sim, system, outcome),
    }
}

/// One failure-free swarm run: one message per group, every receive choice
/// uniformly random under `seed`.
pub fn swarm_run(system: &GroupSystem, seed: u64, max_steps: u64) -> KernelRun {
    run_with(
        system,
        RecordingSource::new(RandomSource::new(seed)),
        max_steps,
    )
}

/// Replays a recorded kernel schedule (completing with the fair round-robin
/// tail if the schedule ends early). A faithful replay reproduces the
/// original [`KernelRun::hash`] exactly.
pub fn replay_run(system: &GroupSystem, schedule: &[ChoiceStep], max_steps: u64) -> KernelRun {
    run_with(
        system,
        RecordingSource::new(PrefixTail::new(ReplaySource::new(schedule.to_vec()))),
        max_steps,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gam_groups::topology;

    #[test]
    fn swarm_is_seed_deterministic() {
        let gs = topology::ring(3, 2);
        let a = swarm_run(&gs, 3, 2_000_000);
        let b = swarm_run(&gs, 3, 2_000_000);
        assert_eq!(a.hash, b.hash);
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.violation, None, "{:?}", a.violation);
        let c = swarm_run(&gs, 4, 2_000_000);
        assert_ne!(a.hash, c.hash, "different seed, different run");
    }

    #[test]
    fn replay_reproduces_the_swarm_run() {
        let gs = topology::two_overlapping(3, 1);
        let original = swarm_run(&gs, 11, 2_000_000);
        assert_eq!(original.outcome, RunOutcome::Quiescent);
        let replayed = replay_run(&gs, &original.schedule, 2_000_000);
        assert_eq!(replayed.hash, original.hash, "byte-identical replay");
        assert_eq!(replayed.outcome, original.outcome);
        assert_eq!(replayed.violation, None);
    }
}
