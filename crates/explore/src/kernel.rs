//! Driving the Level-B (message-passing) deployment through schedule
//! sources.
//!
//! The runtime-level explorer checks Algorithm 1 over linearizable shared
//! objects; this module aims the same [`ScheduleSource`] machinery at the
//! other end of the stack: `gam_core::distributed::DistProcess` automata
//! under the kernel [`Simulator`], where every
//! scheduling choice is *which pending network message a process receives
//! next*. Both ends now go through the same [`gam_engine::Executor`]
//! stepping layer: this module only builds the Level-B executor for a
//! [`Scenario`] and interprets its terminal state with the shared
//! `gam_core::spec` checkers.
//!
//! [`ScheduleSource`]: gam_kernel::schedule::ScheduleSource

use crate::{PrefixTail, Scenario};
use gam_core::distributed::{run_report, DistProcess, MuHistory};
use gam_core::spec::{check_all, check_integrity, check_pairwise_agreement};
use gam_core::Variant;
use gam_detectors::{MuConfig, MuOracle};
use gam_groups::GroupSystem;
use gam_kernel::schedule::{ChoiceStep, RandomSource, ReplaySource, ScheduleSource};
use gam_kernel::{RunOutcome, Simulator};

use gam_engine::digest::Digest;
use gam_engine::{Executor, KernelExecutor};

/// The outcome of one kernel-level run.
#[derive(Debug, Clone)]
pub struct KernelRun {
    /// How the run loop stopped.
    pub outcome: RunOutcome,
    /// The recorded schedule (replay with [`replay_run`]).
    pub schedule: Vec<ChoiceStep>,
    /// Digest of the full run: the executor's incremental step digest
    /// extended with the outcome and per-process delivery sequences.
    pub hash: u64,
    /// The first spec violation found, if any.
    pub violation: Option<String>,
}

impl Scenario {
    /// The Level-B (message passing) executor of the scenario: one
    /// [`DistProcess`] per process under the kernel simulator with a `μ`
    /// history, submissions multicast from their sources. Kernel-level
    /// messages carry no user payload, so submission payloads are dropped.
    pub fn kernel_executor(&self) -> KernelExecutor<DistProcess, MuHistory> {
        let pattern = self.pattern();
        let autos = self
            .system
            .universe()
            .iter()
            .map(|p| DistProcess::new(p, &self.system))
            .collect();
        let mu = MuOracle::new(&self.system, pattern.clone(), MuConfig::default());
        let mut sim = Simulator::new(autos, pattern, MuHistory::new(mu));
        for (i, (src, g, _payload)) in self.submissions.iter().enumerate() {
            sim.automaton_mut(*src)
                .multicast(gam_core::MessageId(i as u64), *g);
        }
        KernelExecutor::new(sim).with_delivery_msg(|e| Some(e.msg))
    }
}

fn run_with<S: ScheduleSource>(scenario: &Scenario, source: S) -> KernelRun {
    let mut exec = scenario.kernel_executor();
    let (outcome, schedule) = gam_engine::run_recorded(&mut exec, source, scenario.max_steps);
    let quiescent = outcome == RunOutcome::Quiescent;
    let report = run_report(
        exec.sim(),
        &scenario.system,
        &scenario.submissions,
        quiescent,
    );
    // Extend the incremental step digest with the end-of-run summary.
    let mut digest = Digest::resume(exec.state_digest());
    digest.push(u64::from(quiescent));
    for p in scenario.system.universe() {
        digest.push(u64::from(p.0));
        for m in exec.sim().automaton(p).delivered() {
            digest.push(m.0 + 1);
        }
    }
    // Quiescent runs face the full spec; budget-cut and stopped runs only
    // the checks that are sound on partial runs.
    let violation = if quiescent {
        check_all(&report, Variant::Standard).err()
    } else {
        check_integrity(&report)
            .and_then(|()| check_pairwise_agreement(&report))
            .err()
    };
    KernelRun {
        outcome,
        schedule,
        hash: digest.value(),
        violation: violation.map(|v| v.to_string()),
    }
}

/// One failure-free swarm run: one message per group, every receive choice
/// uniformly random under `seed`.
pub fn swarm_run(system: &GroupSystem, seed: u64, max_steps: u64) -> KernelRun {
    let scenario = Scenario::one_per_group(system, max_steps);
    run_with(&scenario, RandomSource::new(seed))
}

/// Replays a recorded kernel schedule (completing with the fair round-robin
/// tail if the schedule ends early). A faithful replay reproduces the
/// original [`KernelRun::hash`] exactly.
pub fn replay_run(system: &GroupSystem, schedule: &[ChoiceStep], max_steps: u64) -> KernelRun {
    let scenario = Scenario::one_per_group(system, max_steps);
    run_with(
        &scenario,
        PrefixTail::new(ReplaySource::new(schedule.to_vec())),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gam_scenarios::fixture;

    #[test]
    fn swarm_is_seed_deterministic() {
        let gs = fixture("ring_3_2").system();
        let a = swarm_run(&gs, 3, 2_000_000);
        let b = swarm_run(&gs, 3, 2_000_000);
        assert_eq!(a.hash, b.hash);
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.violation, None, "{:?}", a.violation);
        let c = swarm_run(&gs, 4, 2_000_000);
        assert_ne!(a.hash, c.hash, "different seed, different run");
    }

    #[test]
    fn replay_reproduces_the_swarm_run() {
        let gs = fixture("two_overlapping_3_1").system();
        let original = swarm_run(&gs, 11, 2_000_000);
        assert_eq!(original.outcome, RunOutcome::Quiescent);
        let replayed = replay_run(&gs, &original.schedule, 2_000_000);
        assert_eq!(replayed.hash, original.hash, "byte-identical replay");
        assert_eq!(replayed.outcome, original.outcome);
        assert_eq!(replayed.violation, None);
    }

    #[test]
    fn budget_cut_runs_pass_the_partial_checks() {
        // A tiny budget cuts the run mid-protocol; the partial-run checks
        // must not flag the valid prefix.
        let gs = fixture("ring_3_2").system();
        let cut = swarm_run(&gs, 3, 25);
        assert_eq!(cut.outcome, RunOutcome::BudgetExhausted);
        assert_eq!(cut.violation, None, "{:?}", cut.violation);
    }
}
