//! Delta-debugging of failing runs.
//!
//! A counterexample straight out of the explorer carries everything the
//! original scenario did: all crashes, all submissions, and a schedule as
//! long as the run. Most of it is irrelevant to the violation. The shrinker
//! greedily applies semantic reductions — each validated by re-running the
//! candidate and checking that it still violates the **same** property —
//! until a fixpoint (or a run budget) is reached:
//!
//! 1. drop crash injections;
//! 2. drop submissions;
//! 3. truncate the schedule (the fair round-robin tail completes the run,
//!    so any prefix is still a full, checkable run);
//! 4. delete individual schedule entries;
//! 5. collapse entries' sub-choices to `0` — the round-robin default — so
//!    what remains highlights exactly the adversarial choices that matter.

use crate::{PrefixTail, Scenario};
use gam_core::spec::{check_all, check_named};
use gam_kernel::schedule::{ChoiceStep, ReplaySource};

/// Re-runs the candidate and checks that `property` is still violated —
/// first through the variant's `check_all` (the common case), then through
/// the targeted [`check_named`] checker, so counterexamples found *outside*
/// their variant's checked set (e.g. a pairwise-variant run violating
/// global `ordering`) shrink just like in-variant ones.
fn still_violates(scenario: &Scenario, schedule: &[ChoiceStep], property: &str) -> bool {
    let mut source = PrefixTail::new(ReplaySource::new(schedule.to_vec()));
    let report = scenario.run(&mut source);
    if matches!(check_all(&report, scenario.variant), Err(ref v) if v.property == property) {
        return true;
    }
    matches!(check_named(&report, property), Some(Err(ref v)) if v.property == property)
}

/// Entry-wise passes are skipped on schedules longer than this (truncation
/// gets them below it first, or the schedule is inherently budget-sized).
const ENTRYWISE_LIMIT: usize = 256;

/// Shrinks `(scenario, schedule)` while preserving a violation of
/// `property`, spending at most `max_runs` candidate runs. Returns the
/// reduced pair and the number of runs spent.
///
/// The input is assumed to violate `property`; if it does not, it is
/// returned unchanged (after one probing run).
pub fn shrink(
    scenario: Scenario,
    schedule: Vec<ChoiceStep>,
    property: &str,
    max_runs: u64,
) -> (Scenario, Vec<ChoiceStep>, u64) {
    let mut runs = 0u64;
    let try_candidate = |scenario: &Scenario, schedule: &[ChoiceStep], runs: &mut u64| {
        *runs += 1;
        still_violates(scenario, schedule, property)
    };
    if !try_candidate(&scenario, &schedule, &mut runs) {
        return (scenario, schedule, runs);
    }
    let (mut scenario, mut schedule) = (scenario, schedule);
    loop {
        let mut changed = false;
        // 1. Drop crashes.
        let mut i = scenario.crashes.len();
        while i > 0 && runs < max_runs {
            i -= 1;
            let mut candidate = scenario.clone();
            candidate.crashes.remove(i);
            if try_candidate(&candidate, &schedule, &mut runs) {
                scenario = candidate;
                changed = true;
            }
        }
        // 2. Drop submissions.
        let mut i = scenario.submissions.len();
        while i > 0 && runs < max_runs {
            i -= 1;
            let mut candidate = scenario.clone();
            candidate.submissions.remove(i);
            if try_candidate(&candidate, &schedule, &mut runs) {
                scenario = candidate;
                changed = true;
            }
        }
        // 3. Truncate the schedule: the empty schedule first (the pure
        // round-robin run), then halving, then peeling single entries.
        while !schedule.is_empty() && runs < max_runs {
            let shorter = if try_candidate(&scenario, &[], &mut runs) {
                0
            } else if schedule.len() > 1
                && try_candidate(&scenario, &schedule[..schedule.len() / 2], &mut runs)
            {
                schedule.len() / 2
            } else if try_candidate(&scenario, &schedule[..schedule.len() - 1], &mut runs) {
                schedule.len() - 1
            } else {
                break;
            };
            schedule.truncate(shorter);
            changed = true;
        }
        // 4. Delete individual entries.
        if schedule.len() <= ENTRYWISE_LIMIT {
            let mut i = schedule.len();
            while i > 0 && runs < max_runs {
                i -= 1;
                let mut candidate = schedule.clone();
                candidate.remove(i);
                if try_candidate(&scenario, &candidate, &mut runs) {
                    schedule = candidate;
                    changed = true;
                }
            }
        }
        // 5. Collapse sub-choices to the round-robin default.
        if schedule.len() <= ENTRYWISE_LIMIT {
            let mut i = schedule.len();
            while i > 0 && runs < max_runs {
                i -= 1;
                if schedule[i].choice == 0 {
                    continue;
                }
                let mut candidate = schedule.clone();
                candidate[i].choice = 0;
                if try_candidate(&scenario, &candidate, &mut runs) {
                    schedule = candidate;
                    changed = true;
                }
            }
        }
        if !changed || runs >= max_runs {
            return (scenario, schedule, runs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gam_core::Variant;
    use gam_groups::{topology, GroupId};
    use gam_kernel::{ProcessId, Time};

    /// A scenario whose *termination* violation does not depend on the
    /// schedule at all: the sole member of `dst(m)`'s group... cannot
    /// exist, so instead crash everyone in `g` after submission while a
    /// delivery was already made — simpler: an undersized budget makes the
    /// run non-quiescent regardless of the schedule.
    #[test]
    fn shrink_discards_schedule_for_schedule_independent_violations() {
        let scenario = Scenario {
            system: topology::single_group(2),
            crashes: vec![(ProcessId(1), Time(200_000))],
            submissions: vec![(ProcessId(0), GroupId(0), 1), (ProcessId(1), GroupId(0), 2)],
            variant: Variant::Standard,
            max_steps: 3, // far too small: every run fails termination
            batch_max: 1,
        };
        let schedule = vec![
            ChoiceStep {
                pid: ProcessId(0),
                choice: 1
            };
            10
        ];
        let (shrunk, sched, runs) = shrink(scenario, schedule, "termination", 300);
        assert!(sched.is_empty(), "schedule-independent ⇒ empty schedule");
        assert!(shrunk.crashes.is_empty(), "irrelevant crash dropped");
        assert_eq!(shrunk.submissions.len(), 1, "one submission suffices");
        assert!(runs <= 300);
        assert!(still_violates(&shrunk, &sched, "termination"));
    }

    #[test]
    fn shrink_returns_input_when_nothing_violates() {
        let scenario = Scenario::one_per_group(&topology::single_group(2), 20_000);
        let schedule = vec![ChoiceStep {
            pid: ProcessId(0),
            choice: 0,
        }];
        let (_, sched, runs) = shrink(scenario, schedule.clone(), "ordering", 100);
        assert_eq!(sched, schedule, "non-violating input returned unchanged");
        assert_eq!(runs, 1, "one probing run only");
    }
}
