//! # gam-explore — schedule-space exploration with shrinking repros
//!
//! The paper's correctness claims are universally quantified over schedules;
//! the fixed-seed integration tests only sample a handful of them. This
//! crate turns the quantifier into tooling:
//!
//! - [`explore_exhaustive`] enumerates **every** schedule of a bounded
//!   choice depth (completing each prefix with a deterministic fair tail to
//!   quiescence, so every terminal state is checkable) and verifies each
//!   terminal state against [`gam_core::spec::check_all`];
//! - [`explore_swarm`] drives a seeded random swarm over the full run,
//!   recording each schedule as it goes;
//! - [`explore_exhaustive_par`] / [`explore_swarm_par`] scale both across
//!   a worker pool (prefix-partitioned tree / striped seed range) with a
//!   deterministic merge — the reported counterexample is independent of
//!   the thread count — plus visited-set dedup of converged prefixes (see
//!   [`ExploreConfig`]);
//! - [`explore_exhaustive_dfs`] / [`explore_exhaustive_dfs_par`] walk the
//!   *same* tree as a snapshotting depth-first search — shared schedule
//!   prefixes execute once, checkpoints are restored on backtrack — and
//!   are verified byte-identical to the odometer engines;
//! - on a violation, [`shrink`] delta-debugs the failing run — dropping
//!   crashes and submissions, truncating the schedule, collapsing choices
//!   toward the round-robin default — down to a minimal counterexample;
//! - the result is a [`Repro`]: a self-contained, text-serializable bundle
//!   (topology + failure pattern + schedule + seed) that replays
//!   byte-identically and can be checked into `tests/fixtures/`.
//!
//! The same [`ScheduleSource`] machinery also drives the message-passing
//! Level-B deployment (`gam_core::distributed`) through the kernel
//! simulator — see [`kernel`]. Both substrates run through the *same*
//! [`gam_engine::Executor`] stepping layer; this crate only decides what
//! to run and what to check.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dfs;
mod explorer;
pub mod hunt;
pub mod independence;
pub mod kernel;
mod par;
mod repro;
mod shrink;

pub use dfs::{explore_exhaustive_dfs, explore_exhaustive_dfs_par};
pub use explorer::{
    explore_exhaustive, explore_swarm, Counterexample, ExploreStats, Outcome, DEFAULT_SHRINK_BUDGET,
};
pub use gam_engine::digest::{self, fnv1a, trace_hash};
pub use gam_engine::PrefixTail;
pub use hunt::{hunt, hunt_one, HuntConfig, HuntFinding, HuntOutcome, HuntReport};
pub use independence::{actions_commute, por_applicable};
pub use par::{explore_exhaustive_par, explore_swarm_par, ExploreConfig};
pub use repro::Repro;
pub use shrink::shrink;

use gam_core::spec::{check_all, SpecViolation};
use gam_core::{MessageId, RunReport, Runtime, RuntimeConfig, Variant};
use gam_engine::RuntimeExecutor;
use gam_groups::{GroupId, GroupSystem};
use gam_kernel::schedule::ScheduleSource;
use gam_kernel::{FailurePattern, ProcessId, RunOutcome, Time};

/// A closed, runnable test case: everything about a run except its
/// schedule.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The group topology.
    pub system: GroupSystem,
    /// Crash injections `(process, time)` of the failure pattern.
    pub crashes: Vec<(ProcessId, Time)>,
    /// Up-front submissions `(src, group, payload)`, in order.
    pub submissions: Vec<(ProcessId, GroupId, u64)>,
    /// The problem variation to check against.
    pub variant: Variant,
    /// Step budget of a single run (schedule prefix + fair tail).
    pub max_steps: u64,
    /// Consensus batching width of the Level-A runtime (`1` = unbatched;
    /// the Level-B kernel substrate always runs unbatched).
    pub batch_max: u32,
}

impl Scenario {
    /// A failure-free scenario over `system` with one message per group
    /// (from its least member) and the given budget.
    pub fn one_per_group(system: &GroupSystem, max_steps: u64) -> Self {
        let submissions = system
            .iter()
            .map(|(g, members)| (members.min().expect("non-empty group"), g, g.0 as u64))
            .collect();
        Scenario {
            system: system.clone(),
            crashes: Vec::new(),
            submissions,
            variant: Variant::Standard,
            max_steps,
            batch_max: 1,
        }
    }

    /// The same scenario with the Level-A consensus batching width set to
    /// `batch_max` (clamped to at least 1 by the runtime).
    #[must_use]
    pub fn with_batch_max(mut self, batch_max: u32) -> Self {
        self.batch_max = batch_max;
        self
    }

    /// The scenario addressed by a `gam-scn v1` descriptor: generated
    /// topology, crash schedule and traffic trace, checked under the
    /// descriptor's variant within the descriptor's budget. Deterministic —
    /// equal descriptors yield equal scenarios on any thread or host.
    pub fn from_descriptor(descriptor: &gam_scenarios::ScnDescriptor) -> Self {
        let generated = descriptor.generate();
        Scenario {
            system: generated.system,
            crashes: generated.crashes,
            submissions: generated.submissions,
            variant: descriptor.variant,
            max_steps: descriptor.budget,
            batch_max: 1,
        }
    }

    /// The failure pattern of the scenario.
    pub fn pattern(&self) -> FailurePattern {
        FailurePattern::from_crashes(self.system.universe(), self.crashes.iter().copied())
    }

    /// The Level-A (shared objects) executor of the scenario: Algorithm 1
    /// runtime built, submissions applied, ready to drive through any
    /// `gam_engine` driver.
    pub fn runtime_executor(&self) -> RuntimeExecutor {
        let mut rt = Runtime::new(
            &self.system,
            self.pattern(),
            RuntimeConfig {
                variant: self.variant,
                batch_max: self.batch_max,
                ..Default::default()
            },
        );
        for (src, g, payload) in &self.submissions {
            rt.multicast(*src, *g, *payload);
        }
        RuntimeExecutor::new(rt)
    }

    /// Runs the scenario once, with every scheduling decision taken by
    /// `source`. The report is quiescent iff the run quiesced within
    /// [`Scenario::max_steps`].
    pub fn run<S: ScheduleSource>(&self, source: &mut S) -> RunReport {
        let mut exec = self.runtime_executor();
        let out = gam_engine::run_with_source(&mut exec, source, self.max_steps);
        exec.report(out == RunOutcome::Quiescent)
    }

    /// Runs the scenario and checks it, returning the first violation.
    ///
    /// # Errors
    ///
    /// Returns the first [`SpecViolation`] found by `spec::check_all`.
    pub fn run_checked<S: ScheduleSource>(
        &self,
        source: &mut S,
    ) -> Result<RunReport, SpecViolation> {
        let report = self.run(source);
        check_all(&report, self.variant)?;
        Ok(report)
    }

    /// The submitted messages, by id (submission order).
    pub fn message_ids(&self) -> Vec<MessageId> {
        (0..self.submissions.len() as u64).map(MessageId).collect()
    }
}
