//! Snapshot-based incremental DFS exploration: execute shared schedule
//! prefixes **once**.
//!
//! The odometer engines ([`crate::explore_exhaustive`] and its parallel
//! pool) restart every run from the initial state, so two schedules
//! sharing a prefix of `k` choices re-execute those `k` steps (and every
//! idle tick between them) twice. This module walks the same bounded
//! choice tree as an explicit depth-first search over a
//! [`SnapshotExec`] executor: at each branch point with more than one
//! sibling it captures a checkpoint, and backtracking `restore`s the
//! checkpoint instead of replaying the prefix from scratch.
//!
//! ## Equivalence to the odometer engines
//!
//! The DFS is *provably the same exploration*, just cheaper:
//!
//! - **Same leaves, same order.** The odometer bumps the deepest consumed
//!   digit that still has unexplored siblings — exactly DFS backtracking —
//!   so the lexicographic enumeration *is* the DFS preorder, and a run cap
//!   stops both engines at the same leaf (runs are reserved from the same
//!   shared budget, before any execution).
//! - **Same runs.** [`SnapshotExec::restore`] reproduces the substrate
//!   bit-for-bit, including the incremental history digest, so the steps
//!   after a restore are the steps a fresh replay of the prefix would have
//!   taken: per-run `state_digest`/`state_fingerprint` and the recorded
//!   schedules are identical. Fair tails are fresh
//!   [`RotatingSource`]s in both engines.
//! - **Same dedup decisions.** The per-worker [`VisitedSet`] is consulted
//!   at the same post-prefix fingerprints, and (as in the odometer pool)
//!   only *clean* tail verdicts are recorded, so pruning can never hide a
//!   violation.
//!
//! `tests/engine_dfs_equivalence.rs` checks all of this — byte-identical
//! [`Repro`](crate::Repro)s included — on every fixture topology, for 1
//! and N threads.
//!
//! ## Partial-order reduction
//!
//! On top of prefix sharing, [`explore_exhaustive_dfs_par`] can prune
//! whole sibling subtrees with *sleep sets* over the independence relation
//! of [`crate::independence`]: when sibling digits `i < j` fire commuting
//! actions, every interleaving below `j` that starts with `i`'s action is
//! a step-permutation of one below `i` with an identical report, so `j`'s
//! subtree sleeps `i`'s action. Pruning is gated on crash-free scenarios
//! ([`por_applicable`]) and never enabled for the leftmost path, so the
//! first counterexample found — and its shrunk repro — is byte-identical
//! with POR on or off. [`ExploreStats::por_pruned`] counts skipped digits.
//!
//! ## Accounting
//!
//! [`ExploreStats::steps_executed`] counts what this engine actually ran;
//! [`ExploreStats::steps_avoided`] counts the prefix re-execution it
//! skipped, measured so that `steps_executed + steps_avoided` equals the
//! `steps_executed` of the odometer engine on the same tree with the same
//! dedup decisions (under POR, the same *pruned* tree — cross-engine step
//! identities are only asserted among non-POR configurations).
//! [`ExploreStats::snapshot_bytes`] sums what each checkpoint actually
//! copied (chunk pointer tables under copy-on-write state) against the
//! [`ExploreStats::snapshot_deep_bytes`] a deep `Clone` would have copied.
//! `BENCH_explore_dfs.json` tracks both reductions.

use crate::explorer::ExploreStats;
use crate::independence::{actions_commute, por_applicable};
use crate::par::{exhaustive_pool, merge, ExploreConfig, ItemResult};
use crate::Scenario;
use gam_core::spec::check_all;
use gam_core::ActionDesc;
use gam_engine::{run_with_source_counted, Executor, RuntimeSnapshot, SnapshotExec, VisitedSet};
use gam_groups::GroupSystem;
use gam_kernel::schedule::{ChoiceStep, RecordInto, RotatingSource};
use gam_kernel::{ProcessId, RunOutcome};
use std::sync::atomic::{AtomicU64, Ordering};

/// One branch point on the current DFS path: the checkpoint taken just
/// before its digit was consumed, plus the odometer bookkeeping needed to
/// resume siblings.
struct Frame {
    /// Checkpoint at the branch point — `None` when the branch has a single
    /// child (nothing will ever be restored there).
    snap: Option<RuntimeSnapshot>,
    /// Budget consumed when the checkpoint was taken.
    taken: u64,
    /// Total option arity at the branch (the odometer's `branching[i]`).
    total: usize,
    /// The flat digit currently being explored.
    next: usize,
    /// Length of the recorded schedule at the branch point.
    sched_len: usize,
    /// Sleep-set bookkeeping, populated only under partial-order
    /// reduction: the flat descriptors of the branch's options and the
    /// sleep set that applied on arrival (both empty with POR off).
    descs: Vec<ActionDesc>,
    sleep: Vec<ActionDesc>,
}

/// How one descent from the current branch point ended.
enum Descent {
    /// The run terminated within the enumerated prefix.
    Interior(RunOutcome),
    /// `depth` digits were consumed; a fair tail completes the run.
    Tail,
    /// Every child of a reached branch was slept: the whole subtree
    /// re-orders interleavings explored earlier. Nothing ran, nothing to
    /// check.
    Pruned,
}

/// The sleep set a child inherits after its parent steps `stepped`:
/// entries of the parent's sleep set plus the parent's earlier siblings,
/// kept iff they commute with `stepped` — the covered-elsewhere invariant
/// survives exactly across commuting steps.
fn child_sleep(
    system: &GroupSystem,
    sleep: &[ActionDesc],
    earlier: &[ActionDesc],
    stepped: &ActionDesc,
) -> Vec<ActionDesc> {
    sleep
        .iter()
        .chain(earlier.iter())
        .filter(|z| actions_commute(system, z, stepped))
        .copied()
        .collect()
}

/// Replicates one iteration chunk of the engine driver loop
/// ([`run_with_source_counted`]): budget check, option enumeration, idle
/// handling. Returns `Some(outcome)` when the run is over (a leaf of the
/// tree) and `None` when the executor stands at a choice point with
/// `options` populated.
fn advance<E: Executor>(
    exec: &mut E,
    taken: &mut u64,
    max_steps: u64,
    options: &mut Vec<(ProcessId, usize)>,
    executed: &mut u64,
) -> Option<RunOutcome> {
    loop {
        if *taken >= max_steps {
            return Some(RunOutcome::BudgetExhausted);
        }
        exec.enabled_actions(options);
        if options.is_empty() {
            if exec.is_quiescent() || !exec.idle_tick() {
                return Some(RunOutcome::Quiescent);
            }
            *taken += 1;
            *executed += 1;
            continue;
        }
        return None;
    }
}

/// Executes the `flat`-th option of the current choice space (the
/// odometer's digit decoding, clamp included), recording the step.
fn step_flat<E: Executor>(
    exec: &mut E,
    options: &[(ProcessId, usize)],
    flat: usize,
    prefix: &mut Vec<ChoiceStep>,
    taken: &mut u64,
    executed: &mut u64,
) {
    let total: usize = options.iter().map(|(_, arity)| arity).sum();
    let mut flat = flat.min(total - 1);
    for (pid, arity) in options {
        if flat < *arity {
            let step = ChoiceStep {
                pid: *pid,
                choice: flat,
            };
            prefix.push(step);
            exec.step(step);
            *taken += 1;
            *executed += 1;
            return;
        }
        flat -= arity;
    }
    unreachable!("flat index clamped below total arity")
}

/// DFS walk of every enumerated path whose leading digits equal `pinned` —
/// the snapshotting counterpart of [`crate::par`]'s `explore_item`, and a
/// drop-in `run_item` for its worker pool.
///
/// With `por` set (and the scenario crash-free), sleep sets prune sibling
/// digits whose action commutes with an earlier-explored sibling: the
/// pruned subtree's interleavings are step-permutations of already-covered
/// ones with identical reports, so skipping them can never hide a
/// violation — and because a pruned leaf always has its covering
/// equivalent *earlier* in DFS preorder, the first violation found (and
/// hence the shrunk repro) is byte-identical with POR on or off.
pub(crate) fn dfs_item(
    scenario: &Scenario,
    depth: usize,
    pinned: &[usize],
    reserved: &AtomicU64,
    max_runs: u64,
    mut visited: Option<&mut VisitedSet>,
    por: bool,
) -> ItemResult {
    let por = por && por_applicable(scenario);
    let system = &scenario.system;
    let mut res = ItemResult::default();
    // Reserve the item's first run *before* constructing the executor:
    // building the runtime is itself O(state), and once the shared budget
    // is drained every remaining pool item must return in O(1) — on a
    // wide-state scenario (rand(64,8)) anything else dominates the bench.
    // gam-lint: allow(A001, reason = "monotonic budget counter: fetch_add totals are exact under any ordering and nothing is published through it; capped overshoot is reconciled in the deterministic merge")
    if reserved.fetch_add(1, Ordering::Relaxed) >= max_runs {
        res.capped = true;
        return res;
    }
    let mut exec = scenario.runtime_executor();
    let mut stack: Vec<Frame> = Vec::new();
    let mut prefix: Vec<ChoiceStep> = Vec::new();
    let mut options: Vec<(ProcessId, usize)> = Vec::new();
    let mut descs: Vec<ActionDesc> = Vec::new();
    let mut cur_sleep: Vec<ActionDesc> = Vec::new();
    let mut tail_sched: Vec<ChoiceStep> = Vec::new();
    let mut taken = 0u64;
    let mut started = false;
    loop {
        // Backtrack to the deepest branch with an unexplored sibling —
        // exactly the odometer's "bump the deepest consumed digit" rule.
        // Slept siblings (their descriptor is in the frame's sleep set) are
        // skipped without reserving a run: their subtrees re-order
        // interleavings an earlier sibling already covered. With POR off
        // every frame's `descs`/`sleep` are empty and nothing is skipped.
        if started {
            loop {
                let Some(top) = stack.last_mut() else {
                    return res;
                };
                top.next += 1;
                while top.next < top.total
                    && top
                        .descs
                        .get(top.next)
                        .is_some_and(|d| top.sleep.contains(d))
                {
                    res.por_pruned += 1;
                    top.next += 1;
                }
                if top.next < top.total {
                    break;
                }
                stack.pop();
            }
            // Reserve this sibling's run from the shared budget *before*
            // executing anything of it, so the total across all workers
            // matches the sequential cap exactly. (The item's first run was
            // reserved before the executor was built.)
            // gam-lint: allow(A001, reason = "monotonic budget counter: same argument as the item's first reservation — exact totals under any ordering, merge-side reconciliation")
            if reserved.fetch_add(1, Ordering::Relaxed) >= max_runs {
                res.capped = true;
                return res;
            }
        }
        let mut digits = 0;
        if started {
            let frame = stack.last().expect("backtrack left a frame");
            exec.restore(
                frame
                    .snap
                    .as_ref()
                    .expect("a frame with unexplored siblings has a checkpoint"),
            );
            taken = frame.taken;
            prefix.truncate(frame.sched_len);
            // The checkpoint is a choice point (budget not exhausted,
            // options non-empty): re-enumerate and take the sibling digit.
            exec.enabled_actions(&mut options);
            let next = frame.next;
            if por {
                // All earlier siblings — explored or slept — are covered
                // when this child's subtree runs, so any of them that
                // commutes with the stepped action sleeps below it.
                let stepped = frame.descs[next];
                cur_sleep = child_sleep(system, &frame.sleep, &frame.descs[..next], &stepped);
            }
            step_flat(
                &mut exec,
                &options,
                next,
                &mut prefix,
                &mut taken,
                &mut res.steps_executed,
            );
            // Frames sit strictly past the pinned region, so the restored
            // path has consumed every pinned digit plus one per frame.
            digits = pinned.len() + stack.len();
        } else if por {
            cur_sleep.clear();
        }
        started = true;
        // Descend to a leaf: either the run terminates (interior leaf) or
        // `depth` digits are consumed (tail leaf).
        let leaf = loop {
            match advance(
                &mut exec,
                &mut taken,
                scenario.max_steps,
                &mut options,
                &mut res.steps_executed,
            ) {
                Some(out) => break Descent::Interior(out),
                None if digits == depth => break Descent::Tail,
                None => {
                    let total: usize = options.iter().map(|(_, arity)| arity).sum();
                    if por {
                        exec.describe_enabled(&mut descs);
                        debug_assert_eq!(
                            descs.len(),
                            total,
                            "flat descriptors align with flat digits"
                        );
                    }
                    if digits < pinned.len() {
                        let flat = pinned[digits].min(total - 1);
                        if por {
                            if cur_sleep.contains(&descs[flat]) {
                                // The sequential sleep-set walk skips this
                                // digit here, taking every run below it
                                // with it — including this whole pinned
                                // item. (The reserved run goes unused; with
                                // POR on, run counts are not comparable to
                                // the unpruned engines anyway.)
                                res.por_pruned += 1;
                                return res;
                            }
                            cur_sleep =
                                child_sleep(system, &cur_sleep, &descs[..flat], &descs[flat]);
                        }
                        step_flat(
                            &mut exec,
                            &options,
                            flat,
                            &mut prefix,
                            &mut taken,
                            &mut res.steps_executed,
                        );
                    } else {
                        // First unslept digit; with POR off this is 0.
                        let mut first = 0usize;
                        if por {
                            while first < total && cur_sleep.contains(&descs[first]) {
                                res.por_pruned += 1;
                                first += 1;
                            }
                            if first == total {
                                break Descent::Pruned;
                            }
                        }
                        let snap = (total > 1).then(|| {
                            res.snapshots += 1;
                            let (copied, deep) = exec.snapshot_cost();
                            res.snapshot_bytes += copied;
                            res.snapshot_deep_bytes += deep;
                            res.snapshot_bytes_peak = res.snapshot_bytes_peak.max(copied);
                            exec.snapshot()
                        });
                        stack.push(Frame {
                            snap,
                            taken,
                            total,
                            next: first,
                            sched_len: prefix.len(),
                            descs: if por { descs.clone() } else { Vec::new() },
                            sleep: if por { cur_sleep.clone() } else { Vec::new() },
                        });
                        if por {
                            cur_sleep =
                                child_sleep(system, &cur_sleep, &descs[..first], &descs[first]);
                        }
                        step_flat(
                            &mut exec,
                            &options,
                            first,
                            &mut prefix,
                            &mut taken,
                            &mut res.steps_executed,
                        );
                    }
                    digits += 1;
                }
            }
        };
        if matches!(leaf, Descent::Pruned) {
            continue;
        }
        res.runs += 1;
        // What a restart-from-scratch odometer run of this leaf costs: the
        // whole prefix drive, whether or not we re-executed it.
        res.steps_odometer += taken;
        if let Descent::Interior(out) = leaf {
            // The run terminated within the enumerated prefix itself.
            let report = exec.report(out == RunOutcome::Quiescent);
            if let Err(violation) = check_all(&report, scenario.variant) {
                res.violation = Some((prefix.clone(), violation, 0));
                return res;
            }
            continue;
        }
        // Tail leaf: same dedup rule as the odometer pool — skip the fair
        // tail iff this post-prefix state already completed clean.
        let fp = exec.state_fingerprint();
        if visited.as_deref().is_some_and(|seen| seen.contains(fp)) {
            res.dedup_hits += 1;
            continue;
        }
        tail_sched.clear();
        let (tail_out, tail_steps) = {
            let mut tail = RecordInto::new(RotatingSource::default(), &mut tail_sched);
            run_with_source_counted(&mut exec, &mut tail, scenario.max_steps - taken)
        };
        res.steps_executed += tail_steps;
        res.steps_odometer += tail_steps;
        let report = exec.report(tail_out == RunOutcome::Quiescent);
        if let Err(violation) = check_all(&report, scenario.variant) {
            let mut schedule = prefix.clone();
            schedule.extend_from_slice(&tail_sched);
            res.violation = Some((schedule, violation, 0));
            return res;
        }
        // Only a clean tail verdict is remembered (see the odometer pool).
        if let Some(seen) = visited.as_deref_mut() {
            seen.insert(fp);
        }
    }
}

/// [`explore_exhaustive`](crate::explore_exhaustive) with prefix sharing:
/// the same bounded tree, runs, verdicts and canonical counterexample, but
/// each shared schedule prefix executes **once** — the engine checkpoints
/// at branch points and `restore`s on backtrack instead of replaying from
/// the initial state. [`ExploreStats::steps_avoided`] reports the savings.
pub fn explore_exhaustive_dfs(
    scenario: &Scenario,
    depth: usize,
    max_runs: u64,
    shrink_budget: u64,
) -> ExploreStats {
    let reserved = AtomicU64::new(0);
    let res = dfs_item(scenario, depth, &[], &reserved, max_runs, None, false);
    let runs = res.runs;
    merge(scenario, vec![(runs, 0, vec![(0, res)])], shrink_budget)
}

/// [`explore_exhaustive_par`](crate::explore_exhaustive_par) with prefix
/// sharing: the tree is split at the top-level frontier into the same
/// pinned-prefix work items, each walked by the snapshotting DFS, with the
/// same deterministic lowest-item-index merge and per-worker dedup.
///
/// When [`ExploreConfig::por`] is set (and the scenario is crash-free —
/// see [`por_applicable`]), sleep sets additionally prune sibling subtrees
/// that merely permute commuting actions; the first counterexample and its
/// shrunk repro stay byte-identical, POR on or off, 1 thread or N.
pub fn explore_exhaustive_dfs_par(
    scenario: &Scenario,
    depth: usize,
    max_runs: u64,
    config: &ExploreConfig,
) -> ExploreStats {
    let por = config.por;
    exhaustive_pool(
        scenario,
        depth,
        max_runs,
        config,
        move |scenario, depth, pinned, reserved, max_runs, visited| {
            dfs_item(scenario, depth, pinned, reserved, max_runs, visited, por)
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explorer::{explore_exhaustive, Outcome, DEFAULT_SHRINK_BUDGET};
    use gam_engine::run_with_source;
    use gam_groups::topology;
    use gam_kernel::schedule::PathSource;

    #[test]
    fn dfs_matches_odometer_on_single_group() {
        let scenario = Scenario::one_per_group(&topology::single_group(2), 20_000);
        let seq = explore_exhaustive(&scenario, 3, 5_000, DEFAULT_SHRINK_BUDGET);
        let dfs = explore_exhaustive_dfs(&scenario, 3, 5_000, DEFAULT_SHRINK_BUDGET);
        assert!(dfs.clean(), "violations: {:?}", dfs.violations);
        assert_eq!(dfs.runs, seq.runs);
        assert_eq!(dfs.outcome, seq.outcome);
        assert_eq!(dfs.dedup_hits, 0, "sequential DFS runs without dedup");
        // The accounting invariant: executed + avoided = what the odometer
        // engine executed, and sharing must actually save something.
        assert_eq!(dfs.steps_executed + dfs.steps_avoided, seq.steps_executed);
        assert!(
            dfs.steps_executed < seq.steps_executed,
            "prefix sharing saved nothing: {} vs {}",
            dfs.steps_executed,
            seq.steps_executed
        );
        assert!(dfs.snapshots_taken > 0);
        assert!(dfs.steps_avoided_permille() > 0);
    }

    #[test]
    fn dfs_respects_run_cap_like_the_odometer() {
        let scenario = Scenario::one_per_group(&topology::two_overlapping(3, 1), 50_000);
        let seq = explore_exhaustive(&scenario, 4, 7, DEFAULT_SHRINK_BUDGET);
        let dfs = explore_exhaustive_dfs(&scenario, 4, 7, DEFAULT_SHRINK_BUDGET);
        assert_eq!(dfs.runs, 7);
        assert_eq!(seq.outcome, Outcome::RunCapped);
        assert_eq!(dfs.outcome, Outcome::RunCapped);
        assert!(dfs.violations.is_empty());
    }

    #[test]
    fn restore_reproduces_digest_and_fingerprint_bit_for_bit() {
        // Drive to the first branch, checkpoint, explore child 0 to the
        // end, restore, explore child 1, restore, re-explore child 0 — the
        // digests of the two child-0 continuations must agree exactly, and
        // both must equal a fresh from-scratch replay of the same path.
        let scenario = Scenario::one_per_group(&topology::two_overlapping(3, 1), 50_000);
        let mut exec = scenario.runtime_executor();
        let mut options = Vec::new();
        let mut taken = 0u64;
        let mut executed = 0u64;
        let leaf = advance(
            &mut exec,
            &mut taken,
            scenario.max_steps,
            &mut options,
            &mut executed,
        );
        assert!(leaf.is_none(), "scenario must reach a choice point");
        let total: usize = options.iter().map(|(_, a)| a).sum();
        assert!(total > 1, "scenario must actually branch");
        let snap = exec.snapshot();
        let at_branch = (exec.state_digest(), exec.state_fingerprint());

        let run_child = |exec: &mut gam_engine::RuntimeExecutor, flat: usize| {
            let mut opts = Vec::new();
            exec.enabled_actions(&mut opts);
            let (mut t, mut e) = (taken, 0u64);
            let mut sched = Vec::new();
            step_flat(exec, &opts, flat, &mut sched, &mut t, &mut e);
            let out = run_with_source(exec, &mut RotatingSource::default(), scenario.max_steps - t);
            assert_eq!(out, RunOutcome::Quiescent);
            (exec.state_digest(), exec.state_fingerprint())
        };

        let first = run_child(&mut exec, 0);
        exec.restore(&snap);
        assert_eq!(
            (exec.state_digest(), exec.state_fingerprint()),
            at_branch,
            "restore must land exactly on the checkpoint"
        );
        let other = run_child(&mut exec, 1);
        assert_ne!(first, other, "distinct children must diverge");
        exec.restore(&snap);
        let again = run_child(&mut exec, 0);
        assert_eq!(
            first, again,
            "restored continuation must replay bit-for-bit"
        );

        // And a cold executor replaying child 0's path agrees too. No
        // scheduled step precedes the first branch (advance only idles), so
        // the path is the single child digit; the tail is the fair default.
        let mut fresh = scenario.runtime_executor();
        let mut src = gam_engine::PrefixTail::new(PathSource::new(vec![0]));
        let out = run_with_source(&mut fresh, &mut src, scenario.max_steps);
        assert_eq!(out, RunOutcome::Quiescent);
        assert_eq!(
            (fresh.state_digest(), fresh.state_fingerprint()),
            first,
            "snapshot continuation must equal a from-scratch run"
        );
    }
}
