//! Parallel, dedup-pruned exploration with a deterministic merge.
//!
//! The sequential strategies of [`crate::explorer`] are the repo's hot path
//! — every correctness claim is quantified over schedules, and covering
//! schedules means running the machine over and over. This module scales
//! them across cores without giving up the property that makes exploration
//! results *citable*: the reported counterexample is independent of the
//! thread count.
//!
//! ## Sharding
//!
//! - [`explore_exhaustive_par`] partitions the bounded choice tree by its
//!   first one or two odometer digits: the root arity and the second-level
//!   arities are probed up front (cheap partial runs), and each resulting
//!   prefix becomes a work item claimed from a shared queue. Within an item
//!   a worker walks exactly the sequential odometer with the leading digits
//!   pinned, so the union of all items is the sequential enumeration,
//!   re-ordered only *across* items.
//! - [`explore_swarm_par`] stripes the seed range: worker `w` of `t` runs
//!   seeds `start+w, start+w+t, …` in ascending order.
//!
//! ## Deterministic merge
//!
//! Work items (and seed stripes) are ordered, and each worker stops its
//! current item/stripe at the first violation it meets. The merge then
//! reports the violation of the *lowest* item index (exhaustive) or the
//! *lowest* seed (swarm) and shrinks only that one — which is precisely the
//! counterexample the sequential loop would have stopped at. `Repro` output
//! is therefore byte-identical for 1 vs N threads (verified by
//! `tests/parallel_determinism.rs`). Run *counts* are deterministic
//! whenever exploration covers the whole space; once a violation or the run
//! cap stops it early, how far the other workers got depends on timing.
//!
//! ## Dedup pruning
//!
//! Distinct enumerated prefixes frequently *converge* — two interleavings
//! of independent actions reach the same machine. The sequential explorer
//! re-runs the (long) fair tail after every such prefix; the parallel one
//! keeps a per-worker [`VisitedSet`] of post-prefix
//! [`state_fingerprint`](gam_engine::Executor::state_fingerprint)s and
//! skips the tail when the state was already completed by this worker.
//! Equal fingerprints imply equal machine *and* equal consumed budget (the
//! clock ticks once per step or idle and is folded first), so the pruned
//! tail could only repeat a verdict already recorded — modulo 64-bit
//! fingerprint collisions, the standard hashed-state caveat of
//! explicit-state model checking. Crucially, only states whose tail
//! completed *clean* are recorded: a violating tail returns before its
//! state is inserted, so a hit can never hide a violation and the merged
//! counterexample is unaffected by pruning. The set is never shared across
//! workers (probe outcomes would race); at one thread the hit count is
//! deterministic, at N threads it varies with which worker claimed which
//! item — but `runs`, the verdicts, and the reported counterexample do
//! not. Hit counts land in [`ExploreStats::dedup_hits`].

use crate::explorer::{found, ExploreStats, Outcome, DEFAULT_SHRINK_BUDGET};
use crate::Scenario;
use gam_core::spec::{check_all, SpecViolation};
use gam_engine::{run_with_source, run_with_source_counted, Executor, VisitedSet};
use gam_kernel::schedule::{ChoiceStep, PathSource, RandomSource, RecordingSource, RotatingSource};
use gam_kernel::RunOutcome;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Tuning of the parallel exploration engines.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Worker threads. `0` (the default) resolves to the
    /// `GAM_EXPLORE_THREADS` environment variable if set, else to
    /// [`std::thread::available_parallelism`].
    pub threads: usize,
    /// Candidate runs the shrinker may spend on a found violation
    /// (default [`DEFAULT_SHRINK_BUDGET`]).
    pub shrink_budget: u64,
    /// Capacity of each worker's visited-set for fair-tail dedup in
    /// [`explore_exhaustive_par`]; `0` disables pruning. The swarm has no
    /// prefix/tail split, so the setting does not affect it.
    pub dedup_capacity: usize,
    /// Partial-order reduction in the snapshotting DFS engine
    /// ([`crate::explore_exhaustive_dfs_par`]): sleep sets prune one of
    /// each pair of commuting sibling orders (see [`crate::independence`]).
    /// Verdicts and the canonical counterexample are unchanged; run counts
    /// are no longer comparable to the odometer engines, hence off by
    /// default. Silently inert when the scenario has crashes (the relation
    /// is only sound crash-free) and for the odometer engines.
    pub por: bool,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            threads: 0,
            shrink_budget: DEFAULT_SHRINK_BUDGET,
            dedup_capacity: 1 << 16,
            por: false,
        }
    }
}

impl ExploreConfig {
    /// The actual worker count: `threads` if nonzero, else the
    /// `GAM_EXPLORE_THREADS` environment variable, else
    /// [`std::thread::available_parallelism`] (1 if unknown).
    pub fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        if let Some(n) = std::env::var("GAM_EXPLORE_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|n| *n > 0)
        {
            return n;
        }
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }
}

/// Total option arity of the choice space reached by driving `scenario`
/// through `prefix` (0 when the run terminates within the prefix).
pub(crate) fn arity_after(scenario: &Scenario, prefix: &[usize]) -> usize {
    let mut exec = scenario.runtime_executor();
    let mut src = PathSource::new(prefix.to_vec());
    if run_with_source(&mut exec, &mut src, scenario.max_steps) != RunOutcome::Stopped {
        return 0;
    }
    // Stopped ⇒ the source ran dry at a choice point; the options are still
    // enabled, the driver just didn't get an answer for them.
    let mut options = Vec::new();
    exec.enabled_actions(&mut options);
    options.iter().map(|(_, arity)| arity).sum()
}

/// The work items of the bounded tree: pinned odometer prefixes of length
/// ≤ 2, in lexicographic (= sequential enumeration) order.
pub(crate) fn exhaustive_items(scenario: &Scenario, depth: usize) -> Vec<Vec<usize>> {
    if depth == 0 {
        return vec![Vec::new()];
    }
    let b0 = arity_after(scenario, &[]);
    if b0 == 0 {
        // The run never reaches a choice point: one (schedule-free) run.
        return vec![Vec::new()];
    }
    if depth == 1 {
        return (0..b0).map(|d| vec![d]).collect();
    }
    let mut items = Vec::new();
    for d0 in 0..b0 {
        let b1 = arity_after(scenario, &[d0]);
        if b1 == 0 {
            items.push(vec![d0]);
        } else {
            items.extend((0..b1).map(|d1| vec![d0, d1]));
        }
    }
    items
}

/// One worker's contribution to the merge: `(runs, loose_steps, item
/// results)` — see [`merge`] for the field meanings.
pub(crate) type WorkerTally = (u64, u64, Vec<(usize, ItemResult)>);

#[derive(Debug, Default)]
pub(crate) struct ItemResult {
    pub(crate) runs: u64,
    pub(crate) dedup_hits: u64,
    pub(crate) capped: bool,
    /// The violating schedule, the violation, and the repro seed (the
    /// violating seed for swarm items, 0 for enumerated prefixes).
    pub(crate) violation: Option<(Vec<ChoiceStep>, SpecViolation, u64)>,
    /// Substrate steps + idle ticks this item actually executed.
    pub(crate) steps_executed: u64,
    /// Steps a restart-from-scratch odometer walk of the same leaves (same
    /// dedup decisions) executes. Equal to `steps_executed` for the odometer
    /// engine itself; larger for the snapshotting DFS engine.
    pub(crate) steps_odometer: u64,
    /// Checkpoints captured (0 for the odometer engine).
    pub(crate) snapshots: u64,
    /// Bytes those checkpoints actually copied (copy-on-write sharing).
    pub(crate) snapshot_bytes: u64,
    /// Bytes deep per-element copies of the same checkpoints would have
    /// copied — the Clone baseline of the snapshot-bytes gate.
    pub(crate) snapshot_deep_bytes: u64,
    /// Largest single checkpoint, in copied bytes.
    pub(crate) snapshot_bytes_peak: u64,
    /// Subtrees skipped by sleep-set partial-order reduction.
    pub(crate) por_pruned: u64,
}

/// Walks every enumerated path whose leading digits equal `prefix` —
/// exactly the sequential odometer with those digits pinned — stopping at
/// the item's first violation or when the shared run budget runs dry.
pub(crate) fn explore_item(
    scenario: &Scenario,
    depth: usize,
    prefix: &[usize],
    reserved: &AtomicU64,
    max_runs: u64,
    mut visited: Option<&mut VisitedSet>,
) -> ItemResult {
    let mut res = ItemResult::default();
    let mut path = vec![0usize; depth];
    path[..prefix.len()].copy_from_slice(prefix);
    loop {
        // Reserve a run from the shared budget *before* running, so the
        // total across all workers matches the sequential cap exactly.
        // gam-lint: allow(A001, reason = "monotonic budget counter: fetch_add totals are exact under any ordering, no data is published through it, and the merge folds per-worker results joined at thread::scope exit")
        if reserved.fetch_add(1, Ordering::Relaxed) >= max_runs {
            res.capped = true;
            return res;
        }
        let mut exec = scenario.runtime_executor();
        let mut path_source = PathSource::new(path.clone());
        let mut rec = RecordingSource::new(&mut path_source);
        let (out, consumed) = run_with_source_counted(&mut exec, &mut rec, scenario.max_steps);
        let mut schedule = rec.into_log();
        res.runs += 1;
        res.steps_executed += consumed;
        res.steps_odometer += consumed;
        let mut tail_state = None;
        let report = if out == RunOutcome::Stopped {
            // The enumerated prefix ran dry mid-run: the fair tail from here
            // is a function of the post-prefix state and the remaining
            // budget alone, so skip it if this state was already completed
            // (clean) by this worker.
            let fp = exec.state_fingerprint();
            if visited.as_deref().is_some_and(|seen| seen.contains(fp)) {
                res.dedup_hits += 1;
                None
            } else {
                tail_state = Some(fp);
                let mut tail = RecordingSource::new(RotatingSource::default());
                let (tail_out, tail_steps) =
                    run_with_source_counted(&mut exec, &mut tail, scenario.max_steps - consumed);
                res.steps_executed += tail_steps;
                res.steps_odometer += tail_steps;
                schedule.extend(tail.into_log());
                Some(exec.report(tail_out == RunOutcome::Quiescent))
            }
        } else {
            // The run terminated within the enumerated prefix itself.
            Some(exec.report(out == RunOutcome::Quiescent))
        };
        if let Some(report) = report {
            if let Err(violation) = check_all(&report, scenario.variant) {
                res.violation = Some((schedule, violation, 0));
                return res;
            }
            // Only a *clean* tail verdict is remembered: a violating state
            // never enters the set, so pruning cannot hide a counterexample.
            if let (Some(fp), Some(seen)) = (tail_state, visited.as_deref_mut()) {
                seen.insert(fp);
            }
        }
        // Advance the odometer over the free digits only.
        let branching = path_source.branching();
        let used = branching.len().min(depth);
        let Some(bump) = (prefix.len()..used)
            .rev()
            .find(|&i| path[i] + 1 < branching[i])
        else {
            return res;
        };
        path[bump] += 1;
        for digit in path.iter_mut().skip(bump + 1) {
            *digit = 0;
        }
    }
}

/// The shared worker-pool scaffolding of the parallel exhaustive engines:
/// claims work items from a shared queue, skips items beyond the lowest
/// violating index, and merges deterministically. `run_item` is the
/// per-item walk — the restart-from-scratch odometer ([`explore_item`]) or
/// the snapshotting DFS ([`crate::dfs`]).
pub(crate) fn exhaustive_pool<F>(
    scenario: &Scenario,
    depth: usize,
    max_runs: u64,
    config: &ExploreConfig,
    run_item: F,
) -> ExploreStats
where
    F: Fn(&Scenario, usize, &[usize], &AtomicU64, u64, Option<&mut VisitedSet>) -> ItemResult
        + Sync,
{
    let items = exhaustive_items(scenario, depth);
    let threads = config.resolved_threads().clamp(1, items.len().max(1));
    let next_item = AtomicUsize::new(0);
    let reserved = AtomicU64::new(0);
    // Lowest item index known to hold a violation; items beyond it can only
    // yield canonically-later counterexamples, so workers skip them.
    let best_item = AtomicUsize::new(usize::MAX);
    let per_worker: Vec<WorkerTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut visited = (config.dedup_capacity > 0)
                        .then(|| VisitedSet::with_capacity(config.dedup_capacity));
                    let mut runs = 0u64;
                    let mut results = Vec::new();
                    loop {
                        // gam-lint: allow(A001, reason = "work-queue ticket: each index is claimed exactly once by atomicity alone; which worker gets it never reaches the report, the merge sorts results by index")
                        let i = next_item.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        // gam-lint: allow(A001, reason = "lowest-wins skip hint: a stale read only fails to skip work, never skips a candidate below the best; the canonical answer is re-derived in the deterministic merge")
                        if i > best_item.load(Ordering::Relaxed) {
                            continue;
                        }
                        let r = run_item(
                            scenario,
                            depth,
                            &items[i],
                            &reserved,
                            max_runs,
                            visited.as_mut(),
                        );
                        runs += r.runs;
                        if r.violation.is_some() {
                            // gam-lint: allow(A001, reason = "fetch_min is order-insensitive: the cell converges to the minimum regardless of interleaving, and it only prunes indexes strictly above a known violation")
                            best_item.fetch_min(i, Ordering::Relaxed);
                        }
                        results.push((i, r));
                    }
                    (runs, 0, results)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("explorer worker panicked"))
            .collect()
    });

    merge(scenario, per_worker, config.shrink_budget)
}

/// Parallel, dedup-pruned version of
/// [`explore_exhaustive`](crate::explore_exhaustive): same tree, same
/// checks, same canonical counterexample, spread over
/// [`ExploreConfig::resolved_threads`] workers.
pub fn explore_exhaustive_par(
    scenario: &Scenario,
    depth: usize,
    max_runs: u64,
    config: &ExploreConfig,
) -> ExploreStats {
    exhaustive_pool(scenario, depth, max_runs, config, explore_item)
}

/// Parallel version of [`explore_swarm`](crate::explore_swarm): worker `w`
/// of `t` runs seeds `start+w, start+w+t, …` ascending, and the merge
/// reports the lowest violating seed — the one the sequential sweep would
/// have stopped at.
pub fn explore_swarm_par(
    scenario: &Scenario,
    seeds: Range<u64>,
    config: &ExploreConfig,
) -> ExploreStats {
    let span = seeds.end.saturating_sub(seeds.start);
    let threads = (config.resolved_threads() as u64).clamp(1, span.max(1)) as usize;
    // Lowest violating seed found so far; stripes are ascending, so a
    // worker whose next seed is beyond it cannot improve the answer.
    let best_seed = AtomicU64::new(u64::MAX);
    let per_worker: Vec<WorkerTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let seeds = seeds.clone();
                let best_seed = &best_seed;
                scope.spawn(move || {
                    let mut runs = 0u64;
                    let mut steps = 0u64;
                    let mut results = Vec::new();
                    let mut seed = seeds.start + w as u64;
                    while seed < seeds.end {
                        // gam-lint: allow(A001, reason = "lowest-wins skip hint: a stale read only costs extra runs; the reported seed is the minimum over per-worker results, folded after thread::scope joins")
                        if seed > best_seed.load(Ordering::Relaxed) {
                            break;
                        }
                        let mut source = RecordingSource::new(RandomSource::new(seed));
                        let mut exec = scenario.runtime_executor();
                        let (out, consumed) =
                            run_with_source_counted(&mut exec, &mut source, scenario.max_steps);
                        let report = exec.report(out == RunOutcome::Quiescent);
                        runs += 1;
                        steps += consumed;
                        if let Err(violation) = check_all(&report, scenario.variant) {
                            // gam-lint: allow(A001, reason = "fetch_min converges to the lowest violating seed under any interleaving; it gates skipping only, the answer comes from the deterministic merge")
                            best_seed.fetch_min(seed, Ordering::Relaxed);
                            results.push((
                                (seed - seeds.start) as usize,
                                ItemResult {
                                    violation: Some((source.into_log(), violation, seed)),
                                    ..ItemResult::default()
                                },
                            ));
                            break;
                        }
                        let Some(next) = seed.checked_add(threads as u64) else {
                            break;
                        };
                        seed = next;
                    }
                    (runs, steps, results)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("swarm worker panicked"))
            .collect()
    });

    merge(scenario, per_worker, config.shrink_budget)
}

/// Deterministic merge: sums the run/dedup/step tallies, and packages the
/// violation of the lowest item index (shrunk once, after the merge).
///
/// Each per-worker entry is `(runs, loose_steps, item results)`, where
/// `loose_steps` covers steps not attributed to any item (the swarm counts
/// at the worker level; the exhaustive pools pass 0 and count per item).
pub(crate) fn merge(
    scenario: &Scenario,
    per_worker: Vec<WorkerTally>,
    shrink_budget: u64,
) -> ExploreStats {
    let mut worker_runs = Vec::with_capacity(per_worker.len());
    let mut runs = 0u64;
    let mut dedup_hits = 0u64;
    let mut steps_executed = 0u64;
    let mut snapshots_taken = 0u64;
    let mut steps_avoided = 0u64;
    let mut snapshot_bytes = 0u64;
    let mut snapshot_deep_bytes = 0u64;
    let mut snapshot_bytes_peak = 0u64;
    let mut por_pruned = 0u64;
    let mut capped = false;
    let mut best: Option<(usize, Vec<ChoiceStep>, SpecViolation, u64)> = None;
    for (wr, loose_steps, results) in per_worker {
        worker_runs.push(wr);
        runs += wr;
        steps_executed += loose_steps;
        for (idx, r) in results {
            dedup_hits += r.dedup_hits;
            capped |= r.capped;
            steps_executed += r.steps_executed;
            snapshots_taken += r.snapshots;
            // Under POR a descent can end at a branch whose children are
            // all slept: those steps ran but belong to no leaf, so the
            // item's odometer-equivalent cost can fall below its executed
            // cost. Saturate — the identity `executed + avoided =
            // odometer` is only asserted for non-POR configurations.
            steps_avoided += r.steps_odometer.saturating_sub(r.steps_executed);
            snapshot_bytes += r.snapshot_bytes;
            snapshot_deep_bytes += r.snapshot_deep_bytes;
            snapshot_bytes_peak = snapshot_bytes_peak.max(r.snapshot_bytes_peak);
            por_pruned += r.por_pruned;
            if let Some((schedule, violation, seed)) = r.violation {
                if best.as_ref().is_none_or(|(bi, ..)| idx < *bi) {
                    best = Some((idx, schedule, violation, seed));
                }
            }
        }
    }
    let (outcome, violations) = match best {
        Some((_, schedule, violation, seed)) => (
            Outcome::ViolationFound,
            vec![found(scenario, schedule, violation, seed, shrink_budget)],
        ),
        None if capped => (Outcome::RunCapped, Vec::new()),
        None => (Outcome::Exhausted, Vec::new()),
    };
    ExploreStats {
        runs,
        violations,
        outcome,
        dedup_hits,
        worker_runs,
        steps_executed,
        snapshots_taken,
        steps_avoided,
        snapshot_bytes,
        snapshot_deep_bytes,
        snapshot_bytes_peak,
        por_pruned,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explorer::{explore_exhaustive, explore_swarm};
    use gam_groups::topology;

    fn config(threads: usize, dedup_capacity: usize) -> ExploreConfig {
        ExploreConfig {
            threads,
            shrink_budget: DEFAULT_SHRINK_BUDGET,
            dedup_capacity,
            por: false,
        }
    }

    #[test]
    fn items_cover_the_root_fanout_in_order() {
        let scenario = Scenario::one_per_group(&topology::single_group(2), 20_000);
        let items = exhaustive_items(&scenario, 3);
        assert!(!items.is_empty());
        let mut sorted = items.clone();
        sorted.sort();
        assert_eq!(items, sorted, "items must be in lexicographic order");
        let b0 = arity_after(&scenario, &[]);
        assert!(b0 > 0);
        assert_eq!(
            items
                .iter()
                .map(|i| i[0])
                .collect::<std::collections::BTreeSet<_>>(),
            (0..b0).collect(),
            "every root digit owned by some item"
        );
    }

    #[test]
    fn par_exhaustive_matches_sequential_coverage() {
        let scenario = Scenario::one_per_group(&topology::single_group(2), 20_000);
        let seq = explore_exhaustive(&scenario, 3, 5_000, DEFAULT_SHRINK_BUDGET);
        assert!(seq.clean());
        for threads in [1, 2, 4] {
            let par = explore_exhaustive_par(&scenario, 3, 5_000, &config(threads, 0));
            assert!(par.clean(), "{threads} threads: {:?}", par.violations);
            assert_eq!(par.runs, seq.runs, "{threads} threads");
            assert_eq!(par.outcome, Outcome::Exhausted);
        }
    }

    #[test]
    fn dedup_prunes_tails_without_changing_coverage() {
        let scenario = Scenario::one_per_group(&topology::two_overlapping(3, 1), 50_000);
        let plain = explore_exhaustive_par(&scenario, 3, 50_000, &config(1, 0));
        let pruned = explore_exhaustive_par(&scenario, 3, 50_000, &config(1, 1 << 12));
        assert!(plain.clean() && pruned.clean());
        assert_eq!(plain.runs, pruned.runs, "dedup must not skip prefixes");
        assert_eq!(plain.dedup_hits, 0);
        assert!(
            pruned.dedup_hits > 0,
            "no converging prefixes pruned in {} runs",
            pruned.runs
        );
    }

    #[test]
    fn par_run_cap_is_exact_at_one_thread() {
        let scenario = Scenario::one_per_group(&topology::two_overlapping(3, 1), 50_000);
        let par = explore_exhaustive_par(&scenario, 4, 7, &config(1, 0));
        assert_eq!(par.runs, 7);
        assert_eq!(par.outcome, Outcome::RunCapped);
        assert!(!par.complete());
        assert!(par.violations.is_empty());
    }

    #[test]
    fn par_swarm_matches_sequential_on_clean_range() {
        let scenario = Scenario::one_per_group(&topology::ring(3, 2), 100_000);
        let seq = explore_swarm(&scenario, 0..6, DEFAULT_SHRINK_BUDGET);
        assert!(seq.clean());
        for threads in [1, 2, 4] {
            let par = explore_swarm_par(&scenario, 0..6, &config(threads, 0));
            assert!(par.clean(), "{threads} threads: {:?}", par.violations);
            assert_eq!(par.runs, 6, "{threads} threads");
            assert_eq!(par.worker_runs.iter().sum::<u64>(), par.runs);
            assert_eq!(par.worker_runs.len(), threads.min(6));
        }
    }

    #[test]
    fn worker_count_resolution_prefers_explicit_over_env() {
        let explicit = ExploreConfig {
            threads: 3,
            ..ExploreConfig::default()
        };
        assert_eq!(explicit.resolved_threads(), 3);
        let auto = ExploreConfig::default();
        assert!(auto.resolved_threads() >= 1);
    }
}
