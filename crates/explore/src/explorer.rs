//! The two exploration strategies: bounded exhaustive enumeration and a
//! seeded random swarm.
//!
//! Both come in a sequential flavor (this module) and a parallel,
//! dedup-pruned flavor ([`crate::par`]). The sequential loops are the
//! reference semantics: the parallel engines are verified (by
//! `tests/parallel_determinism.rs`) to produce byte-identical [`Repro`]s.

use crate::shrink::shrink;
use crate::{PrefixTail, Repro, Scenario};
use gam_core::spec::{check_all, SpecViolation};
use gam_engine::run_with_source_counted;
use gam_kernel::schedule::{PathSource, RandomSource, RecordInto, RecordingSource};
use gam_kernel::RunOutcome;
use std::ops::Range;

/// A spec violation found by exploration, shrunk and packaged for replay.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The shrunk, replayable run.
    pub repro: Repro,
    /// The violation the repro reproduces.
    pub violation: SpecViolation,
    /// Candidate runs the shrinker spent.
    pub shrink_runs: u64,
}

/// Why an exploration stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The whole space (every bounded prefix / every seed) was covered and
    /// no violation was found.
    Exhausted,
    /// Exploration stopped at a spec violation (packaged in
    /// [`ExploreStats::violations`]).
    ViolationFound,
    /// The run cap was hit before the space was covered — coverage is
    /// partial and violation-free so far.
    RunCapped,
}

/// What an exploration covered and found.
#[derive(Debug, Clone)]
pub struct ExploreStats {
    /// Scheduled runs executed (excluding shrinker candidates; dedup-pruned
    /// prefixes count — their enumerated part did run).
    pub runs: u64,
    /// Counterexamples found (exploration stops at the first).
    pub violations: Vec<Counterexample>,
    /// Why exploration stopped.
    pub outcome: Outcome,
    /// Runs whose fair-tail completion was skipped because the post-prefix
    /// state fingerprint was already in the visited set (always 0 for the
    /// sequential strategies and the swarm, which has no prefix/tail split).
    pub dedup_hits: u64,
    /// Runs executed by each worker of the pool (a single entry for the
    /// sequential strategies).
    pub worker_runs: Vec<u64>,
    /// Substrate steps (scheduled steps plus idle ticks) actually executed,
    /// excluding shrinker candidates and work-item probe runs. The metric
    /// the DFS engine's prefix sharing reduces.
    pub steps_executed: u64,
    /// Checkpoints captured by the snapshotting DFS engine (0 for the
    /// odometer engines and the swarm).
    pub snapshots_taken: u64,
    /// Steps a restart-from-scratch odometer enumeration of the *same*
    /// leaves (with the same dedup decisions) would have executed, minus
    /// [`ExploreStats::steps_executed`] — i.e. the shared-prefix re-execution
    /// the DFS engine skipped (0 for the odometer engines and the swarm).
    pub steps_avoided: u64,
    /// Bytes the DFS engine's checkpoints actually copied, summed across
    /// branch points — with copy-on-write state this is the chunk pointer
    /// tables, not the elements (0 for the odometer engines and the swarm).
    pub snapshot_bytes: u64,
    /// Bytes deep per-element copies of the same checkpoints would have
    /// copied — the Clone baseline the snapshot-bytes gate of
    /// `BENCH_explore_dfs.json` divides by.
    pub snapshot_deep_bytes: u64,
    /// Largest single checkpoint, in copied bytes.
    pub snapshot_bytes_peak: u64,
    /// Subtrees skipped by sleep-set partial-order reduction (0 unless
    /// [`ExploreConfig::por`](crate::ExploreConfig) is on).
    pub por_pruned: u64,
}

impl ExploreStats {
    /// True when the whole space was covered (no cap, no early stop at a
    /// violation).
    pub fn complete(&self) -> bool {
        self.outcome == Outcome::Exhausted
    }

    /// True when the space was fully covered with no violation.
    pub fn clean(&self) -> bool {
        self.complete() && self.violations.is_empty()
    }

    /// Fraction of runs whose tail was dedup-pruned.
    pub fn dedup_hit_rate(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.dedup_hits as f64 / self.runs as f64
        }
    }

    /// Per-mille of odometer-equivalent steps the engine did *not* execute:
    /// `steps_avoided / (steps_executed + steps_avoided) × 1000` (0 for the
    /// restart-from-scratch engines, where nothing is avoided).
    pub fn steps_avoided_permille(&self) -> u64 {
        let equivalent = self.steps_executed + self.steps_avoided;
        (self.steps_avoided * 1000)
            .checked_div(equivalent)
            .unwrap_or(0)
    }

    pub(crate) fn sequential(
        runs: u64,
        violations: Vec<Counterexample>,
        outcome: Outcome,
        steps_executed: u64,
    ) -> Self {
        ExploreStats {
            runs,
            violations,
            outcome,
            dedup_hits: 0,
            worker_runs: vec![runs],
            steps_executed,
            snapshots_taken: 0,
            steps_avoided: 0,
            snapshot_bytes: 0,
            snapshot_deep_bytes: 0,
            snapshot_bytes_peak: 0,
            por_pruned: 0,
        }
    }
}

pub(crate) fn found(
    scenario: &Scenario,
    schedule: Vec<gam_kernel::ChoiceStep>,
    violation: SpecViolation,
    seed: u64,
    shrink_budget: u64,
) -> Counterexample {
    let (scenario, schedule, shrink_runs) = shrink(
        scenario.clone(),
        schedule,
        violation.property,
        shrink_budget,
    );
    Counterexample {
        repro: Repro {
            scenario,
            schedule,
            seed,
            property: Some(violation.property.to_string()),
        },
        violation,
        shrink_runs,
    }
}

/// Enumerates **every** schedule of the scenario whose first `depth`
/// scheduling choices differ, completing each prefix with the fair
/// round-robin tail to a checkable terminal state, and checking each
/// against `spec::check_all`.
///
/// The choice tree is walked odometer-style: each run records the
/// branching factor actually met at every depth, which is exactly the
/// information needed to advance to the next unexplored prefix. Stops at
/// the first violation (shrunk within `shrink_budget` candidate runs into a
/// [`Counterexample`]) or after `max_runs` runs; [`ExploreStats::outcome`]
/// reports which.
///
/// For multi-core exploration of the same tree see
/// [`explore_exhaustive_par`](crate::explore_exhaustive_par).
pub fn explore_exhaustive(
    scenario: &Scenario,
    depth: usize,
    max_runs: u64,
    shrink_budget: u64,
) -> ExploreStats {
    let mut path = vec![0usize; depth];
    // The per-run state is hoisted out of the loop and reset in place:
    // enumerating a tree means millions of runs, and a fresh `PathSource`
    // path + a fresh recording log per run were the loop's only per-run
    // allocations.
    let mut path_source = PathSource::new(Vec::new());
    let mut schedule = Vec::new();
    let mut runs = 0u64;
    let mut steps = 0u64;
    loop {
        if runs >= max_runs {
            return ExploreStats::sequential(runs, Vec::new(), Outcome::RunCapped, steps);
        }
        path_source.reset_to(&path);
        schedule.clear();
        let mut exec = scenario.runtime_executor();
        let out = {
            let mut source = RecordInto::new(PrefixTail::new(&mut path_source), &mut schedule);
            let (out, consumed) =
                run_with_source_counted(&mut exec, &mut source, scenario.max_steps);
            steps += consumed;
            out
        };
        let report = exec.report(out == RunOutcome::Quiescent);
        runs += 1;
        if let Err(violation) = check_all(&report, scenario.variant) {
            let schedule = std::mem::take(&mut schedule);
            return ExploreStats::sequential(
                runs,
                vec![found(scenario, schedule, violation, 0, shrink_budget)],
                Outcome::ViolationFound,
                steps,
            );
        }
        // Advance the odometer: bump the deepest consumed digit that still
        // has unexplored siblings, reset everything after it.
        let branching = path_source.branching();
        let used = branching.len().min(depth);
        let Some(bump) = (0..used).rev().find(|&i| path[i] + 1 < branching[i]) else {
            return ExploreStats::sequential(runs, Vec::new(), Outcome::Exhausted, steps);
        };
        path[bump] += 1;
        for digit in path.iter_mut().skip(bump + 1) {
            *digit = 0;
        }
    }
}

/// Runs the scenario once per seed under the uniformly random scheduler,
/// recording each schedule, and checks every terminal state. Stops at the
/// first violation, shrunk within `shrink_budget` candidate runs into a
/// [`Counterexample`].
///
/// For multi-core striping over the same seed range see
/// [`explore_swarm_par`](crate::explore_swarm_par).
pub fn explore_swarm(scenario: &Scenario, seeds: Range<u64>, shrink_budget: u64) -> ExploreStats {
    let mut runs = 0u64;
    let mut steps = 0u64;
    for seed in seeds {
        let mut source = RecordingSource::new(RandomSource::new(seed));
        let mut exec = scenario.runtime_executor();
        let (out, consumed) = run_with_source_counted(&mut exec, &mut source, scenario.max_steps);
        steps += consumed;
        let report = exec.report(out == RunOutcome::Quiescent);
        runs += 1;
        if let Err(violation) = check_all(&report, scenario.variant) {
            return ExploreStats::sequential(
                runs,
                vec![found(
                    scenario,
                    source.into_log(),
                    violation,
                    seed,
                    shrink_budget,
                )],
                Outcome::ViolationFound,
                steps,
            );
        }
    }
    ExploreStats::sequential(runs, Vec::new(), Outcome::Exhausted, steps)
}

/// The default shrinker budget (candidate runs) of the `explore_*` family.
pub const DEFAULT_SHRINK_BUDGET: u64 = 800;

#[cfg(test)]
mod tests {
    use super::*;
    use gam_groups::topology;

    #[test]
    fn exhaustive_single_group_is_clean_and_complete() {
        let scenario = Scenario::one_per_group(&topology::single_group(2), 20_000);
        let stats = explore_exhaustive(&scenario, 3, 5_000, DEFAULT_SHRINK_BUDGET);
        assert!(stats.clean(), "violations: {:?}", stats.violations);
        assert!(stats.runs > 1, "more than one prefix explored");
        assert_eq!(stats.outcome, Outcome::Exhausted);
        assert_eq!(stats.worker_runs, vec![stats.runs]);
        assert_eq!(stats.dedup_hits, 0);
    }

    #[test]
    fn exhaustive_respects_run_cap() {
        let scenario = Scenario::one_per_group(&topology::two_overlapping(3, 1), 50_000);
        let stats = explore_exhaustive(&scenario, 4, 7, DEFAULT_SHRINK_BUDGET);
        assert_eq!(stats.runs, 7);
        assert_eq!(stats.outcome, Outcome::RunCapped);
        assert!(!stats.complete());
        assert!(stats.violations.is_empty());
    }

    #[test]
    fn swarm_on_ring_is_clean() {
        let scenario = Scenario::one_per_group(&topology::ring(3, 2), 100_000);
        let stats = explore_swarm(&scenario, 0..5, DEFAULT_SHRINK_BUDGET);
        assert!(stats.clean(), "violations: {:?}", stats.violations);
        assert_eq!(stats.runs, 5);
        assert_eq!(stats.outcome, Outcome::Exhausted);
    }
}
