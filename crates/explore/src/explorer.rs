//! The two exploration strategies: bounded exhaustive enumeration and a
//! seeded random swarm.

use crate::shrink::shrink;
use crate::{PrefixTail, Repro, Scenario};
use gam_core::spec::{check_all, SpecViolation};
use gam_kernel::schedule::{PathSource, RandomSource, RecordingSource};
use std::ops::Range;

/// A spec violation found by exploration, shrunk and packaged for replay.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The shrunk, replayable run.
    pub repro: Repro,
    /// The violation the repro reproduces.
    pub violation: SpecViolation,
    /// Candidate runs the shrinker spent.
    pub shrink_runs: u64,
}

/// What an exploration covered and found.
#[derive(Debug, Clone)]
pub struct ExploreStats {
    /// Scheduled runs executed (excluding shrinker candidates).
    pub runs: u64,
    /// Counterexamples found (exploration stops at the first).
    pub violations: Vec<Counterexample>,
    /// Whether the whole space (all prefixes / all seeds) was covered.
    pub complete: bool,
}

impl ExploreStats {
    /// True when the space was fully covered with no violation.
    pub fn clean(&self) -> bool {
        self.complete && self.violations.is_empty()
    }
}

fn found(
    scenario: &Scenario,
    schedule: Vec<gam_kernel::ChoiceStep>,
    violation: SpecViolation,
    seed: u64,
) -> Counterexample {
    let (scenario, schedule, shrink_runs) =
        shrink(scenario.clone(), schedule, violation.property, 800);
    Counterexample {
        repro: Repro {
            scenario,
            schedule,
            seed,
            property: Some(violation.property.to_string()),
        },
        violation,
        shrink_runs,
    }
}

/// Enumerates **every** schedule of the scenario whose first `depth`
/// scheduling choices differ, completing each prefix with the fair
/// round-robin tail to a checkable terminal state, and checking each
/// against `spec::check_all`.
///
/// The choice tree is walked odometer-style: each run records the
/// branching factor actually met at every depth, which is exactly the
/// information needed to advance to the next unexplored prefix. Stops at
/// the first violation (shrunk into a [`Counterexample`]) or after
/// `max_runs` runs; `complete` reports whether the tree was exhausted.
pub fn explore_exhaustive(scenario: &Scenario, depth: usize, max_runs: u64) -> ExploreStats {
    let mut path = vec![0usize; depth];
    let mut runs = 0u64;
    loop {
        if runs >= max_runs {
            return ExploreStats {
                runs,
                violations: Vec::new(),
                complete: false,
            };
        }
        let mut path_source = PathSource::new(path.clone());
        let mut source = RecordingSource::new(PrefixTail::new(&mut path_source));
        let report = scenario.run(&mut source);
        let schedule = source.into_log();
        runs += 1;
        if let Err(violation) = check_all(&report, scenario.variant) {
            return ExploreStats {
                runs,
                violations: vec![found(scenario, schedule, violation, 0)],
                complete: false,
            };
        }
        // Advance the odometer: bump the deepest consumed digit that still
        // has unexplored siblings, reset everything after it.
        let branching = path_source.branching();
        let used = branching.len().min(depth);
        let Some(bump) = (0..used).rev().find(|&i| path[i] + 1 < branching[i]) else {
            return ExploreStats {
                runs,
                violations: Vec::new(),
                complete: true,
            };
        };
        path[bump] += 1;
        for digit in path.iter_mut().skip(bump + 1) {
            *digit = 0;
        }
    }
}

/// Runs the scenario once per seed under the uniformly random scheduler,
/// recording each schedule, and checks every terminal state. Stops at the
/// first violation, shrunk into a [`Counterexample`].
pub fn explore_swarm(scenario: &Scenario, seeds: Range<u64>) -> ExploreStats {
    let mut runs = 0u64;
    for seed in seeds {
        let mut source = RecordingSource::new(RandomSource::new(seed));
        let report = scenario.run(&mut source);
        runs += 1;
        if let Err(violation) = check_all(&report, scenario.variant) {
            return ExploreStats {
                runs,
                violations: vec![found(scenario, source.into_log(), violation, seed)],
                complete: false,
            };
        }
    }
    ExploreStats {
        runs,
        violations: Vec::new(),
        complete: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gam_groups::topology;

    #[test]
    fn exhaustive_single_group_is_clean_and_complete() {
        let scenario = Scenario::one_per_group(&topology::single_group(2), 20_000);
        let stats = explore_exhaustive(&scenario, 3, 5_000);
        assert!(stats.clean(), "violations: {:?}", stats.violations);
        assert!(stats.runs > 1, "more than one prefix explored");
    }

    #[test]
    fn exhaustive_respects_run_cap() {
        let scenario = Scenario::one_per_group(&topology::two_overlapping(3, 1), 50_000);
        let stats = explore_exhaustive(&scenario, 4, 7);
        assert_eq!(stats.runs, 7);
        assert!(!stats.complete);
        assert!(stats.violations.is_empty());
    }

    #[test]
    fn swarm_on_ring_is_clean() {
        let scenario = Scenario::one_per_group(&topology::ring(3, 2), 100_000);
        let stats = explore_swarm(&scenario, 0..5);
        assert!(stats.clean(), "violations: {:?}", stats.violations);
        assert_eq!(stats.runs, 5);
    }
}
