//! Order-sensitive run hashing.
//!
//! Determinism claims ("same seed ⇒ same run", "a `Repro` replays
//! byte-identically") are checked by comparing a 64-bit digest of the
//! observable run outcome. The digest folds in every delivery (process,
//! message, time) **in order**, plus the per-process action counters and
//! the quiescence bit, so any divergence — including one caused by
//! iteration over an unordered map leaking into scheduling — flips it.

use gam_core::RunReport;

/// 64-bit FNV-1a over a word stream.
pub fn fnv1a(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for byte in w.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Digest of a [`RunReport`]'s observable outcome.
pub fn trace_hash(report: &RunReport) -> u64 {
    let mut words = vec![u64::from(report.quiescent), report.delivered.len() as u64];
    for (i, deliveries) in report.delivered.iter().enumerate() {
        words.push(i as u64);
        words.push(report.actions_of[i]);
        for d in deliveries {
            words.push(d.msg.0);
            words.push(d.at.0);
        }
    }
    fnv1a(words)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_distinguishes_order() {
        assert_ne!(fnv1a([1, 2]), fnv1a([2, 1]));
        assert_ne!(fnv1a([]), fnv1a([0]));
        assert_eq!(fnv1a([7, 9]), fnv1a([7, 9]));
    }
}
