//! The independence relation behind partial-order reduction.
//!
//! Two enabled actions *commute* when firing them in either order yields
//! behaviorally equivalent states — equal delivery sequences, equal spec
//! verdicts under every deterministic continuation. The DFS engine's sleep
//! sets ([`crate::explore_exhaustive_dfs_par`]) prune one of each
//! commuting sibling pair, which
//! is sound exactly because the pruned interleaving's subtree repeats the
//! explored one's verdicts.
//!
//! ## Why genuineness makes this a local test
//!
//! Algorithm 1 is *genuine*: an action of process `p` about a unit of
//! group `g` reads and writes only state indexed by the pairs `{g, h}`
//! for `h ∈ 𝒢(p)` (the `per_gp` views of `gam_core::arena`), the unit's
//! own cells, and `p`'s own per-process rows. Two actions therefore touch
//! disjoint shared state iff their groups differ and neither process is a
//! member of the other action's group — a constant-time membership test,
//! no state inspection needed.
//!
//! Three refinements keep the relation sound:
//!
//! - **Deliveries never commute.** `Deliver` records the wall-clock
//!   delivery time (every fired action ticks the shared clock), so
//!   swapping a delivery across *any* action changes the recorded
//!   timestamps of the report.
//! - **Same process never commutes.** Both actions bump `p`'s action
//!   counter, consume the same per-process cursors, and their relative
//!   order is the process's local program order.
//! - **Crash-free patterns only** ([`por_applicable`]): with no crashes
//!   the detector guards are time-invariant (the `γ` timelines are
//!   constant, the `1^{g∩h}` indicators never fire, liveness is
//!   universal), so commuting a pair of actions cannot move a guard
//!   across a detector transition. Patterns with crashes disable pruning
//!   entirely rather than approximate.
//!
//! Unit-id allocation order (two `Inject`s) is *not* preserved by a swap:
//! the states differ by a unit-id permutation, so their fingerprints
//! differ while their behavior (reports carry no unit ids, action
//! enumeration sorts by representative message) is identical. This is
//! precisely the redundancy the fingerprint dedup cannot see and POR can.

use crate::Scenario;
use gam_core::{ActionDesc, ActionKind};
use gam_groups::GroupSystem;

/// True when the sleep-set reduction is sound for `scenario`: the failure
/// pattern is crash-free, so every detector guard is time-invariant and
/// commuting actions cannot move a guard across a detector transition.
pub fn por_applicable(scenario: &Scenario) -> bool {
    scenario.crashes.is_empty()
}

/// True when `a` and `b` commute: distinct processes, neither a
/// delivery, distinct groups, and neither process a member of the other
/// action's group — which makes their touched pair sets
/// `{{gₐ, h} : h ∈ 𝒢(pₐ)}` and `{{g_b, h} : h ∈ 𝒢(p_b)}` disjoint.
pub fn actions_commute(system: &GroupSystem, a: &ActionDesc, b: &ActionDesc) -> bool {
    a.pid != b.pid
        && a.kind != ActionKind::Deliver
        && b.kind != ActionKind::Deliver
        && a.group != b.group
        && !(system.members(b.group).contains(a.pid) && system.members(a.group).contains(b.pid))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gam_core::MessageId;
    use gam_groups::{topology, GroupId};
    use gam_kernel::{ProcessId, Time};

    fn desc(pid: u32, kind: ActionKind, group: u32, rep: u64) -> ActionDesc {
        ActionDesc {
            pid: ProcessId(pid),
            kind,
            group: GroupId(group),
            rep: MessageId(rep),
            aux: 0,
        }
    }

    #[test]
    fn disjoint_groups_commute_and_shared_state_does_not() {
        // fig1: g1 = {p1, p2}, g2 = {p2, p3}, g3 = {p3, p4}, g4 = {p4, p1}.
        let gs = topology::fig1();
        let a = desc(0, ActionKind::Pending, 0, 0); // p1 on g1
        let far = desc(2, ActionKind::Pending, 2, 2); // p3 on g3
        assert!(actions_commute(&gs, &a, &far));
        assert!(actions_commute(&gs, &far, &a), "relation is symmetric");
        // Same group never commutes.
        let same_group = desc(1, ActionKind::Commit, 0, 0); // p2 on g1
        assert!(!actions_commute(&gs, &a, &same_group));
        // p2 on g1 touches the pair views {g1,g1} and {g1,g2}; p1 on g2
        // touches {g2,g1} and {g2,g4} — they share {g1,g2}, because each
        // process is a member of the *other* action's group.
        let left = desc(1, ActionKind::Pending, 0, 0); // p2 on g1
        let right = desc(0, ActionKind::Pending, 1, 1); // p1 on g2
        assert!(
            !actions_commute(&gs, &left, &right),
            "mutual membership shares the {{g1,g2}} pair views"
        );
        // One-sided membership is not enough: p1 ∉ g2, so p1-on-g1 and
        // p2-on-g2 touch disjoint pair views even though p2 ∈ g1.
        let one_sided = desc(1, ActionKind::Pending, 1, 1); // p2 on g2
        assert!(actions_commute(&gs, &a, &one_sided));
    }

    #[test]
    fn deliveries_and_same_process_never_commute() {
        let gs = topology::disjoint(2, 2);
        let a = desc(0, ActionKind::Deliver, 0, 0);
        let b = desc(2, ActionKind::Pending, 1, 1);
        assert!(!actions_commute(&gs, &a, &b), "deliver is time-stamped");
        assert!(!actions_commute(&gs, &b, &a));
        let c = desc(0, ActionKind::Pending, 0, 0);
        let d = desc(0, ActionKind::Commit, 0, 0);
        assert!(!actions_commute(&gs, &c, &d), "same process");
        let e = desc(2, ActionKind::Commit, 1, 1);
        assert!(actions_commute(&gs, &c, &e), "disjoint groups commute");
    }

    #[test]
    fn por_applicability_is_exactly_crash_freedom() {
        let gs = topology::two_overlapping(3, 1);
        let mut scenario = Scenario::one_per_group(&gs, 10_000);
        assert!(por_applicable(&scenario));
        scenario.crashes.push((ProcessId(0), Time(3)));
        assert!(!por_applicable(&scenario));
    }
}
