//! The independence relation behind partial-order reduction.
//!
//! The commutation predicate itself lives in `gam-engine`
//! ([`gam_engine::independence`]) as the single source of truth shared
//! with the sharded parallel serving driver — the sharder and the POR
//! engine must never disagree about independence, so there is exactly one
//! definition. This module re-exports it and adds the explorer-side
//! applicability gate.
//!
//! Two enabled actions *commute* when firing them in either order yields
//! behaviorally equivalent states — equal delivery sequences, equal spec
//! verdicts under every deterministic continuation. The DFS engine's sleep
//! sets ([`crate::explore_exhaustive_dfs_par`]) prune one of each
//! commuting sibling pair, which is sound exactly because the pruned
//! interleaving's subtree repeats the explored one's verdicts. See the
//! engine module docs for why genuineness makes commutation a
//! constant-time membership test and for the three refinements
//! (deliveries never commute, same process never commutes, crash-free
//! patterns only).

use crate::Scenario;

pub use gam_engine::independence::actions_commute;

/// True when the sleep-set reduction is sound for `scenario`: the failure
/// pattern is crash-free, so every detector guard is time-invariant and
/// commuting actions cannot move a guard across a detector transition.
pub fn por_applicable(scenario: &Scenario) -> bool {
    scenario.crashes.is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gam_core::{ActionDesc, ActionKind, MessageId};
    use gam_groups::{topology, GroupId};
    use gam_kernel::{ProcessId, Time};

    #[test]
    fn reexported_relation_matches_the_engine_definition() {
        // The hoisted predicate answers through the re-export exactly as
        // the engine's own symbol (they are the same function item); the
        // full behavioral suite lives with the definition in gam-engine.
        let gs = topology::fig1();
        let mk = |pid: u32, group: u32| ActionDesc {
            pid: ProcessId(pid),
            kind: ActionKind::Pending,
            group: GroupId(group),
            rep: MessageId(0),
            aux: 0,
        };
        assert!(actions_commute(&gs, &mk(0, 0), &mk(2, 2)));
        assert!(!actions_commute(&gs, &mk(1, 0), &mk(0, 1)));
        assert_eq!(
            actions_commute(&gs, &mk(0, 0), &mk(2, 2)),
            gam_engine::actions_commute(&gs, &mk(0, 0), &mk(2, 2)),
        );
    }

    #[test]
    fn por_applicability_is_exactly_crash_freedom() {
        let gs = topology::two_overlapping(3, 1);
        let mut scenario = Scenario::one_per_group(&gs, 10_000);
        assert!(por_applicable(&scenario));
        scenario.crashes.push((ProcessId(0), Time(3)));
        assert!(!por_applicable(&scenario));
    }
}
