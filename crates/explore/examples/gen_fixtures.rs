//! Regenerates the checked-in repro fixtures under `tests/fixtures/`.
//!
//! Each fixture is a clean (property `-`) recorded run on one suite
//! topology; `tests/regressions.rs` replays them and asserts the verdict
//! still matches. Run from the workspace root:
//!
//! ```text
//! cargo run -p gam-explore --example gen_fixtures [out_dir]
//! ```

use gam_explore::{Repro, Scenario};
use gam_groups::topology;
use gam_kernel::{RandomSource, RecordingSource};

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "tests/fixtures".into());
    std::fs::create_dir_all(&out_dir).expect("create fixture dir");
    for (name, gs, seed) in [
        ("fig1", topology::fig1(), 1),
        ("ring_3_2", topology::ring(3, 2), 2),
        ("two_overlapping_3_1", topology::two_overlapping(3, 1), 3),
    ] {
        let scenario = Scenario::one_per_group(&gs, 500_000);
        let mut source = RecordingSource::new(RandomSource::new(seed));
        let report = scenario.run(&mut source);
        assert!(report.quiescent, "{name}: fixture run must quiesce");
        let repro = Repro {
            scenario,
            schedule: source.into_log(),
            seed,
            property: None,
        };
        repro.verify().unwrap_or_else(|e| panic!("{name}: {e}"));
        let path = format!("{out_dir}/{name}.repro");
        let text = format!(
            "# {name}: clean seed-{seed} swarm run, hash {:#018x}\n{}",
            repro.trace_hash(),
            repro.to_text()
        );
        std::fs::write(&path, text).expect("write fixture");
        println!("wrote {path}");
    }
}
