//! A library of standard group topologies.
//!
//! The experiment suites (Table 1, the performance benches) sweep over these
//! topologies: the paper's Figure 1 system, pairwise-disjoint groups, acyclic
//! chains, rings of groups (the minimal cyclic family), hub-and-spoke
//! systems, and single-group (atomic broadcast) systems.

use crate::group::GroupSystem;
use gam_kernel::{ProcessId, ProcessSet};

/// The worked example of Figure 1: `𝒫 = {p1..p5}`,
/// `g1 = {p1,p2}`, `g2 = {p2,p3}`, `g3 = {p1,p3,p4}`, `g4 = {p1,p4,p5}`.
pub fn fig1() -> GroupSystem {
    GroupSystem::new(
        ProcessSet::first_n(5),
        vec![
            ProcessSet::from_iter([0u32, 1]),
            ProcessSet::from_iter([1u32, 2]),
            ProcessSet::from_iter([0u32, 2, 3]),
            ProcessSet::from_iter([0u32, 3, 4]),
        ],
    )
}

/// A single group of `n` processes — atomic multicast degenerates to atomic
/// broadcast.
pub fn single_group(n: usize) -> GroupSystem {
    GroupSystem::new(ProcessSet::first_n(n), vec![ProcessSet::first_n(n)])
}

/// `k` pairwise-disjoint groups of `size` processes each — the embarrassingly
/// parallel workload of §2.3.
pub fn disjoint(k: usize, size: usize) -> GroupSystem {
    let universe = ProcessSet::first_n(k * size);
    let groups = (0..k)
        .map(|i| (i * size..(i + 1) * size).collect())
        .collect();
    GroupSystem::new(universe, groups)
}

/// A chain of `k` groups, adjacent groups sharing exactly one process:
/// `g_i = {q_i, s_i1..s_i(size-2), q_{i+1}}`. The intersection graph is a
/// path, so `ℱ = ∅`.
///
/// # Panics
///
/// Panics if `size < 2` or `k == 0`.
pub fn chain(k: usize, size: usize) -> GroupSystem {
    assert!(size >= 2 && k >= 1);
    // Processes: k+1 "joint" processes q_0..q_k, then inner processes.
    let inner = size - 2;
    let n = (k + 1) + k * inner;
    let universe = ProcessSet::first_n(n);
    let groups = (0..k)
        .map(|i| {
            let mut g = ProcessSet::new();
            g.insert(ProcessId(i as u32)); // q_i
            g.insert(ProcessId((i + 1) as u32)); // q_{i+1}
            for j in 0..inner {
                g.insert(ProcessId((k + 1 + i * inner + j) as u32));
            }
            g
        })
        .collect();
    GroupSystem::new(universe, groups)
}

/// A ring of `k ≥ 3` groups, adjacent groups sharing exactly one process —
/// the minimal topology with a cyclic family (the whole ring).
///
/// # Panics
///
/// Panics if `k < 3` or `size < 2`.
pub fn ring(k: usize, size: usize) -> GroupSystem {
    assert!(k >= 3 && size >= 2);
    let inner = size - 2;
    let n = k + k * inner;
    let universe = ProcessSet::first_n(n);
    let groups = (0..k)
        .map(|i| {
            let mut g = ProcessSet::new();
            g.insert(ProcessId(i as u32)); // q_i
            g.insert(ProcessId(((i + 1) % k) as u32)); // q_{i+1 mod k}
            for j in 0..inner {
                g.insert(ProcessId((k + i * inner + j) as u32));
            }
            g
        })
        .collect();
    GroupSystem::new(universe, groups)
}

/// `k` groups all sharing one hub process, otherwise disjoint. For `k ≥ 3`
/// every subset of ≥ 3 groups is a cyclic family (the intersection graph is
/// complete).
pub fn hub(k: usize, size: usize) -> GroupSystem {
    assert!(size >= 2 && k >= 1);
    let spokes = size - 1;
    let n = 1 + k * spokes;
    let universe = ProcessSet::first_n(n);
    let groups = (0..k)
        .map(|i| {
            let mut g = ProcessSet::singleton(ProcessId(0));
            for j in 0..spokes {
                g.insert(ProcessId((1 + i * spokes + j) as u32));
            }
            g
        })
        .collect();
    GroupSystem::new(universe, groups)
}

/// Two groups intersecting in `overlap` processes — the minimal system in
/// which `Σ_{g∩h}` is required (and where the `𝒰_2` impossibility of
/// Guerraoui & Schiper applies when `overlap = 2`).
pub fn two_overlapping(size: usize, overlap: usize) -> GroupSystem {
    assert!(overlap >= 1 && overlap <= size);
    let n = 2 * size - overlap;
    let universe = ProcessSet::first_n(n);
    let g: ProcessSet = (0..size).collect();
    let h: ProcessSet = (size - overlap..n).collect();
    GroupSystem::new(universe, vec![g, h])
}

/// A seeded random group system: `n` processes, `k` distinct groups of size
/// ≥ 2 with independent membership probability `density` (default sweeps use
/// 0.45). Deterministic in the seed.
///
/// # Panics
///
/// Panics if `n < 2`, `k == 0`, or `density` is not in `(0, 1]`, or if the
/// generator cannot find `k` distinct groups (density too low for `n`).
pub fn random(n: usize, k: usize, density: f64, seed: u64) -> GroupSystem {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    assert!(n >= 2 && k >= 1);
    assert!(density > 0.0 && density <= 1.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut groups: Vec<ProcessSet> = Vec::new();
    let mut attempts = 0;
    while groups.len() < k {
        attempts += 1;
        assert!(attempts < 10_000, "cannot find {k} distinct groups");
        let mut g = ProcessSet::new();
        for i in 0..n {
            if rng.gen_bool(density) {
                g.insert(ProcessId(i as u32));
            }
        }
        if g.len() >= 2 && !groups.contains(&g) {
            groups.push(g);
        }
    }
    GroupSystem::new(ProcessSet::first_n(n), groups)
}

/// A named topology suite for experiment sweeps.
pub fn suite() -> Vec<(&'static str, GroupSystem)> {
    vec![
        ("single-group(4)", single_group(4)),
        ("disjoint(3x3)", disjoint(3, 3)),
        ("chain(4,3)", chain(4, 3)),
        ("two-overlapping(3,1)", two_overlapping(3, 1)),
        ("two-overlapping(4,2)", two_overlapping(4, 2)),
        ("ring(3,3)", ring(3, 3)),
        ("ring(4,2)", ring(4, 2)),
        ("hub(3,3)", hub(3, 3)),
        ("fig1", fig1()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::GroupId;

    #[test]
    fn fig1_shape() {
        let gs = fig1();
        assert_eq!(gs.len(), 4);
        assert_eq!(gs.universe().len(), 5);
    }

    #[test]
    fn disjoint_is_disjoint() {
        let gs = disjoint(4, 3);
        assert!(gs.pairwise_disjoint());
        assert_eq!(gs.universe().len(), 12);
        assert!(gs.cyclic_families().is_empty());
    }

    #[test]
    fn chain_is_acyclic_and_connected() {
        let gs = chain(5, 3);
        assert!(gs.intersection_graph_acyclic());
        assert_eq!(gs.components().len(), 1);
        assert!(gs.cyclic_families().is_empty());
        // adjacent groups intersect in exactly one process
        for i in 0..4u32 {
            assert_eq!(gs.intersection(GroupId(i), GroupId(i + 1)).len(), 1);
        }
        // non-adjacent don't intersect
        assert!(!gs.intersecting(GroupId(0), GroupId(2)));
    }

    #[test]
    fn ring_has_exactly_one_cyclic_family() {
        let gs = ring(4, 3);
        let fams = gs.cyclic_families();
        assert_eq!(fams.len(), 1);
        assert_eq!(fams[0], crate::group::GroupSet::first_n(4));
    }

    #[test]
    fn ring_minimum_size() {
        let gs = ring(3, 2);
        assert_eq!(gs.universe().len(), 3);
        assert_eq!(gs.cyclic_families().len(), 1);
    }

    #[test]
    fn hub_is_complete_graph() {
        let gs = hub(4, 3);
        assert_eq!(gs.intersecting_pairs().len(), 6); // K4
                                                      // every subset of ≥3 groups is cyclic: C(4,3) + C(4,4) = 5
        assert_eq!(gs.cyclic_families().len(), 5);
    }

    #[test]
    fn two_overlapping_shapes() {
        let gs = two_overlapping(4, 2);
        assert_eq!(gs.universe().len(), 6);
        assert_eq!(gs.intersection(GroupId(0), GroupId(1)).len(), 2);
        assert!(gs.cyclic_families().is_empty());
    }

    #[test]
    fn random_is_deterministic_and_valid() {
        let a = random(6, 3, 0.45, 42);
        let b = random(6, 3, 0.45, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        for (_, members) in a.iter() {
            assert!(members.len() >= 2);
        }
        let c = random(6, 3, 0.45, 43);
        assert_ne!(a, c, "different seeds give different systems (w.h.p.)");
    }

    #[test]
    fn suite_builds() {
        for (name, gs) in suite() {
            assert!(!gs.is_empty(), "{name} has groups");
        }
    }
}
