//! Families of destination groups, closed paths and cyclicity (§3).
//!
//! A *family* is a set of destination groups. `cpaths(𝔣)` are the closed
//! paths in the intersection graph of `𝔣` visiting all its groups; the family
//! is *cyclic* when such a path exists (its intersection graph is
//! hamiltonian). A cyclic family is *faulty at `t`* when every such path
//! visits an edge `(g, h)` with `g ∩ h` faulty at `t`.

use crate::group::{GroupId, GroupSet, GroupSystem};
use gam_kernel::{ProcessId, ProcessSet};
use std::collections::BTreeSet;
use std::fmt;

/// A closed path `π ∈ cpaths(𝔣)`: a sequence of groups with
/// `π[0] = π[|π|-1]`, visiting every group of the family exactly once and
/// following edges of the intersection graph.
///
/// Paths are *oriented*; [`ClosedPath::direction`] distinguishes the two
/// traversal directions of the same cycle, and [`ClosedPath::equivalent`]
/// identifies paths visiting the same edge set (written `π ≡ π'` in §5.2).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClosedPath {
    seq: Vec<GroupId>,
}

impl ClosedPath {
    /// Builds a closed path from its vertex sequence (first = last).
    ///
    /// # Panics
    ///
    /// Panics if the sequence is not a closed path over at least three
    /// distinct groups, or revisits a group.
    pub fn new(seq: Vec<GroupId>) -> Self {
        assert!(seq.len() >= 4, "a closed path visits at least 3 groups");
        assert_eq!(seq[0], seq[seq.len() - 1], "path must be closed");
        let inner = &seq[..seq.len() - 1];
        let distinct: BTreeSet<_> = inner.iter().collect();
        assert_eq!(distinct.len(), inner.len(), "groups may not repeat");
        ClosedPath { seq }
    }

    /// `|π|`: the length of the sequence (number of groups + 1).
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// `π[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= |π|`.
    pub fn get(&self, i: usize) -> GroupId {
        self.seq[i]
    }

    /// The family visited by the path.
    pub fn family(&self) -> GroupSet {
        self.seq.iter().copied().collect()
    }

    /// The undirected edges of the path, normalised as ordered pairs.
    pub fn edges(&self) -> BTreeSet<(GroupId, GroupId)> {
        self.seq
            .windows(2)
            .map(|w| {
                if w[0] < w[1] {
                    (w[0], w[1])
                } else {
                    (w[1], w[0])
                }
            })
            .collect()
    }

    /// `π ≡ π'`: the two paths visit the same edges.
    pub fn equivalent(&self, other: &ClosedPath) -> bool {
        self.edges() == other.edges()
    }

    /// The path traversing the same cycle in the converse direction,
    /// starting from the same group.
    pub fn reversed(&self) -> ClosedPath {
        let mut seq = self.seq.clone();
        seq.reverse();
        ClosedPath { seq }
    }

    /// The rotation of the path starting at position `k` (same orientation).
    pub fn rotated(&self, k: usize) -> ClosedPath {
        let inner = &self.seq[..self.seq.len() - 1];
        let n = inner.len();
        let mut seq: Vec<GroupId> = (0..n).map(|i| inner[(k + i) % n]).collect();
        seq.push(seq[0]);
        ClosedPath { seq }
    }

    /// The direction of the path: `+1` ("clockwise") or `-1`, for the
    /// canonical representation that rotates the cycle to start at its
    /// minimum group. Equivalent paths of opposite orientation have opposite
    /// directions.
    pub fn direction(&self) -> i8 {
        let inner = &self.seq[..self.seq.len() - 1];
        let min_pos = inner
            .iter()
            .enumerate()
            .min_by_key(|(_, g)| **g)
            .map(|(i, _)| i)
            .expect("non-empty");
        let n = inner.len();
        let succ = inner[(min_pos + 1) % n];
        let pred = inner[(min_pos + n - 1) % n];
        if succ < pred {
            1
        } else {
            -1
        }
    }
}

impl fmt::Display for ClosedPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, g) in self.seq.iter().enumerate() {
            if i > 0 {
                write!(f, "→")?;
            }
            write!(f, "{g}")?;
        }
        Ok(())
    }
}

impl GroupSystem {
    /// The canonical hamiltonian cycles of the intersection graph of family
    /// `f` — one representative per equivalence class of `cpaths(f)`.
    ///
    /// Each is returned as a closed path starting at the minimum group of
    /// `f`, with its second group smaller than its second-to-last (so
    /// reflections are not repeated).
    pub fn hamiltonian_cycles(&self, f: GroupSet) -> Vec<ClosedPath> {
        let groups: Vec<GroupId> = f.iter().collect();
        if groups.len() < 3 {
            return Vec::new();
        }
        let start = groups[0];
        let mut cycles = Vec::new();
        let mut path = vec![start];
        let mut used = GroupSet::singleton(start);
        self.ham_extend(f, start, &mut path, &mut used, &mut cycles);
        cycles
    }

    fn ham_extend(
        &self,
        f: GroupSet,
        start: GroupId,
        path: &mut Vec<GroupId>,
        used: &mut GroupSet,
        cycles: &mut Vec<ClosedPath>,
    ) {
        let last = *path.last().expect("non-empty");
        if used.len() == f.len() {
            if self.intersecting(last, start) && path[1] < path[path.len() - 1] {
                let mut seq = path.clone();
                seq.push(start);
                cycles.push(ClosedPath::new(seq));
            }
            return;
        }
        for g in f {
            if !used.contains(g) && self.intersecting(last, g) {
                path.push(g);
                used.insert(g);
                self.ham_extend(f, start, path, used, cycles);
                used.remove(g);
                path.pop();
            }
        }
    }

    /// `cpaths(f)`: every closed path of the intersection graph of `f`
    /// visiting all its groups — all rotations and both directions of every
    /// hamiltonian cycle.
    pub fn cpaths(&self, f: GroupSet) -> Vec<ClosedPath> {
        let mut out = Vec::new();
        for cycle in self.hamiltonian_cycles(f) {
            let k = cycle.len() - 1;
            for rot in 0..k {
                let r = cycle.rotated(rot);
                out.push(r.reversed());
                out.push(r);
            }
        }
        out
    }

    /// Returns `true` if family `f` is cyclic (its intersection graph is
    /// hamiltonian).
    pub fn is_cyclic_family(&self, f: GroupSet) -> bool {
        !self.hamiltonian_cycles(f).is_empty()
    }

    /// `ℱ`: all cyclic families in `2^𝒢`.
    ///
    /// The enumeration first prunes the intersection graph to its 2-core
    /// (a group of degree < 2 can never lie on a hamiltonian cycle), so
    /// acyclic and sparsely-connected systems of any size are cheap.
    ///
    /// # Panics
    ///
    /// Panics if the 2-core has more than 20 groups (the remaining
    /// enumeration is exponential; the paper's constructions target small
    /// cyclic structure).
    pub fn cyclic_families(&self) -> Vec<GroupSet> {
        // Iteratively remove groups with fewer than two intersecting peers.
        let mut core = self.all();
        loop {
            let pruned: GroupSet = core
                .iter()
                .filter(|g| core.iter().filter(|h| self.intersecting(*g, *h)).count() >= 2)
                .collect();
            if pruned == core {
                break;
            }
            core = pruned;
        }
        if core.len() < 3 {
            return Vec::new();
        }
        let ids: Vec<GroupId> = core.iter().collect();
        assert!(
            ids.len() <= 20,
            "cyclic-family enumeration caps at a 20-group 2-core"
        );
        let mut out = Vec::new();
        for mask in 0u64..(1u64 << ids.len()) {
            let f: GroupSet = ids
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, g)| *g)
                .collect();
            if f.len() >= 3 && self.subset_connected(f) && self.is_cyclic_family(f) {
                out.push(f);
            }
        }
        out.sort();
        out
    }

    /// Quick pruning helper: is the intersection graph restricted to `f`
    /// connected with minimum degree ≥ 2? (Necessary for hamiltonicity.)
    fn subset_connected(&self, f: GroupSet) -> bool {
        let Some(start) = f.min() else {
            return false;
        };
        for g in f {
            let deg = f.iter().filter(|h| self.intersecting(g, *h)).count();
            if deg < 2 {
                return false;
            }
        }
        // BFS for connectivity.
        let mut seen = GroupSet::singleton(start);
        let mut frontier = vec![start];
        while let Some(g) = frontier.pop() {
            for h in f {
                if !seen.contains(h) && self.intersecting(g, h) {
                    seen.insert(h);
                    frontier.push(h);
                }
            }
        }
        seen == f
    }

    /// `ℱ(g)`: the cyclic families containing group `g`.
    pub fn families_of_group(&self, g: GroupId) -> Vec<GroupSet> {
        self.cyclic_families()
            .into_iter()
            .filter(|f| f.contains(g))
            .collect()
    }

    /// `ℱ(p)`: the cyclic families `𝔣` such that `p` belongs to some group
    /// intersection of `𝔣` (∃ g, h ∈ 𝔣 distinct with `p ∈ g ∩ h`).
    pub fn families_of_process(&self, p: ProcessId) -> Vec<GroupSet> {
        self.cyclic_families()
            .into_iter()
            .filter(|f| self.in_some_intersection(*f, p))
            .collect()
    }

    /// Returns `true` if `p` lies in some intersection `g ∩ h` of distinct
    /// groups `g, h ∈ f`.
    pub fn in_some_intersection(&self, f: GroupSet, p: ProcessId) -> bool {
        let holding: Vec<GroupId> = f.iter().filter(|g| self.members(*g).contains(p)).collect();
        holding.len() >= 2
    }

    /// A family is *faulty* given the crashed set when every path of
    /// `cpaths(f)` visits an edge `(g, h)` with `g ∩ h ⊆ crashed`.
    ///
    /// Since equivalent paths share edges, this is equivalent to every
    /// hamiltonian cycle containing a crashed edge.
    pub fn family_faulty(&self, f: GroupSet, crashed: ProcessSet) -> bool {
        let cycles = self.hamiltonian_cycles(f);
        if cycles.is_empty() {
            return false; // not cyclic; faultiness is about cyclic families
        }
        cycles.iter().all(|c| {
            c.edges()
                .iter()
                .any(|(g, h)| self.intersection(*g, *h).is_subset(crashed))
        })
    }

    /// `H(q, g)` from Lemma 30: the groups `h` such that some cyclic family
    /// `𝔣' ∈ ℱ(q)` contains both `g` and `h` with `g ∩ h ≠ ∅`.
    ///
    /// (When `g = h`, `g ∩ h = g ≠ ∅`, so `g ∈ H(q, g)` whenever `g` belongs
    /// to a family of `ℱ(q)` — matching line 20 of Algorithm 1.)
    pub fn h_set(&self, q: ProcessId, g: GroupId) -> GroupSet {
        let mut out = GroupSet::new();
        for f in self.families_of_process(q) {
            if !f.contains(g) {
                continue;
            }
            for h in f {
                if g == h || self.intersecting(g, h) {
                    out.insert(h);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Figure 1 system: 5 processes, 4 groups.
    fn fig1() -> GroupSystem {
        GroupSystem::new(
            ProcessSet::first_n(5),
            vec![
                ProcessSet::from_iter([0u32, 1]),
                ProcessSet::from_iter([1u32, 2]),
                ProcessSet::from_iter([0u32, 2, 3]),
                ProcessSet::from_iter([0u32, 3, 4]),
            ],
        )
    }

    fn gset(ids: &[u32]) -> GroupSet {
        ids.iter().map(|i| GroupId(*i)).collect()
    }

    #[test]
    fn fig1_cyclic_families_are_f_fprime_fsecond() {
        let gs = fig1();
        let fams = gs.cyclic_families();
        // 𝔣 = {g1,g2,g3}, 𝔣' = {g1,g3,g4}, 𝔣'' = {g1,g2,g3,g4}
        assert_eq!(fams.len(), 3);
        assert!(fams.contains(&gset(&[0, 1, 2])));
        assert!(fams.contains(&gset(&[0, 2, 3])));
        assert!(fams.contains(&gset(&[0, 1, 2, 3])));
        // {g1,g2,g4} is not cyclic: g2 ∩ g4 = ∅
        assert!(!gs.is_cyclic_family(gset(&[0, 1, 3])));
    }

    #[test]
    fn fig1_families_of_group_and_process() {
        let gs = fig1();
        // ℱ(g2) = {𝔣, 𝔣''}
        let of_g2 = gs.families_of_group(GroupId(1));
        assert_eq!(of_g2, vec![gset(&[0, 1, 2]), gset(&[0, 1, 2, 3])]);
        // ℱ(p1) = ℱ (p1 belongs to every cyclic family's intersections)
        assert_eq!(gs.families_of_process(ProcessId(0)), gs.cyclic_families());
        // ℱ(p5) = ∅ (p5 is in no group intersection)
        assert!(gs.families_of_process(ProcessId(4)).is_empty());
    }

    #[test]
    fn fig1_family_faultiness() {
        let gs = fig1();
        let f = gset(&[0, 1, 2]); // 𝔣 = {g1, g2, g3}
        let fpp = gset(&[0, 1, 2, 3]); // 𝔣'' = 𝒢
        let fprime = gset(&[0, 2, 3]); // 𝔣' = {g1, g3, g4}
                                       // p2 crashes: g1 ∩ g2 = {p2} becomes faulty.
        let crashed = ProcessSet::from_iter([1u32]);
        assert!(gs.family_faulty(f, crashed), "𝔣 is faulty when p2 fails");
        assert!(
            gs.family_faulty(fpp, crashed),
            "𝔣'' is faulty when p2 fails"
        );
        assert!(
            !gs.family_faulty(fprime, crashed),
            "𝔣' survives the crash of p2"
        );
        // nobody crashed: nothing is faulty
        assert!(!gs.family_faulty(f, ProcessSet::EMPTY));
    }

    #[test]
    fn cpaths_of_triangle() {
        let gs = fig1();
        let f = gset(&[0, 1, 2]);
        let cycles = gs.hamiltonian_cycles(f);
        assert_eq!(cycles.len(), 1, "a triangle has one cycle class");
        let paths = gs.cpaths(f);
        // 3 rotations × 2 directions
        assert_eq!(paths.len(), 6);
        // all are equivalent (same edges)
        for p in &paths {
            assert!(p.equivalent(&cycles[0]));
            assert_eq!(p.family(), f);
            assert_eq!(p.len(), 4);
        }
        // exactly half of them go in each direction
        let forward = paths.iter().filter(|p| p.direction() == 1).count();
        assert_eq!(forward, 3);
    }

    #[test]
    fn cpaths_of_four_cycle() {
        let gs = fig1();
        let f = gset(&[0, 1, 2, 3]);
        // 𝔣'' has a single hamiltonian cycle class: g1-g2-g3-g4-g1
        let cycles = gs.hamiltonian_cycles(f);
        assert_eq!(cycles.len(), 1);
        assert_eq!(gs.cpaths(f).len(), 8);
    }

    #[test]
    fn complete_graph_has_three_cycle_classes() {
        // Four groups pairwise intersecting through a hub process.
        let hub = 0u32;
        let gs = GroupSystem::new(
            ProcessSet::first_n(5),
            (0..4u32)
                .map(|i| ProcessSet::from_iter([hub, i + 1]))
                .collect(),
        );
        // K4 has 3 hamiltonian cycles.
        assert_eq!(gs.hamiltonian_cycles(GroupSet::first_n(4)).len(), 3);
    }

    #[test]
    fn path_direction_and_reversal() {
        let seq: Vec<GroupId> = [2u32, 0, 1, 2].iter().map(|i| GroupId(*i)).collect();
        let p = ClosedPath::new(seq);
        let r = p.reversed();
        assert!(p.equivalent(&r));
        assert_eq!(p.direction(), -r.direction());
        assert_eq!(p.get(0), r.get(0)); // reversal keeps the start
                                        // rotations keep direction
        assert_eq!(p.rotated(1).direction(), p.direction());
        assert_eq!(p.rotated(2).direction(), p.direction());
    }

    #[test]
    fn display_path() {
        let seq: Vec<GroupId> = [0u32, 1, 2, 0].iter().map(|i| GroupId(*i)).collect();
        assert_eq!(ClosedPath::new(seq).to_string(), "g1→g2→g3→g1");
    }

    #[test]
    #[should_panic(expected = "must be closed")]
    fn rejects_open_path() {
        let seq: Vec<GroupId> = [0u32, 1, 2, 3].iter().map(|i| GroupId(*i)).collect();
        ClosedPath::new(seq);
    }

    #[test]
    fn h_set_lemma30_fig1() {
        let gs = fig1();
        // For p1 ∈ g1∩g3 and g = g1: families of p1 containing g1 are all
        // three; groups intersecting g1 in them: g1 itself, g2, g3, g4.
        let h = gs.h_set(ProcessId(0), GroupId(0));
        assert_eq!(h, gset(&[0, 1, 2, 3]));
        // For p2 ∈ g1∩g2, same g = g1: ℱ(p2) = {𝔣, 𝔣''}; in these,
        // groups intersecting g1: g1, g2, g3 (from 𝔣) and g4 (from 𝔣'').
        let h2 = gs.h_set(ProcessId(1), GroupId(0));
        assert_eq!(h2, gset(&[0, 1, 2, 3]));
        // Lemma 30: equal for two processes in intersections of the family.
        assert_eq!(h, h2);
        // p5 has no family: empty H-set.
        assert!(gs.h_set(ProcessId(4), GroupId(3)).is_empty());
    }

    #[test]
    fn acyclic_chain_has_no_cyclic_family() {
        // g1 - g2 - g3 in a chain: no hamiltonian cycle.
        let gs = GroupSystem::new(
            ProcessSet::first_n(5),
            vec![
                ProcessSet::from_iter([0u32, 1]),
                ProcessSet::from_iter([1u32, 2, 3]),
                ProcessSet::from_iter([3u32, 4]),
            ],
        );
        assert!(gs.cyclic_families().is_empty());
    }
}
