//! Destination groups and the group system `𝒢`.
//!
//! Atomic multicast is fully determined by the set `𝒢` of destination groups
//! (§2.2): every message `m` is addressed to some `dst(m) ∈ 𝒢`, and under the
//! closed dissemination model any member of a group may multicast to it. A
//! [`GroupSystem`] holds `𝒢` and answers the intersection queries the paper's
//! constructions are built from.

use gam_kernel::{ProcessId, ProcessSet};
use std::fmt;

/// The identity of a destination group: an index into the [`GroupSystem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct GroupId(pub u32);

impl GroupId {
    /// Returns the index of this group as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0 + 1)
    }
}

impl From<usize> for GroupId {
    fn from(v: usize) -> Self {
        GroupId(v as u32)
    }
}

/// A set of groups, as a 256-bit bitset over group indices.
///
/// Families of destination groups (§3) are [`GroupSet`]s; so are the edges of
/// closed paths once projected to their endpoints. The total order compares
/// sets as the numbers their bit patterns encode (word 0 holds the lowest
/// group indices), so ordered collections keyed by families iterate
/// deterministically regardless of the backing width.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct GroupSet([u64; GROUP_WORDS]);

/// Number of 64-bit words backing a [`GroupSet`].
const GROUP_WORDS: usize = 4;

/// Maximum number of destination groups supported by [`GroupSet`].
pub const MAX_GROUPS: usize = GROUP_WORDS * 64;

impl GroupSet {
    /// The empty set of groups.
    pub const EMPTY: GroupSet = GroupSet([0; GROUP_WORDS]);

    /// Creates an empty set.
    pub fn new() -> Self {
        GroupSet::EMPTY
    }

    /// The set of the first `n` groups.
    ///
    /// # Panics
    ///
    /// Panics if `n > 256`.
    pub fn first_n(n: usize) -> Self {
        assert!(n <= MAX_GROUPS, "at most {MAX_GROUPS} groups");
        let mut words = [0u64; GROUP_WORDS];
        let (full, rest) = (n / 64, n % 64);
        words[..full].fill(u64::MAX);
        if rest > 0 {
            words[full] = (1u64 << rest) - 1;
        }
        GroupSet(words)
    }

    /// A singleton set.
    pub fn singleton(g: GroupId) -> Self {
        let mut s = GroupSet::EMPTY;
        s.insert(g);
        s
    }

    /// Membership test.
    #[inline]
    pub fn contains(self, g: GroupId) -> bool {
        self.0[g.index() / 64] & (1u64 << (g.index() % 64)) != 0
    }

    /// Inserts `g`, returning whether it was absent.
    pub fn insert(&mut self, g: GroupId) -> bool {
        let had = self.contains(g);
        self.0[g.index() / 64] |= 1u64 << (g.index() % 64);
        !had
    }

    /// Removes `g`, returning whether it was present.
    pub fn remove(&mut self, g: GroupId) -> bool {
        let had = self.contains(g);
        self.0[g.index() / 64] &= !(1u64 << (g.index() % 64));
        had
    }

    /// Number of groups in the set.
    #[inline]
    pub fn len(self) -> usize {
        self.0.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Emptiness test.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == [0; GROUP_WORDS]
    }

    /// Subset test (`self ⊆ other`).
    #[inline]
    pub fn is_subset(self, other: GroupSet) -> bool {
        (0..GROUP_WORDS).all(|i| self.0[i] & !other.0[i] == 0)
    }

    /// Intersection test.
    #[inline]
    pub fn intersects(self, other: GroupSet) -> bool {
        (0..GROUP_WORDS).any(|i| self.0[i] & other.0[i] != 0)
    }

    /// The minimum group of the set, if any.
    pub fn min(self) -> Option<GroupId> {
        self.0
            .iter()
            .enumerate()
            .find(|(_, w)| **w != 0)
            .map(|(i, w)| GroupId((i * 64) as u32 + w.trailing_zeros()))
    }

    /// The backing words, low group indices first — the canonical encoding
    /// digest and fingerprint code folds.
    #[inline]
    pub fn words(self) -> [u64; GROUP_WORDS] {
        self.0
    }

    /// Iterates over the groups in ascending order.
    pub fn iter(self) -> GroupSetIter {
        GroupSetIter {
            words: self.0,
            word: 0,
        }
    }
}

impl PartialOrd for GroupSet {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for GroupSet {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Numeric order of the encoded bit pattern: high words first.
        self.0.iter().rev().cmp(other.0.iter().rev())
    }
}

impl fmt::Debug for GroupSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, g) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{g}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for GroupSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Iterator over a [`GroupSet`] in ascending index order.
#[derive(Debug, Clone)]
pub struct GroupSetIter {
    words: [u64; GROUP_WORDS],
    word: usize,
}

impl Iterator for GroupSetIter {
    type Item = GroupId;

    fn next(&mut self) -> Option<GroupId> {
        while self.word < GROUP_WORDS {
            let w = self.words[self.word];
            if w == 0 {
                self.word += 1;
                continue;
            }
            let idx = w.trailing_zeros();
            self.words[self.word] = w & (w - 1);
            return Some(GroupId((self.word * 64) as u32 + idx));
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n: usize = self.words[self.word.min(GROUP_WORDS)..]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum();
        (n, Some(n))
    }
}

impl ExactSizeIterator for GroupSetIter {}

impl IntoIterator for GroupSet {
    type Item = GroupId;
    type IntoIter = GroupSetIter;
    fn into_iter(self) -> GroupSetIter {
        self.iter()
    }
}

impl FromIterator<GroupId> for GroupSet {
    fn from_iter<I: IntoIterator<Item = GroupId>>(iter: I) -> Self {
        let mut s = GroupSet::new();
        for g in iter {
            s.insert(g);
        }
        s
    }
}

impl std::ops::BitOr for GroupSet {
    type Output = GroupSet;
    fn bitor(mut self, rhs: GroupSet) -> GroupSet {
        for i in 0..GROUP_WORDS {
            self.0[i] |= rhs.0[i];
        }
        self
    }
}

impl std::ops::BitOrAssign for GroupSet {
    fn bitor_assign(&mut self, rhs: GroupSet) {
        *self = *self | rhs;
    }
}

impl std::ops::BitAnd for GroupSet {
    type Output = GroupSet;
    fn bitand(mut self, rhs: GroupSet) -> GroupSet {
        for i in 0..GROUP_WORDS {
            self.0[i] &= rhs.0[i];
        }
        self
    }
}

impl std::ops::Sub for GroupSet {
    type Output = GroupSet;
    fn sub(mut self, rhs: GroupSet) -> GroupSet {
        for i in 0..GROUP_WORDS {
            self.0[i] &= !rhs.0[i];
        }
        self
    }
}

/// The set `𝒢` of destination groups over a universe of processes.
///
/// # Examples
///
/// The Figure 1 system of the paper:
///
/// ```
/// use gam_groups::GroupSystem;
/// use gam_kernel::ProcessSet;
///
/// let gs = GroupSystem::new(
///     ProcessSet::first_n(5),
///     vec![
///         ProcessSet::from_iter([0u32, 1]),       // g1 = {p1, p2}
///         ProcessSet::from_iter([1u32, 2]),       // g2 = {p2, p3}
///         ProcessSet::from_iter([0u32, 2, 3]),    // g3 = {p1, p3, p4}
///         ProcessSet::from_iter([0u32, 3, 4]),    // g4 = {p1, p4, p5}
///     ],
/// );
/// assert_eq!(gs.len(), 4);
/// assert_eq!(gs.cyclic_families().len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupSystem {
    universe: ProcessSet,
    groups: Vec<ProcessSet>,
}

impl GroupSystem {
    /// Builds a group system.
    ///
    /// # Panics
    ///
    /// Panics if any group is empty, not a subset of the universe, or listed
    /// twice, or if there are more than 64 groups.
    pub fn new(universe: ProcessSet, groups: Vec<ProcessSet>) -> Self {
        assert!(
            groups.len() <= MAX_GROUPS,
            "at most {MAX_GROUPS} destination groups"
        );
        for (i, g) in groups.iter().enumerate() {
            assert!(!g.is_empty(), "group g{} is empty", i + 1);
            assert!(
                g.is_subset(universe),
                "group g{} is not within the universe",
                i + 1
            );
            assert!(!groups[..i].contains(g), "group g{} is listed twice", i + 1);
        }
        GroupSystem { universe, groups }
    }

    /// The universe of processes.
    pub fn universe(&self) -> ProcessSet {
        self.universe
    }

    /// Number of destination groups `|𝒢|`.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Returns `true` if there are no groups.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// The members of group `g`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    pub fn members(&self, g: GroupId) -> ProcessSet {
        self.groups[g.index()]
    }

    /// Iterates over all `(GroupId, members)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (GroupId, ProcessSet)> + '_ {
        self.groups
            .iter()
            .enumerate()
            .map(|(i, g)| (GroupId(i as u32), *g))
    }

    /// All group ids, as a set.
    pub fn all(&self) -> GroupSet {
        GroupSet::first_n(self.groups.len())
    }

    /// `𝒢(p)`: the groups containing process `p`.
    pub fn groups_of(&self, p: ProcessId) -> GroupSet {
        self.iter()
            .filter(|(_, members)| members.contains(p))
            .map(|(g, _)| g)
            .collect()
    }

    /// `g ∩ h` as a process set.
    pub fn intersection(&self, g: GroupId, h: GroupId) -> ProcessSet {
        self.members(g) & self.members(h)
    }

    /// Returns `true` if `g` and `h` are distinct intersecting groups.
    pub fn intersecting(&self, g: GroupId, h: GroupId) -> bool {
        g != h && self.intersection(g, h) != ProcessSet::EMPTY
    }

    /// All unordered pairs `(g, h)` of distinct intersecting groups — the
    /// edges of the intersection graph of `𝒢`.
    pub fn intersecting_pairs(&self) -> Vec<(GroupId, GroupId)> {
        let mut out = Vec::new();
        for i in 0..self.groups.len() {
            for j in (i + 1)..self.groups.len() {
                let (g, h) = (GroupId(i as u32), GroupId(j as u32));
                if self.intersecting(g, h) {
                    out.push((g, h));
                }
            }
        }
        out
    }

    /// All distinct non-empty intersections `g ∩ h` with `g ≠ h`, deduplicated.
    pub fn intersections(&self) -> Vec<ProcessSet> {
        let mut out: Vec<ProcessSet> = Vec::new();
        for (g, h) in self.intersecting_pairs() {
            let x = self.intersection(g, h);
            if !out.contains(&x) {
                out.push(x);
            }
        }
        out
    }

    /// Returns `true` if the groups are pairwise disjoint (the embarrassingly
    /// parallel case of §2.3).
    pub fn pairwise_disjoint(&self) -> bool {
        self.intersecting_pairs().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Figure 1 system: 5 processes, 4 groups.
    pub(crate) fn fig1() -> GroupSystem {
        GroupSystem::new(
            ProcessSet::first_n(5),
            vec![
                ProcessSet::from_iter([0u32, 1]),
                ProcessSet::from_iter([1u32, 2]),
                ProcessSet::from_iter([0u32, 2, 3]),
                ProcessSet::from_iter([0u32, 3, 4]),
            ],
        )
    }

    #[test]
    fn groups_of_matches_fig1() {
        let gs = fig1();
        // p1 (index 0) belongs to g1, g3, g4.
        assert_eq!(
            gs.groups_of(ProcessId(0)),
            GroupSet::from_iter([GroupId(0), GroupId(2), GroupId(3)])
        );
        // p5 (index 4) belongs only to g4.
        assert_eq!(gs.groups_of(ProcessId(4)), GroupSet::singleton(GroupId(3)));
    }

    #[test]
    fn intersections_match_fig1() {
        let gs = fig1();
        // g1 ∩ g2 = {p2}
        assert_eq!(
            gs.intersection(GroupId(0), GroupId(1)),
            ProcessSet::from_iter([1u32])
        );
        // g2 ∩ g4 = ∅
        assert!(!gs.intersecting(GroupId(1), GroupId(3)));
        // edges of the intersection graph: all pairs except (g2,g4)
        let edges = gs.intersecting_pairs();
        assert_eq!(edges.len(), 5);
        assert!(!edges.contains(&(GroupId(1), GroupId(3))));
    }

    #[test]
    fn dedup_intersections() {
        let gs = GroupSystem::new(
            ProcessSet::first_n(4),
            vec![
                ProcessSet::from_iter([0u32, 1]),
                ProcessSet::from_iter([1u32, 2]),
                ProcessSet::from_iter([1u32, 3]),
            ],
        );
        // all three pairwise intersections are {p2}
        assert_eq!(gs.intersections(), vec![ProcessSet::from_iter([1u32])]);
    }

    #[test]
    fn disjoint_groups_have_no_edges() {
        let gs = GroupSystem::new(
            ProcessSet::first_n(6),
            vec![
                ProcessSet::from_iter([0u32, 1]),
                ProcessSet::from_iter([2u32, 3]),
                ProcessSet::from_iter([4u32, 5]),
            ],
        );
        assert!(gs.pairwise_disjoint());
        assert!(gs.intersections().is_empty());
    }

    #[test]
    #[should_panic(expected = "is empty")]
    fn rejects_empty_group() {
        GroupSystem::new(ProcessSet::first_n(2), vec![ProcessSet::EMPTY]);
    }

    #[test]
    #[should_panic(expected = "listed twice")]
    fn rejects_duplicate_group() {
        let g = ProcessSet::from_iter([0u32, 1]);
        GroupSystem::new(ProcessSet::first_n(2), vec![g, g]);
    }

    #[test]
    #[should_panic(expected = "not within the universe")]
    fn rejects_group_outside_universe() {
        GroupSystem::new(
            ProcessSet::first_n(2),
            vec![ProcessSet::from_iter([0u32, 5])],
        );
    }

    #[test]
    fn group_set_algebra() {
        let a = GroupSet::from_iter([GroupId(0), GroupId(2)]);
        let b = GroupSet::from_iter([GroupId(2), GroupId(3)]);
        assert_eq!((a | b).len(), 3);
        assert_eq!(a & b, GroupSet::singleton(GroupId(2)));
        assert_eq!(a - b, GroupSet::singleton(GroupId(0)));
        assert!(a.intersects(b));
        assert!(GroupSet::singleton(GroupId(2)).is_subset(a));
        assert_eq!(a.min(), Some(GroupId(0)));
        assert_eq!(GroupSet::EMPTY.min(), None);
        let v: Vec<GroupId> = b.iter().collect();
        assert_eq!(v, vec![GroupId(2), GroupId(3)]);
    }

    #[test]
    fn group_set_display() {
        let a = GroupSet::from_iter([GroupId(0), GroupId(2)]);
        assert_eq!(format!("{a}"), "{g1,g3}");
    }
}
