//! # gam-groups — destination groups and cyclic families
//!
//! The combinatorics that the weakest failure detector `μ` is built from
//! (§2–§3 of the paper): the set `𝒢` of destination groups, their
//! intersection graph, *families* of groups, the closed paths `cpaths(𝔣)`,
//! *cyclic* families (hamiltonian intersection graphs) and their faultiness,
//! plus the `H(q, g)` sets of Lemma 30 and the spanning-tree structure used
//! in §7.
//!
//! ## Quickstart
//!
//! ```
//! use gam_groups::{topology, GroupId};
//! use gam_kernel::{ProcessId, ProcessSet};
//!
//! let gs = topology::fig1();
//! // 𝔣 = {g1, g2, g3} is cyclic, and faulty once p2 crashes.
//! let f = [GroupId(0), GroupId(1), GroupId(2)].into_iter().collect();
//! assert!(gs.is_cyclic_family(f));
//! assert!(gs.family_faulty(f, ProcessSet::from_iter([1u32])));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod family;
mod graph;
mod group;
pub mod topology;

pub use family::ClosedPath;
pub use graph::SpanningForest;
pub use group::{GroupId, GroupSet, GroupSetIter, GroupSystem};
