//! Intersection-graph utilities: connected components and spanning trees.
//!
//! §7 of the paper observes that, when `ℱ ≠ ∅`, strongly genuine atomic
//! multicast is failure-free solvable by delivering along a spanning tree of
//! the intersection graph (one per connected component). These helpers
//! provide that structure, plus the component decomposition used by the
//! partitioned baseline.

use crate::group::{GroupId, GroupSet, GroupSystem};

/// A spanning forest of the intersection graph of `𝒢`: for each connected
/// component, a rooted spanning tree given as `(child, parent)` edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanningForest {
    /// Roots, one per connected component.
    pub roots: Vec<GroupId>,
    /// `parent[g] = Some(h)` when `h` is the tree parent of `g`.
    pub parent: Vec<Option<GroupId>>,
}

impl SpanningForest {
    /// The total order `<_T` induced on groups by a pre-order traversal of
    /// the forest (used by the §7 failure-free strongly genuine solution).
    pub fn preorder(&self) -> Vec<GroupId> {
        let n = self.parent.len();
        let mut children: Vec<Vec<GroupId>> = vec![Vec::new(); n];
        for (i, p) in self.parent.iter().enumerate() {
            if let Some(parent) = p {
                children[parent.index()].push(GroupId(i as u32));
            }
        }
        let mut order = Vec::with_capacity(n);
        let mut stack: Vec<GroupId> = self.roots.iter().rev().copied().collect();
        while let Some(g) = stack.pop() {
            order.push(g);
            for c in children[g.index()].iter().rev() {
                stack.push(*c);
            }
        }
        order
    }
}

impl GroupSystem {
    /// The connected components of the intersection graph of `𝒢`.
    pub fn components(&self) -> Vec<GroupSet> {
        let mut remaining = self.all();
        let mut out = Vec::new();
        while let Some(start) = remaining.min() {
            let mut comp = GroupSet::singleton(start);
            let mut frontier = vec![start];
            while let Some(g) = frontier.pop() {
                for h in remaining {
                    if !comp.contains(h) && self.intersecting(g, h) {
                        comp.insert(h);
                        frontier.push(h);
                    }
                }
            }
            remaining = remaining - comp;
            out.push(comp);
        }
        out
    }

    /// A deterministic BFS spanning forest of the intersection graph.
    pub fn spanning_forest(&self) -> SpanningForest {
        let n = self.len();
        let mut parent: Vec<Option<GroupId>> = vec![None; n];
        let mut visited = GroupSet::new();
        let mut roots = Vec::new();
        for i in 0..n {
            let root = GroupId(i as u32);
            if visited.contains(root) {
                continue;
            }
            roots.push(root);
            visited.insert(root);
            let mut queue = std::collections::VecDeque::from([root]);
            while let Some(g) = queue.pop_front() {
                for j in 0..n {
                    let h = GroupId(j as u32);
                    if !visited.contains(h) && self.intersecting(g, h) {
                        visited.insert(h);
                        parent[h.index()] = Some(g);
                        queue.push_back(h);
                    }
                }
            }
        }
        SpanningForest { roots, parent }
    }

    /// Renders the intersection graph in Graphviz DOT format: one node per
    /// group (labelled with its members), one edge per intersecting pair
    /// (labelled with the intersection).
    ///
    /// # Examples
    ///
    /// ```
    /// use gam_groups::topology;
    /// let dot = topology::two_overlapping(2, 1).to_dot();
    /// assert!(dot.contains("g1 -- g2"));
    /// ```
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("graph intersection {\n");
        for (g, members) in self.iter() {
            writeln!(out, "  {g} [label=\"{g} = {members}\"];").expect("write to string");
        }
        for (g, h) in self.intersecting_pairs() {
            writeln!(out, "  {g} -- {h} [label=\"{}\"];", self.intersection(g, h))
                .expect("write to string");
        }
        out.push_str("}\n");
        out
    }

    /// Returns `true` if the intersection graph is acyclic (`ℱ = ∅` implies
    /// this only for *hamiltonian* cycles; a graph-theoretic cycle of length
    /// ≥ 3 always yields a cyclic family, so the two coincide).
    pub fn intersection_graph_acyclic(&self) -> bool {
        // |E| = |V| - #components characterises forests.
        let edges = self.intersecting_pairs().len();
        edges + self.components().len() == self.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gam_kernel::ProcessSet;

    fn chain() -> GroupSystem {
        GroupSystem::new(
            ProcessSet::first_n(7),
            vec![
                ProcessSet::from_iter([0u32, 1]),
                ProcessSet::from_iter([1u32, 2, 3]),
                ProcessSet::from_iter([3u32, 4]),
                ProcessSet::from_iter([5u32, 6]), // disconnected
            ],
        )
    }

    #[test]
    fn components_of_chain() {
        let gs = chain();
        let comps = gs.components();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], GroupSet::first_n(3));
        assert_eq!(comps[1], GroupSet::singleton(GroupId(3)));
    }

    #[test]
    fn spanning_forest_covers_everything() {
        let gs = chain();
        let sf = gs.spanning_forest();
        assert_eq!(sf.roots, vec![GroupId(0), GroupId(3)]);
        // every non-root has a parent it intersects
        for (i, p) in sf.parent.iter().enumerate() {
            if let Some(parent) = p {
                assert!(gs.intersecting(GroupId(i as u32), *parent));
            }
        }
        let order = sf.preorder();
        assert_eq!(order.len(), gs.len());
        // parents precede children in pre-order
        let pos = |g: GroupId| order.iter().position(|x| *x == g).unwrap();
        for (i, p) in sf.parent.iter().enumerate() {
            if let Some(parent) = p {
                assert!(pos(*parent) < pos(GroupId(i as u32)));
            }
        }
    }

    #[test]
    fn dot_export_lists_nodes_and_edges() {
        let gs = chain();
        let dot = gs.to_dot();
        assert!(dot.starts_with("graph intersection {"));
        for (g, _) in gs.iter() {
            assert!(dot.contains(&format!("{g} [label=")), "{g} node present");
        }
        assert!(dot.contains("g1 -- g2"));
        assert!(dot.contains("g2 -- g3"));
        assert!(
            !dot.contains("g1 -- g3"),
            "non-intersecting pairs have no edge"
        );
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn acyclicity_detection() {
        assert!(chain().intersection_graph_acyclic());
        // Figure 1 has cycles.
        let fig1 = GroupSystem::new(
            ProcessSet::first_n(5),
            vec![
                ProcessSet::from_iter([0u32, 1]),
                ProcessSet::from_iter([1u32, 2]),
                ProcessSet::from_iter([0u32, 2, 3]),
                ProcessSet::from_iter([0u32, 3, 4]),
            ],
        );
        assert!(!fig1.intersection_graph_acyclic());
        // graph-cycle ⇔ cyclic family
        assert_eq!(
            fig1.intersection_graph_acyclic(),
            fig1.cyclic_families().is_empty()
        );
        assert_eq!(
            chain().intersection_graph_acyclic(),
            chain().cyclic_families().is_empty()
        );
    }
}
