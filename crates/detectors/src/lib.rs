//! # gam-detectors — failure detector classes and oracles
//!
//! The failure detectors of §3 and §6 of the paper, as oracles over a
//! ground-truth [`FailurePattern`](gam_kernel::FailurePattern):
//!
//! - [`SigmaOracle`] — the quorum detector `Σ` and its restriction `Σ_P`;
//! - [`OmegaOracle`] — the leader detector `Ω` / `Ω_P`;
//! - [`GammaOracle`] — the new *cyclicity* detector `γ`;
//! - [`IndicatorOracle`] — the indicator `1^P` of §6.1;
//! - [`PerfectOracle`] — the perfect detector `𝒫`;
//! - [`MuOracle`] — the candidate
//!   `μ_𝒢 = (∧_{g,h} Σ_{g∩h}) ∧ (∧_g Ω_g) ∧ γ`.
//!
//! Each oracle can realise several *valid histories* of its class (eager,
//! lazy, adversarially rotating before stabilisation), and the
//! [`validate`] module provides checkers that certify an arbitrary sampled
//! history against the class axioms — used to verify the emulations of
//! Algorithms 2–5.
//!
//! ## Quickstart
//!
//! ```
//! use gam_detectors::{GammaOracle, MuConfig, MuOracle};
//! use gam_groups::topology;
//! use gam_kernel::*;
//!
//! let gs = topology::fig1();
//! let pattern = FailurePattern::from_crashes(gs.universe(), [(ProcessId(1), Time(5))]);
//! let mu = MuOracle::new(&gs, pattern, MuConfig::default());
//! // After p2 crashes, γ stops reporting the families through g1∩g2.
//! assert_eq!(mu.gamma_families(ProcessId(0), Time(5)).len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gamma;
mod indicator;
mod mu;
mod omega;
mod perfect;
mod sigma;
pub mod validate;

pub use gamma::GammaOracle;
pub use indicator::{IndicatorMode, IndicatorOracle};
pub use mu::{MuConfig, MuOracle};
pub use omega::{OmegaMode, OmegaOracle};
pub use perfect::PerfectOracle;
pub use sigma::{SigmaMode, SigmaOracle};
pub use validate::Violation;
