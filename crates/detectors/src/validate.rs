//! Class validators for failure-detector histories.
//!
//! These check that a sampled history satisfies the axioms of its class,
//! given the ground-truth failure pattern. They are used both to sanity-check
//! the oracles of this crate and — more importantly — to *certify the
//! emulated detectors* built by the necessity-side reductions of
//! `gam-emulation` (Algorithms 2–5 of the paper).
//!
//! Liveness ("eventually …") axioms are checked over a finite horizon: the
//! property must hold at every sampled instant from `settle` to `horizon`.
//! Choosing `settle` after the protocol under test has stabilised makes the
//! check sound for the finite runs the simulator produces.

use gam_groups::{GroupSet, GroupSystem};
use gam_kernel::{FailurePattern, ProcessId, ProcessSet, Time};

/// A violation of a failure-detector class axiom.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which axiom failed (e.g. `"intersection"`).
    pub axiom: &'static str,
    /// Human-readable details.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} violated: {}", self.axiom, self.detail)
    }
}

impl std::error::Error for Violation {}

fn grid(horizon: Time) -> impl Iterator<Item = Time> {
    (0..=horizon.0).map(Time)
}

/// Validates a `Σ_P` history.
///
/// Checks *intersection* (all pairs of sampled quorums of in-scope processes
/// intersect) and *liveness* (from `settle` on, quorums at correct in-scope
/// processes contain only correct processes).
///
/// # Errors
///
/// Returns the first [`Violation`] found.
pub fn validate_sigma(
    sample: impl Fn(ProcessId, Time) -> Option<ProcessSet>,
    pattern: &FailurePattern,
    scope: ProcessSet,
    settle: Time,
    horizon: Time,
) -> Result<(), Violation> {
    let mut seen: Vec<(ProcessId, Time, ProcessSet)> = Vec::new();
    for t in grid(horizon) {
        for p in scope {
            if pattern.is_crashed(p, t) {
                continue;
            }
            let Some(q) = sample(p, t) else {
                return Err(Violation {
                    axiom: "range",
                    detail: format!("Σ returned ⊥ at in-scope {p} at {t}"),
                });
            };
            if q.is_empty() {
                return Err(Violation {
                    axiom: "range",
                    detail: format!("empty quorum at {p} at {t}"),
                });
            }
            seen.push((p, t, q));
        }
    }
    for (p, t, q) in &seen {
        for (p2, t2, q2) in &seen {
            if !q.intersects(*q2) {
                return Err(Violation {
                    axiom: "intersection",
                    detail: format!("Σ({p},{t})={q:?} ∩ Σ({p2},{t2})={q2:?} = ∅"),
                });
            }
        }
    }
    let correct = pattern.correct();
    for (p, t, q) in &seen {
        if *t >= settle && correct.contains(*p) && !q.is_subset(correct) {
            return Err(Violation {
                axiom: "liveness",
                detail: format!("Σ({p},{t})={q:?} contains faulty processes after settle"),
            });
        }
    }
    Ok(())
}

/// Validates an `Ω_P` history: from `settle` on, every correct in-scope
/// process outputs the same correct leader.
///
/// # Errors
///
/// Returns the first [`Violation`] found.
pub fn validate_omega(
    sample: impl Fn(ProcessId, Time) -> Option<ProcessId>,
    pattern: &FailurePattern,
    scope: ProcessSet,
    settle: Time,
    horizon: Time,
) -> Result<(), Violation> {
    let correct_scope = scope & pattern.correct();
    if correct_scope.is_empty() {
        return Ok(()); // leadership is vacuous
    }
    let mut leader: Option<ProcessId> = None;
    for t in grid(horizon) {
        if t < settle {
            continue;
        }
        for p in correct_scope {
            let Some(l) = sample(p, t) else {
                return Err(Violation {
                    axiom: "range",
                    detail: format!("Ω returned ⊥ at in-scope {p} at {t}"),
                });
            };
            if !pattern.is_correct(l) {
                return Err(Violation {
                    axiom: "leadership",
                    detail: format!("Ω({p},{t})={l} is faulty"),
                });
            }
            match leader {
                None => leader = Some(l),
                Some(prev) if prev != l => {
                    return Err(Violation {
                        axiom: "leadership",
                        detail: format!("leader flapped: {prev} then {l} at ({p},{t})"),
                    });
                }
                _ => {}
            }
        }
    }
    Ok(())
}

/// Validates a `γ` history against its accuracy and completeness axioms.
///
/// # Errors
///
/// Returns the first [`Violation`] found.
pub fn validate_gamma(
    sample: impl Fn(ProcessId, Time) -> Vec<GroupSet>,
    system: &GroupSystem,
    pattern: &FailurePattern,
    settle: Time,
    horizon: Time,
) -> Result<(), Violation> {
    for t in grid(horizon) {
        let crashed = pattern.faulty_at(t);
        for p in system.universe() {
            if pattern.is_crashed(p, t) {
                continue;
            }
            let out = sample(p, t);
            let mine = system.families_of_process(p);
            for f in &out {
                if !mine.contains(f) {
                    return Err(Violation {
                        axiom: "range",
                        detail: format!("γ({p},{t}) output {f:?} ∉ ℱ({p})"),
                    });
                }
            }
            for f in &mine {
                let faulty = system.family_faulty(*f, crashed);
                // Accuracy: excluded ⇒ faulty now.
                if !out.contains(f) && !faulty {
                    return Err(Violation {
                        axiom: "accuracy",
                        detail: format!("γ({p},{t}) excluded non-faulty {f:?}"),
                    });
                }
                // Completeness (finite-horizon form): after settle, faulty
                // families are excluded at correct processes.
                if t >= settle && pattern.is_correct(p) && faulty && out.contains(f) {
                    return Err(Violation {
                        axiom: "completeness",
                        detail: format!("γ({p},{t}) still outputs faulty {f:?} after settle"),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Validates a `1^P` history at the processes of `scope \ P` (inside `P` the
/// output carries no information, per §6.1).
///
/// # Errors
///
/// Returns the first [`Violation`] found.
pub fn validate_indicator(
    sample: impl Fn(ProcessId, Time) -> Option<bool>,
    pattern: &FailurePattern,
    monitored: ProcessSet,
    scope: ProcessSet,
    settle: Time,
    horizon: Time,
) -> Result<(), Violation> {
    for t in grid(horizon) {
        for p in scope - monitored {
            if pattern.is_crashed(p, t) {
                continue;
            }
            let Some(v) = sample(p, t) else {
                return Err(Violation {
                    axiom: "range",
                    detail: format!("1^P returned ⊥ at in-scope {p} at {t}"),
                });
            };
            let all_crashed = pattern.set_faulty_at(monitored, t);
            if v && !all_crashed {
                return Err(Violation {
                    axiom: "accuracy",
                    detail: format!("1^P({p},{t}) true while {monitored:?} not all crashed"),
                });
            }
            if t >= settle && pattern.is_correct(p) && all_crashed && !v {
                return Err(Violation {
                    axiom: "completeness",
                    detail: format!("1^P({p},{t}) still false after settle"),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gamma::GammaOracle;
    use crate::indicator::{IndicatorMode, IndicatorOracle};
    use crate::omega::{OmegaMode, OmegaOracle};
    use crate::sigma::{SigmaMode, SigmaOracle};
    use gam_groups::topology;

    fn pattern() -> FailurePattern {
        FailurePattern::from_crashes(
            ProcessSet::first_n(5),
            [(ProcessId(1), Time(5)), (ProcessId(2), Time(7))],
        )
    }

    #[test]
    fn sigma_oracle_passes() {
        let scope = ProcessSet::first_n(5);
        for mode in [SigmaMode::Alive, SigmaMode::LazyUntil(Time(9))] {
            let o = SigmaOracle::new(scope, pattern(), mode);
            validate_sigma(|p, t| o.quorum(p, t), &pattern(), scope, Time(10), Time(40))
                .unwrap_or_else(|v| panic!("{mode:?}: {v}"));
        }
    }

    #[test]
    fn sigma_validator_rejects_disjoint_quorums() {
        let scope = ProcessSet::first_n(4);
        let bogus = |p: ProcessId, _t: Time| Some(ProcessSet::singleton(p));
        let err = validate_sigma(
            bogus,
            &FailurePattern::all_correct(scope),
            scope,
            Time(0),
            Time(3),
        )
        .unwrap_err();
        assert_eq!(err.axiom, "intersection");
    }

    #[test]
    fn sigma_validator_rejects_stale_quorums() {
        let scope = ProcessSet::first_n(5);
        let o = SigmaOracle::new(scope, pattern(), SigmaMode::LazyUntil(Time(1000)));
        // never stabilises within the horizon
        let err = validate_sigma(|p, t| o.quorum(p, t), &pattern(), scope, Time(10), Time(40))
            .unwrap_err();
        assert_eq!(err.axiom, "liveness");
    }

    #[test]
    fn omega_oracle_passes_and_flapping_fails() {
        let scope = ProcessSet::first_n(5);
        let o = OmegaOracle::new(scope, pattern(), OmegaMode::MinAlive);
        validate_omega(|p, t| o.leader(p, t), &pattern(), scope, Time(10), Time(40)).unwrap();
        let flapper = |_p: ProcessId, t: Time| Some(ProcessId((t.0 % 2) as u32 * 3));
        let err = validate_omega(
            flapper,
            &FailurePattern::all_correct(scope),
            scope,
            Time(0),
            Time(10),
        )
        .unwrap_err();
        assert_eq!(err.axiom, "leadership");
    }

    #[test]
    fn gamma_oracle_passes_for_all_delays() {
        let gs = topology::fig1();
        let pat = FailurePattern::from_crashes(gs.universe(), [(ProcessId(1), Time(5))]);
        for delay in [0u64, 3] {
            let o = GammaOracle::new(&gs, pat.clone(), delay);
            validate_gamma(|p, t| o.families(p, t), &gs, &pat, Time(20), Time(40))
                .unwrap_or_else(|v| panic!("delay={delay}: {v}"));
        }
    }

    #[test]
    fn gamma_validator_rejects_never_excluding() {
        let gs = topology::fig1();
        let pat = FailurePattern::from_crashes(gs.universe(), [(ProcessId(1), Time(5))]);
        // a bogus γ that always outputs all of ℱ(p)
        let bogus = |p: ProcessId, _t: Time| gs.families_of_process(p);
        let err = validate_gamma(bogus, &gs, &pat, Time(20), Time(40)).unwrap_err();
        assert_eq!(err.axiom, "completeness");
    }

    #[test]
    fn gamma_validator_rejects_eager_exclusion() {
        let gs = topology::fig1();
        let pat = FailurePattern::all_correct(gs.universe());
        // a bogus γ that outputs nothing (excludes non-faulty families)
        let bogus = |_p: ProcessId, _t: Time| Vec::new();
        let err = validate_gamma(bogus, &gs, &pat, Time(20), Time(40)).unwrap_err();
        assert_eq!(err.axiom, "accuracy");
    }

    #[test]
    fn indicator_oracle_passes_both_modes() {
        let monitored = ProcessSet::from_iter([1u32, 2]);
        let scope = ProcessSet::first_n(5);
        for mode in [IndicatorMode::Truthful, IndicatorMode::TrueInside] {
            let o = IndicatorOracle::new(monitored, scope, pattern(), 1, mode);
            validate_indicator(
                |p, t| o.indicates(p, t),
                &pattern(),
                monitored,
                scope,
                Time(10),
                Time(40),
            )
            .unwrap_or_else(|v| panic!("{mode:?}: {v}"));
        }
    }

    #[test]
    fn indicator_validator_rejects_false_positive() {
        let monitored = ProcessSet::from_iter([1u32]);
        let scope = ProcessSet::first_n(3);
        let bogus = |_p: ProcessId, _t: Time| Some(true);
        let err = validate_indicator(
            bogus,
            &FailurePattern::all_correct(scope),
            monitored,
            scope,
            Time(0),
            Time(5),
        )
        .unwrap_err();
        assert_eq!(err.axiom, "accuracy");
        assert!(err.to_string().contains("accuracy"));
    }
}
