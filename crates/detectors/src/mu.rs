//! The candidate failure detector
//! `μ_𝒢 = (∧_{g,h∈𝒢} Σ_{g∩h}) ∧ (∧_{g∈𝒢} Ω_g) ∧ γ` (§3) — proven by the paper
//! to be the weakest failure detector for genuine atomic multicast.
//!
//! [`MuOracle`] bundles one [`SigmaOracle`] per (unordered) pair of
//! intersecting groups — including `g = h`, which yields `Σ_g` — one
//! [`OmegaOracle`] per group, and a [`GammaOracle`]. Algorithm 1 consumes it
//! through the typed accessors rather than a single flattened sample.

use crate::gamma::GammaOracle;
use crate::omega::{OmegaMode, OmegaOracle};
use crate::sigma::{SigmaMode, SigmaOracle};
use gam_groups::{GroupId, GroupSet, GroupSystem};
use gam_kernel::{FailurePattern, ProcessId, ProcessSet, Time};
use std::collections::BTreeMap;

/// Tuning of the constituent oracles of `μ`.
#[derive(Debug, Clone, Copy, Default)]
pub struct MuConfig {
    /// Pre-stabilisation behaviour of every `Σ_{g∩h}`.
    pub sigma: SigmaMode,
    /// Pre-stabilisation behaviour of every `Ω_g`.
    pub omega: OmegaMode,
    /// Detection latency of `γ`, in ticks.
    pub gamma_delay: u64,
}

/// An oracle for the candidate `μ_𝒢`.
///
/// # Examples
///
/// ```
/// use gam_detectors::{MuConfig, MuOracle};
/// use gam_groups::{topology, GroupId};
/// use gam_kernel::*;
///
/// let gs = topology::fig1();
/// let pattern = FailurePattern::all_correct(gs.universe());
/// let mu = MuOracle::new(&gs, pattern, MuConfig::default());
/// // Σ_{g1∩g3} at p1 (∈ g1 ∩ g3 = {p1}) returns a quorum.
/// assert!(mu.sigma(GroupId(0), GroupId(2), ProcessId(0), Time(0)).is_some());
/// // Ω_{g2} elects a member of g2.
/// let l = mu.omega(GroupId(1), ProcessId(1), Time(50)).unwrap();
/// assert!(gs.members(GroupId(1)).contains(l));
/// ```
#[derive(Debug, Clone)]
pub struct MuOracle {
    system: GroupSystem,
    pattern: FailurePattern,
    sigmas: BTreeMap<(GroupId, GroupId), SigmaOracle>,
    omegas: Vec<OmegaOracle>,
    gamma: GammaOracle,
}

impl MuOracle {
    /// Builds the candidate oracle for a group system and failure pattern.
    pub fn new(system: &GroupSystem, pattern: FailurePattern, config: MuConfig) -> Self {
        let mut sigmas = BTreeMap::new();
        for (g, _) in system.iter() {
            // Σ_{g∩g} = Σ_g
            sigmas.insert(
                (g, g),
                SigmaOracle::new(system.members(g), pattern.clone(), config.sigma),
            );
        }
        for (g, h) in system.intersecting_pairs() {
            sigmas.insert(
                (g, h),
                SigmaOracle::new(system.intersection(g, h), pattern.clone(), config.sigma),
            );
        }
        let omegas = system
            .iter()
            .map(|(_, members)| OmegaOracle::new(members, pattern.clone(), config.omega))
            .collect();
        let gamma = GammaOracle::new(system, pattern.clone(), config.gamma_delay);
        MuOracle {
            system: system.clone(),
            pattern,
            sigmas,
            omegas,
            gamma,
        }
    }

    /// The group system `𝒢` the oracle is defined over.
    pub fn system(&self) -> &GroupSystem {
        &self.system
    }

    /// The failure pattern driving the oracle.
    pub fn pattern(&self) -> &FailurePattern {
        &self.pattern
    }

    /// `Σ_{g∩h}(p, t)`, or `None` (⊥) when `p ∉ g∩h` or the groups do not
    /// intersect. `sigma(g, g, …)` is `Σ_g`.
    pub fn sigma(&self, g: GroupId, h: GroupId, p: ProcessId, t: Time) -> Option<ProcessSet> {
        let key = if g <= h { (g, h) } else { (h, g) };
        self.sigmas.get(&key).and_then(|o| o.quorum(p, t))
    }

    /// `Ω_g(p, t)`, or `None` (⊥) when `p ∉ g`.
    pub fn omega(&self, g: GroupId, p: ProcessId, t: Time) -> Option<ProcessId> {
        self.omegas[g.index()].leader(p, t)
    }

    /// `γ(p, t)`: the cyclic families currently output at `p`.
    pub fn gamma_families(&self, p: ProcessId, t: Time) -> Vec<GroupSet> {
        self.gamma.families(p, t)
    }

    /// `γ(g)` at `(p, t)`: the groups `h` intersecting `g` such that `g, h`
    /// share a family output by `γ`.
    pub fn gamma_groups(&self, p: ProcessId, g: GroupId, t: Time) -> GroupSet {
        self.gamma.groups(p, g, t)
    }

    /// Direct access to the `γ` component.
    pub fn gamma(&self) -> &GammaOracle {
        &self.gamma
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gam_groups::topology;

    #[test]
    fn sigma_symmetric_in_group_order() {
        let gs = topology::fig1();
        let mu = MuOracle::new(
            &gs,
            FailurePattern::all_correct(gs.universe()),
            MuConfig::default(),
        );
        let a = mu.sigma(GroupId(0), GroupId(2), ProcessId(0), Time(1));
        let b = mu.sigma(GroupId(2), GroupId(0), ProcessId(0), Time(1));
        assert_eq!(a, b);
        assert_eq!(a, Some(ProcessSet::singleton(ProcessId(0))));
    }

    #[test]
    fn sigma_of_group_is_full_quorum_detector() {
        let gs = topology::fig1();
        let mu = MuOracle::new(
            &gs,
            FailurePattern::all_correct(gs.universe()),
            MuConfig::default(),
        );
        // Σ_{g3} = Σ_{g3∩g3} over {p1, p3, p4}
        let q = mu.sigma(GroupId(2), GroupId(2), ProcessId(0), Time(0));
        assert_eq!(q, Some(gs.members(GroupId(2))));
    }

    #[test]
    fn non_intersecting_pair_is_bot() {
        let gs = topology::fig1();
        let mu = MuOracle::new(
            &gs,
            FailurePattern::all_correct(gs.universe()),
            MuConfig::default(),
        );
        // g2 ∩ g4 = ∅
        assert_eq!(
            mu.sigma(GroupId(1), GroupId(3), ProcessId(1), Time(0)),
            None
        );
    }

    #[test]
    fn omega_scoped_to_group_members() {
        let gs = topology::fig1();
        let pattern = FailurePattern::from_crashes(gs.universe(), [(ProcessId(1), Time(2))]);
        let mu = MuOracle::new(&gs, pattern, MuConfig::default());
        // In g2 = {p2, p3}, after p2 crashes, p3 leads.
        assert_eq!(
            mu.omega(GroupId(1), ProcessId(2), Time(9)),
            Some(ProcessId(2))
        );
        // p1 ∉ g2 gets ⊥.
        assert_eq!(mu.omega(GroupId(1), ProcessId(0), Time(9)), None);
    }

    #[test]
    fn gamma_component_matches_standalone_oracle() {
        let gs = topology::fig1();
        let pattern = FailurePattern::from_crashes(gs.universe(), [(ProcessId(1), Time(4))]);
        let mu = MuOracle::new(&gs, pattern.clone(), MuConfig::default());
        let standalone = GammaOracle::new(&gs, pattern, 0);
        for t in [0u64, 4, 10] {
            assert_eq!(
                mu.gamma_families(ProcessId(0), Time(t)),
                standalone.families(ProcessId(0), Time(t))
            );
        }
    }
}
