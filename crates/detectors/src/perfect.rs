//! The perfect failure detector `𝒫`.
//!
//! `𝒫` outputs a set of *suspected* processes with:
//!
//! - *(Strong accuracy)* no process is suspected before it crashes;
//! - *(Strong completeness)* eventually every crashed process is suspected
//!   forever by every correct process.
//!
//! Schiper & Pedone's solution to genuine atomic multicast assumes `𝒫`; it is
//! the baseline against which the paper's weaker candidate `μ` is compared
//! (Table 1, row `≤ 𝒫`). `𝒫` is also the weakest *realistic* failure detector
//! for consensus.

use gam_kernel::{FailurePattern, History, ProcessId, ProcessSet, Time};

/// An oracle for the perfect failure detector under a failure pattern, with a
/// configurable detection latency.
///
/// # Examples
///
/// ```
/// use gam_detectors::PerfectOracle;
/// use gam_kernel::*;
///
/// let universe = ProcessSet::first_n(3);
/// let pattern = FailurePattern::from_crashes(universe, [(ProcessId(2), Time(4))]);
/// let p = PerfectOracle::new(pattern, 1);
/// assert!(p.suspected(ProcessId(0), Time(4)).is_empty());
/// assert!(p.suspected(ProcessId(0), Time(5)).contains(ProcessId(2)));
/// ```
#[derive(Debug, Clone)]
pub struct PerfectOracle {
    pattern: FailurePattern,
    delay: u64,
}

impl PerfectOracle {
    /// Creates the oracle with a detection latency of `delay` ticks.
    pub fn new(pattern: FailurePattern, delay: u64) -> Self {
        PerfectOracle { pattern, delay }
    }

    /// `𝒫(p, t)`: the set of suspected processes.
    pub fn suspected(&self, _p: ProcessId, t: Time) -> ProcessSet {
        self.pattern.faulty_at(t.saturating_sub(self.delay))
    }
}

impl History for PerfectOracle {
    type Value = ProcessSet;

    fn sample(&self, p: ProcessId, t: Time) -> ProcessSet {
        self.suspected(p, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strong_accuracy() {
        let pattern = FailurePattern::from_crashes(
            ProcessSet::first_n(4),
            [(ProcessId(1), Time(5)), (ProcessId(3), Time(9))],
        );
        let p = PerfectOracle::new(pattern.clone(), 3);
        for t in 0..20u64 {
            let s = p.suspected(ProcessId(0), Time(t));
            assert!(s.is_subset(pattern.faulty_at(Time(t))), "t{t}: {s:?}");
        }
    }

    #[test]
    fn strong_completeness() {
        let pattern =
            FailurePattern::from_crashes(ProcessSet::first_n(4), [(ProcessId(1), Time(5))]);
        let p = PerfectOracle::new(pattern.clone(), 3);
        for t in 8..20u64 {
            assert!(p.suspected(ProcessId(0), Time(t)).contains(ProcessId(1)));
        }
    }

    #[test]
    fn zero_delay_tracks_pattern_exactly() {
        let pattern =
            FailurePattern::from_crashes(ProcessSet::first_n(2), [(ProcessId(0), Time(2))]);
        let p = PerfectOracle::new(pattern.clone(), 0);
        for t in 0..6u64 {
            assert_eq!(
                p.suspected(ProcessId(1), Time(t)),
                pattern.faulty_at(Time(t))
            );
        }
    }
}
