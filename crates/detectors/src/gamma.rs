//! The cyclicity failure detector `γ` (§3) — the new detector class the
//! paper introduces.
//!
//! `γ` informs each process of the cyclic families it is currently involved
//! with. At `p` it returns a set of families `𝔣 ∈ ℱ(p)` such that:
//!
//! - *(Accuracy)* if `𝔣 ∈ ℱ(p)` is **not** output at `p` at time `t`, then
//!   `𝔣` is faulty at `t`;
//! - *(Completeness)* if `𝔣 ∈ ℱ(p)` is faulty at `t` and `p` is correct, then
//!   eventually `𝔣` is never output at `p` again.

use gam_groups::{GroupId, GroupSet, GroupSystem};
use gam_kernel::{FailurePattern, History, ProcessId, Time};

/// An oracle for `γ` over a group system and failure pattern.
///
/// The oracle excludes a family `delay` ticks after it becomes faulty; any
/// `delay ≥ 0` yields a valid history, because family faultiness is monotone
/// (crashes are permanent).
///
/// # Examples
///
/// The Figure 1 walkthrough of §3: once `p2` crashes, the families 𝔣 and 𝔣''
/// become faulty and the output at `p1` stabilises to `{𝔣'}`.
///
/// ```
/// use gam_detectors::GammaOracle;
/// use gam_groups::{topology, GroupId, GroupSet};
/// use gam_kernel::*;
///
/// let gs = topology::fig1();
/// let pattern = FailurePattern::from_crashes(gs.universe(), [(ProcessId(1), Time(10))]);
/// let gamma = GammaOracle::new(&gs, pattern, 0);
/// let fprime: GroupSet = [GroupId(0), GroupId(2), GroupId(3)].into_iter().collect();
/// assert_eq!(gamma.families(ProcessId(0), Time(0)).len(), 3);
/// assert_eq!(gamma.families(ProcessId(0), Time(10)), vec![fprime]);
/// ```
#[derive(Debug, Clone)]
pub struct GammaOracle {
    pattern: FailurePattern,
    delay: u64,
    /// Precomputed `ℱ(p)` per process index.
    families_of: Vec<Vec<GroupSet>>,
    /// For every family in `ℱ`, the time at which it becomes faulty (if ever).
    faulty_from: Vec<(GroupSet, Option<Time>)>,
    /// Precomputed intersecting-pairs relation, for `γ(g)`.
    system: GroupSystem,
}

impl GammaOracle {
    /// Creates the oracle; `delay` is the detection latency in ticks.
    pub fn new(system: &GroupSystem, pattern: FailurePattern, delay: u64) -> Self {
        let n = system.universe().max().map_or(0, |p| p.index() + 1);
        // Enumerate ℱ once: `families_of_process` re-runs the 2-core prune
        // per call, which is quadratic in the group count — at hundreds of
        // groups the n repeated calls dominate construction.
        let cyclic = system.cyclic_families();
        let families_of = (0..n)
            .map(|i| {
                let p = ProcessId(i as u32);
                cyclic
                    .iter()
                    .copied()
                    .filter(|f| system.in_some_intersection(*f, p))
                    .collect()
            })
            .collect();
        let faulty_from = cyclic
            .into_iter()
            .map(|f| (f, family_faulty_from(system, &pattern, f)))
            .collect();
        GammaOracle {
            pattern,
            delay,
            families_of,
            faulty_from,
            system: system.clone(),
        }
    }

    /// The failure pattern the oracle is defined over.
    pub fn pattern(&self) -> &FailurePattern {
        &self.pattern
    }

    /// `γ(p, t)`: the families of `ℱ(p)` currently output at `p`.
    pub fn families(&self, p: ProcessId, t: Time) -> Vec<GroupSet> {
        let Some(mine) = self.families_of.get(p.index()) else {
            return Vec::new();
        };
        mine.iter()
            .filter(|f| !self.excluded(**f, t))
            .copied()
            .collect()
    }

    fn excluded(&self, f: GroupSet, t: Time) -> bool {
        self.faulty_from
            .iter()
            .find(|(g, _)| *g == f)
            .and_then(|(_, from)| *from)
            .is_some_and(|from| Time(from.0.saturating_add(self.delay)) <= t)
    }

    /// The times at which the oracle's output can change anywhere: for
    /// every family of `ℱ` that ever becomes faulty, the instant
    /// `faulty_from + delay` at which the oracle excludes it. Sorted
    /// ascending, deduplicated. Between consecutive breakpoints — and after
    /// the last — the output at every process is constant (family
    /// faultiness is monotone), which lets callers precompute `γ(g)`
    /// timelines once instead of re-filtering families per query.
    pub fn exclusion_breakpoints(&self) -> Vec<Time> {
        let mut out: Vec<Time> = self
            .faulty_from
            .iter()
            .filter_map(|(_, from)| *from)
            .map(|t| Time(t.0.saturating_add(self.delay)))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// `γ(g)` at `(p, t)`: the groups `h` with `g ∩ h ≠ ∅` such that `g` and
    /// `h` belong to a common family output by `γ` (§3). Used as the guard
    /// of lines 18 and 32 of Algorithm 1.
    pub fn groups(&self, p: ProcessId, g: GroupId, t: Time) -> GroupSet {
        let mut out = GroupSet::new();
        for f in self.families(p, t) {
            if !f.contains(g) {
                continue;
            }
            for h in f {
                if h != g && self.system.intersecting(g, h) {
                    out.insert(h);
                }
            }
        }
        out
    }
}

/// The earliest time at which `f` is faulty under `pattern`, if ever:
/// the minimum over hamiltonian-cycle hitting times of the max edge-crash
/// time... more precisely, `f` is faulty at `t` iff every cycle has a crashed
/// edge at `t`; monotone, so the threshold is
/// `max over cycles of (min over edges of edge-crash-time)`.
fn family_faulty_from(system: &GroupSystem, pattern: &FailurePattern, f: GroupSet) -> Option<Time> {
    let cycles = system.hamiltonian_cycles(f);
    let mut threshold = Time::ZERO;
    for c in cycles {
        // earliest time this cycle gains a crashed edge
        let t = c
            .edges()
            .iter()
            .filter_map(|(g, h)| pattern.set_crash_time(system.intersection(*g, *h)))
            .min()?;
        threshold = threshold.max(t);
    }
    Some(threshold)
}

impl History for GammaOracle {
    type Value = Vec<GroupSet>;

    fn sample(&self, p: ProcessId, t: Time) -> Vec<GroupSet> {
        self.families(p, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gam_groups::topology;

    fn gset(ids: &[u32]) -> GroupSet {
        ids.iter().map(|i| GroupId(*i)).collect()
    }

    #[test]
    fn fig1_walkthrough_of_section3() {
        // Correct = {p1, p4, p5}: p2 and p3 crash.
        let gs = topology::fig1();
        let pattern = FailurePattern::from_crashes(
            gs.universe(),
            [(ProcessId(1), Time(5)), (ProcessId(2), Time(7))],
        );
        let gamma = GammaOracle::new(&gs, pattern, 0);
        // Initially γ at p1 returns {𝔣, 𝔣', 𝔣''}.
        assert_eq!(gamma.families(ProcessId(0), Time(0)).len(), 3);
        // Once p2 is faulty, 𝔣 and 𝔣'' are faulty; output stabilises to {𝔣'}.
        assert_eq!(
            gamma.families(ProcessId(0), Time(5)),
            vec![gset(&[0, 2, 3])]
        );
        // When this happens, γ(g1) = {g3, g4}.
        assert_eq!(
            gamma.groups(ProcessId(0), GroupId(0), Time(5)),
            gset(&[2, 3])
        );
        // Before: γ(g1) = {g2, g3, g4}.
        assert_eq!(
            gamma.groups(ProcessId(0), GroupId(0), Time(0)),
            gset(&[1, 2, 3])
        );
    }

    #[test]
    fn accuracy_holds_with_any_delay() {
        let gs = topology::fig1();
        let pattern = FailurePattern::from_crashes(gs.universe(), [(ProcessId(1), Time(3))]);
        for delay in [0u64, 2, 10] {
            let gamma = GammaOracle::new(&gs, pattern.clone(), delay);
            for t in 0..30u64 {
                let crashed = pattern.faulty_at(Time(t));
                for p in gs.universe() {
                    let out = gamma.families(ProcessId(p.0), Time(t));
                    for f in gs.families_of_process(p) {
                        if !out.contains(&f) {
                            assert!(
                                gs.family_faulty(f, crashed),
                                "delay={delay} t={t}: {f:?} excluded but not faulty"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn completeness_excludes_faulty_families_eventually() {
        let gs = topology::fig1();
        let pattern = FailurePattern::from_crashes(gs.universe(), [(ProcessId(1), Time(3))]);
        let gamma = GammaOracle::new(&gs, pattern.clone(), 4);
        let f = gset(&[0, 1, 2]);
        // During the delay window the faulty family may still be output.
        assert!(gamma.families(ProcessId(0), Time(4)).contains(&f));
        // After crash time + delay it is gone forever.
        for t in 7..20u64 {
            assert!(!gamma.families(ProcessId(0), Time(t)).contains(&f));
        }
    }

    #[test]
    fn process_outside_all_intersections_sees_nothing() {
        let gs = topology::fig1();
        let gamma = GammaOracle::new(&gs, FailurePattern::all_correct(gs.universe()), 0);
        assert!(gamma.families(ProcessId(4), Time(0)).is_empty());
    }

    #[test]
    fn acyclic_topology_has_trivial_gamma() {
        let gs = topology::chain(4, 3);
        let gamma = GammaOracle::new(&gs, FailurePattern::all_correct(gs.universe()), 0);
        for p in gs.universe() {
            assert!(gamma.families(p, Time(0)).is_empty());
        }
    }

    #[test]
    fn faulty_from_is_max_over_cycles_min_over_edges() {
        // Ring of 4: single cycle; crashing one joint process kills it.
        let gs = topology::ring(4, 2);
        let pattern = FailurePattern::from_crashes(gs.universe(), [(ProcessId(0), Time(9))]);
        let f = GroupSet::first_n(4);
        assert_eq!(family_faulty_from(&gs, &pattern, f), Some(Time(9)));
        let no_crash = FailurePattern::all_correct(gs.universe());
        assert_eq!(family_faulty_from(&gs, &no_crash, f), None);
    }

    #[test]
    fn hub_family_needs_hub_crash() {
        // In a hub topology every intersection is {hub}; the family dies
        // exactly when the hub does.
        let gs = topology::hub(3, 2);
        let pattern = FailurePattern::from_crashes(gs.universe(), [(ProcessId(0), Time(2))]);
        let gamma = GammaOracle::new(&gs, pattern, 0);
        // hub is p0; spokes p1..p3. The spoke processes belong to no
        // intersection, so ℱ(p_i) = ∅ for them; the hub sees the family
        // until its own crash time (it never queries after crashing).
        assert_eq!(gamma.families(ProcessId(0), Time(0)).len(), 1);
        assert!(gamma.families(ProcessId(1), Time(0)).is_empty());
    }
}
